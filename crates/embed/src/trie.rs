//! Token-level lookup trie (prefix tree) over an embedding dictionary.
//!
//! §3.1: "a lookup trie (prefix tree) is created for the dictionary of the
//! given word embedding dataset, where every node represents a token. By
//! considering the lookup trie the longest possible sequences of nodes are
//! extracted (e.g. 'bank account' instead of 'bank')."
//!
//! Nodes are *word* tokens, not characters: a dictionary phrase
//! `"new york city"` becomes a path of three nodes. [`Trie::longest_match`]
//! returns the longest dictionary phrase starting at a position in a word
//! sequence, which the tokenizer uses for greedy segmentation.

use std::collections::HashMap;

/// One trie node: children by word, plus the phrase id if a dictionary
/// phrase ends here.
#[derive(Clone, Debug, Default)]
struct Node {
    children: HashMap<String, usize>,
    /// Dictionary id of the phrase spelled by the path to this node.
    phrase_id: Option<usize>,
}

/// A word-level trie over dictionary phrases.
#[derive(Clone, Debug)]
pub struct Trie {
    nodes: Vec<Node>,
}

impl Default for Trie {
    fn default() -> Self {
        Self::new()
    }
}

impl Trie {
    /// An empty trie.
    pub fn new() -> Self {
        Self { nodes: vec![Node::default()] }
    }

    /// Build a trie from `(phrase words, id)` pairs.
    pub fn from_phrases<'a, I>(phrases: I) -> Self
    where
        I: IntoIterator<Item = (&'a [&'a str], usize)>,
    {
        let mut trie = Self::new();
        for (words, id) in phrases {
            trie.insert(words.iter().copied(), id);
        }
        trie
    }

    /// Insert a phrase given as a word sequence, associating it with `id`.
    /// Re-inserting a phrase overwrites its id (last write wins).
    pub fn insert<'a>(&mut self, words: impl IntoIterator<Item = &'a str>, id: usize) {
        let mut cur = 0usize;
        for word in words {
            cur = match self.nodes[cur].children.get(word) {
                Some(&next) => next,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(word.to_owned(), next);
                    next
                }
            };
        }
        self.nodes[cur].phrase_id = Some(id);
    }

    /// Number of nodes (root included) — a size diagnostic.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The longest dictionary phrase that starts at `words[start]`.
    ///
    /// Returns `(word_count, phrase_id)` of the longest match, or `None` when
    /// not even a single-word match exists.
    pub fn longest_match(&self, words: &[&str], start: usize) -> Option<(usize, usize)> {
        let mut cur = 0usize;
        let mut best: Option<(usize, usize)> = None;
        for (offset, word) in words[start..].iter().enumerate() {
            match self.nodes[cur].children.get(*word) {
                Some(&next) => {
                    cur = next;
                    if let Some(id) = self.nodes[cur].phrase_id {
                        best = Some((offset + 1, id));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// Exact lookup of a whole phrase.
    pub fn get<'a>(&self, words: impl IntoIterator<Item = &'a str>) -> Option<usize> {
        let mut cur = 0usize;
        for word in words {
            cur = *self.nodes[cur].children.get(word)?;
        }
        self.nodes[cur].phrase_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trie {
        let mut t = Trie::new();
        t.insert(["bank"], 0);
        t.insert(["bank", "account"], 1);
        t.insert(["account"], 2);
        t.insert(["new", "york", "city"], 3);
        t
    }

    #[test]
    fn longest_match_prefers_longer_phrase() {
        let t = sample();
        let words = ["bank", "account", "number"];
        assert_eq!(t.longest_match(&words, 0), Some((2, 1)));
        assert_eq!(t.longest_match(&words, 1), Some((1, 2)));
        assert_eq!(t.longest_match(&words, 2), None);
    }

    #[test]
    fn partial_phrase_without_terminal_does_not_match() {
        let t = sample();
        // "new york" is a path but only "new york city" is a phrase.
        assert_eq!(t.longest_match(&["new", "york"], 0), None);
        assert_eq!(t.longest_match(&["new", "york", "city"], 0), Some((3, 3)));
    }

    #[test]
    fn exact_get() {
        let t = sample();
        assert_eq!(t.get(["bank", "account"]), Some(1));
        assert_eq!(t.get(["bank", "robbery"]), None);
        assert_eq!(t.get(["new", "york"]), None);
    }

    #[test]
    fn reinsert_overwrites_id() {
        let mut t = sample();
        t.insert(["bank"], 42);
        assert_eq!(t.get(["bank"]), Some(42));
    }

    #[test]
    fn from_phrases_builds_equivalent_trie() {
        let t = Trie::from_phrases([(&["a", "b"][..], 0), (&["a"][..], 1)]);
        assert_eq!(t.get(["a", "b"]), Some(0));
        assert_eq!(t.get(["a"]), Some(1));
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let t = Trie::new();
        assert_eq!(t.longest_match(&["x"], 0), None);
        assert_eq!(t.node_count(), 1);
    }
}
