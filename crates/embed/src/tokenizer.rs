//! §3.1 tokenization: database text value → bag of dictionary phrases →
//! centroid vector (or the null vector for fully-OOV values).

use retro_linalg::vector;

use crate::embedding::EmbeddingSet;
use crate::trie::Trie;

/// The result of tokenizing one text value.
#[derive(Clone, Debug, PartialEq)]
pub struct TokenizedValue {
    /// Dictionary ids of matched phrases (longest-match, left to right).
    pub phrase_ids: Vec<usize>,
    /// Words that matched no dictionary phrase.
    pub unmatched: Vec<String>,
}

impl TokenizedValue {
    /// True when no phrase of the value is in the embedding vocabulary —
    /// the value is out-of-vocabulary and starts from the null vector.
    pub fn is_oov(&self) -> bool {
        self.phrase_ids.is_empty()
    }
}

/// Trie-backed tokenizer bound to an [`EmbeddingSet`].
#[derive(Clone, Debug)]
pub struct Tokenizer {
    trie: Trie,
    dim: usize,
}

/// Normalize a raw text value into lookup words: lowercase, split on
/// whitespace, `_`, `-`, and punctuation. Word-embedding dictionaries
/// (Google News style) use `_` to join phrase words; we split it so the trie
/// can re-join via longest match.
pub fn normalize_words(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter(|w| !w.is_empty())
        .map(str::to_owned)
        .collect()
}

impl Tokenizer {
    /// Build a tokenizer for an embedding set's vocabulary.
    ///
    /// Every dictionary token is normalized into a word sequence and
    /// inserted into the trie with its embedding id, so multi-word entries
    /// such as `bank_account` become two-node paths.
    pub fn new(embeddings: &EmbeddingSet) -> Self {
        let mut trie = Trie::new();
        for (id, token) in embeddings.tokens().iter().enumerate() {
            let words = normalize_words(token);
            if !words.is_empty() {
                trie.insert(words.iter().map(String::as_str), id);
            }
        }
        Self { trie, dim: embeddings.dim() }
    }

    /// Greedy longest-match segmentation of a text value.
    pub fn tokenize(&self, text: &str) -> TokenizedValue {
        let words = normalize_words(text);
        let word_refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let mut phrase_ids = Vec::new();
        let mut unmatched = Vec::new();
        let mut pos = 0;
        while pos < word_refs.len() {
            match self.trie.longest_match(&word_refs, pos) {
                Some((len, id)) => {
                    phrase_ids.push(id);
                    pos += len;
                }
                None => {
                    unmatched.push(words[pos].clone());
                    pos += 1;
                }
            }
        }
        TokenizedValue { phrase_ids, unmatched }
    }

    /// The §3.1 initial vector for a text value: the centroid of the vectors
    /// of its matched phrases, or the null (zero) vector when fully OOV.
    ///
    /// The boolean is `true` when the value is OOV (i.e. the zero vector is
    /// a placeholder, not a real embedding) — RETRO's solvers use this to
    /// know which rows start from nothing.
    pub fn initial_vector(&self, embeddings: &EmbeddingSet, text: &str) -> (Vec<f32>, bool) {
        let toks = self.tokenize(text);
        if toks.is_oov() {
            return (vec![0.0; self.dim], true);
        }
        let centroid =
            vector::centroid(toks.phrase_ids.iter().map(|&id| embeddings.vector(id)), self.dim);
        (centroid, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (EmbeddingSet, Tokenizer) {
        let e = EmbeddingSet::new(
            vec![
                "bank".into(),
                "bank_account".into(),
                "account".into(),
                "luc_besson".into(),
                "element".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5], vec![-1.0, 0.0], vec![0.0, -1.0]],
        );
        let t = Tokenizer::new(&e);
        (e, t)
    }

    #[test]
    fn normalization_splits_and_lowercases() {
        assert_eq!(normalize_words("Luc_Besson"), vec!["luc", "besson"]);
        assert_eq!(normalize_words("5th Element!"), vec!["5th", "element"]);
        assert_eq!(normalize_words("it's"), vec!["it's"]);
        assert!(normalize_words("  --  ").is_empty());
    }

    #[test]
    fn longest_match_beats_word_by_word() {
        let (_, t) = sample();
        let toks = t.tokenize("Bank Account");
        // Must match "bank_account" (id 1), not "bank" + "account".
        assert_eq!(toks.phrase_ids, vec![1]);
        assert!(toks.unmatched.is_empty());
    }

    #[test]
    fn underscore_phrases_match() {
        let (_, t) = sample();
        assert_eq!(t.tokenize("Luc Besson").phrase_ids, vec![3]);
        assert_eq!(t.tokenize("luc_besson").phrase_ids, vec![3]);
    }

    #[test]
    fn unmatched_words_recorded() {
        let (_, t) = sample();
        let toks = t.tokenize("5th Element");
        assert_eq!(toks.phrase_ids, vec![4]);
        assert_eq!(toks.unmatched, vec!["5th"]);
    }

    #[test]
    fn initial_vector_is_centroid() {
        let (e, t) = sample();
        let (v, oov) = t.initial_vector(&e, "bank element");
        assert!(!oov);
        assert_eq!(v, vec![0.5, -0.5]); // mean of [1,0] and [0,-1]
    }

    #[test]
    fn oov_value_gets_null_vector() {
        let (e, t) = sample();
        let (v, oov) = t.initial_vector(&e, "Zxqwv Flurble");
        assert!(oov);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn segmentation_covers_all_words() {
        let (_, t) = sample();
        let toks = t.tokenize("bank account account flurble bank");
        // "bank account" + "account" + unmatched "flurble" + "bank"
        assert_eq!(toks.phrase_ids, vec![1, 2, 0]);
        assert_eq!(toks.unmatched, vec!["flurble"]);
    }
}
