//! Word2vec text format I/O plus a compact binary cache format.
//!
//! Text format (as shipped by word2vec/GloVe/fastText):
//!
//! ```text
//! [<count> <dim>]            -- optional header line
//! token v1 v2 ... vD
//! ```
//!
//! The binary format is a little-endian cache written with `bytes`:
//! magic `RETV`, u32 version, and — since version 2 — a u32 CRC-32 over
//! the body, then the body: u32 count, u32 dim, and per entry a u32
//! token length + UTF-8 token + `dim` f32 values. The writer emits
//! version 2; the parser still accepts the unchecksummed version 1 so
//! caches written by earlier builds keep loading.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::embedding::EmbeddingSet;

/// Error for embedding I/O.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FormatError(pub String);

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "embedding format error: {}", self.0)
    }
}
impl std::error::Error for FormatError {}

/// Parse the word2vec text format. A `count dim` header line is detected and
/// skipped automatically. Duplicate tokens keep the first occurrence
/// (matching gensim's behaviour).
pub fn parse_text(input: &str) -> Result<EmbeddingSet, FormatError> {
    let mut tokens: Vec<String> = Vec::new();
    let mut vectors: Vec<Vec<f32>> = Vec::new();
    let mut dim: Option<usize> = None;
    let mut seen = std::collections::HashSet::new();

    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let first = parts.next().ok_or_else(|| FormatError("blank record".into()))?;
        let rest: Vec<&str> = parts.collect();

        // Header detection: exactly two integer fields on the first line.
        if lineno == 0 && rest.len() == 1 {
            if let (Ok(_n), Ok(_d)) = (first.parse::<usize>(), rest[0].parse::<usize>()) {
                continue;
            }
        }

        let vals: Result<Vec<f32>, _> = rest.iter().map(|s| s.parse::<f32>()).collect();
        let vals = vals.map_err(|e| FormatError(format!("line {}: bad float: {e}", lineno + 1)))?;
        match dim {
            None => dim = Some(vals.len()),
            Some(d) if d != vals.len() => {
                return Err(FormatError(format!(
                    "line {}: expected {d} dims, got {}",
                    lineno + 1,
                    vals.len()
                )))
            }
            _ => {}
        }
        if seen.insert(first.to_owned()) {
            tokens.push(first.to_owned());
            vectors.push(vals);
        }
    }
    if tokens.is_empty() {
        return Err(FormatError("no embeddings found".into()));
    }
    Ok(EmbeddingSet::new(tokens, vectors))
}

/// Serialize to the word2vec text format (with header line).
pub fn to_text(set: &EmbeddingSet) -> String {
    let mut out = String::new();
    out.push_str(&format!("{} {}\n", set.len(), set.dim()));
    for (i, token) in set.tokens().iter().enumerate() {
        out.push_str(token);
        for v in set.vector(i) {
            out.push(' ');
            out.push_str(&format!("{v}"));
        }
        out.push('\n');
    }
    out
}

const MAGIC: &[u8; 4] = b"RETV";
/// Current writer version: body checksummed with CRC-32.
const VERSION: u32 = 2;
/// Legacy unchecksummed layout, still accepted by [`parse_binary`].
const VERSION_UNCHECKSUMMED: u32 = 1;

/// CRC-32 (IEEE, reflected polynomial `0xEDB88320`) — the same checksum
/// `retro_store::wal::crc32` computes, duplicated privately because this
/// crate sits below `retro-store` in the dependency graph.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
        }
    }
    !crc
}

/// Serialize to the binary cache format (version 2: checksummed).
pub fn to_binary(set: &EmbeddingSet) -> Bytes {
    let mut body = BytesMut::with_capacity(8 + set.len() * (8 + set.dim() * 4));
    body.put_u32_le(set.len() as u32);
    body.put_u32_le(set.dim() as u32);
    for (i, token) in set.tokens().iter().enumerate() {
        body.put_u32_le(token.len() as u32);
        body.put_slice(token.as_bytes());
        for &v in set.vector(i) {
            body.put_f32_le(v);
        }
    }
    let body = body.freeze();
    let mut buf = BytesMut::with_capacity(body.len() + 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(crc32(&body));
    buf.put_slice(&body);
    buf.freeze()
}

/// Parse the binary cache format. Accepts version 2 (the body's CRC-32
/// is verified before any field is trusted) and the legacy
/// unchecksummed version 1.
pub fn parse_binary(mut data: Bytes) -> Result<EmbeddingSet, FormatError> {
    if data.remaining() < 16 {
        return Err(FormatError("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(FormatError("bad magic".into()));
    }
    let version = data.get_u32_le();
    match version {
        VERSION => {
            if data.remaining() < 12 {
                return Err(FormatError("truncated header".into()));
            }
            let stored = data.get_u32_le();
            if crc32(&data) != stored {
                return Err(FormatError("checksum mismatch".into()));
            }
        }
        VERSION_UNCHECKSUMMED => {}
        other => return Err(FormatError(format!("unsupported version {other}"))),
    }
    let count = data.get_u32_le() as usize;
    let dim = data.get_u32_le() as usize;
    let mut tokens = Vec::with_capacity(count);
    let mut vectors = Vec::with_capacity(count);
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(FormatError("truncated token length".into()));
        }
        let tlen = data.get_u32_le() as usize;
        if data.remaining() < tlen + dim * 4 {
            return Err(FormatError("truncated entry".into()));
        }
        let mut tbuf = vec![0u8; tlen];
        data.copy_to_slice(&mut tbuf);
        let token = String::from_utf8(tbuf).map_err(|e| FormatError(format!("bad utf8: {e}")))?;
        let mut vec = Vec::with_capacity(dim);
        for _ in 0..dim {
            vec.push(data.get_f32_le());
        }
        tokens.push(token);
        vectors.push(vec);
    }
    EmbeddingSet::try_new(tokens, vectors).map_err(|e| FormatError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_text_with_header() {
        let set = parse_text("2 3\nalien 1 0 0\nbrazil 0 1 0\n").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.dim(), 3);
        assert_eq!(set.get("brazil"), Some(&[0.0, 1.0, 0.0][..]));
    }

    #[test]
    fn parse_text_without_header() {
        let set = parse_text("alien 1 0\nbrazil 0 1\n").unwrap();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ragged_dims_rejected() {
        assert!(parse_text("a 1 2\nb 1\n").is_err());
    }

    #[test]
    fn bad_float_rejected() {
        assert!(parse_text("a x y\n").is_err());
        assert!(parse_text("").is_err());
    }

    #[test]
    fn duplicate_tokens_keep_first() {
        let set = parse_text("a 1 0\na 0 1\nb 2 2\n").unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.get("a"), Some(&[1.0, 0.0][..]));
    }

    #[test]
    fn text_round_trip() {
        let set = parse_text("alien 1 -0.5\nbank_account 0.25 1\n").unwrap();
        let text = to_text(&set);
        let set2 = parse_text(&text).unwrap();
        assert_eq!(set2.tokens(), set.tokens());
        assert!(set2.matrix().max_abs_diff(set.matrix()) < 1e-6);
    }

    #[test]
    fn binary_round_trip() {
        let set = parse_text("alien 1 -0.5 3.25\nbrazil 0 1 2\n").unwrap();
        let bin = to_binary(&set);
        let set2 = parse_binary(bin).unwrap();
        assert_eq!(set2.tokens(), set.tokens());
        assert!(set2.matrix().max_abs_diff(set.matrix()) < 1e-7);
    }

    #[test]
    fn binary_rejects_corruption() {
        let set = parse_text("a 1\n").unwrap();
        let bin = to_binary(&set);
        assert!(parse_binary(bin.slice(0..8)).is_err());
        let mut corrupted = bin.to_vec();
        corrupted[0] = b'X';
        assert!(parse_binary(Bytes::from(corrupted)).is_err());
    }

    #[test]
    fn binary_checksum_catches_body_bit_flip() {
        let set = parse_text("alien 1 -0.5\nbrazil 0 1\n").unwrap();
        let bin = to_binary(&set);
        // Flip one bit in every body byte in turn; the checksum must catch
        // each one (a v1 parser would silently accept most of these).
        for pos in 12..bin.len() {
            let mut corrupted = bin.to_vec();
            corrupted[pos] ^= 0x40;
            let err = parse_binary(Bytes::from(corrupted)).unwrap_err();
            assert_eq!(err, FormatError("checksum mismatch".into()), "byte {pos}");
        }
    }

    #[test]
    fn binary_accepts_legacy_unchecksummed_v1() {
        let set = parse_text("alien 1 -0.5\nbrazil 0 1\n").unwrap();
        let v2 = to_binary(&set);
        // Rebuild the v1 layout: same body, version 1, no checksum word.
        let mut v1 = Vec::with_capacity(v2.len() - 4);
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&VERSION_UNCHECKSUMMED.to_le_bytes());
        v1.extend_from_slice(&v2[12..]);
        let parsed = parse_binary(Bytes::from(v1)).unwrap();
        assert_eq!(parsed.tokens(), set.tokens());
        assert!(parsed.matrix().max_abs_diff(set.matrix()) < 1e-7);
    }

    #[test]
    fn binary_rejects_future_version() {
        let set = parse_text("a 1\n").unwrap();
        let mut bin = to_binary(&set).to_vec();
        bin[4..8].copy_from_slice(&9u32.to_le_bytes());
        let err = parse_binary(Bytes::from(bin)).unwrap_err();
        assert_eq!(err, FormatError("unsupported version 9".into()));
    }
}
