//! Synthetic embedding corpus: the reproduction's stand-in for the Google
//! News vectors.
//!
//! A [`LatentSpace`] holds `K` latent *topic* directions in the embedding
//! space. A concept is described by a topic mixture (a length-`K` weight
//! vector); its embedding is the mixture's projection through the topic
//! basis plus Gaussian noise, normalized to unit length. Concepts sharing
//! topics end up close in cosine space — exactly the property the paper's
//! pre-trained embeddings contribute to downstream tasks. The same mixtures
//! also drive the synthetic databases in `retro-datasets`, so textual and
//! relational signal are correlated the way they are in TMDB/Google Play.

use rand::Rng;
use retro_linalg::{vector, Matrix};

use crate::embedding::EmbeddingSet;

/// Draw a standard-normal sample via Box–Muller (keeps us within the
/// sanctioned `rand` crate; `rand_distr` would add a dependency).
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// A random basis of latent topic directions.
#[derive(Clone, Debug)]
pub struct LatentSpace {
    topics: usize,
    dim: usize,
    /// `topics × dim`, unit rows.
    basis: Matrix,
}

impl LatentSpace {
    /// Sample a topic basis with `topics` unit-length random directions in
    /// `dim`-dimensional space.
    pub fn new<R: Rng + ?Sized>(topics: usize, dim: usize, rng: &mut R) -> Self {
        let mut basis = Matrix::from_fn(topics, dim, |_, _| gaussian(rng));
        basis.normalize_rows();
        Self { topics, dim, basis }
    }

    /// Number of topics `K`.
    pub fn topics(&self) -> usize {
        self.topics
    }

    /// Embedding dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The unit direction of topic `k`.
    pub fn topic_direction(&self, k: usize) -> &[f32] {
        self.basis.row(k)
    }

    /// Embed a topic mixture: `normalize(mixtureᵀ · basis + noise·ε)`.
    ///
    /// `noise` is the standard deviation of per-component Gaussian noise
    /// relative to the (unit) signal; `0.3`–`0.6` gives realistically fuzzy
    /// neighbourhoods.
    pub fn embed<R: Rng + ?Sized>(&self, mixture: &[f32], noise: f32, rng: &mut R) -> Vec<f32> {
        assert_eq!(mixture.len(), self.topics, "LatentSpace::embed: mixture length");
        let mut v = vec![0.0f32; self.dim];
        for (k, &w) in mixture.iter().enumerate() {
            if w != 0.0 {
                vector::axpy(w, self.basis.row(k), &mut v);
            }
        }
        vector::normalize(&mut v);
        if noise > 0.0 {
            let scale = noise / (self.dim as f32).sqrt();
            for x in v.iter_mut() {
                *x += scale * gaussian(rng);
            }
            vector::normalize(&mut v);
        }
        v
    }

    /// Convenience: a one-hot mixture for topic `k`.
    pub fn one_hot(&self, k: usize) -> Vec<f32> {
        let mut m = vec![0.0; self.topics];
        m[k] = 1.0;
        m
    }
}

/// Build an [`EmbeddingSet`] from `(token, mixture)` pairs over a latent
/// space, with per-token noise.
pub fn embedding_set_from_mixtures<R: Rng + ?Sized>(
    space: &LatentSpace,
    entries: &[(String, Vec<f32>)],
    noise: f32,
    rng: &mut R,
) -> EmbeddingSet {
    let tokens: Vec<String> = entries.iter().map(|(t, _)| t.clone()).collect();
    let vectors: Vec<Vec<f32>> = entries.iter().map(|(_, m)| space.embed(m, noise, rng)).collect();
    EmbeddingSet::new(tokens, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_has_roughly_standard_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn topic_directions_are_unit() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = LatentSpace::new(5, 32, &mut rng);
        for k in 0..5 {
            assert!((vector::norm(space.topic_direction(k)) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn same_topic_concepts_are_closer_than_different() {
        let mut rng = StdRng::seed_from_u64(3);
        let space = LatentSpace::new(8, 64, &mut rng);
        let m0 = space.one_hot(0);
        let m1 = space.one_hot(1);
        let a = space.embed(&m0, 0.3, &mut rng);
        let b = space.embed(&m0, 0.3, &mut rng);
        let c = space.embed(&m1, 0.3, &mut rng);
        assert!(vector::cosine(&a, &b) > vector::cosine(&a, &c));
    }

    #[test]
    fn embed_is_unit_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let space = LatentSpace::new(4, 16, &mut rng);
        let v = space.embed(&[0.5, 0.5, 0.0, 0.0], 0.5, &mut rng);
        assert!((vector::norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_noise_is_deterministic_projection() {
        let mut rng = StdRng::seed_from_u64(5);
        let space = LatentSpace::new(3, 8, &mut rng);
        let a = space.embed(&[1.0, 0.0, 0.0], 0.0, &mut rng);
        let b = space.embed(&[1.0, 0.0, 0.0], 0.0, &mut rng);
        assert_eq!(a, b);
        assert!(vector::approx_eq(&a, space.topic_direction(0), 1e-6));
    }

    #[test]
    fn embedding_set_from_mixtures_builds_vocabulary() {
        let mut rng = StdRng::seed_from_u64(6);
        let space = LatentSpace::new(3, 8, &mut rng);
        let set = embedding_set_from_mixtures(
            &space,
            &[("alpha".to_owned(), vec![1.0, 0.0, 0.0]), ("beta".to_owned(), vec![0.0, 1.0, 0.0])],
            0.1,
            &mut rng,
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.dim(), 8);
        assert!(set.contains("alpha"));
    }
}
