//! The shared cosine top-`k` selection every nearest-neighbour path runs.
//!
//! [`EmbeddingSet::nearest`](crate::EmbeddingSet::nearest),
//! `RetroOutput::nearest` and the serving layer's snapshot queries all used
//! to rank *every* row with a full `O(n log n)` sort ordered by
//! `partial_cmp(..).unwrap_or(Equal)`. Zero-norm (OOV) rows were safe —
//! [`retro_linalg::vector::cosine`] already clamps them to `0.0` — but a
//! row *containing* `NaN`/`±inf` (a poisoned solve, a corrupt import)
//! produced a `NaN` score that compared `Equal` to everything, so its
//! final rank depended on where the sort happened to leave it, and it
//! could surface as the "top" neighbour.
//!
//! [`top_k_cosine`] replaces all of them with one `O(n log k)` bounded-heap
//! selection over a dot-product scan:
//!
//! * **Scores are never `NaN`.** A zero-norm row (or query) scores exactly
//!   `0.0` — the [`retro_linalg::vector::cosine`] convention — and any
//!   non-finite score is clamped to `0.0`, so degenerate rows sort with
//!   the other "no signal" rows instead of surfacing as the top
//!   neighbour.
//! * **Ordering is total and deterministic**: descending score
//!   ([`f32::total_cmp`]), ties broken by ascending row id. Equal inputs
//!   produce bit-equal rankings on every run and every thread count.
//! * **The scan is the hot loop.** Row norms are precomputed once per
//!   matrix ([`retro_linalg::Matrix::row_norms`]) by every caller that can
//!   cache them, so each query costs one chunked
//!   [`dot_scan`](retro_linalg::Matrix::dot_scan) (row-partitioned across
//!   `threads`) plus a single pass of divisions — no per-row `sqrt`, no
//!   full sort.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use retro_linalg::{vector, Matrix};

/// A scored candidate with the shared total order: higher score wins, ties
/// go to the lower row id.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    score: f32,
    id: usize,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Scores are sanitized to finite values before construction, so
        // `total_cmp` agrees with the usual `<` on everything we ever
        // compare; it is used to make the order total by construction.
        self.score.total_cmp(&other.score).then_with(|| other.id.cmp(&self.id))
    }
}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Candidate {}

/// Sanitize a raw cosine score: zero-norm rows and non-finite values score
/// `0.0` so they can never outrank a real neighbour (and never compare
/// nondeterministically).
#[inline]
fn sanitize(dot: f32, query_norm: f32, row_norm: f32) -> f32 {
    if query_norm <= f32::EPSILON || row_norm <= f32::EPSILON {
        return 0.0;
    }
    let score = dot / (query_norm * row_norm);
    if score.is_finite() {
        score
    } else {
        0.0
    }
}

/// The `k` rows of `matrix` most cosine-similar to `query`, as
/// `(row id, score)` pairs in descending score order (ties by ascending
/// id). Rows for which `exclude` returns `true` are skipped.
///
/// `norms` must be the matrix's row L2 norms
/// ([`Matrix::row_norms`]); callers that query repeatedly cache it.
/// `threads` partitions the dot-product scan; the result is bit-identical
/// for every thread count.
///
/// ```
/// use retro_embed::nn::top_k_cosine;
/// use retro_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[
///     vec![1.0, 0.0],
///     vec![0.0, 0.0], // zero-norm row: scores 0.0, never the top hit
///     vec![0.7, 0.7],
/// ]);
/// let norms = m.row_norms();
/// let top = top_k_cosine(&m, &norms, &[1.0, 0.1], 2, 1, |_| false);
/// assert_eq!(top[0].0, 0);
/// assert_eq!(top[1].0, 2);
/// ```
pub fn top_k_cosine(
    matrix: &Matrix,
    norms: &[f32],
    query: &[f32],
    k: usize,
    threads: usize,
    mut exclude: impl FnMut(usize) -> bool,
) -> Vec<(usize, f32)> {
    assert_eq!(norms.len(), matrix.rows(), "top_k_cosine: norm cache length mismatch");
    if k == 0 || matrix.rows() == 0 {
        return Vec::new();
    }
    let query_norm = vector::norm(query);
    let dots = matrix.dot_scan(query, threads);
    select_top_k(
        dots.iter().enumerate().filter(|&(id, _)| !exclude(id)).map(|(id, &dot)| (id, dot)),
        query_norm,
        norms,
        k,
    )
}

/// [`top_k_cosine`] restricted to an explicit candidate id set — the
/// scoring phase of an ANN probe (`retro_nn::ann`), and the reason the
/// approximate path can never disagree with the exact one on a shared
/// candidate: both run this exact sanitize + total order, and each
/// candidate's dot product is the same chunked [`retro_linalg::vector::dot`]
/// kernel [`Matrix::dot_scan`] applies per row, so scores are bit-equal.
///
/// The result depends only on the candidate *set* (the bounded heap keeps
/// the k best under a total order), so callers may stream ids in any order;
/// duplicate ids must not be passed. Ids must be in range.
///
/// ```
/// use retro_embed::nn::{top_k_cosine, top_k_cosine_among};
/// use retro_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]]);
/// let norms = m.row_norms();
/// // Over all ids, the subset selection IS the exact scan.
/// assert_eq!(
///     top_k_cosine_among(&m, &norms, &[1.0, 0.1], 2, 0..3),
///     top_k_cosine(&m, &norms, &[1.0, 0.1], 2, 1, |_| false),
/// );
/// ```
pub fn top_k_cosine_among(
    matrix: &Matrix,
    norms: &[f32],
    query: &[f32],
    k: usize,
    candidates: impl IntoIterator<Item = usize>,
) -> Vec<(usize, f32)> {
    assert_eq!(norms.len(), matrix.rows(), "top_k_cosine_among: norm cache length mismatch");
    if k == 0 || matrix.rows() == 0 {
        return Vec::new();
    }
    let query_norm = vector::norm(query);
    select_top_k(
        candidates.into_iter().map(|id| (id, vector::dot(matrix.row(id), query))),
        query_norm,
        norms,
        k,
    )
}

/// [`top_k_cosine_among`] over *packed* candidate blocks — the scoring
/// phase of a cache-friendly ANN probe. Each block is `(ids, rows, norms)`
/// where `rows` holds `ids.len()` vectors of `dim` floats back to back and
/// `norms[j]` is the L2 norm of row `ids[j]`; blocks are scanned
/// sequentially, so an inverted list stored contiguously costs streaming
/// reads instead of an `O(candidates)` gather across the full matrix.
///
/// Scores are bit-equal to [`top_k_cosine`] / [`top_k_cosine_among`] on
/// the same candidate set as long as the packed bytes equal the matrix
/// rows: same chunked [`retro_linalg::vector::dot`] kernel, same sanitize,
/// same total order. Rows for which `exclude` returns `true` are skipped
/// (their dot product is never computed). Duplicate ids must not appear
/// across blocks.
pub fn top_k_cosine_blocks<'a>(
    dim: usize,
    query: &[f32],
    k: usize,
    blocks: impl IntoIterator<Item = (&'a [u32], &'a [f32], &'a [f32])>,
    mut exclude: impl FnMut(usize) -> bool,
) -> Vec<(usize, f32)> {
    if k == 0 {
        return Vec::new();
    }
    let query_norm = vector::norm(query);
    let mut top = TopK::new(k);
    for (ids, rows, norms) in blocks {
        debug_assert_eq!(rows.len(), ids.len() * dim, "top_k_cosine_blocks: ragged block");
        debug_assert_eq!(norms.len(), ids.len(), "top_k_cosine_blocks: norm block mismatch");
        for (j, &id) in ids.iter().enumerate() {
            let id = id as usize;
            if exclude(id) {
                continue;
            }
            let dot = vector::dot(&rows[j * dim..(j + 1) * dim], query);
            top.offer(id, sanitize(dot, query_norm, norms[j]));
        }
    }
    top.finish()
}

/// The shared bounded-heap selection over `(id, raw dot)` pairs.
fn select_top_k(
    scored: impl Iterator<Item = (usize, f32)>,
    query_norm: f32,
    norms: &[f32],
    k: usize,
) -> Vec<(usize, f32)> {
    let mut top = TopK::new(k);
    for (id, dot) in scored {
        top.offer(id, sanitize(dot, query_norm, norms[id]));
    }
    top.finish()
}

/// Bounded min-heap of the `k` best candidates seen so far: `Reverse` puts
/// the *worst* kept candidate at the top for `O(log k)` eviction. Every
/// selection path funnels through this one struct, so the ranking
/// semantics cannot fork.
struct TopK {
    heap: BinaryHeap<std::cmp::Reverse<Candidate>>,
    k: usize,
}

impl TopK {
    fn new(k: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(k + 1), k }
    }

    /// Offer one sanitized-score candidate.
    fn offer(&mut self, id: usize, score: f32) {
        let cand = Candidate { score, id };
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(cand));
        } else if cand > self.heap.peek().expect("heap is full").0 {
            self.heap.pop();
            self.heap.push(std::cmp::Reverse(cand));
        }
    }

    /// The kept candidates in descending score order (ties by ascending
    /// id).
    fn finish(self) -> Vec<(usize, f32)> {
        let mut out: Vec<Candidate> = self.heap.into_iter().map(|r| r.0).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        out.into_iter().map(|c| (c.id, c.score)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.7, 0.7],
            vec![0.0, 0.0], // zero-norm (OOV) row
            vec![-1.0, 0.0],
        ])
    }

    #[test]
    fn ranks_by_cosine_descending() {
        let m = matrix();
        let norms = m.row_norms();
        let top = top_k_cosine(&m, &norms, &[1.0, 0.1], 5, 1, |_| false);
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].0, 0);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "scores must be non-increasing: {top:?}");
        }
        assert_eq!(top[4].0, 4, "the anti-parallel row must rank last");
    }

    #[test]
    fn zero_norm_rows_score_zero_and_never_win() {
        let m = matrix();
        let norms = m.row_norms();
        let top = top_k_cosine(&m, &norms, &[1.0, 0.0], 5, 1, |_| false);
        let oov = top.iter().find(|&&(id, _)| id == 3).expect("zero row present");
        assert_eq!(oov.1, 0.0);
        assert_ne!(top[0].0, 3, "a zero-norm row must never be the top neighbour");
        // Zero-norm query: everything scores 0.0, order falls back to id.
        let all_zero = top_k_cosine(&m, &norms, &[0.0, 0.0], 5, 1, |_| false);
        assert!(all_zero.iter().all(|&(_, s)| s == 0.0));
        assert_eq!(all_zero.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nan_rows_are_clamped_not_ranked_first() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![f32::NAN, f32::NAN], // poisoned row
            vec![0.9, 0.1],
        ]);
        let norms = m.row_norms();
        let top = top_k_cosine(&m, &norms, &[1.0, 0.0], 3, 1, |_| false);
        assert_eq!(top[0].0, 0);
        let poisoned = top.iter().find(|&&(id, _)| id == 1).expect("present");
        assert_eq!(poisoned.1, 0.0, "NaN scores must be clamped to 0.0");
        assert!(top.iter().all(|&(_, s)| s.is_finite()));
    }

    #[test]
    fn bounded_heap_matches_full_sort() {
        let m = Matrix::from_fn(101, 7, |r, c| ((r * 13 + c * 5) as f32 * 0.29).sin());
        let norms = m.row_norms();
        let query: Vec<f32> = (0..7).map(|i| (i as f32 * 0.41).cos()).collect();
        // Reference: sanitize + full sort with the same total order.
        let qn = vector::norm(&query);
        let mut reference: Vec<(usize, f32)> = (0..m.rows())
            .map(|i| (i, sanitize(vector::dot(m.row(i), &query), qn, norms[i])))
            .collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for k in [0usize, 1, 10, 101, 500] {
            let top = top_k_cosine(&m, &norms, &query, k, 1, |_| false);
            assert_eq!(top, reference[..k.min(101)].to_vec(), "k = {k}");
        }
    }

    #[test]
    fn among_matches_full_scan_and_is_order_independent() {
        let m = Matrix::from_fn(57, 6, |r, c| ((r * 11 + c * 5) as f32 * 0.23).sin());
        let norms = m.row_norms();
        let query: Vec<f32> = (0..6).map(|i| (i as f32 * 0.31).cos()).collect();
        let full = top_k_cosine(&m, &norms, &query, 8, 1, |_| false);
        assert_eq!(top_k_cosine_among(&m, &norms, &query, 8, 0..m.rows()), full);
        // Reversed streaming order: same set in, same ranking out.
        assert_eq!(top_k_cosine_among(&m, &norms, &query, 8, (0..m.rows()).rev()), full);
        // A strict subset only ever loses candidates, never reorders the
        // survivors.
        let subset: Vec<usize> = (0..m.rows()).filter(|i| i % 2 == 0).collect();
        let among = top_k_cosine_among(&m, &norms, &query, 8, subset.iter().copied());
        let expected: Vec<_> = full.iter().copied().filter(|&(id, _)| id % 2 == 0).collect();
        assert_eq!(&among[..expected.len().min(among.len())], &expected[..]);
    }

    #[test]
    fn blocks_match_among_bit_for_bit() {
        let m = Matrix::from_fn(90, 5, |r, c| ((r * 7 + c * 11) as f32 * 0.19).sin());
        let norms = m.row_norms();
        let query: Vec<f32> = (0..5).map(|i| (i as f32 * 0.53).cos()).collect();
        // Pack the rows into two blocks (evens, odds).
        let mut blocks: Vec<(Vec<u32>, Vec<f32>, Vec<f32>)> = Vec::new();
        for parity in 0..2u32 {
            let ids: Vec<u32> = (0..90u32).filter(|i| i % 2 == parity).collect();
            let mut rows = Vec::new();
            let mut block_norms = Vec::new();
            for &id in &ids {
                rows.extend_from_slice(m.row(id as usize));
                block_norms.push(norms[id as usize]);
            }
            blocks.push((ids, rows, block_norms));
        }
        let view = || blocks.iter().map(|(i, r, n)| (i.as_slice(), r.as_slice(), n.as_slice()));
        let packed = top_k_cosine_blocks(5, &query, 8, view(), |_| false);
        assert_eq!(packed, top_k_cosine_among(&m, &norms, &query, 8, 0..90));
        // Exclusion skips rows entirely; k = 0 short-circuits.
        let tail = top_k_cosine_blocks(5, &query, 8, view(), |id| id < 40);
        assert!(!tail.is_empty() && tail.iter().all(|&(id, _)| id >= 40));
        assert!(top_k_cosine_blocks(5, &query, 0, view(), |_| false).is_empty());
    }

    #[test]
    fn exclusion_and_thread_counts_are_invariant() {
        let m = Matrix::from_fn(64, 9, |r, c| ((r * 7 + c * 3) as f32 * 0.17).cos());
        let norms = m.row_norms();
        let query = m.row(5).to_vec();
        let serial = top_k_cosine(&m, &norms, &query, 10, 1, |i| i == 5);
        assert!(serial.iter().all(|&(id, _)| id != 5));
        for threads in [2usize, 4, 8] {
            let parallel = top_k_cosine(&m, &norms, &query, 10, threads, |i| i == 5);
            assert_eq!(serial, parallel, "top-k diverged at {threads} threads");
        }
    }
}
