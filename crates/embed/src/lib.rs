//! # retro-embed
//!
//! Word-embedding substrate: storage, lookup, tokenization and a synthetic
//! embedding corpus.
//!
//! The paper uses the 300-dimensional Google News word2vec vectors as the
//! base embedding `W0`. This crate provides:
//!
//! * [`EmbeddingSet`] — an immutable token → vector store (cached row
//!   norms, fallible [`EmbeddingSet::try_new`] construction) with cosine
//!   nearest-neighbour queries,
//! * [`nn`] — the shared bounded-heap top-`k` cosine selection every
//!   nearest-neighbour path in the workspace runs (deterministic,
//!   `NaN`-free, thread-count invariant),
//! * [`text_format`] — the standard word2vec *text* format (`token v1 … vD`
//!   per line) plus a compact binary format (via `bytes`) for caching,
//! * [`Tokenizer`] — the §3.1 trie-based longest-match tokenizer that maps a
//!   database text value to a bag of dictionary phrases and averages their
//!   vectors; values with no in-vocabulary token get the null vector (the
//!   OOV convention RETRO relies on),
//! * [`synthetic`] — a latent-topic generator producing embedding sets whose
//!   geometry encodes controllable semantics; this substitutes for the
//!   proprietary Google News vectors in the reproduction (see DESIGN.md).

pub mod embedding;
pub mod nn;
pub mod synthetic;
pub mod text_format;
pub mod tokenizer;
pub mod trie;

pub use embedding::{EmbeddingError, EmbeddingSet};
pub use tokenizer::{TokenizedValue, Tokenizer};
pub use trie::Trie;
