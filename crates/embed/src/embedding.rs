//! Token → vector storage with similarity queries.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use retro_linalg::{vector, Matrix};

use crate::nn;
use crate::tokenizer::Tokenizer;

/// Construction errors for [`EmbeddingSet`].
///
/// Before these existed, a malformed input either panicked
/// ([`EmbeddingSet::new`] still does, for infallible construction sites
/// like tests and generators) or — worse — could silently desynchronize
/// the token→id index from the matrix: a duplicate token overwriting the
/// earlier id would leave both rows in the matrix while `len()`, `id()`
/// and `nearest()` disagree about what exists. [`EmbeddingSet::try_new`]
/// rejects every such input with a typed error instead.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EmbeddingError {
    /// `tokens` and `vectors` have different lengths.
    CountMismatch {
        /// Number of tokens supplied.
        tokens: usize,
        /// Number of vectors supplied.
        vectors: usize,
    },
    /// A vector's length differs from the first vector's.
    RaggedVector {
        /// Index of the offending vector.
        index: usize,
        /// Expected dimensionality (from the first vector).
        expected: usize,
        /// Actual length of the offending vector.
        got: usize,
    },
    /// The same token appears twice; keeping both would desynchronize the
    /// token→id index from the matrix rows.
    DuplicateToken(String),
}

impl std::fmt::Display for EmbeddingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmbeddingError::CountMismatch { tokens, vectors } => {
                write!(f, "token/vector count mismatch ({tokens} tokens, {vectors} vectors)")
            }
            EmbeddingError::RaggedVector { index, expected, got } => {
                write!(f, "ragged vector at index {index} (expected dim {expected}, got {got})")
            }
            EmbeddingError::DuplicateToken(t) => write!(f, "duplicate token `{t}`"),
        }
    }
}
impl std::error::Error for EmbeddingError {}

/// An immutable set of word/phrase embeddings.
///
/// Tokens are stored in insertion order; phrases use spaces between words
/// (the tokenizer normalizes `_`/`-` to spaces before lookup). Row L2
/// norms are cached at construction so cosine [`EmbeddingSet::nearest`]
/// queries are a dot-product scan, not a per-row renormalization.
#[derive(Clone, Debug)]
pub struct EmbeddingSet {
    dim: usize,
    tokens: Vec<String>,
    index: HashMap<String, usize>,
    matrix: Matrix,
    /// Cached L2 norm of every row, maintained with `matrix`.
    norms: Vec<f32>,
    /// Lazily-built segmentation trie over the vocabulary
    /// ([`EmbeddingSet::tokenizer`]). The set is immutable after
    /// construction, so the cache can never go stale; building it costs
    /// `O(vocabulary)`, which matters to callers that tokenize per refresh.
    tokenizer: OnceLock<Arc<Tokenizer>>,
}

impl EmbeddingSet {
    /// Build from parallel token/vector lists.
    ///
    /// # Panics
    /// Panics on any [`EmbeddingError`]: count mismatch, ragged vectors, or
    /// a repeated token. Use [`EmbeddingSet::try_new`] to handle malformed
    /// input (e.g. parsed files) gracefully.
    pub fn new(tokens: Vec<String>, vectors: Vec<Vec<f32>>) -> Self {
        Self::try_new(tokens, vectors).unwrap_or_else(|e| panic!("EmbeddingSet: {e}"))
    }

    /// Build from parallel token/vector lists, rejecting malformed input.
    ///
    /// Every invariant the set relies on is checked up front — equal
    /// token/vector counts, rectangular vectors, unique tokens — so a
    /// constructed set can never have `len()`, `id()` and `nearest()`
    /// disagree about which rows exist.
    ///
    /// ```
    /// use retro_embed::embedding::{EmbeddingError, EmbeddingSet};
    ///
    /// let err = EmbeddingSet::try_new(
    ///     vec!["a".into(), "a".into()],
    ///     vec![vec![1.0], vec![2.0]],
    /// )
    /// .unwrap_err();
    /// assert_eq!(err, EmbeddingError::DuplicateToken("a".into()));
    /// ```
    pub fn try_new(tokens: Vec<String>, vectors: Vec<Vec<f32>>) -> Result<Self, EmbeddingError> {
        if tokens.len() != vectors.len() {
            return Err(EmbeddingError::CountMismatch {
                tokens: tokens.len(),
                vectors: vectors.len(),
            });
        }
        let dim = vectors.first().map_or(0, Vec::len);
        if let Some((index, v)) = vectors.iter().enumerate().find(|(_, v)| v.len() != dim) {
            return Err(EmbeddingError::RaggedVector { index, expected: dim, got: v.len() });
        }
        let mut index = HashMap::with_capacity(tokens.len());
        for (i, t) in tokens.iter().enumerate() {
            if index.insert(t.clone(), i).is_some() {
                return Err(EmbeddingError::DuplicateToken(t.clone()));
            }
        }
        let matrix = Matrix::from_rows(&vectors);
        let norms = matrix.row_norms();
        Ok(Self { dim, tokens, index, matrix, norms, tokenizer: OnceLock::new() })
    }

    /// An empty set with the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self {
            dim,
            tokens: Vec::new(),
            index: HashMap::new(),
            matrix: Matrix::zeros(0, dim),
            norms: Vec::new(),
            tokenizer: OnceLock::new(),
        }
    }

    /// The segmentation tokenizer over this vocabulary, built on first use
    /// and shared by every subsequent caller. A delta-scoped refresh
    /// tokenizes a handful of new values per refresh — rebuilding the
    /// `O(vocabulary)` trie each time would dwarf the actual work.
    pub fn tokenizer(&self) -> Arc<Tokenizer> {
        Arc::clone(self.tokenizer.get_or_init(|| Arc::new(Tokenizer::new(self))))
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are stored.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The id of `token`, if present.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// True when `token` is in the vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.index.contains_key(token)
    }

    /// The token with the given id.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The vector for `token`.
    pub fn get(&self, token: &str) -> Option<&[f32]> {
        self.id(token).map(|i| self.matrix.row(i))
    }

    /// The vector with the given id.
    pub fn vector(&self, id: usize) -> &[f32] {
        self.matrix.row(id)
    }

    /// The full embedding matrix (rows in id order).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// The cached L2 norm of every row, in id order.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// The `k` tokens most cosine-similar to `query` (the query token itself
    /// is not excluded unless `exclude` names it).
    ///
    /// Runs the shared [`nn::top_k_cosine`] selection: `O(n log k)`,
    /// deterministic (ties broken by insertion order), and zero-norm/`NaN`
    /// rows score `0.0` instead of ranking nondeterministically.
    pub fn nearest(&self, query: &[f32], k: usize, exclude: Option<&str>) -> Vec<(String, f32)> {
        let excluded = exclude.and_then(|t| self.id(t));
        nn::top_k_cosine(&self.matrix, &self.norms, query, k, 1, |i| Some(i) == excluded)
            .into_iter()
            .map(|(i, s)| (self.tokens[i].clone(), s))
            .collect()
    }

    /// Cosine similarity between two stored tokens (`None` if either is OOV).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        Some(vector::cosine(self.get(a)?, self.get(b)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmbeddingSet {
        EmbeddingSet::new(
            vec!["alien".into(), "brazil".into(), "bank account".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]],
        )
    }

    #[test]
    fn lookup_by_token_and_id() {
        let e = sample();
        assert_eq!(e.dim(), 2);
        assert_eq!(e.len(), 3);
        assert_eq!(e.id("brazil"), Some(1));
        assert_eq!(e.get("alien"), Some(&[1.0, 0.0][..]));
        assert_eq!(e.token(2), "bank account");
        assert!(e.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate token")]
    fn duplicate_tokens_rejected() {
        EmbeddingSet::new(vec!["a".into(), "a".into()], vec![vec![1.0], vec![2.0]]);
    }

    #[test]
    fn try_new_rejects_malformed_input_with_typed_errors() {
        // Duplicate token: would desynchronize the token→id map (2 matrix
        // rows, 1 index entry) — every accessor must agree, so reject.
        let err = EmbeddingSet::try_new(
            vec!["a".into(), "b".into(), "a".into()],
            vec![vec![1.0], vec![2.0], vec![3.0]],
        )
        .unwrap_err();
        assert_eq!(err, EmbeddingError::DuplicateToken("a".into()));

        let err = EmbeddingSet::try_new(vec!["a".into()], vec![vec![1.0], vec![2.0]]).unwrap_err();
        assert_eq!(err, EmbeddingError::CountMismatch { tokens: 1, vectors: 2 });

        let err =
            EmbeddingSet::try_new(vec!["a".into(), "b".into()], vec![vec![1.0, 2.0], vec![3.0]])
                .unwrap_err();
        assert_eq!(err, EmbeddingError::RaggedVector { index: 1, expected: 2, got: 1 });
    }

    #[test]
    fn accepted_sets_keep_index_and_matrix_in_sync() {
        let e = EmbeddingSet::try_new(
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0]],
        )
        .unwrap();
        assert_eq!(e.len(), e.matrix().rows());
        assert_eq!(e.len(), e.norms().len());
        for (i, t) in e.tokens().iter().enumerate() {
            assert_eq!(e.id(t), Some(i));
        }
    }

    #[test]
    fn norms_are_cached_at_construction() {
        let e = sample();
        for (i, &n) in e.norms().iter().enumerate() {
            assert_eq!(n, vector::norm(e.vector(i)));
        }
    }

    #[test]
    fn zero_vector_scores_zero_and_sorts_deterministically() {
        let e = EmbeddingSet::new(
            vec!["alien".into(), "oov".into(), "brazil".into()],
            vec![vec![1.0, 0.0], vec![0.0, 0.0], vec![0.6, 0.8]],
        );
        let nn = e.nearest(&[1.0, 0.0], 3, None);
        assert_eq!(nn[0].0, "alien");
        let oov = nn.iter().find(|(t, _)| t == "oov").expect("zero vector listed");
        assert_eq!(oov.1, 0.0, "a zero-norm row must score exactly 0.0");
        assert_ne!(nn[0].0, "oov", "a zero-norm row must never surface as top neighbour");
        // Deterministic: repeated queries give the identical ranking.
        for _ in 0..8 {
            assert_eq!(e.nearest(&[1.0, 0.0], 3, None), nn);
        }
    }

    #[test]
    fn nearest_ranks_by_cosine() {
        let e = sample();
        let nn = e.nearest(&[1.0, 0.1], 2, None);
        assert_eq!(nn[0].0, "alien");
        assert!(nn[0].1 > nn[1].1);
    }

    #[test]
    fn nearest_respects_exclude() {
        let e = sample();
        let nn = e.nearest(e.get("alien").unwrap(), 1, Some("alien"));
        assert_ne!(nn[0].0, "alien");
    }

    #[test]
    fn similarity_between_tokens() {
        let e = sample();
        assert!(e.similarity("alien", "brazil").unwrap().abs() < 1e-6);
        assert!(e.similarity("alien", "missing").is_none());
    }

    #[test]
    fn empty_set_behaves() {
        let e = EmbeddingSet::empty(4);
        assert!(e.is_empty());
        assert!(e.nearest(&[1.0, 0.0, 0.0, 0.0], 3, None).is_empty());
    }
}
