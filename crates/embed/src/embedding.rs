//! Token → vector storage with similarity queries.

use std::collections::HashMap;

use retro_linalg::{vector, Matrix};

/// An immutable set of word/phrase embeddings.
///
/// Tokens are stored in insertion order; phrases use spaces between words
/// (the tokenizer normalizes `_`/`-` to spaces before lookup).
#[derive(Clone, Debug)]
pub struct EmbeddingSet {
    dim: usize,
    tokens: Vec<String>,
    index: HashMap<String, usize>,
    matrix: Matrix,
}

impl EmbeddingSet {
    /// Build from parallel token/vector lists.
    ///
    /// # Panics
    /// Panics if vectors are ragged or a token repeats.
    pub fn new(tokens: Vec<String>, vectors: Vec<Vec<f32>>) -> Self {
        assert_eq!(tokens.len(), vectors.len(), "EmbeddingSet: token/vector count mismatch");
        let dim = vectors.first().map_or(0, Vec::len);
        let matrix = Matrix::from_rows(&vectors);
        let mut index = HashMap::with_capacity(tokens.len());
        for (i, t) in tokens.iter().enumerate() {
            let prev = index.insert(t.clone(), i);
            assert!(prev.is_none(), "EmbeddingSet: duplicate token `{t}`");
        }
        Self { dim, tokens, index, matrix }
    }

    /// An empty set with the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Self { dim, tokens: Vec::new(), index: HashMap::new(), matrix: Matrix::zeros(0, dim) }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when no tokens are stored.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The id of `token`, if present.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// True when `token` is in the vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.index.contains_key(token)
    }

    /// The token with the given id.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// All tokens in id order.
    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    /// The vector for `token`.
    pub fn get(&self, token: &str) -> Option<&[f32]> {
        self.id(token).map(|i| self.matrix.row(i))
    }

    /// The vector with the given id.
    pub fn vector(&self, id: usize) -> &[f32] {
        self.matrix.row(id)
    }

    /// The full embedding matrix (rows in id order).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// The `k` tokens most cosine-similar to `query` (the query token itself
    /// is not excluded unless `exclude` names it).
    pub fn nearest(&self, query: &[f32], k: usize, exclude: Option<&str>) -> Vec<(String, f32)> {
        let mut scored: Vec<(usize, f32)> = (0..self.tokens.len())
            .filter(|&i| exclude != Some(self.tokens[i].as_str()))
            .map(|i| (i, vector::cosine(query, self.matrix.row(i))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().take(k).map(|(i, s)| (self.tokens[i].clone(), s)).collect()
    }

    /// Cosine similarity between two stored tokens (`None` if either is OOV).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        Some(vector::cosine(self.get(a)?, self.get(b)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EmbeddingSet {
        EmbeddingSet::new(
            vec!["alien".into(), "brazil".into(), "bank account".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.7]],
        )
    }

    #[test]
    fn lookup_by_token_and_id() {
        let e = sample();
        assert_eq!(e.dim(), 2);
        assert_eq!(e.len(), 3);
        assert_eq!(e.id("brazil"), Some(1));
        assert_eq!(e.get("alien"), Some(&[1.0, 0.0][..]));
        assert_eq!(e.token(2), "bank account");
        assert!(e.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate token")]
    fn duplicate_tokens_rejected() {
        EmbeddingSet::new(vec!["a".into(), "a".into()], vec![vec![1.0], vec![2.0]]);
    }

    #[test]
    fn nearest_ranks_by_cosine() {
        let e = sample();
        let nn = e.nearest(&[1.0, 0.1], 2, None);
        assert_eq!(nn[0].0, "alien");
        assert!(nn[0].1 > nn[1].1);
    }

    #[test]
    fn nearest_respects_exclude() {
        let e = sample();
        let nn = e.nearest(e.get("alien").unwrap(), 1, Some("alien"));
        assert_ne!(nn[0].0, "alien");
    }

    #[test]
    fn similarity_between_tokens() {
        let e = sample();
        assert!(e.similarity("alien", "brazil").unwrap().abs() < 1e-6);
        assert!(e.similarity("alien", "missing").is_none());
    }

    #[test]
    fn empty_set_behaves() {
        let e = EmbeddingSet::empty(4);
        assert!(e.is_empty());
        assert!(e.nearest(&[1.0, 0.0, 0.0, 0.0], 3, None).is_empty());
    }
}
