//! Sparse-vs-dense adjacency application: the solvers apply the relation
//! operator as `CSR × dense`; this ablation shows why a dense `n × n`
//! operator (the obvious matrix-form reading of Eq. 10) is not viable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_linalg::{CooMatrix, Matrix};

fn build_operator(n: usize, degree: usize, dim: usize) -> (CooMatrix, Matrix) {
    let mut coo = CooMatrix::new(n, n);
    // Deterministic pseudo-random sparse pattern.
    let mut state = 0x5eed_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as usize
    };
    for i in 0..n {
        for _ in 0..degree {
            coo.push(i, next() % n, 0.3);
        }
    }
    let w = Matrix::from_fn(n, dim, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1 - 0.6);
    (coo, w)
}

fn bench_adjacency(c: &mut Criterion) {
    let dim = 32;
    let mut group = c.benchmark_group("adjacency_apply");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let (coo, w) = build_operator(n, 8, dim);
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        group.bench_function(BenchmarkId::new("csr", n), |b| b.iter(|| csr.mul_dense(&w)));
        group.bench_function(BenchmarkId::new("dense", n), |b| b.iter(|| dense.matmul(&w)));
    }
    group.finish();
}

criterion_group!(benches, bench_adjacency);
criterion_main!(benches);
