//! Thread-scaling of the RN solver: serial vs scoped-thread row-partitioned
//! iteration (bit-identical results, see `solver::parallel`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_core::solver::{solve_rn, solve_rn_parallel};
use retro_core::{Hyperparameters, RetrofitProblem};
use retro_datasets::{TmdbConfig, TmdbDataset};

fn bench_parallel(c: &mut Criterion) {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 600, dim: 64, ..TmdbConfig::default() });
    let problem = RetrofitProblem::build(&data.db, &data.base, &[], &[]);
    let params = Hyperparameters::paper_rn();

    let mut group = c.benchmark_group("rn_parallel_scaling");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("serial", problem.len()), |b| {
        b.iter(|| solve_rn(&problem, &params, 10))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new(format!("threads_{threads}"), problem.len()), |b| {
            b.iter(|| solve_rn_parallel(&problem, &params, 10, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
