//! Thread-scaling of the RN **and RO** solvers: serial vs scoped-thread
//! row-partitioned iteration (bit-identical results for every thread count,
//! see `solver::parallel`).
//!
//! By default the benchmark runs at the `Small` preset so `cargo bench`
//! stays quick. Set `RETRO_PAPER_SCALE=1` to measure at the paper's real
//! TMDB cardinality (~493k text values) — the size the ISSUE acceptance
//! numbers refer to; expect minutes per measurement on few cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_core::solver::{solve_rn, solve_rn_parallel, solve_ro, solve_ro_parallel};
use retro_core::{Hyperparameters, RetrofitProblem};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};

fn build_problem() -> (RetrofitProblem, &'static str) {
    let (preset, tag) = if std::env::var_os("RETRO_PAPER_SCALE").is_some() {
        (SizePreset::Paper, "paper")
    } else {
        (SizePreset::Small, "small")
    };
    let data = TmdbDataset::generate(TmdbConfig::preset(preset));
    (RetrofitProblem::build(&data.db, &data.base, &[], &[]), tag)
}

fn bench_parallel(c: &mut Criterion) {
    let (problem, tag) = build_problem();

    let params = Hyperparameters::paper_rn();
    let mut group = c.benchmark_group(format!("rn_parallel_scaling/{tag}"));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("serial", problem.len()), |b| {
        b.iter(|| solve_rn(&problem, &params, 10))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new(format!("threads_{threads}"), problem.len()), |b| {
            b.iter(|| solve_rn_parallel(&problem, &params, 10, threads))
        });
    }
    group.finish();

    let params = Hyperparameters::paper_ro();
    let mut group = c.benchmark_group(format!("ro_parallel_scaling/{tag}"));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("serial", problem.len()), |b| {
        b.iter(|| solve_ro(&problem, &params, 10))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new(format!("threads_{threads}"), problem.len()), |b| {
            b.iter(|| solve_ro_parallel(&problem, &params, 10, threads))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
