//! Tokenizer ablation: trie longest-match segmentation (§3.1) vs a naive
//! per-word lookup. The trie finds multi-word phrases ("bank account") the
//! naive tokenizer misses, at modest extra cost.

use criterion::{criterion_group, criterion_main, Criterion};
use retro_datasets::{TmdbConfig, TmdbDataset};
use retro_embed::tokenizer::normalize_words;
use retro_embed::Tokenizer;

fn bench_tokenize(c: &mut Criterion) {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 300, dim: 16, ..TmdbConfig::default() });
    let tokenizer = Tokenizer::new(&data.base);
    // Realistic inputs: every overview in the dataset.
    let movies = data.db.table("movies").expect("movies");
    let over_col = movies.schema().column_index("overview").expect("overview");
    let texts: Vec<String> =
        movies.rows().iter().filter_map(|r| r[over_col].as_text().map(str::to_owned)).collect();

    let mut group = c.benchmark_group("tokenize");
    group.bench_function("trie_longest_match", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for t in &texts {
                matched += tokenizer.tokenize(t).phrase_ids.len();
            }
            matched
        })
    });
    group.bench_function("naive_word_lookup", |b| {
        b.iter(|| {
            let mut matched = 0usize;
            for t in &texts {
                for w in normalize_words(t) {
                    if data.base.contains(&w) {
                        matched += 1;
                    }
                }
            }
            matched
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tokenize);
criterion_main!(benches);
