//! The RN solver hot loops: serial vs multi-threaded `RnKernel` iteration
//! (bit-identical results for every thread count, see `solver::rn`), a
//! seeded warm-start solve, and the chunked `retro_linalg::vector` kernels
//! the solvers' inner loops are built from.
//!
//! By default the benchmark runs at the `Small` preset so `cargo bench`
//! stays quick. Set `RETRO_PAPER_SCALE=1` to measure at the paper's real
//! TMDB cardinality (~493k text values) — the size the README
//! "Performance" numbers refer to; expect minutes per measurement on few
//! cores.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_core::solver::{solve_rn, solve_rn_parallel, solve_rn_seeded};
use retro_core::{Hyperparameters, RetrofitProblem};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};
use retro_linalg::vector;

fn build_problem() -> (RetrofitProblem, &'static str) {
    let (preset, tag) = if std::env::var_os("RETRO_PAPER_SCALE").is_some() {
        (SizePreset::Paper, "paper")
    } else {
        (SizePreset::Small, "small")
    };
    let data = TmdbDataset::generate(TmdbConfig::preset(preset));
    (RetrofitProblem::build(&data.db, &data.base, &[], &[]), tag)
}

fn bench_rn_kernel(c: &mut Criterion) {
    let (problem, tag) = build_problem();
    let params = Hyperparameters::paper_rn();

    let mut group = c.benchmark_group(format!("rn_kernel/{tag}"));
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("serial", problem.len()), |b| {
        b.iter(|| solve_rn(&problem, &params, 10))
    });
    for threads in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new(format!("threads_{threads}"), problem.len()), |b| {
            b.iter(|| solve_rn_parallel(&problem, &params, 10, threads))
        });
    }
    // Warm start: the incremental-maintenance shape — few iterations from
    // an already-converged seed.
    let warm = solve_rn(&problem, &params, 10);
    group.bench_function(BenchmarkId::new("seeded_refresh", problem.len()), |b| {
        b.iter(|| solve_rn_seeded(&problem, &params, 3, Some(&warm)))
    });
    group.finish();
}

fn bench_chunked_vector_kernels(c: &mut Criterion) {
    // dim 64 is the profile dimension (an exact multiple of LANES); 67
    // exercises the scalar tail.
    for dim in [64usize, 67] {
        let mut group = c.benchmark_group(format!("chunked_vector_kernels/dim_{dim}"));
        let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let mut y: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.71).cos()).collect();
        group.bench_function("dot", |b| b.iter(|| vector::dot(&x, &y)));
        // The mutating kernels must stay numerically stable across millions
        // of criterion iterations: axpy alternates ±alpha (net zero drift),
        // scale alternates reciprocal factors (net ×1), and normalize runs
        // on an already-unit vector (a fixed point that still executes the
        // full norm + scaling path).
        group.bench_function("axpy", |b| {
            let mut sign = 1.0f32;
            b.iter(|| {
                vector::axpy(sign * 0.5, &x, &mut y);
                sign = -sign;
            });
        });
        group.bench_function("scale", |b| {
            let mut up = true;
            b.iter(|| {
                vector::scale(if up { 1.25 } else { 0.8 }, &mut y);
                up = !up;
            });
        });
        group.bench_function("normalize", |b| {
            vector::normalize(&mut y);
            b.iter(|| vector::normalize(&mut y));
        });
        group.finish();
    }
}

criterion_group!(benches, bench_rn_kernel, bench_chunked_vector_kernels);
criterion_main!(benches);
