//! Durability-path microbench (`docs/DURABILITY.md`): what the write-ahead
//! log costs on the mutation hot path, and what recovery costs on restart.
//!
//! Four shapes: row-by-row inserts ephemeral vs durable (per-commit WAL
//! append overhead), a bulk batch on a durable database (one `Batch`
//! record carrying every row — the log's write-bandwidth cost), snapshot
//! write (`checkpoint`), and the two recovery paths — replay from the log
//! alone vs loading a compacted snapshot. The recovery pair is the
//! motivation for compaction: replay scales with history, snapshot load
//! with live state.
//!
//! `tests/recovery_equivalence.rs` and `tests/wal_faults.rs` pin that the
//! durable and ephemeral paths produce identical state, so the deltas here
//! are pure logging cost. Set `RETRO_PAPER_SCALE=1` for a larger row count.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_store::{DataType, Database, TableSchema, Value};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per use (no tempfile crate in-tree); callers
/// remove it when done.
fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!(
        "retro_wal_append_bench_{}_{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn schema(db: &mut Database) {
    db.create_table(
        TableSchema::builder("events").pk("id").column("payload", DataType::Text).build(),
    )
    .expect("fresh database");
}

fn row(i: usize) -> Vec<Value> {
    vec![Value::Int(i as i64), Value::from(format!("event payload number {i}"))]
}

fn insert_all(db: &mut Database, n: usize) {
    for i in 0..n {
        db.insert("events", row(i)).expect("valid row");
    }
}

fn bench_wal(c: &mut Criterion) {
    let n: usize = if std::env::var_os("RETRO_PAPER_SCALE").is_some() { 8_192 } else { 512 };
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);

    // Baseline: the same inserts with no log anywhere.
    group.bench_function(BenchmarkId::new("insert_ephemeral", n), |b| {
        b.iter(|| {
            let mut db = Database::new();
            schema(&mut db);
            insert_all(&mut db, n);
            db
        })
    });

    // Durable row-by-row: one WAL record appended and flushed per commit.
    // Directory setup/teardown runs inside the timed loop (the shimmed
    // criterion has no `iter_batched`), a fixed cost amortized over `n`
    // inserts.
    group.bench_function(BenchmarkId::new("insert_durable", n), |b| {
        b.iter(|| {
            let dir = scratch();
            let mut db = Database::open(&dir).expect("scratch dir is writable");
            schema(&mut db);
            insert_all(&mut db, n);
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        })
    });

    // Durable bulk batch: all rows in one all-or-nothing commit, logged as
    // a single `Batch` record — the log's large-write bandwidth.
    group.bench_function(BenchmarkId::new("bulk_commit_durable", n), |b| {
        b.iter(|| {
            let dir = scratch();
            let mut db = Database::open(&dir).expect("scratch dir is writable");
            schema(&mut db);
            let mut loader = db.bulk();
            let events = loader.table("events").expect("present");
            loader.reserve(events, n);
            for i in 0..n {
                loader.stage(events, row(i)).expect("valid row");
            }
            loader.commit().expect("all stages succeeded");
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        })
    });

    // Snapshot write: the first iteration compacts the n-record log; later
    // iterations re-serialize the same state onto an empty log, which is
    // the steady-state checkpoint cost.
    let checkpoint_dir = scratch();
    let mut checkpointed = Database::open(&checkpoint_dir).expect("scratch dir is writable");
    schema(&mut checkpointed);
    insert_all(&mut checkpointed, n);
    group.bench_function(BenchmarkId::new("checkpoint", n), |b| {
        b.iter(|| checkpointed.checkpoint().expect("durable"))
    });

    // Recovery, replay path: no snapshot, every mutation re-applied from
    // the log through the normal constraint-checked engine.
    let replay_dir = scratch();
    {
        let mut db = Database::open(&replay_dir).expect("scratch dir is writable");
        schema(&mut db);
        insert_all(&mut db, n);
    }
    group.bench_function(BenchmarkId::new("recover_replay", n), |b| {
        b.iter(|| Database::recover(&replay_dir).expect("intact log"))
    });

    // Recovery, snapshot path: the same state behind a compacted log —
    // a straight deserialize, no replay.
    let snapshot_dir = scratch();
    {
        let mut db = Database::open(&snapshot_dir).expect("scratch dir is writable");
        schema(&mut db);
        insert_all(&mut db, n);
        db.checkpoint().expect("durable");
    }
    group.bench_function(BenchmarkId::new("recover_snapshot", n), |b| {
        b.iter(|| Database::recover(&snapshot_dir).expect("intact snapshot"))
    });

    group.finish();
    drop(checkpointed);
    for dir in [checkpoint_dir, replay_dir, snapshot_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
