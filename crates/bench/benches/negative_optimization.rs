//! Ablation of the §4.5 negative-term optimization: the Eq. 15
//! centroid-based RO solver vs the naive `Ẽr` enumeration of Eq. 10.
//! Numerically identical outputs; asymptotically different cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_core::solver::{solve_ro, solve_ro_enumerated};
use retro_core::{Hyperparameters, RetrofitProblem};
use retro_datasets::{TmdbConfig, TmdbDataset};

fn bench_negative_term(c: &mut Criterion) {
    let params = Hyperparameters::paper_ro();
    let mut group = c.benchmark_group("ro_negative_term");
    group.sample_size(10);
    for n_movies in [50usize, 100, 200] {
        let data = TmdbDataset::generate(TmdbConfig { n_movies, dim: 32, ..TmdbConfig::default() });
        let problem = RetrofitProblem::build(&data.db, &data.base, &[], &[]);
        group.bench_function(BenchmarkId::new("optimized_eq15", problem.len()), |b| {
            b.iter(|| solve_ro(&problem, &params, 5))
        });
        group.bench_function(BenchmarkId::new("enumerated_eq10", problem.len()), |b| {
            b.iter(|| solve_ro_enumerated(&problem, &params, 5))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_negative_term);
criterion_main!(benches);
