//! Snapshot query-path microbenches for `retro_core::serve`: the shared
//! bounded-heap top-k selection (`retro_embed::nn::top_k_cosine`) over a
//! precomputed norm cache at several scan widths, the pre-PR full-sort
//! ranking it replaced, and a warm-start `EmbeddingService::refresh`.
//!
//! By default the benchmark runs at the `Small` preset so `cargo bench`
//! stays quick. Set `RETRO_PAPER_SCALE=1` to measure at the paper's real
//! TMDB cardinality (~493k text values) — where the `O(n log n)` sort vs
//! `O(n log k)` selection gap actually matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_core::serve::EmbeddingService;
use retro_core::{Hyperparameters, RetroConfig};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};
use retro_embed::nn;
use retro_linalg::vector;
use retro_store::SharedDatabase;

fn preset() -> (SizePreset, &'static str) {
    if std::env::var_os("RETRO_PAPER_SCALE").is_some() {
        (SizePreset::Paper, "paper")
    } else {
        (SizePreset::Small, "small")
    }
}

fn bench_serve_queries(c: &mut Criterion) {
    let (preset, tag) = preset();
    let data = TmdbDataset::generate(TmdbConfig::preset(preset));
    let shared = SharedDatabase::new(data.db.clone());

    let mut group = c.benchmark_group(format!("serve_queries/{tag}"));
    group.sample_size(10);

    // ONE retrofit serves every scan width: the thread count only changes
    // the query partition, never the solver output (`start` runs a full
    // solve — minutes at paper scale — so no redundant construction). The
    // 1-thread case goes through the `Snapshot::nearest` API; the wider
    // scans call the shared helper on the same snapshot data.
    let config = RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(1))
        .with_iterations(3);
    let service = EmbeddingService::start(shared.clone(), data.base.clone(), config).unwrap();
    let snapshot = service.snapshot();
    let query = snapshot.output().embeddings.row(0).to_vec();
    group.bench_function(BenchmarkId::new("nearest_threads_1", snapshot.len()), |b| {
        b.iter(|| snapshot.nearest(&query, 10))
    });
    for threads in [2usize, 4] {
        group.bench_function(
            BenchmarkId::new(format!("nearest_threads_{threads}"), snapshot.len()),
            |b| {
                b.iter(|| {
                    nn::top_k_cosine(
                        &snapshot.output().embeddings,
                        snapshot.norms(),
                        &query,
                        10,
                        threads,
                        |_| false,
                    )
                })
            },
        );
    }

    // The ranking every `nearest` ran before the shared top-k helper:
    // cosine per row (no norm cache) + full O(n log n) sort.
    group.bench_function(BenchmarkId::new("full_sort_baseline", snapshot.len()), |b| {
        b.iter(|| {
            let m = &snapshot.output().embeddings;
            let mut scored: Vec<(usize, f32)> =
                (0..m.rows()).map(|i| (i, vector::cosine(&query, m.row(i)))).collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(10);
            scored
        })
    });

    // Warm-start refresh: extract under the read guard + short re-solve +
    // snapshot swap — the write-side cost a serving deployment pays.
    group.bench_function(BenchmarkId::new("refresh", snapshot.len()), |b| {
        b.iter(|| service.refresh().unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_serve_queries);
criterion_main!(benches);
