//! Snapshot query-path microbenches for `retro_core::serve`: the shared
//! bounded-heap top-k selection (`retro_embed::nn::top_k_cosine`) over a
//! precomputed norm cache at several scan widths, the IVF-flat ANN path at
//! several probe depths, the pre-PR full-sort ranking both replaced, and a
//! warm-start `EmbeddingService::refresh`.
//!
//! Besides the criterion timings, the bench measures the speed/quality
//! trade-off directly — queries/second AND recall@10 against the exact
//! oracle for every mode — and writes it to `results/serve_queries.json`
//! (`retro_bench::write_report`), so the BENCH artifact captures both axes
//! from this PR onward.
//!
//! By default the benchmark runs at the `Small` preset so `cargo bench`
//! stays quick. Set `RETRO_PAPER_SCALE=1` to measure at the paper's real
//! TMDB cardinality (~493k text values) — where the sub-linear probe scan
//! vs the `O(n)` exact scan actually matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_bench::ReportRow;
use retro_core::serve::{EmbeddingService, SearchMode, Snapshot};
use retro_core::{Hyperparameters, RetroConfig};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};
use retro_embed::nn;
use retro_linalg::vector;
use retro_store::SharedDatabase;

fn preset() -> (SizePreset, &'static str) {
    if std::env::var_os("RETRO_PAPER_SCALE").is_some() {
        (SizePreset::Paper, "paper")
    } else {
        (SizePreset::Small, "small")
    }
}

/// `cargo test` runs harness-free benches once with `--test`: keep the
/// custom measurement loop to a smoke test there.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Mean wall-clock queries/second and recall@10 vs the exact oracle for
/// one search mode over a query panel.
fn qps_and_recall(
    snapshot: &Snapshot,
    queries: &[Vec<f32>],
    oracle: &[Vec<(usize, f32)>],
    mode: SearchMode,
) -> (f64, f64) {
    let mut overlap = 0usize;
    let mut denom = 0usize;
    let (_, secs) = retro_bench::time(|| {
        for (query, exact) in queries.iter().zip(oracle) {
            let got = snapshot.nearest(query, 10, mode);
            overlap += got.iter().filter(|(id, _)| exact.iter().any(|(e, _)| e == id)).count();
            denom += exact.len();
        }
    });
    (queries.len() as f64 / secs.max(1e-12), overlap as f64 / denom.max(1) as f64)
}

fn bench_serve_queries(c: &mut Criterion) {
    let (preset, tag) = preset();
    let data = TmdbDataset::generate(TmdbConfig::preset(preset));
    let shared = SharedDatabase::new(data.db.clone());

    let mut group = c.benchmark_group(format!("serve_queries/{tag}"));
    group.sample_size(10);

    // ONE retrofit serves every scan width: the thread count only changes
    // the query partition, never the solver output (`start` runs a full
    // solve — minutes at paper scale — so no redundant construction). The
    // 1-thread case goes through the `Snapshot::nearest` API; the wider
    // scans call the shared helper on the same snapshot data.
    let config = RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(1))
        .with_iterations(3);
    let service = EmbeddingService::start(shared.clone(), data.base.clone(), config).unwrap();
    let snapshot = service.snapshot();
    let query = snapshot.output().embeddings.row(0).to_vec();
    group.bench_function(BenchmarkId::new("nearest_threads_1", snapshot.len()), |b| {
        b.iter(|| snapshot.nearest(&query, 10, SearchMode::Exact))
    });
    for threads in [2usize, 4] {
        group.bench_function(
            BenchmarkId::new(format!("nearest_threads_{threads}"), snapshot.len()),
            |b| {
                b.iter(|| {
                    nn::top_k_cosine(
                        &snapshot.output().embeddings,
                        snapshot.norms(),
                        &query,
                        10,
                        threads,
                        |_| false,
                    )
                })
            },
        );
    }

    // The ANN path: a narrow sweep (nlist/16 — half the serving default)
    // and the serving default (nlist/8).
    let default_probes = snapshot.default_probes();
    let narrow_probes = (snapshot.index().nlist() / 16).max(1).min(default_probes);
    let mut probe_sweep = vec![narrow_probes, default_probes];
    probe_sweep.dedup();
    for probes in probe_sweep.iter().copied() {
        group.bench_function(
            BenchmarkId::new(format!("nearest_ann_probes_{probes}"), snapshot.len()),
            |b| b.iter(|| snapshot.nearest(&query, 10, SearchMode::Approx { probes })),
        );
    }

    // The ranking every `nearest` ran before the shared top-k helper:
    // cosine per row (no norm cache) + full O(n log n) sort.
    group.bench_function(BenchmarkId::new("full_sort_baseline", snapshot.len()), |b| {
        b.iter(|| {
            let m = &snapshot.output().embeddings;
            let mut scored: Vec<(usize, f32)> =
                (0..m.rows()).map(|i| (i, vector::cosine(&query, m.row(i)))).collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            scored.truncate(10);
            scored
        })
    });

    // Warm-start refresh: extract under the read guard + short re-solve +
    // snapshot swap — the write-side cost a serving deployment pays.
    group.bench_function(BenchmarkId::new("refresh", snapshot.len()), |b| {
        b.iter(|| service.refresh().unwrap())
    });

    group.finish();

    // Speed/quality report: q/s and recall@10 per mode, over a panel of
    // stored-row queries spread across the catalog, against the exact
    // oracle. Written to results/serve_queries.json.
    let panel = if test_mode() { 4 } else { 200.min(snapshot.len()) };
    let stride = (snapshot.len() / panel.max(1)).max(1);
    let queries: Vec<Vec<f32>> =
        (0..panel).map(|i| snapshot.output().embeddings.row(i * stride).to_vec()).collect();
    let oracle: Vec<Vec<(usize, f32)>> =
        queries.iter().map(|q| snapshot.nearest(q, 10, SearchMode::Exact)).collect();

    let mut rows = Vec::new();
    let (exact_qps, exact_recall) = qps_and_recall(&snapshot, &queries, &oracle, SearchMode::Exact);
    rows.push(ReportRow::from_samples("exact/qps", &[exact_qps]));
    rows.push(ReportRow::from_samples("exact/recall@10", &[exact_recall]));
    for probes in probe_sweep {
        let (qps, recall) =
            qps_and_recall(&snapshot, &queries, &oracle, SearchMode::Approx { probes });
        rows.push(ReportRow::from_samples(format!("ann_probes_{probes}/qps"), &[qps]));
        rows.push(ReportRow::from_samples(format!("ann_probes_{probes}/recall@10"), &[recall]));
        println!(
            "serve_queries/{tag}: ann probes={probes} -> {qps:.0} q/s ({:.1}x exact), \
             recall@10 {recall:.4}",
            qps / exact_qps.max(1e-12)
        );
    }
    let path = retro_bench::write_report(
        "serve_queries",
        &format!("snapshot kNN speed/quality ({tag}, n={})", snapshot.len()),
        &rows,
    );
    println!("serve_queries/{tag}: report written to {}", path.display());
}

criterion_group!(benches, bench_serve_queries);
criterion_main!(benches);
