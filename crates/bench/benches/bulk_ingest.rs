//! Ingest-path microbench: row-by-row `Database::insert` vs the batched
//! `BulkLoader` fast path vs CSV import, loading the full Small-preset TMDB
//! dataset (~9.4k rows across 15 tables, every constraint enforced).
//!
//! The two engine paths produce bit-identical databases
//! (`tests/ingestion_equivalence.rs` pins this), so the delta is pure
//! bookkeeping: per-row string-keyed table lookups and foreign-key name
//! resolution, which the loader amortizes to once per batch. Set
//! `RETRO_PAPER_SCALE=1` to measure at the paper's TMDB cardinality
//! (~1.7M rows) — the size the ISSUE acceptance numbers refer to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_bench::{materialize_rows, schema_only_clone};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};
use retro_store::{csv, Database, Value};

/// The generated source database plus an empty schema-only copy and a
/// dependency-ordered table list (parents before children).
struct Fixture {
    db: Database,
    schema_only: Database,
    order: Vec<String>,
    tag: &'static str,
}

fn fixture() -> Fixture {
    let (preset, tag) = if std::env::var_os("RETRO_PAPER_SCALE").is_some() {
        (SizePreset::Paper, "paper")
    } else {
        (SizePreset::Small, "small")
    };
    let db = TmdbDataset::generate(TmdbConfig::preset(preset)).db;
    let (schema_only, order) = schema_only_clone(&db);
    Fixture { db, schema_only, order, tag }
}

/// Clone every row out of the source. The shimmed criterion has no
/// `iter_batched`, so this clone runs *inside* both timed loops — the cost
/// is identical on each side, which makes the reported row-by-row vs bulk
/// ratio a conservative lower bound on the engine speedup.
/// `paper_scale_profile` materializes outside its timed region and reports
/// the isolated engine numbers.
fn batch(f: &Fixture) -> Vec<(String, Vec<Vec<Value>>)> {
    materialize_rows(&f.db, &f.order)
}

fn bench_ingest(c: &mut Criterion) {
    let f = fixture();
    let n_rows: usize = f.db.tables().map(retro_store::Table::len).sum();

    let mut group = c.benchmark_group(format!("bulk_ingest/{}", f.tag));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("row_by_row", n_rows), |b| {
        b.iter(|| {
            let rows = batch(&f);
            let mut out = f.schema_only.clone();
            for (name, rows) in rows {
                for row in rows {
                    out.insert(&name, row).expect("valid row");
                }
            }
            out
        })
    });

    group.bench_function(BenchmarkId::new("bulk_loader", n_rows), |b| {
        b.iter(|| {
            let rows = batch(&f);
            let mut out = f.schema_only.clone();
            let mut loader = out.bulk();
            for (name, rows) in rows {
                let handle = loader.table(&name).expect("present");
                loader.reserve(handle, rows.len());
                for row in rows {
                    loader.stage(handle, row).expect("valid row");
                }
            }
            loader.commit().expect("all stages succeeded");
            out
        })
    });

    // CSV end-to-end (serialize once, untimed; parse + constraint-checked
    // import per iteration) for the biggest entity table.
    let movies_csv = csv::export_csv(f.db.table("movies").expect("present"));
    group.bench_function(
        BenchmarkId::new(
            "csv_import_movies",
            f.db.table("movies").map(retro_store::Table::len).unwrap_or(0),
        ),
        |b| {
            b.iter(|| {
                let mut out = f.schema_only.clone();
                csv::import_csv(&mut out, "movies", &movies_csv).expect("valid csv");
                out
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
