//! Solver microbenchmarks: MF vs RO vs RN per-solve cost on a fixed
//! problem — the ablation behind Table 2's ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use retro_core::solver::{solve_mf, solve_rn, solve_ro};
use retro_core::{Hyperparameters, RetrofitProblem};
use retro_datasets::{TmdbConfig, TmdbDataset};

fn bench_solvers(c: &mut Criterion) {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 200, dim: 32, ..TmdbConfig::default() });
    let problem = RetrofitProblem::build(&data.db, &data.base, &[], &[]);
    let ro_params = Hyperparameters::paper_ro();
    let rn_params = Hyperparameters::paper_rn();

    let mut group = c.benchmark_group("retrofit_solvers");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("mf", problem.len()), |b| {
        b.iter(|| solve_mf(&problem, 20))
    });
    group.bench_function(BenchmarkId::new("ro", problem.len()), |b| {
        b.iter(|| solve_ro(&problem, &ro_params, 10))
    });
    group.bench_function(BenchmarkId::new("rn", problem.len()), |b| {
        b.iter(|| solve_rn(&problem, &rn_params, 10))
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
