//! SQL access-path microbench: the cost-based planner's index paths vs
//! forced full scans on the same statements (`docs/QUERY_PLANNING.md`).
//!
//! Three shapes over the generated TMDB database, each timed under
//! `PlanMode::Planned` (pk lookups, secondary-index probes, re-ordered
//! joins) and `PlanMode::ForceScan` (declared-order hash joins, no index
//! access) — `tests/index_equivalence.rs` pins that the two return
//! bit-identical rows, so the delta is pure access-path cost:
//!
//! * **point lookup** — `WHERE id = k` on `movies` (pk hash vs scan);
//! * **indexed equality** — `WHERE title = '…'` through a declared
//!   secondary index vs the same predicate as a filter;
//! * **fk join** — genre → link table → movies, driven by the FK
//!   auto-indexes vs hash joins in declared order.
//!
//! Defaults to the Small preset so `cargo bench` stays quick. Set
//! `RETRO_PAPER_SCALE=1` to measure at the paper's real TMDB cardinality
//! (~1.7M rows) — the size the ISSUE acceptance numbers refer to.

use criterion::{criterion_group, criterion_main, Criterion};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};
use retro_store::sql::{self, PlanMode, Statement};
use retro_store::{Database, Value};

struct Fixture {
    db: Database,
    tag: &'static str,
    /// An existing movie pk, title and genre name to probe for.
    movie_id: i64,
    title: String,
    genre: String,
}

fn fixture() -> Fixture {
    let (preset, tag) = if std::env::var_os("RETRO_PAPER_SCALE").is_some() {
        (SizePreset::Paper, "paper")
    } else {
        (SizePreset::Small, "small")
    };
    let mut db = TmdbDataset::generate(TmdbConfig::preset(preset)).db;
    assert!(db.create_index("movies", "title").expect("text column"));

    let pick = |db: &Database, table: &str, col: usize| -> Value {
        let t = db.table(table).expect("generated");
        t.rows()[t.len() / 2][col].clone()
    };
    let Value::Int(movie_id) = pick(&db, "movies", 0) else { panic!("int pk") };
    let Value::Text(title) = pick(&db, "movies", 1) else { panic!("text title") };
    let Value::Text(genre) = pick(&db, "genres", 1) else { panic!("text genre") };
    Fixture { db, tag, movie_id, title, genre }
}

/// Parse once; execution is the measured region.
fn parse(text: &str) -> Statement {
    sql::parse_statement(text).expect("valid statement")
}

fn bench_sql(c: &mut Criterion) {
    let mut f = fixture();
    let point = parse(&format!("SELECT title, popularity FROM movies WHERE id = {}", f.movie_id));
    let eq = parse(&format!(
        "SELECT id, original_language FROM movies WHERE title = '{}'",
        f.title.replace('\'', "")
    ));
    let join = parse(&format!(
        "SELECT m.title FROM genres g \
         JOIN movie_genre mg ON mg.movie_genre_ref = g.id \
         JOIN movies m ON mg.movie_id = m.id \
         WHERE g.name = '{}'",
        f.genre.replace('\'', "")
    ));

    let mut group = c.benchmark_group(format!("sql_queries/{}", f.tag));
    group.sample_size(20);
    for (name, stmt) in [("point_lookup", &point), ("indexed_eq", &eq), ("fk_join", &join)] {
        for (mode_tag, mode) in [("planned", PlanMode::Planned), ("scan", PlanMode::ForceScan)] {
            group.bench_function(format!("{name}/{mode_tag}"), |b| {
                b.iter(|| {
                    let r = sql::execute_with(&mut f.db, stmt, mode).expect("valid query");
                    assert!(!r.columns.is_empty());
                    r
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sql);
criterion_main!(benches);
