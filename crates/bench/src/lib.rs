//! # retro-bench
//!
//! The experiment-reproduction harness: shared helpers used by the
//! `table*`/`fig*` binaries (one per table/figure of the paper's
//! evaluation) and the criterion microbenches.

pub mod grid;
pub mod scan_extract;

use std::time::Instant;

use retro_eval::{EmbeddingKind, EmbeddingSuite};
use retro_linalg::stats::Summary;
use retro_linalg::Matrix;
use serde::Serialize;

/// Wall-clock one closure, returning `(result, seconds)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// An empty database with `db`'s schemas, plus the creation order that made
/// them valid: parents before children (`create_table` refuses a child
/// before its parents exist), found by fixed-point retries. Loading tables
/// one at a time in the returned order never sees a dangling foreign key —
/// the shape the ingest benchmarks (`paper_scale_profile`, `bulk_ingest`)
/// need.
pub fn schema_only_clone(db: &retro_store::Database) -> (retro_store::Database, Vec<String>) {
    let mut out = retro_store::Database::new();
    let mut order = Vec::new();
    let mut remaining: Vec<_> = db.tables().map(|t| t.schema().clone()).collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|schema| {
            let failed = out.create_table(schema.clone()).is_err();
            if !failed {
                order.push(schema.name.clone());
            }
            failed
        });
        assert!(remaining.len() < before, "foreign-key cycle in schema set");
    }
    (out, order)
}

/// Clone every row of `db` into plain per-table vectors following `order`
/// — the pre-materialized input shape both ingest paths consume, so timed
/// regions can exclude (or at least share identically) the clone cost.
pub fn materialize_rows(
    db: &retro_store::Database,
    order: &[String],
) -> Vec<(String, Vec<Vec<retro_store::Value>>)> {
    order
        .iter()
        .map(|name| {
            let table = db.table(name).expect("order comes from this database");
            (name.clone(), table.rows().to_vec())
        })
        .collect()
}

/// Gather the embedding rows of the labelled directors: `(inputs, labels)`.
///
/// Directors missing from the catalog (none, in practice) are skipped so
/// inputs and labels stay aligned.
pub fn director_task_inputs(
    suite: &EmbeddingSuite,
    kind: EmbeddingKind,
    labels: &[(String, bool)],
) -> (Matrix, Vec<bool>) {
    let matrix = suite.matrix(kind);
    let mut rows = Vec::with_capacity(labels.len());
    let mut ys = Vec::with_capacity(labels.len());
    for (name, is_us) in labels {
        if let Some(id) = suite.catalog.lookup("persons", "name", name) {
            rows.push(matrix.row(id).to_vec());
            ys.push(*is_us);
        }
    }
    (Matrix::from_rows(&rows), ys)
}

/// Gather `(inputs, labels)` for movie-title-keyed tasks (language
/// imputation, budget regression). `titles[i]` must be the title of movie
/// `i`; labels are carried along for titles found in the catalog.
pub fn movie_task_inputs<L: Clone>(
    suite: &EmbeddingSuite,
    kind: EmbeddingKind,
    titles: &[String],
    labels: &[L],
) -> (Matrix, Vec<L>) {
    assert_eq!(titles.len(), labels.len(), "movie_task_inputs: title/label mismatch");
    let matrix = suite.matrix(kind);
    let mut rows = Vec::with_capacity(titles.len());
    let mut ys = Vec::with_capacity(titles.len());
    for (title, label) in titles.iter().zip(labels) {
        if let Some(id) = suite.catalog.lookup("movies", "title", title) {
            rows.push(matrix.row(id).to_vec());
            ys.push(label.clone());
        }
    }
    (Matrix::from_rows(&rows), ys)
}

/// One row of an experiment report.
#[derive(Clone, Debug, Serialize)]
pub struct ReportRow {
    /// Series label (embedding kind, method name, parameter setting, …).
    pub label: String,
    /// Mean of the metric over repetitions.
    pub mean: f64,
    /// Standard deviation over repetitions.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of repetitions.
    pub n: usize,
}

impl ReportRow {
    /// Summarize a sample set under a label.
    pub fn from_samples(label: impl Into<String>, samples: &[f64]) -> Self {
        let s = Summary::of(samples);
        Self {
            label: label.into(),
            mean: s.mean,
            std_dev: s.std_dev,
            min: s.min,
            max: s.max,
            n: s.n,
        }
    }
}

/// Print a report as an aligned text table (the shape the paper's figures
/// report: method, mean ± deviation).
pub fn print_report(title: &str, metric: &str, rows: &[ReportRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>12} {:>4}",
        "method", metric, "+/-", "min", "max", "n"
    );
    for row in rows {
        println!(
            "{:<10} {:>14.4} {:>12.4} {:>12.4} {:>12.4} {:>4}",
            row.label, row.mean, row.std_dev, row.min, row.max, row.n
        );
    }
}

/// Serialize a report to JSON.
pub fn report_json(title: &str, rows: &[ReportRow]) -> String {
    #[derive(Serialize)]
    struct Doc<'a> {
        title: &'a str,
        rows: &'a [ReportRow],
    }
    serde_json::to_string_pretty(&Doc { title, rows }).expect("report serialization")
}

/// Write a JSON report under the workspace root's `results/` (created on
/// demand), returning the path — the machine-readable artifacts
/// EXPERIMENTS.md references. Anchored at the workspace root rather than
/// the CWD because criterion benches run with the *package* directory as
/// CWD while the experiment binaries run from the repo root.
pub fn write_report(name: &str, title: &str, rows: &[ReportRow]) -> std::path::PathBuf {
    let dir = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, report_json(title, rows)).expect("write report");
    path
}

/// Parse `--flag value` style options from `std::env::args` with defaults —
/// just enough CLI for the experiment binaries without a dependency.
pub fn arg_value(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == format!("--{name}") {
            return pair[1].clone();
        }
    }
    default.to_owned()
}

/// Parse a numeric `--flag value` option.
pub fn arg_num<T: std::str::FromStr>(name: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == format!("--{name}") {
            if let Ok(v) = pair[1].parse() {
                return v;
            }
        }
    }
    default
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_row_summarizes() {
        let row = ReportRow::from_samples("RN", &[0.9, 0.8, 1.0]);
        assert!((row.mean - 0.9).abs() < 1e-12);
        assert_eq!(row.n, 3);
        assert_eq!(row.min, 0.8);
    }

    #[test]
    fn report_json_is_valid() {
        let rows = vec![ReportRow::from_samples("PV", &[0.5])];
        let json = report_json("test", &rows);
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["rows"][0]["label"], "PV");
    }

    #[test]
    fn time_measures_positive_duration() {
        let (value, secs) = time(|| 21 * 2);
        assert_eq!(value, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn arg_helpers_fall_back_to_defaults() {
        assert_eq!(arg_value("no-such-flag", "dflt"), "dflt");
        assert_eq!(arg_num::<usize>("no-such-flag", 7), 7);
    }
}
