//! The pre-index extraction baseline, preserved for comparison.
//!
//! Before the store grew secondary indexes and the catalog grew
//! per-category interning maps, extraction resolved every text cell
//! through a `(category, String)`-keyed map — one key allocation per
//! probe — and relation extraction re-hashed the referenced row's text
//! once per *referencing* row. `paper_scale_profile` times this routine
//! against [`retro_core::TextValueCatalog::extract`] +
//! [`retro_core::relations::extract_relations`] and asserts the two
//! produce bit-identical catalogs and groups, so the reported speedup is
//! pure access-path cost (same rows, same ids, same edges).

use std::collections::HashMap;

use retro_core::relations::{RelationGroup, RelationKind};
use retro_store::Database;

/// What the scan baseline extracts: the same ids and edges the indexed
/// path produces, in plain vectors for comparison.
pub struct ScanExtraction {
    /// `(table, column)` per category, in id order.
    pub categories: Vec<(String, String)>,
    /// `(category id, text)` per value, in id order.
    pub values: Vec<(u32, String)>,
    /// All relation groups, in extraction order.
    pub groups: Vec<RelationGroup>,
}

/// Full-database extraction the way the seed engine did it: tuple-keyed
/// maps, an owned-`String` allocation per probe, and per-referencing-row
/// target lookups.
pub fn extract_scan(db: &Database) -> ScanExtraction {
    // ── Catalog: (category, String)-keyed interning ───────────────────
    let mut categories: Vec<(String, String)> = Vec::new();
    let mut values: Vec<(u32, String)> = Vec::new();
    let mut index: HashMap<(u32, String), u32> = HashMap::new();
    for table in db.tables() {
        let schema = table.schema();
        for col_idx in schema.text_columns() {
            let cat = categories.len() as u32;
            categories.push((schema.name.clone(), schema.columns[col_idx].name.clone()));
            for value in table.column_values(col_idx) {
                if let Some(text) = value.as_text() {
                    let key = (cat, text.to_owned());
                    if !index.contains_key(&key) {
                        let id = values.len() as u32;
                        values.push((cat, text.to_owned()));
                        index.insert(key, id);
                    }
                }
            }
        }
    }
    let category_id = |table: &str, column: &str| -> Option<u32> {
        categories.iter().position(|(t, c)| t == table && c == column).map(|i| i as u32)
    };
    let lookup = |index: &HashMap<(u32, String), u32>, cat: u32, text: &str| -> Option<u32> {
        index.get(&(cat, text.to_owned())).copied()
    };

    // ── Relations: same traversal as `extract_relations`, scan probes ──
    let mut groups: Vec<RelationGroup> = Vec::new();
    let push = |groups: &mut Vec<RelationGroup>, g: RelationGroup| {
        if !g.is_empty() {
            groups.push(g);
        }
    };
    for table in db.tables() {
        let schema = table.schema();
        let text_cols = schema.text_columns();

        for (ai, &a) in text_cols.iter().enumerate() {
            for &b in &text_cols[ai + 1..] {
                let (Some(cat_a), Some(cat_b)) = (
                    category_id(&schema.name, &schema.columns[a].name),
                    category_id(&schema.name, &schema.columns[b].name),
                ) else {
                    continue;
                };
                let mut edges = Vec::new();
                for row in table.rows() {
                    if let (Some(ta), Some(tb)) = (row[a].as_text(), row[b].as_text()) {
                        if let (Some(i), Some(j)) =
                            (lookup(&index, cat_a, ta), lookup(&index, cat_b, tb))
                        {
                            edges.push((i, j));
                        }
                    }
                }
                push(
                    &mut groups,
                    RelationGroup::new(
                        format!(
                            "{}.{}~{}.{}",
                            schema.name,
                            schema.columns[a].name,
                            schema.name,
                            schema.columns[b].name
                        ),
                        cat_a,
                        cat_b,
                        RelationKind::RowWise,
                        edges,
                    ),
                );
            }
        }

        if schema.is_link_table() {
            let fks = &schema.foreign_keys;
            for (fi, fk_a) in fks.iter().enumerate() {
                for fk_b in &fks[fi + 1..] {
                    let (Ok(table_a), Ok(table_b)) =
                        (db.table(&fk_a.ref_table), db.table(&fk_b.ref_table))
                    else {
                        continue;
                    };
                    let col_a = schema.column_index(&fk_a.column).expect("fk validated");
                    let col_b = schema.column_index(&fk_b.column).expect("fk validated");
                    let (Some(ta), Some(tb)) = (
                        table_a.schema().text_columns().first().copied(),
                        table_b.schema().text_columns().first().copied(),
                    ) else {
                        continue;
                    };
                    let (Some(cat_a), Some(cat_b)) = (
                        category_id(&fk_a.ref_table, &table_a.schema().columns[ta].name),
                        category_id(&fk_b.ref_table, &table_b.schema().columns[tb].name),
                    ) else {
                        continue;
                    };
                    let mut edges = Vec::new();
                    for row in table.rows() {
                        let (Some(ka), Some(kb)) = (row[col_a].as_int(), row[col_b].as_int())
                        else {
                            continue;
                        };
                        let (Some(row_a), Some(row_b)) =
                            (table_a.row_by_pk(ka), table_b.row_by_pk(kb))
                        else {
                            continue;
                        };
                        if let (Some(sa), Some(sb)) = (row_a[ta].as_text(), row_b[tb].as_text()) {
                            if let (Some(i), Some(j)) =
                                (lookup(&index, cat_a, sa), lookup(&index, cat_b, sb))
                            {
                                edges.push((i, j));
                            }
                        }
                    }
                    push(
                        &mut groups,
                        RelationGroup::new(
                            format!(
                                "{}.{}~{}.{} (via {})",
                                fk_a.ref_table,
                                table_a.schema().columns[ta].name,
                                fk_b.ref_table,
                                table_b.schema().columns[tb].name,
                                schema.name
                            ),
                            cat_a,
                            cat_b,
                            RelationKind::ManyToMany,
                            edges,
                        ),
                    );
                }
            }
        } else {
            for fk in &schema.foreign_keys {
                let Ok(ref_table) = db.table(&fk.ref_table) else { continue };
                let ref_schema = ref_table.schema();
                let fk_col = schema.column_index(&fk.column).expect("fk validated");
                if let (Some(&a), Some(b)) =
                    (text_cols.first(), ref_schema.text_columns().first().copied())
                {
                    let (Some(cat_a), Some(cat_b)) = (
                        category_id(&schema.name, &schema.columns[a].name),
                        category_id(&ref_schema.name, &ref_schema.columns[b].name),
                    ) else {
                        continue;
                    };
                    let mut edges = Vec::new();
                    for row in table.rows() {
                        let Some(key) = row[fk_col].as_int() else { continue };
                        let Some(target_row) = ref_table.row_by_pk(key) else { continue };
                        if let (Some(ta), Some(tb)) = (row[a].as_text(), target_row[b].as_text()) {
                            if let (Some(i), Some(j)) =
                                (lookup(&index, cat_a, ta), lookup(&index, cat_b, tb))
                            {
                                edges.push((i, j));
                            }
                        }
                    }
                    push(
                        &mut groups,
                        RelationGroup::new(
                            format!(
                                "{}.{}~{}.{}",
                                schema.name,
                                schema.columns[a].name,
                                ref_schema.name,
                                ref_schema.columns[b].name
                            ),
                            cat_a,
                            cat_b,
                            RelationKind::ForeignKey,
                            edges,
                        ),
                    );
                }
            }
        }
    }

    ScanExtraction { categories, values, groups }
}

/// Assert the indexed extraction reproduced the scan baseline exactly:
/// same categories, same value ids, same groups edge-for-edge.
pub fn assert_matches(
    scan: &ScanExtraction,
    catalog: &retro_core::TextValueCatalog,
    groups: &[RelationGroup],
) {
    assert_eq!(scan.categories.len(), catalog.category_count(), "category count diverged");
    for (id, cat) in catalog.categories().iter().enumerate() {
        assert_eq!(
            scan.categories[id],
            (cat.table.clone(), cat.column.clone()),
            "category {id} diverged"
        );
    }
    assert_eq!(scan.values.len(), catalog.len(), "value count diverged");
    for (id, cat, text) in catalog.iter() {
        assert_eq!(scan.values[id].0, cat, "value {id} category diverged");
        assert_eq!(scan.values[id].1, text, "value {id} text diverged");
    }
    assert_eq!(scan.groups.len(), groups.len(), "group count diverged");
    for (s, g) in scan.groups.iter().zip(groups) {
        assert_eq!(s.name, g.name, "group name diverged");
        assert_eq!(s.kind, g.kind, "group {} kind diverged", g.name);
        assert_eq!(s.source_category, g.source_category, "group {} source diverged", g.name);
        assert_eq!(s.target_category, g.target_category, "group {} target diverged", g.name);
        assert_eq!(s.edges, g.edges, "group {} edges diverged", g.name);
    }
}
