//! **Figure 12** — missing-value imputation across methods.
//!
//! * `--task language` (Fig. 12a): impute the movie `original_language`,
//!   comparing MODE, DataWig-like, PV, MF, DW, RO, RN and +DW concats.
//!   Embeddings are trained with the label column ablated.
//! * `--task appcat` (Fig. 12b): impute the Google Play app category (33
//!   classes); embeddings are trained with the category/genre information
//!   ablated; DataWig sees only the single-table app attributes (no
//!   reviews), which is its structural handicap in the paper.
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig12_imputation -- --task language
//! cargo run --release -p retro-bench --bin fig12_imputation -- --task appcat
//! ```

use retro_bench::{movie_task_inputs, print_report, write_report, ReportRow};
use retro_datasets::{
    gplay::CATEGORIES, GooglePlayConfig, GooglePlayDataset, TmdbConfig, TmdbDataset,
};
use retro_eval::baselines::{mode_imputation_accuracy, DataWigConfig, DataWigImputer};
use retro_eval::tasks::run_imputation;
use retro_eval::{EmbeddingKind, EmbeddingSuite, NetProfile, SuiteConfig};
use retro_linalg::Matrix;

fn kinds() -> [EmbeddingKind; 9] {
    EmbeddingKind::all()
}

fn language_task(n_movies: usize, reps: usize, profile: &NetProfile) -> Vec<ReportRow> {
    let data = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    // §5.5.2: "we train embeddings by ignoring the original_language column".
    let config = SuiteConfig::default().skip_column("movies", "original_language");
    let suite = EmbeddingSuite::build(&data.db, &data.base, &config, &kinds());

    let lang_labels: Vec<usize> = data
        .movie_language
        .iter()
        .map(|l| retro_datasets::tmdb::LANGUAGES.iter().position(|x| x == l).expect("language"))
        .collect();

    let mut rows = Vec::new();
    let n_classes = retro_datasets::tmdb::LANGUAGES.len();
    let mut split = (0, 0);
    for kind in kinds() {
        let (inputs, ys) = movie_task_inputs(&suite, kind, &data.movie_titles, &lang_labels);
        let n = inputs.rows();
        split = (n * 6 / 10, n * 3 / 10);
        let accs = run_imputation(&inputs, &ys, n_classes, split.0, split.1, reps, profile, 0x12A);
        rows.push(ReportRow::from_samples(kind.label(), &accs));
    }

    // MODE: train on a random train-sized prefix per repetition is
    // equivalent to the full-data mode here (language distribution is
    // stationary); report the single-shot value.
    let (train, test) = lang_labels.split_at(split.0.min(lang_labels.len()));
    rows.push(ReportRow::from_samples("MODE", &[mode_imputation_accuracy(train, test)]));

    // DataWig-like: single-table view (title + overview text), no reviews.
    let movies = data.db.table("movies").expect("movies table");
    let title_col = movies.schema().column_index("title").expect("title");
    let over_col = movies.schema().column_index("overview").expect("overview");
    let table_rows: Vec<Vec<&str>> = movies
        .rows()
        .iter()
        .map(|r| vec![r[title_col].as_text().unwrap_or(""), r[over_col].as_text().unwrap_or("")])
        .collect();
    let dw_cfg = DataWigConfig::default();
    let accs = DataWigImputer::new(dw_cfg).evaluate(
        &table_rows,
        &lang_labels,
        n_classes,
        split.0,
        split.1,
        reps,
    );
    rows.push(ReportRow::from_samples("DTWG", &accs));
    rows
}

fn appcat_task(n_apps: usize, reps: usize, profile: &NetProfile) -> Vec<ReportRow> {
    let data =
        GooglePlayDataset::generate(GooglePlayConfig { n_apps, ..GooglePlayConfig::default() });
    // §5.5.2: "we omit the category information and the genre relation".
    let config =
        SuiteConfig::default().skip_column("categories", "name").skip_column("genres", "name");
    let suite = EmbeddingSuite::build(&data.db, &data.base, &config, &kinds());

    let mut rows = Vec::new();
    // Paper samples 400 train + 400 test apps; scale to dataset.
    let train_n = (n_apps * 4 / 10).max(10);
    let test_n = (n_apps * 4 / 10).max(10);

    for kind in kinds() {
        let matrix = suite.matrix(kind);
        let mut inputs = Vec::with_capacity(n_apps);
        let mut ys = Vec::with_capacity(n_apps);
        for (a, name) in data.app_names.iter().enumerate() {
            if let Some(id) = suite.catalog.lookup("apps", "name", name) {
                inputs.push(matrix.row(id).to_vec());
                ys.push(data.app_category[a]);
            }
        }
        let inputs = Matrix::from_rows(&inputs);
        let accs =
            run_imputation(&inputs, &ys, CATEGORIES.len(), train_n, test_n, reps, profile, 0x12B);
        rows.push(ReportRow::from_samples(kind.label(), &accs));
    }

    let (train, test) = data.app_category.split_at(train_n.min(data.app_category.len()));
    rows.push(ReportRow::from_samples("MODE", &[mode_imputation_accuracy(train, test)]));

    // DataWig-like: app table only (name + pricing + age group), no reviews.
    let apps = data.db.table("apps").expect("apps table");
    let name_col = apps.schema().column_index("name").expect("name");
    let table_rows: Vec<Vec<&str>> =
        apps.rows().iter().map(|r| vec![r[name_col].as_text().unwrap_or("")]).collect();
    let accs = DataWigImputer::new(DataWigConfig::default()).evaluate(
        &table_rows,
        &data.app_category,
        CATEGORIES.len(),
        train_n,
        test_n,
        reps,
    );
    rows.push(ReportRow::from_samples("DTWG", &accs));
    rows
}

fn main() {
    let task = retro_bench::arg_value("task", "language");
    let reps = retro_bench::arg_num("reps", 5usize);
    let profile = NetProfile::fast(64);

    match task.as_str() {
        "language" => {
            let n_movies = retro_bench::arg_num("movies", 600usize);
            let rows = language_task(n_movies, reps, &profile);
            print_report("Fig. 12a: imputation of original language", "accuracy", &rows);
            let path = write_report("fig12a_language", "Fig. 12a", &rows);
            println!("\nreport: {}", path.display());
            println!("expected shape: MODE ~0.71 < PV <= MF < DTWG < RO <= RN ~= DW; +DW best");
        }
        "appcat" => {
            let n_apps = retro_bench::arg_num("apps", 500usize);
            let rows = appcat_task(n_apps, reps, &profile);
            print_report("Fig. 12b: imputation of app categories", "accuracy", &rows);
            let path = write_report("fig12b_appcat", "Fig. 12b", &rows);
            println!("\nreport: {}", path.display());
            println!("expected shape: MODE poor; DTWG ~= PV; RO/RN clearly on top (reviews);");
            println!("DW near MODE; concatenation does not help");
        }
        other => {
            eprintln!("unknown --task {other}; use `language` or `appcat`");
            std::process::exit(2);
        }
    }
}
