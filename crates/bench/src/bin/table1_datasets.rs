//! **Table 1** — dataset properties: tables (+ pure n:m link tables) and
//! unique text values for both datasets.
//!
//! ```text
//! cargo run --release -p retro-bench --bin table1_datasets [--movies N] [--apps N]
//! ```

use retro_datasets::{GooglePlayConfig, GooglePlayDataset, TmdbConfig, TmdbDataset};

fn main() {
    let n_movies = retro_bench::arg_num("movies", 2000usize);
    let n_apps = retro_bench::arg_num("apps", 800usize);

    let tmdb = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    let gplay =
        GooglePlayDataset::generate(GooglePlayConfig { n_apps, ..GooglePlayConfig::default() });

    println!("== Table 1: Dataset Properties ==");
    println!("{:<22} {:>16} {:>16}", "", "TMDB", "Google Play");
    let t_tables = tmdb.db.table_count() - tmdb.db.link_table_count();
    let g_tables = gplay.db.table_count() - gplay.db.link_table_count();
    println!(
        "{:<22} {:>13}(+{}*) {:>13}(+{}*)",
        "Tables",
        t_tables,
        tmdb.db.link_table_count(),
        g_tables,
        gplay.db.link_table_count()
    );
    println!(
        "{:<22} {:>16} {:>16}",
        "Unique Text Values",
        tmdb.db.unique_text_value_count(),
        gplay.db.unique_text_value_count()
    );
    println!("* tables which only express n:m relations");
    println!();
    println!("paper reference: TMDB 8(+7*) tables / 493,751 values; Google Play 6(+1*) / 27,571");
    println!("(synthetic scale is configurable; schema shape is what the table verifies)");

    let rows = vec![
        retro_bench::ReportRow::from_samples(
            "tmdb_text_values",
            &[tmdb.db.unique_text_value_count() as f64],
        ),
        retro_bench::ReportRow::from_samples(
            "gplay_text_values",
            &[gplay.db.unique_text_value_count() as f64],
        ),
        retro_bench::ReportRow::from_samples("tmdb_tables", &[t_tables as f64]),
        retro_bench::ReportRow::from_samples(
            "tmdb_link_tables",
            &[tmdb.db.link_table_count() as f64],
        ),
        retro_bench::ReportRow::from_samples("gplay_tables", &[g_tables as f64]),
        retro_bench::ReportRow::from_samples(
            "gplay_link_tables",
            &[gplay.db.link_table_count() as f64],
        ),
    ];
    let path = retro_bench::write_report("table1_datasets", "Table 1: dataset properties", &rows);
    println!("report: {}", path.display());
}
