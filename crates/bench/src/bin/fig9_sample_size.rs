//! **Figure 9** — classification accuracy as a function of the training
//! sample size (the paper sweeps 200…1000 training samples against a fixed
//! 1000-sample test set, 20 repetitions).
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig9_sample_size [--movies N] [--reps R]
//! ```
//!
//! Expected shape: PV is flattest (smallest gain from more data); DW starts
//! lowest and needs the largest training sets to catch up; the retrofitted
//! embeddings dominate at every size.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retro_bench::{director_task_inputs, print_report, write_report, ReportRow};
use retro_datasets::{TmdbConfig, TmdbDataset};
use retro_eval::metrics::{accuracy, balanced_binary_split};
use retro_eval::tasks::gather_normalized;
use retro_eval::{EmbeddingKind, EmbeddingSuite, NetProfile, SuiteConfig};
use retro_linalg::Matrix;

fn main() {
    let n_movies = retro_bench::arg_num("movies", 800usize);
    let reps = retro_bench::arg_num("reps", 4usize);
    let data = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    let labels = data.us_director_labels();
    let us = labels.iter().filter(|(_, b)| *b).count();
    let non_us = labels.len() - us;

    let kinds = [
        EmbeddingKind::Pv,
        EmbeddingKind::Mf,
        EmbeddingKind::Dw,
        EmbeddingKind::Ro,
        EmbeddingKind::Rn,
    ];
    let suite = EmbeddingSuite::build(&data.db, &data.base, &SuiteConfig::default(), &kinds);
    let profile = NetProfile::fast(64);

    // Scale the paper's 200..1000 sweep to the synthetic dataset size: the
    // test pool takes half the per-class minimum; training grows in steps.
    let cap = us.min(non_us);
    let test_per_class = cap / 3;
    let train_sizes: Vec<usize> = [1, 2, 3, 4]
        .iter()
        .map(|k| (cap - test_per_class) * k / 4 / 2 * 2)
        .filter(|&n| n >= 10)
        .collect();
    println!(
        "directors: {} ({us} US); test per class: {test_per_class}; train sizes (per class): {train_sizes:?}",
        labels.len()
    );

    let mut all_rows = Vec::new();
    for kind in kinds {
        let (inputs, ys) = director_task_inputs(&suite, kind, &labels);
        let mut rows = Vec::new();
        for &train_per_class in &train_sizes {
            let mut accs = Vec::with_capacity(reps);
            for rep in 0..reps {
                let mut rng = StdRng::seed_from_u64(0xF199 ^ (rep as u64) << 8);
                // Draw a balanced pool of train+test, then truncate training.
                let (train_pool, test_idx) =
                    balanced_binary_split(&ys, train_per_class + test_per_class, &mut rng);
                let train_idx: Vec<usize> = train_pool
                    .iter()
                    .copied()
                    .filter(|&i| ys[i])
                    .take(train_per_class)
                    .chain(train_pool.iter().copied().filter(|&i| !ys[i]).take(train_per_class))
                    .collect();
                let x_train = gather_normalized(&inputs, &train_idx);
                let y_train = Matrix::from_rows(
                    &train_idx
                        .iter()
                        .map(|&i| vec![if ys[i] { 1.0 } else { 0.0 }])
                        .collect::<Vec<_>>(),
                );
                let x_test = gather_normalized(&inputs, &test_idx);
                let truth: Vec<bool> = test_idx.iter().map(|&i| ys[i]).collect();
                let mut net = profile.build_binary(inputs.cols(), rep as u64);
                net.train(&x_train, &y_train, profile.train);
                accs.push(accuracy(&net.predict_binary(&x_test), &truth));
            }
            rows.push(ReportRow::from_samples(
                format!("{}@{}", kind.label(), train_per_class * 2),
                &accs,
            ));
        }
        print_report(
            &format!("Fig. 9: {} accuracy vs training samples", kind.label()),
            "accuracy",
            &rows,
        );
        all_rows.extend(rows);
    }
    let path = write_report("fig9_sample_size", "Fig. 9: accuracy vs sample size", &all_rows);
    println!("\nreport: {}", path.display());
    println!("expected shape: PV flattest; DW weakest at small sizes, biggest slope");
}
