//! **Load driver** — mixed-workload harness against the multi-database
//! [`Engine`]: concurrent SQL point/join reads, `NEAREST` kNN queries, and
//! write traffic, all through the admission gate, with a background
//! refresher publishing new generations while the load runs.
//!
//! Three traffic classes run for `--duration-secs` on their own threads:
//!
//! - **sql** — generation-pinned sessions answering point lookups and
//!   FK joins over the frozen store,
//! - **knn** — the same sessions answering `NEAREST(...)` table-function
//!   SQL (sub-linear probe scan by default; `--exact` forces the oracle),
//! - **write** — `INSERT`s through [`Engine::execute`] against the live
//!   database (`--durable` opens a WAL-backed store under group commit).
//!
//! Reported per class: throughput (q/s) and p50/p99 latency; plus the
//! engine's admitted/shed counters and the number of generations the
//! refresher published. The JSON report lands in `results/load_driver.json`.
//!
//! ```text
//! cargo run --release -p retro-bench --bin load_driver -- \
//!     [--smoke] [--durable] [--exact] [--preset paper|small] \
//!     [--duration-secs 30] [--sql-threads 4] [--knn-threads 2] \
//!     [--write-threads 1] [--threads 8]
//! ```
//!
//! `--smoke` is the CI shape: the small preset for ~2s, then hard
//! assertions — every class made progress and nothing was shed — with a
//! non-zero exit on violation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use retro_bench::{arg_num, arg_value, time, write_report, ReportRow};
use retro_core::serve::SearchMode;
use retro_core::{Engine, EngineConfig, EngineError, Hyperparameters, RetroConfig};
use retro_datasets::{SizePreset, TmdbConfig, TmdbDataset};
use retro_store::{Database, DurabilityPolicy, SharedDatabase, Value};

/// `--name` presence (the arg helpers in the bench crate only parse
/// `--flag value` pairs).
fn flag(name: &str) -> bool {
    let want = format!("--{name}");
    std::env::args().any(|a| a == want)
}

/// Deterministic per-worker pseudo-random stream (LCG; no shared state,
/// no seeding ceremony — the classes only need decorrelated key picks).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Per-class outcome: one latency sample per completed operation, plus
/// how many acquisitions the gate refused (sheds are *expected* under
/// deliberate overload, but the smoke gate asserts zero).
struct ClassStats {
    latencies: Vec<f64>,
    shed: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[((sorted.len() as f64 * p) as usize).min(sorted.len() - 1)]
}

/// Merge per-worker stats, print the class line, and append report rows.
fn report_class(
    name: &str,
    per_worker: Vec<ClassStats>,
    window_secs: f64,
    rows: &mut Vec<ReportRow>,
) -> (usize, u64) {
    let shed: u64 = per_worker.iter().map(|s| s.shed).sum();
    let mut all: Vec<f64> = per_worker.into_iter().flat_map(|s| s.latencies).collect();
    all.sort_by(f64::total_cmp);
    let count = all.len();
    let qps = count as f64 / window_secs.max(1e-9);
    let p50 = percentile(&all, 0.50);
    let p99 = percentile(&all, 0.99);
    println!(
        "  {name:<6} {count:>9} ops   {qps:>9.0} q/s   p50 {:>8.3}ms   p99 {:>8.3}ms   shed {shed}",
        p50 * 1e3,
        p99 * 1e3
    );
    rows.push(ReportRow::from_samples(format!("{name}/qps"), &[qps]));
    rows.push(ReportRow::from_samples(format!("{name}/p50_ms"), &[p50 * 1e3]));
    rows.push(ReportRow::from_samples(format!("{name}/p99_ms"), &[p99 * 1e3]));
    (count, shed)
}

/// One reader/searcher worker: acquire a session, answer a batch through
/// it, drop it (returning the admission permit), repeat until the
/// deadline. `run` answers one operation through the session.
fn session_worker(
    engine: &Engine,
    deadline: Instant,
    exact: bool,
    mut run: impl FnMut(&retro_core::Session, &mut Lcg, usize) -> Vec<f64>,
    seed: u64,
) -> ClassStats {
    const BATCH: usize = 32;
    let mut rng = Lcg(seed);
    let mut stats = ClassStats { latencies: Vec::new(), shed: 0 };
    while Instant::now() < deadline {
        let mut session = match engine.session("tmdb") {
            Ok(s) => s,
            Err(EngineError::Overloaded(_)) => {
                stats.shed += 1;
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(err) => panic!("session acquisition failed: {err}"),
        };
        if !exact {
            let probes = session.snapshot().default_probes();
            session.set_search_mode(SearchMode::Approx { probes });
        }
        stats.latencies.extend(run(&session, &mut rng, BATCH));
    }
    stats
}

fn main() {
    let smoke = flag("smoke");
    let durable = flag("durable");
    let exact = flag("exact");
    let preset_default = if smoke { "small" } else { "paper" };
    let preset = SizePreset::from_name(&arg_value("preset", preset_default)).unwrap_or_else(|| {
        eprintln!("unknown --preset (expected `small` or `paper`); using {preset_default}");
        SizePreset::from_name(preset_default).expect("default preset parses")
    });
    let duration = Duration::from_secs(arg_num("duration-secs", if smoke { 2 } else { 30 }));
    let sql_threads: usize = arg_num("sql-threads", if smoke { 2 } else { 4 });
    let knn_threads: usize = arg_num("knn-threads", 2);
    let write_threads: usize = arg_num("write-threads", 1);
    let solve_threads: usize = arg_num(
        "threads",
        std::thread::available_parallelism().map(usize::from).unwrap_or(1).clamp(1, 8),
    );

    println!("== Engine load driver ==");
    println!(
        "preset: {preset}   duration: {}s   sql/knn/write threads: {sql_threads}/{knn_threads}/{write_threads}   durable: {durable}   search: {}",
        duration.as_secs_f64(),
        if exact { "exact" } else { "approx" }
    );

    let (tmdb, secs) = time(|| TmdbDataset::generate(TmdbConfig::preset(preset)));
    println!("  generation               {secs:>9.3}s  ({} movies)", tmdb.movie_titles.len());

    // Captured before the database moves into the engine: point-read key
    // range, apostrophe-free kNN query tokens and write literals (the SQL
    // tokenizer has no quote escaping, so quoted fragments must be clean).
    let movies = tmdb.db.table("movies").expect("movies generated");
    let max_id = movies
        .rows()
        .iter()
        .map(|r| match r[0] {
            Value::Int(id) => id,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let language = movies
        .rows()
        .iter()
        .find_map(|r| match &r[3] {
            Value::Text(s) if !s.contains('\'') => Some(s.to_string()),
            _ => None,
        })
        .expect("an apostrophe-free language value exists");
    let tokens: Vec<String> =
        tmdb.movie_titles.iter().filter(|t| !t.contains('\'')).cloned().collect();
    assert!(!tokens.is_empty(), "no quotable movie titles");

    // `--durable` replays the generated state into a WAL-backed store
    // under group commit, so the write class exercises the logged path.
    let scratch = std::env::temp_dir().join(format!("retro_load_driver_{}", std::process::id()));
    let db = if durable {
        let _ = std::fs::remove_dir_all(&scratch);
        let (_, order) = retro_bench::schema_only_clone(&tmdb.db);
        let mut out = Database::open(&scratch).expect("scratch dir is writable");
        for name in &order {
            out.create_table(tmdb.db.table(name).expect("present").schema().clone())
                .expect("fresh database");
        }
        let mut loader = out.bulk();
        for (name, rows) in retro_bench::materialize_rows(&tmdb.db, &order) {
            let handle = loader.table(&name).expect("same schema set");
            loader.reserve(handle, rows.len());
            for row in rows {
                loader.stage(handle, row).expect("rows were valid at generation");
            }
        }
        loader.commit().expect("all stages succeeded");
        out.set_durability_policy(DurabilityPolicy::Group(256, Duration::from_millis(2)))
            .expect("durable database accepts a policy");
        out
    } else {
        tmdb.db.clone()
    };

    let engine = Engine::new(EngineConfig::default());
    let config = RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(solve_threads))
        .with_iterations(5);
    let shared = SharedDatabase::new(db);
    let ((), secs) = time(|| {
        engine.register("tmdb", shared.clone(), tmdb.base.clone(), config).expect("register");
    });
    println!("  register (initial solve) {secs:>9.3}s");

    let stop = AtomicBool::new(false);
    let refreshes = AtomicU64::new(0);
    let deadline = Instant::now() + duration;
    let started = Instant::now();

    let (sql_stats, knn_stats, write_stats) = std::thread::scope(|s| {
        // Background refresher: fold landed writes into new generations
        // while the load runs, so sessions opened late see fresh data.
        let refresher = s.spawn(|| {
            while !stop.load(Ordering::Acquire) {
                if let Ok(Some(_)) = engine.refresh_if_stale("tmdb") {
                    refreshes.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });

        let sql_workers: Vec<_> = (0..sql_threads)
            .map(|w| {
                let engine = &engine;
                s.spawn(move || {
                    session_worker(
                        engine,
                        deadline,
                        exact,
                        |session, rng, batch| {
                            let mut samples = Vec::with_capacity(batch);
                            for _ in 0..batch {
                                let id = 1 + (rng.next() as i64) % max_id.max(1);
                                // Alternate a PK point read with an FK join
                                // probing the same key.
                                let sql_text = if rng.next() % 4 == 0 {
                                    format!(
                                        "SELECT m.title, r.text FROM reviews r \
                                         JOIN movies m ON r.movie_id = m.id WHERE m.id = {id}"
                                    )
                                } else {
                                    format!("SELECT title, popularity FROM movies WHERE id = {id}")
                                };
                                let (result, secs) = time(|| session.query(&sql_text));
                                result.expect("read-only SQL on a pinned generation");
                                samples.push(secs);
                            }
                            samples
                        },
                        0x5EED + w as u64,
                    )
                })
            })
            .collect();

        let knn_workers: Vec<_> = (0..knn_threads)
            .map(|w| {
                let engine = &engine;
                let tokens = &tokens;
                s.spawn(move || {
                    session_worker(
                        engine,
                        deadline,
                        exact,
                        |session, rng, batch| {
                            let mut samples = Vec::with_capacity(batch);
                            for _ in 0..batch {
                                let token = &tokens[rng.next() as usize % tokens.len()];
                                // Alternate a bare rank list with the
                                // rank-joins-relational shape.
                                let sql_text = if rng.next() % 4 == 0 {
                                    format!(
                                        "SELECT m.title, n.score FROM \
                                         NEAREST('movies', 'title', '{token}', 10) n \
                                         JOIN movies m ON m.title = n.token"
                                    )
                                } else {
                                    format!(
                                        "SELECT id, token, score FROM \
                                         NEAREST('movies', 'title', '{token}', 10) n"
                                    )
                                };
                                let (result, secs) = time(|| session.query(&sql_text));
                                let result = result.expect("NEAREST over a pinned generation");
                                assert!(result.rows.len() <= 10);
                                samples.push(secs);
                            }
                            samples
                        },
                        0xACE5 + w as u64,
                    )
                })
            })
            .collect();

        let write_workers: Vec<_> = (0..write_threads)
            .map(|w| {
                let engine = &engine;
                let language = &language;
                s.spawn(move || {
                    let mut stats = ClassStats { latencies: Vec::new(), shed: 0 };
                    // Ids partitioned per worker, past everything generated.
                    let mut next = max_id + 1 + (w as i64) * 10_000_000;
                    while Instant::now() < deadline {
                        let sql_text = format!(
                            "INSERT INTO movies VALUES ({next}, 'streamed movie {w}-{next}', \
                             'an overview of streamed movie {w}-{next}', '{language}', \
                             0.0, 0.0, 0.0)"
                        );
                        let (result, secs) = time(|| engine.execute("tmdb", &sql_text));
                        match result {
                            Ok(_) => {
                                stats.latencies.push(secs);
                                next += 1;
                            }
                            Err(EngineError::Overloaded(_)) => {
                                stats.shed += 1;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(err) => panic!("write failed: {err}"),
                        }
                    }
                    stats
                })
            })
            .collect();

        let sql_stats: Vec<_> = sql_workers.into_iter().map(|h| h.join().expect("sql")).collect();
        let knn_stats: Vec<_> = knn_workers.into_iter().map(|h| h.join().expect("knn")).collect();
        let write_stats: Vec<_> =
            write_workers.into_iter().map(|h| h.join().expect("write")).collect();
        stop.store(true, Ordering::Release);
        refresher.join().expect("refresher");
        (sql_stats, knn_stats, write_stats)
    });
    let window_secs = started.elapsed().as_secs_f64();

    if durable {
        // Push any trailing partial group to disk before reporting.
        shared.with_write(|db| db.flush_wal()).expect("flush trailing group");
    }

    println!("\n-- results ({window_secs:.1}s window) --");
    let mut rows = Vec::new();
    let (sql_count, sql_shed) = report_class("sql", sql_stats, window_secs, &mut rows);
    let (knn_count, knn_shed) = report_class("knn", knn_stats, window_secs, &mut rows);
    let (write_count, write_shed) = report_class("write", write_stats, window_secs, &mut rows);
    let published = refreshes.load(Ordering::Relaxed);
    println!(
        "  engine admitted {}   shed {}   refreshes published {published}",
        engine.admitted_count(),
        engine.shed_count()
    );
    rows.push(ReportRow::from_samples("engine/admitted", &[engine.admitted_count() as f64]));
    rows.push(ReportRow::from_samples("engine/shed", &[engine.shed_count() as f64]));
    rows.push(ReportRow::from_samples("engine/refreshes", &[published as f64]));

    let path = write_report(
        "load_driver",
        &format!("Engine load driver ({preset}, {}s)", duration.as_secs()),
        &rows,
    );
    println!("report: {}", path.display());

    if durable {
        let _ = std::fs::remove_dir_all(&scratch);
    }

    if smoke {
        let mut failures = Vec::new();
        if sql_count == 0 {
            failures.push("sql class made no progress");
        }
        if knn_count == 0 {
            failures.push("knn class made no progress");
        }
        if write_count == 0 {
            failures.push("write class made no progress");
        }
        if sql_shed + knn_shed + write_shed + engine.shed_count() > 0 {
            failures.push("default admission bounds shed traffic at smoke concurrency");
        }
        if failures.is_empty() {
            println!("SMOKE OK");
        } else {
            for failure in &failures {
                eprintln!("SMOKE FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }
}
