//! **Paper-scale profile** — per-phase wall time of the full extraction +
//! solve pipeline at the paper's real dataset cardinalities (TMDB ~493k
//! text values, Google Play ~27k; Table 1).
//!
//! Phases reported per dataset: synthetic generation, **ingest** (loading
//! every generated row into a fresh database, measured both through the
//! row-by-row `Database::insert` path and the batched `BulkLoader` fast
//! path — the two produce identical state, asserted here, so the speedup
//! column is pure wall-time; see `docs/INGESTION.md`), text-value catalog
//! extraction (§3.3), relation extraction (§3.2), problem assembly (§3.1
//! tokenization + Eq. 5 centroids), RO solve (sequential and parallel), RN
//! solve (sequential and parallel). Parallel solves are bit-identical to
//! the sequential ones — the speedup column is pure wall-time.
//!
//! ```text
//! cargo run --release -p retro-bench --bin paper_scale_profile \
//!     [--preset paper|small] [--threads 8] [--iterations 10]
//! ```
//!
//! The JSON report lands in `results/paper_scale_profile.json`; the README
//! "Performance" section has a table template for recording machine
//! results.

use std::sync::atomic::{AtomicBool, Ordering};

use retro_bench::{
    arg_num, arg_value, materialize_rows, schema_only_clone, time, write_report, ReportRow,
};
use retro_core::relations::extract_relations;
use retro_core::serve::{EmbeddingService, SearchMode};
use retro_core::solver::{solve_rn, solve_rn_parallel, solve_ro, solve_ro_parallel};
use retro_core::{Hyperparameters, RefreshKind, RetroConfig, RetrofitProblem, TextValueCatalog};
use retro_datasets::{GooglePlayConfig, GooglePlayDataset, SizePreset, TmdbConfig, TmdbDataset};
use retro_embed::EmbeddingSet;
use retro_store::{Database, SharedDatabase, Value};

struct Phase {
    name: &'static str,
    secs: f64,
}

/// Load pre-materialized rows through the row-by-row `Database::insert`
/// path (the pre-PR-3 ingest).
fn load_row_by_row(mut out: Database, batch: Vec<(String, Vec<Vec<Value>>)>) -> Database {
    for (name, rows) in batch {
        for row in rows {
            out.insert(&name, row).expect("rows were valid at generation");
        }
    }
    out
}

/// Load pre-materialized rows through the batched `BulkLoader` fast path:
/// one batch, one commit.
fn load_bulk(mut out: Database, batch: Vec<(String, Vec<Vec<Value>>)>) -> Database {
    let mut loader = out.bulk();
    for (name, rows) in batch {
        let handle = loader.table(&name).expect("same schema set");
        loader.reserve(handle, rows.len());
        for row in rows {
            loader.stage(handle, row).expect("rows were valid at generation");
        }
    }
    loader.commit().expect("all stages succeeded");
    out
}

/// Assert a reloaded database matches the generated one exactly.
fn assert_reload_matches(db: &Database, reloaded: &Database, path: &str) {
    for table in db.tables() {
        let name = table.name();
        assert_eq!(
            table.rows(),
            reloaded.table(name).expect("present").rows(),
            "{path} reload diverged from the generated database in `{name}`"
        );
    }
}

/// Ingest phase: time both load paths over the full generated dataset and
/// assert each reproduces the generated state exactly (the equivalence the
/// `ingestion_equivalence` suite pins on random batches, demonstrated here
/// at paper scale). Each path gets a fresh pre-materialized input and the
/// previous path's output is dropped first, so neither timing is distorted
/// by the other's live memory.
fn profile_ingest(label: &str, db: &Database) -> Vec<Phase> {
    const REPS: usize = 3;
    let (schema_only, order) = schema_only_clone(db);
    let n_rows: usize = db.tables().map(retro_store::Table::len).sum();

    let mut row_secs = f64::INFINITY;
    for _ in 0..REPS {
        let batch = materialize_rows(db, &order);
        let (row_db, secs) = time(|| load_row_by_row(schema_only.clone(), batch));
        assert_reload_matches(db, &row_db, "row-by-row");
        row_secs = row_secs.min(secs);
    }
    println!("  {label}: ingest (row-by-row)      {row_secs:>9.3}s  ({n_rows} rows)");

    let mut bulk_secs = f64::INFINITY;
    for _ in 0..REPS {
        let batch = materialize_rows(db, &order);
        let (bulk_db, secs) = time(|| load_bulk(schema_only.clone(), batch));
        assert_reload_matches(db, &bulk_db, "bulk");
        bulk_secs = bulk_secs.min(secs);
    }
    println!(
        "  {label}: ingest (BulkLoader)      {bulk_secs:>9.3}s  (speedup {:.2}x)",
        row_secs / bulk_secs.max(1e-9)
    );

    vec![
        Phase { name: "ingest_row_by_row", secs: row_secs },
        Phase { name: "ingest_bulk", secs: bulk_secs },
    ]
}

/// Durability phase (`docs/DURABILITY.md`): the WAL + snapshot subsystem
/// at dataset scale. Reports the logged bulk load against the ephemeral
/// baseline (WAL write-bandwidth overhead — the batch commits as a single
/// `Batch` record carrying every row), recovery by replaying that log,
/// snapshot write (`checkpoint`), and recovery from the compacted
/// snapshot. The replay-vs-snapshot pair is the case for compaction:
/// replay scales with logged history, snapshot load with live state.
fn profile_durability(label: &str, db: &Database) -> Vec<Phase> {
    let (schema_only, order) = schema_only_clone(db);
    let n_rows: usize = db.tables().map(retro_store::Table::len).sum();
    let dir = std::env::temp_dir()
        .join(format!("retro_profile_durability_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Ephemeral baseline for the overhead ratio, measured here so the two
    // sides share one materialization policy.
    let batch = materialize_rows(db, &order);
    let (ephemeral, ephemeral_secs) = time(|| load_bulk(schema_only.clone(), batch));
    drop(ephemeral);

    let batch = materialize_rows(db, &order);
    let (mut durable, durable_secs) = time(|| {
        let mut out = Database::open(&dir).expect("scratch dir is writable");
        for name in &order {
            out.create_table(db.table(name).expect("present").schema().clone())
                .expect("fresh database");
        }
        load_bulk(out, batch)
    });
    println!(
        "  {label}: durable bulk load        {durable_secs:>9.3}s  ({n_rows} rows; {:.2}x ephemeral)",
        durable_secs / ephemeral_secs.max(1e-9)
    );

    // Replay recovery: no snapshot yet, so every logged mutation re-runs
    // through the constraint-checked engine.
    let (replayed, replay_secs) = time(|| Database::recover(&dir).expect("intact log"));
    assert_reload_matches(db, &replayed, "WAL replay");
    drop(replayed);
    println!("  {label}: WAL replay recovery      {replay_secs:>9.3}s");

    let ((), snapshot_secs) = time(|| durable.checkpoint().expect("durable"));
    println!("  {label}: snapshot write           {snapshot_secs:>9.3}s");

    let (loaded, load_secs) = time(|| Database::recover(&dir).expect("intact snapshot"));
    assert_reload_matches(db, &loaded, "snapshot load");
    drop(loaded);
    println!(
        "  {label}: snapshot load            {load_secs:>9.3}s  (replay/load {:.2}x)",
        replay_secs / load_secs.max(1e-9)
    );

    drop(durable);
    let _ = std::fs::remove_dir_all(&dir);
    vec![
        Phase { name: "durable_bulk_load", secs: durable_secs },
        Phase { name: "wal_replay_recovery", secs: replay_secs },
        Phase { name: "snapshot_write", secs: snapshot_secs },
        Phase { name: "snapshot_load", secs: load_secs },
    ]
}

fn profile_pipeline(
    label: &str,
    db: &Database,
    base: &EmbeddingSet,
    iterations: usize,
    threads: usize,
) -> Vec<Phase> {
    let mut phases = Vec::new();

    // The pre-index baseline: tuple-keyed catalog probes (one String
    // allocation each) and per-referencing-row target lookups — what
    // extraction cost before the store's secondary indexes and the
    // catalog's per-category interning maps.
    let (scan, scan_secs) = time(|| retro_bench::scan_extract::extract_scan(db));
    println!("  {label}: extraction (scan)        {scan_secs:>9.3}s  (pre-index baseline)");
    phases.push(Phase { name: "extraction_scan_baseline", secs: scan_secs });

    let (catalog, secs) = time(|| TextValueCatalog::extract(db, &[]));
    println!("  {label}: catalog extraction       {secs:>9.3}s  ({} text values)", catalog.len());
    phases.push(Phase { name: "catalog_extraction", secs });
    let cat_secs = secs;

    let (groups, secs) = time(|| extract_relations(db, &catalog, &[]));
    println!("  {label}: relation extraction      {secs:>9.3}s  ({} groups)", groups.len());
    phases.push(Phase { name: "relation_extraction", secs });

    // Indexed and scan extraction must agree bit-for-bit — same value
    // ids, same categories, same edges — or the speedup column is noise.
    retro_bench::scan_extract::assert_matches(&scan, &catalog, &groups);
    drop(scan);
    println!(
        "  {label}: extraction (indexed)     {:>9.3}s  (speedup {:.2}x, bit-identical)",
        cat_secs + secs,
        scan_secs / (cat_secs + secs).max(1e-9)
    );

    let (problem, secs) = time(|| RetrofitProblem::from_parts(catalog, groups, base));
    println!("  {label}: problem assembly         {secs:>9.3}s  (dim {})", problem.dim());
    phases.push(Phase { name: "problem_assembly", secs });

    // Solve timings: warm up each solver once (first contact with a
    // freshly assembled problem pays page faults and cache misses that
    // would otherwise be billed to whichever solve runs first), then take
    // the best of `SOLVE_REPS` runs — the minimum is robust against
    // scheduler/allocator interference on shared boxes, same policy as the
    // ingest phases above.
    let ro = Hyperparameters::paper_ro();
    let _ = solve_ro(&problem, &ro, 1);
    let (w_seq, ro_seq) = best_of(|| solve_ro(&problem, &ro, iterations));
    println!("  {label}: RO solve (1 thread)      {ro_seq:>9.3}s");
    phases.push(Phase { name: "ro_solve_sequential", secs: ro_seq });

    let (w_par, ro_par) = best_of(|| solve_ro_parallel(&problem, &ro, iterations, threads));
    println!(
        "  {label}: RO solve ({threads} threads)     {ro_par:>9.3}s  (speedup {:.2}x)",
        ro_seq / ro_par.max(1e-9)
    );
    phases.push(Phase { name: "ro_solve_parallel", secs: ro_par });
    assert_eq!(
        w_seq.max_abs_diff(&w_par),
        0.0,
        "parallel RO diverged from sequential — determinism invariant broken"
    );
    drop(w_seq);
    drop(w_par);

    let rn = Hyperparameters::paper_rn();
    let _ = solve_rn(&problem, &rn, 1);
    let (w_seq, rn_seq) = best_of(|| solve_rn(&problem, &rn, iterations));
    println!("  {label}: RN solve (1 thread)      {rn_seq:>9.3}s");
    phases.push(Phase { name: "rn_solve_sequential", secs: rn_seq });

    let (w_par, rn_par) = best_of(|| solve_rn_parallel(&problem, &rn, iterations, threads));
    println!(
        "  {label}: RN solve ({threads} threads)     {rn_par:>9.3}s  (speedup {:.2}x)",
        rn_seq / rn_par.max(1e-9)
    );
    phases.push(Phase { name: "rn_solve_parallel", secs: rn_par });
    assert_eq!(
        w_seq.max_abs_diff(&w_par),
        0.0,
        "parallel RN diverged from sequential — determinism invariant broken"
    );

    phases
}

/// Serving phase: reader throughput from an `EmbeddingService` snapshot,
/// idle and **while a writer refreshes** — the read-while-update shape the
/// serving layer exists for. The refresh is a real one (write-version bump,
/// re-extraction under the database read guard, warm-start solve, snapshot
/// swap); readers run concurrently on the main thread's siblings and are
/// expected to be unaffected, since the query path takes no lock a refresh
/// holds.
fn profile_serving(
    label: &str,
    db: &Database,
    base: &EmbeddingSet,
    threads: usize,
    insert: &StreamingInsert,
) -> Vec<Phase> {
    let shared = SharedDatabase::new(db.clone());
    let config = RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(threads))
        .with_iterations(5);
    let (service, start_secs) =
        time(|| EmbeddingService::start(shared.clone(), base.clone(), config).expect("valid base"));
    println!("  {label}: serve start (full run)   {start_secs:>9.3}s");

    let snapshot = service.snapshot();
    let n = snapshot.len();
    let queries: Vec<Vec<f32>> =
        (0..64).map(|i| snapshot.output().embeddings.row(i * 97 % n).to_vec()).collect();
    let run_query = |i: usize| {
        let top = service.nearest(&queries[i % queries.len()], 10, SearchMode::Exact);
        assert!(top.len() <= 10);
    };

    // The ANN path on the same panel: sub-linear probe scan at the
    // snapshot's default probe depth (serve_queries reports the matching
    // recall@10; this phase is the speed side at profile scale).
    let probes = snapshot.default_probes();
    const ANN_QUERIES: usize = 1000;
    let (_, ann_secs) = time(|| {
        for i in 0..ANN_QUERIES {
            let top =
                service.nearest(&queries[i % queries.len()], 10, SearchMode::Approx { probes });
            assert!(top.len() <= 10);
        }
    });
    println!(
        "  {label}: serve query (ann p={probes})  {:>8.3}ms/query  ({:.0} q/s)",
        ann_secs / ANN_QUERIES as f64 * 1e3,
        ANN_QUERIES as f64 / ann_secs.max(1e-9)
    );

    // Idle baseline: no writer anywhere.
    const IDLE_QUERIES: usize = 100;
    let (_, idle_secs) = time(|| {
        for i in 0..IDLE_QUERIES {
            run_query(i);
        }
    });
    println!(
        "  {label}: serve query (idle)       {:>9.3}ms/query  ({:.0} q/s)",
        idle_secs / IDLE_QUERIES as f64 * 1e3,
        IDLE_QUERIES as f64 / idle_secs.max(1e-9)
    );

    // Contended: time each query individually while one writer bumps the
    // write version and publishes a full refresh; only queries that start
    // AND finish inside the refresh window count, so the reported latency
    // is not diluted by idle samples (nor inflated by coarse counting).
    let refreshing = AtomicBool::new(false);
    let (during, refresh_secs) = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            // A real single-row insert (a whole-table `table_mut` poke
            // would force the change log to give up on scoping), completed
            // by an explicitly FULL refresh: this phase measures reader
            // latency while the *longest* refresh runs — the delta path is
            // profiled separately by the streaming phase.
            shared.with_write(|db| insert.insert(db, 0));
            refreshing.store(true, Ordering::Release);
            let (generation, secs) = time(|| service.refresh_full().expect("refresh"));
            refreshing.store(false, Ordering::Release);
            assert_eq!(generation, 2);
            secs
        });
        let mut during: Vec<f64> = Vec::new();
        let mut i = 0usize;
        while !writer.is_finished() {
            let started_contended = refreshing.load(Ordering::Acquire);
            let ((), secs) = time(|| run_query(i));
            i += 1;
            if started_contended && refreshing.load(Ordering::Acquire) {
                during.push(secs);
            }
        }
        (during, writer.join().expect("writer"))
    });
    // A refresh shorter than one query leaves no fully-contained sample;
    // fall back to the idle figure rather than inventing one.
    let during_secs = if during.is_empty() {
        idle_secs / IDLE_QUERIES as f64
    } else {
        during.iter().sum::<f64>() / during.len() as f64
    };
    println!(
        "  {label}: serve query (refreshing) {:>9.3}ms/query  ({:.0} q/s while a {:.3}s refresh runs; {} samples)",
        during_secs * 1e3,
        1.0 / during_secs.max(1e-9),
        refresh_secs,
        during.len()
    );

    vec![
        Phase { name: "serve_start", secs: start_secs },
        Phase { name: "serve_query_idle", secs: idle_secs / IDLE_QUERIES as f64 },
        Phase { name: "serve_query_ann", secs: ann_secs / ANN_QUERIES as f64 },
        Phase { name: "serve_refresh", secs: refresh_secs },
        Phase { name: "serve_query_during_refresh", secs: during_secs },
    ]
}

/// Streaming-update phase: sustained single-row inserts against a live
/// service, one refresh per insert — the delta-scoped path end to end.
/// Reports the refresh latency distribution (p50/p99), the ratio to a full
/// warm refresh of the same service, and reader throughput *while the
/// stream runs* (queries never block on the writer or the refresh).
fn profile_streaming(
    label: &str,
    db: &Database,
    base: &EmbeddingSet,
    threads: usize,
    insert: &StreamingInsert,
) -> Vec<Phase> {
    let shared = SharedDatabase::new(db.clone());
    let config = RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(threads))
        .with_iterations(5);
    let service =
        EmbeddingService::start(shared.clone(), base.clone(), config).expect("valid base");

    // The denominator: what the same one-row insert costs on the full
    // (re-extract + re-solve everything) path.
    shared.with_write(|db| insert.insert(db, 0));
    let (_, full_secs) = time(|| service.refresh_full().expect("refresh"));
    println!("  {label}: full refresh (1 insert)  {full_secs:>9.3}s");

    // Prime the delta path: the first delta refresh builds the target-sum
    // cache that consecutive deltas reuse.
    shared.with_write(|db| insert.insert(db, 1));
    service.refresh().expect("refresh");
    assert_eq!(
        service.last_refresh(),
        Some(RefreshKind::Delta),
        "a single-row insert must take the delta path"
    );

    // The stream: one insert, one refresh, repeat — with a reader
    // hammering nearest-neighbour queries the whole time.
    const STREAM: usize = 32;
    let query = service.snapshot().output().embeddings.row(0).to_vec();
    let stop = AtomicBool::new(false);
    let ((latencies, reads), window_secs) = time(|| {
        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                let mut count = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let top = service.nearest(&query, 10, SearchMode::Exact);
                    assert!(top.len() <= 10);
                    count += 1;
                }
                count
            });
            let mut latencies = Vec::with_capacity(STREAM);
            for i in 0..STREAM {
                shared.with_write(|db| insert.insert(db, 2 + i));
                let (_, secs) = time(|| service.refresh().expect("refresh"));
                assert_eq!(
                    service.last_refresh(),
                    Some(RefreshKind::Delta),
                    "streamed insert fell off the delta path"
                );
                latencies.push(secs);
            }
            stop.store(true, Ordering::Release);
            (latencies, reader.join().expect("reader"))
        })
    });

    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let p50 = sorted[sorted.len() / 2];
    let p99 = sorted[((sorted.len() as f64 * 0.99) as usize).min(sorted.len() - 1)];
    let read_secs = window_secs / reads.max(1) as f64;
    println!(
        "  {label}: streaming refresh        {:>9.3}ms p50  ({:.3}ms p99; {:.2}% of a full refresh)",
        p50 * 1e3,
        p99 * 1e3,
        100.0 * p50 / full_secs.max(1e-9)
    );
    println!(
        "  {label}: reader during stream     {:>9.3}ms/query  ({:.0} q/s over {} refreshes)",
        read_secs * 1e3,
        reads as f64 / window_secs.max(1e-9),
        STREAM
    );

    vec![
        Phase { name: "streaming_update_full_refresh", secs: full_secs },
        Phase { name: "streaming_update_p50", secs: p50 },
        Phase { name: "streaming_update_p99", secs: p99 },
        Phase { name: "streaming_update_reader_query", secs: read_secs },
    ]
}

/// One synthetic streamed row per call: a pk past everything generated,
/// fresh text values where a live ingest would have them, existing
/// foreign-key targets. `captured` holds values copied from the generated
/// data (an existing language / category id) so the row always validates.
struct StreamingInsert {
    table: &'static str,
    next_id: i64,
    captured: Vec<Value>,
    build: fn(i64, usize, &[Value]) -> Vec<Value>,
}

impl StreamingInsert {
    fn insert(&self, db: &mut Database, i: usize) {
        db.insert(self.table, (self.build)(self.next_id + i as i64, i, &self.captured))
            .expect("valid streamed row");
    }
}

fn max_pk(db: &Database, table: &str) -> i64 {
    db.table(table)
        .expect("table generated")
        .rows()
        .iter()
        .map(|r| match r[0] {
            Value::Int(id) => id,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// The `i`-th streamed movie: unique title and overview (two genuinely new
/// text values), an existing language, zeroed numerics.
fn tmdb_streaming_insert(db: &Database) -> StreamingInsert {
    let language = db.table("movies").expect("movies").row(0).expect("generated movies")[3].clone();
    StreamingInsert {
        table: "movies",
        next_id: max_pk(db, "movies") + 1,
        captured: vec![language],
        build: |id, i, captured| {
            vec![
                Value::Int(id),
                Value::from(format!("streamed movie {i}")),
                Value::from(format!("an overview of streamed movie {i}")),
                captured[0].clone(),
                Value::Float(0.0),
                Value::Float(0.0),
                Value::Float(0.0),
            ]
        },
    }
}

/// The Google Play counterpart: a new app name, an existing category /
/// pricing / age group (foreign keys to already-interned values).
fn gplay_streaming_insert(db: &Database) -> StreamingInsert {
    let template = db.table("apps").expect("apps").row(0).expect("generated apps");
    StreamingInsert {
        table: "apps",
        next_id: max_pk(db, "apps") + 1,
        captured: template[3..6].to_vec(),
        build: |id, i, captured| {
            vec![
                Value::Int(id),
                Value::from(format!("streamed app {i}")),
                Value::Float(3.0),
                captured[0].clone(),
                captured[1].clone(),
                captured[2].clone(),
            ]
        },
    }
}

/// Run `f` three times; return the last result and the fastest wall time.
fn best_of<R>(mut f: impl FnMut() -> R) -> (R, f64) {
    const SOLVE_REPS: usize = 3;
    let (mut out, mut best) = time(&mut f);
    for _ in 1..SOLVE_REPS {
        let (r, secs) = time(&mut f);
        out = r;
        best = best.min(secs);
    }
    (out, best)
}

fn main() {
    let preset = SizePreset::from_name(&arg_value("preset", "paper")).unwrap_or_else(|| {
        eprintln!("unknown --preset (expected `small` or `paper`); using paper");
        SizePreset::Paper
    });
    let default_threads =
        std::thread::available_parallelism().map(usize::from).unwrap_or(1).clamp(1, 8);
    let threads: usize = arg_num("threads", default_threads);
    let iterations: usize = arg_num("iterations", 10);

    println!("== Paper-scale extraction + solve profile ==");
    println!("preset: {preset}   threads: {threads}   iterations: {iterations}");

    let mut rows = Vec::new();

    println!("\n-- TMDB ({preset}) --");
    let (tmdb, secs) = time(|| TmdbDataset::generate(TmdbConfig::preset(preset)));
    println!(
        "  tmdb: generation               {secs:>9.3}s  ({} movies, {} tables)",
        tmdb.movie_titles.len(),
        tmdb.db.table_count()
    );
    rows.push(ReportRow::from_samples("tmdb/generation", &[secs]));
    for phase in profile_ingest("tmdb", &tmdb.db) {
        rows.push(ReportRow::from_samples(format!("tmdb/{}", phase.name), &[phase.secs]));
    }
    for phase in profile_durability("tmdb", &tmdb.db) {
        rows.push(ReportRow::from_samples(format!("tmdb/{}", phase.name), &[phase.secs]));
    }
    for phase in profile_pipeline("tmdb", &tmdb.db, &tmdb.base, iterations, threads) {
        rows.push(ReportRow::from_samples(format!("tmdb/{}", phase.name), &[phase.secs]));
    }
    let insert = tmdb_streaming_insert(&tmdb.db);
    for phase in profile_serving("tmdb", &tmdb.db, &tmdb.base, threads, &insert) {
        rows.push(ReportRow::from_samples(format!("tmdb/{}", phase.name), &[phase.secs]));
    }
    for phase in profile_streaming("tmdb", &tmdb.db, &tmdb.base, threads, &insert) {
        rows.push(ReportRow::from_samples(format!("tmdb/{}", phase.name), &[phase.secs]));
    }
    drop(insert);
    drop(tmdb);

    println!("\n-- Google Play ({preset}) --");
    let (gplay, secs) = time(|| GooglePlayDataset::generate(GooglePlayConfig::preset(preset)));
    println!(
        "  gplay: generation              {secs:>9.3}s  ({} apps, {} tables)",
        gplay.app_names.len(),
        gplay.db.table_count()
    );
    rows.push(ReportRow::from_samples("gplay/generation", &[secs]));
    for phase in profile_ingest("gplay", &gplay.db) {
        rows.push(ReportRow::from_samples(format!("gplay/{}", phase.name), &[phase.secs]));
    }
    for phase in profile_durability("gplay", &gplay.db) {
        rows.push(ReportRow::from_samples(format!("gplay/{}", phase.name), &[phase.secs]));
    }
    for phase in profile_pipeline("gplay", &gplay.db, &gplay.base, iterations, threads) {
        rows.push(ReportRow::from_samples(format!("gplay/{}", phase.name), &[phase.secs]));
    }
    let insert = gplay_streaming_insert(&gplay.db);
    for phase in profile_serving("gplay", &gplay.db, &gplay.base, threads, &insert) {
        rows.push(ReportRow::from_samples(format!("gplay/{}", phase.name), &[phase.secs]));
    }
    for phase in profile_streaming("gplay", &gplay.db, &gplay.base, threads, &insert) {
        rows.push(ReportRow::from_samples(format!("gplay/{}", phase.name), &[phase.secs]));
    }

    let path = write_report(
        "paper_scale_profile",
        &format!("Paper-scale profile ({preset}, {threads} threads)"),
        &rows,
    );
    println!("\nreport: {}", path.display());
}
