//! **Figure 4** — runtime of relational retrofitting (RO vs RN) over
//! increasing database sizes, single thread.
//!
//! The paper cuts TMDB at movie ids {500, 1k, 2k, 4k, 8k}, yielding
//! 12,593…55,385 unique text values, and observes linear growth with RN
//! about 10× faster than RO. We sweep the synthetic generator the same way.
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig4_runtime_scaling [--steps "250,500,1000,2000,4000"]
//! ```

use retro_bench::{time, write_report, ReportRow};
use retro_core::{Retro, RetroConfig, RetrofitProblem, Solver};
use retro_datasets::{TmdbConfig, TmdbDataset};

fn main() {
    let steps_arg = retro_bench::arg_value("steps", "250,500,1000,2000,4000");
    let steps: Vec<usize> = steps_arg.split(',').filter_map(|s| s.trim().parse().ok()).collect();

    println!("== Figure 4: retrofitting runtime vs number of text values ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "movies", "text values", "RO (s)", "RO(opt) (s)", "RN (s)", "RO/RN"
    );

    let mut rows = Vec::new();
    for &n_movies in &steps {
        let data = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
        let problem = RetrofitProblem::build(&data.db, &data.base, &[], &[]);
        let n_values = problem.len();

        // "RO" = the paper's un-optimized Eq. 10 negative term (§4.5);
        // "RO(opt)" = this library's Eq. 15-optimized solver.
        let params = retro_core::Hyperparameters::paper_ro();
        let (_, ro_secs) = time(|| retro_core::solver::solve_ro_enumerated(&problem, &params, 10));
        let ro_opt = Retro::new(RetroConfig::default().with_solver(Solver::Ro).with_iterations(10));
        let (_, ro_opt_secs) = time(|| ro_opt.solve(problem.clone()));
        let rn = Retro::new(RetroConfig::default().with_solver(Solver::Rn).with_iterations(10));
        let (_, rn_secs) = time(|| rn.solve(problem.clone()));

        println!(
            "{:>8} {:>12} {:>12.3} {:>12.3} {:>12.3} {:>10.1}",
            n_movies,
            n_values,
            ro_secs,
            ro_opt_secs,
            rn_secs,
            ro_secs / rn_secs.max(1e-9)
        );
        rows.push(ReportRow::from_samples(format!("RO@{n_values}"), &[ro_secs]));
        rows.push(ReportRow::from_samples(format!("RO(opt)@{n_values}"), &[ro_opt_secs]));
        rows.push(ReportRow::from_samples(format!("RN@{n_values}"), &[rn_secs]));
    }
    let path = write_report("fig4_runtime_scaling", "Fig. 4: runtime scaling", &rows);
    println!("\nreport: {}", path.display());
    println!("expected shape: both linear in text values; RO several-fold slower than RN");
}
