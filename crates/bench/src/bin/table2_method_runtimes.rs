//! **Table 2** — runtime of the embedding methods (MF, DW, RO, RN) on both
//! datasets, single-threaded, repeated measurements with mean ± deviation.
//!
//! ```text
//! cargo run --release -p retro-bench --bin table2_method_runtimes \
//!     [--movies N] [--apps N] [--reps R]
//! ```
//!
//! Expected shape (paper Table 2): MF fastest, then RN, then RO, with
//! DeepWalk slowest by a wide margin.

use retro_bench::{print_report, time, write_report, ReportRow};
use retro_core::graphgen::generate_graph;
use retro_core::{Retro, RetroConfig, RetrofitProblem, Solver};
use retro_datasets::{GooglePlayConfig, GooglePlayDataset, TmdbConfig, TmdbDataset};
use retro_deepwalk::{DeepWalk, DeepWalkConfig, SgnsConfig};
use retro_embed::EmbeddingSet;
use retro_graph::WalkConfig;
use retro_store::Database;

fn measure(db: &Database, base: &EmbeddingSet, reps: usize, dataset: &str) -> Vec<ReportRow> {
    let problem = RetrofitProblem::build(db, base, &[], &[]);
    println!("[{dataset}] {} text values, {} relation groups", problem.len(), problem.groups.len());

    let mut rows = Vec::new();
    for (label, solver, iters) in
        [("MF", Solver::Mf, 20usize), ("RO(opt)", Solver::Ro, 10), ("RN", Solver::Rn, 10)]
    {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let engine =
                Retro::new(RetroConfig::default().with_solver(solver).with_iterations(iters));
            let (_, secs) = time(|| engine.solve(problem.clone()));
            samples.push(secs);
        }
        rows.push(ReportRow::from_samples(label, &samples));
    }
    // "RO" as the paper measured it: the un-optimized negative-term
    // computation of Eq. 10 (see §4.5) — this is what makes RO ~10x slower
    // than RN in the paper's Table 2 and Fig. 4.
    {
        let params = retro_core::Hyperparameters::paper_ro();
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (_, secs) = time(|| retro_core::solver::solve_ro_enumerated(&problem, &params, 10));
            samples.push(secs);
        }
        rows.push(ReportRow::from_samples("RO", &samples));
    }

    // DeepWalk (standard parameters per §5.2, scaled walk counts).
    let generated = generate_graph(&problem.catalog, &problem.groups);
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..reps {
        let config = DeepWalkConfig {
            walks: WalkConfig { walks_per_node: 10, walk_length: 40 },
            sgns: SgnsConfig { dim: base.dim(), ..SgnsConfig::default() },
            seed: rep as u64,
        };
        let (_, secs) = time(|| DeepWalk::new(config).train(&generated.graph));
        samples.push(secs);
    }
    rows.push(ReportRow::from_samples("DW", &samples));
    rows
}

fn main() {
    let n_movies = retro_bench::arg_num("movies", 800usize);
    let n_apps = retro_bench::arg_num("apps", 600usize);
    let reps = retro_bench::arg_num("reps", 5usize);

    let tmdb = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    let tmdb_rows = measure(&tmdb.db, &tmdb.base, reps, "TMDB");
    print_report("Table 2 — TMDB runtimes (seconds)", "runtime", &tmdb_rows);

    let gplay =
        GooglePlayDataset::generate(GooglePlayConfig { n_apps, ..GooglePlayConfig::default() });
    let gplay_rows = measure(&gplay.db, &gplay.base, reps, "Google Play");
    print_report("Table 2 — Google Play runtimes (seconds)", "runtime", &gplay_rows);

    let mut all = tmdb_rows;
    for mut row in gplay_rows {
        row.label = format!("gplay_{}", row.label);
        all.push(row);
    }
    let path = write_report("table2_method_runtimes", "Table 2: method runtimes", &all);
    println!("\nreport: {}", path.display());
    println!("expected shape: MF < RN ~ RO(opt) < RO << DW");
}
