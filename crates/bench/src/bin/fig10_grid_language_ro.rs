//! **Figure 10** — hyperparameter grid search for original-language
//! imputation with the Ψ-function (RO) solver.
//!
//! Expected shape: α = 1 configurations deliver the highest accuracies; the
//! γ/δ influence mirrors the binary-classification grids.

use retro_bench::grid::{grid_main, GridTask};
use retro_core::Solver;

fn main() {
    grid_main("Fig 10 language RO", Solver::Ro, GridTask::LanguageImputation);
}
