//! **Figure 6** — hyperparameter grid search for binary classification with
//! the Ψ-function (RO) solver, with and without DeepWalk concatenation.
//!
//! Expected shape: high γ and δ deliver good results; with DW concatenation
//! the optimum shifts to higher α and β.

use retro_bench::grid::{grid_main, GridTask};
use retro_core::Solver;

fn main() {
    grid_main("Fig 6 binary RO", Solver::Ro, GridTask::BinaryDirectors);
}
