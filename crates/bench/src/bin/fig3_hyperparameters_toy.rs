//! **Figure 3** — influence of the four hyperparameters on the toy example
//! (three movies, two countries, 2-D embeddings).
//!
//! Prints the learned 2-D coordinates for each sweep so the four panels of
//! the figure can be redrawn: (a) α ∈ {1,2,3}, (b) β ∈ {1,2,3},
//! (c) γ ∈ {1,2,3}, (d) δ ∈ {0,1,2}.
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig3_hyperparameters_toy
//! ```

use retro_core::hyper::Hyperparameters;
use retro_core::solver::solve_ro;
use retro_datasets::toy_problem;
use retro_linalg::vector;

fn main() {
    let toy = toy_problem();
    let names = ["inception", "godfather", "amelie", "usa", "france"];

    let panels: [(&str, [Hyperparameters; 3]); 4] = [
        (
            "(a) alpha = 1, 2, 3 (beta=1, gamma=2, delta=1)",
            [
                Hyperparameters::new(1.0, 1.0, 2.0, 1.0),
                Hyperparameters::new(2.0, 1.0, 2.0, 1.0),
                Hyperparameters::new(3.0, 1.0, 2.0, 1.0),
            ],
        ),
        (
            "(b) beta = 1, 2, 3 (alpha=2, gamma=2, delta=1)",
            [
                Hyperparameters::new(2.0, 1.0, 2.0, 1.0),
                Hyperparameters::new(2.0, 2.0, 2.0, 1.0),
                Hyperparameters::new(2.0, 3.0, 2.0, 1.0),
            ],
        ),
        (
            "(c) gamma = 1, 2, 3 (alpha=2, beta=1, delta=1)",
            [
                Hyperparameters::new(2.0, 1.0, 1.0, 1.0),
                Hyperparameters::new(2.0, 1.0, 2.0, 1.0),
                Hyperparameters::new(2.0, 1.0, 3.0, 1.0),
            ],
        ),
        (
            "(d) delta = 0, 1, 2 (alpha=2, beta=1, gamma=3)",
            [
                Hyperparameters::new(2.0, 1.0, 3.0, 0.0),
                Hyperparameters::new(2.0, 1.0, 3.0, 1.0),
                Hyperparameters::new(2.0, 1.0, 3.0, 2.0),
            ],
        ),
    ];

    println!("== Figure 3: hyperparameter influence on the toy example ==");
    println!("original 2-D embeddings:");
    for (i, name) in names.iter().enumerate() {
        let v = toy.problem.w0.row(i);
        println!("  {name:<10} ({:+.3}, {:+.3})", v[0], v[1]);
    }

    for (title, settings) in panels {
        println!("\n-- {title} --");
        for params in settings {
            let w = solve_ro(&toy.problem, &params, 20);
            print!("  a={} b={} g={} d={}:", params.alpha, params.beta, params.gamma, params.delta);
            for (i, name) in names.iter().enumerate() {
                let v = w.row(i);
                print!("  {name}=({:+.2},{:+.2})", v[0], v[1]);
            }
            // Summary statistics that make the panel's message quantitative.
            let drift: f32 =
                (0..5).map(|i| vector::dist(w.row(i), toy.problem.w0.row(i))).sum::<f32>() / 5.0;
            let movie_spread = (vector::dist(w.row(0), w.row(1))
                + vector::dist(w.row(0), w.row(2))
                + vector::dist(w.row(1), w.row(2)))
                / 3.0;
            let related = (vector::dist(w.row(0), w.row(3))
                + vector::dist(w.row(1), w.row(3))
                + vector::dist(w.row(2), w.row(4)))
                / 3.0;
            let origin_pull: f32 = (0..5).map(|i| vector::norm(w.row(i))).sum::<f32>() / 5.0;
            println!(
                "\n      drift {drift:.3} | movie spread {movie_spread:.3} | related dist {related:.3} | mean norm {origin_pull:.3}"
            );
        }
    }
    println!("\nexpected shapes: (a) drift shrinks with alpha; (b) movie spread shrinks");
    println!("with beta; (c) related distance shrinks with gamma; (d) mean norm grows");
    println!("with delta (delta=0 concentrates vectors near the origin).");
}
