//! Diagnostic: quick check that the synthetic data reproduces the paper's
//! qualitative orderings (not one of the paper's artifacts; a calibration
//! tool for the generators).
//!
//! Run with `cargo run --release -p retro-bench --bin shape_probe`.

use retro_bench::{director_task_inputs, movie_task_inputs, print_report, time, ReportRow};
use retro_datasets::{TmdbConfig, TmdbDataset};
use retro_eval::tasks::{run_binary_classification, run_imputation};
use retro_eval::{EmbeddingKind, EmbeddingSuite, NetProfile, SuiteConfig};

fn main() {
    let n_movies = retro_bench::arg_num("movies", 400usize);
    let (data, secs) =
        time(|| TmdbDataset::generate(TmdbConfig { n_movies, dim: 48, ..TmdbConfig::default() }));
    println!(
        "generated TMDB ({n_movies} movies, {} text values) in {secs:.1}s",
        data.db.unique_text_value_count()
    );

    let kinds = [
        EmbeddingKind::Pv,
        EmbeddingKind::Mf,
        EmbeddingKind::Dw,
        EmbeddingKind::Ro,
        EmbeddingKind::Rn,
        EmbeddingKind::RnDw,
    ];
    let (suite, secs) =
        time(|| EmbeddingSuite::build(&data.db, &data.base, &SuiteConfig::default(), &kinds));
    println!("built suite in {secs:.1}s");

    // Binary classification of US directors.
    let labels = data.us_director_labels();
    let us = labels.iter().filter(|(_, b)| *b).count();
    println!("directors: {} ({} US)", labels.len(), us);
    let per_class = (us.min(labels.len() - us) / 2 * 2).min(120);
    let profile = NetProfile::fast(64);
    let mut rows = Vec::new();
    for kind in kinds {
        let (inputs, ys) = director_task_inputs(&suite, kind, &labels);
        let accs = run_binary_classification(&inputs, &ys, per_class, 3, &profile, 42);
        rows.push(ReportRow::from_samples(kind.label(), &accs));
    }
    print_report("US-director binary classification", "accuracy", &rows);

    // Language imputation (embeddings without the label column).
    let lang_suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default().skip_column("movies", "original_language"),
        &kinds,
    );
    let lang_index: Vec<usize> = data
        .movie_language
        .iter()
        .map(|l| retro_datasets::tmdb::LANGUAGES.iter().position(|x| x == l).expect("lang"))
        .collect();
    let mut rows = Vec::new();
    for kind in kinds {
        let (inputs, ys) = movie_task_inputs(&lang_suite, kind, &data.movie_titles, &lang_index);
        let n = inputs.rows();
        let accs = run_imputation(
            &inputs,
            &ys,
            retro_datasets::tmdb::LANGUAGES.len(),
            n * 6 / 10,
            n * 3 / 10,
            3,
            &profile,
            43,
        );
        rows.push(ReportRow::from_samples(kind.label(), &accs));
    }
    // MODE baseline.
    let en = lang_index.iter().filter(|&&l| l == 0).count();
    rows.push(ReportRow::from_samples("MODE", &[en as f64 / lang_index.len() as f64]));
    print_report("language imputation", "accuracy", &rows);
}
