//! **Figure 13** — regression of movie budgets (MAE, lower is better),
//! comparing all embedding types with the Fig. 5b network.
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig13_regression [--movies N] [--reps R]
//! ```
//!
//! Expected shape (paper): the node embeddings (DW) clearly beat the
//! text-based embeddings (budget is driven by relational features);
//! relational retrofitting slightly beats MF/PV; the +DW concatenations
//! bring every text method down to (slightly below) DW's error.

use retro_bench::{movie_task_inputs, print_report, write_report, ReportRow};
use retro_datasets::{TmdbConfig, TmdbDataset};
use retro_eval::tasks::run_regression;
use retro_eval::{EmbeddingKind, EmbeddingSuite, NetProfile, SuiteConfig};
use retro_nn::Activation;

fn main() {
    let n_movies = retro_bench::arg_num("movies", 700usize);
    let reps = retro_bench::arg_num("reps", 5usize);
    let full = retro_bench::arg_num("full", 0usize) == 1;

    let data = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    let kinds = EmbeddingKind::all();
    let suite = EmbeddingSuite::build(&data.db, &data.base, &SuiteConfig::default(), &kinds);

    // §5.6 samples 9000 train / 1000 test; scale to the dataset.
    let train_n = n_movies * 8 / 10;
    let test_n = n_movies / 10;
    let profile = if full {
        NetProfile::paper_regression()
    } else {
        NetProfile { hidden: vec![96, 96], activation: Activation::Relu, ..NetProfile::fast(96) }
    };

    // Mean-predictor baseline for context.
    let mean_budget = data.movie_budget.iter().sum::<f64>() / data.movie_budget.len() as f64;
    let mean_mae = data.movie_budget.iter().map(|b| (b - mean_budget).abs()).sum::<f64>()
        / data.movie_budget.len() as f64;

    let mut rows = Vec::new();
    for kind in kinds {
        let (inputs, ys) = movie_task_inputs(&suite, kind, &data.movie_titles, &data.movie_budget);
        let maes = run_regression(&inputs, &ys, train_n, test_n, reps, &profile, 0xF13);
        rows.push(ReportRow::from_samples(kind.label(), &maes));
    }
    rows.push(ReportRow::from_samples("MEAN", &[mean_mae]));

    print_report("Fig. 13: regression of budget (MAE, USD)", "MAE", &rows);
    let path = write_report("fig13_regression", "Fig. 13: budget regression", &rows);
    println!("\nreport: {}", path.display());
    println!(
        "expected shape: DW lowest among single embeddings; RO/RN < MF/PV; +DW lowest overall"
    );
}
