//! **Figure 8** — binary classification of US-American directors across all
//! embedding types (PV, MF, DW, RO, RN and the +DW concatenations).
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig8_binary_classification \
//!     [--movies N] [--reps R] [--full 1]
//! ```
//!
//! Expected shape (paper Fig. 8): best accuracies from RN and RO (RN
//! slightly ahead); DW alone comparable to PV/MF; every +DW concatenation
//! lifts accuracy further.

use retro_bench::{director_task_inputs, print_report, write_report, ReportRow};
use retro_datasets::{TmdbConfig, TmdbDataset};
use retro_eval::tasks::run_binary_classification;
use retro_eval::{EmbeddingKind, EmbeddingSuite, NetProfile, SuiteConfig};

fn main() {
    let n_movies = retro_bench::arg_num("movies", 600usize);
    let reps = retro_bench::arg_num("reps", 5usize);
    let full = retro_bench::arg_num("full", 0usize) == 1;

    let data = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    let labels = data.us_director_labels();
    let us = labels.iter().filter(|(_, b)| *b).count();
    println!(
        "directors: {} ({} US); movies: {n_movies}; reps: {reps}; profile: {}",
        labels.len(),
        us,
        if full { "paper (600 hidden)" } else { "fast" }
    );

    let kinds = EmbeddingKind::all();
    let suite = EmbeddingSuite::build(&data.db, &data.base, &SuiteConfig::default(), &kinds);

    // §5.5.1 samples 3000 per class; we scale to the synthetic dataset.
    let per_class = (us.min(labels.len() - us) / 2 * 2).min(150);
    let profile = if full { NetProfile::paper_binary() } else { NetProfile::fast(64) };

    let mut rows = Vec::new();
    for kind in kinds {
        let (inputs, ys) = director_task_inputs(&suite, kind, &labels);
        let accs = run_binary_classification(&inputs, &ys, per_class, reps, &profile, 0xF168);
        rows.push(ReportRow::from_samples(kind.label(), &accs));
    }
    print_report("Fig. 8: binary classification of US directors", "accuracy", &rows);
    let path =
        write_report("fig8_binary_classification", "Fig. 8: US-director classification", &rows);
    println!("\nreport: {}", path.display());
    println!("expected shape: RN >= RO > MF ~= PV; DW between; +DW variants on top");
}
