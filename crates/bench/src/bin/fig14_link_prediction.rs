//! **Figure 14** — link prediction for movie–genre relations.
//!
//! Embeddings are trained with the movie_genre relation **ablated**
//! (§5.7: "we trained our embeddings without considering the respective
//! relations"), then a Fig. 5c network classifies candidate (movie, genre)
//! edges with as many negative samples as positives.
//!
//! ```text
//! cargo run --release -p retro-bench --bin fig14_link_prediction [--movies N] [--reps R]
//! ```
//!
//! Expected shape (paper): DW fails (genre nodes hang off a single blank
//! node once the relation is removed); retrofitted vectors clearly beat
//! plain word embeddings; MF slightly below RO/RN; +DW helps the text
//! methods.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_bench::{print_report, write_report, ReportRow};
use retro_datasets::tmdb::GENRES;
use retro_datasets::{TmdbConfig, TmdbDataset};
use retro_eval::tasks::link::{run_link_prediction, EdgeSample, LinkProfile};
use retro_eval::{EmbeddingKind, EmbeddingSuite, SuiteConfig};
use retro_linalg::Matrix;

fn main() {
    let n_movies = retro_bench::arg_num("movies", 600usize);
    let reps = retro_bench::arg_num("reps", 5usize);
    let full = retro_bench::arg_num("full", 0usize) == 1;

    let data = TmdbDataset::generate(TmdbConfig { n_movies, ..TmdbConfig::default() });
    // Ablate the movie–genre relation but keep genre text values.
    let config = SuiteConfig::default().skip_relation("genres.name");
    let kinds = EmbeddingKind::all();
    let suite = EmbeddingSuite::build(&data.db, &data.base, &config, &kinds);

    // Candidate edges: every true (movie, genre) pair positive, an equal
    // number of absent pairs negative (§5.7).
    let mut rng = StdRng::seed_from_u64(0xF14);
    let movie_ids: Vec<usize> = data
        .movie_titles
        .iter()
        .map(|t| suite.catalog.lookup("movies", "title", t).expect("title"))
        .collect();
    let genre_ids: Vec<usize> =
        GENRES.iter().map(|g| suite.catalog.lookup("genres", "name", g).expect("genre")).collect();

    let mut samples: Vec<(usize, usize, bool)> = Vec::new();
    for (m, genres) in data.movie_genres.iter().enumerate() {
        for &g in genres {
            samples.push((m, g, true));
        }
    }
    let n_pos = samples.len();
    let mut negatives = 0;
    while negatives < n_pos {
        let m = rng.gen_range(0..n_movies);
        let g = rng.gen_range(0..GENRES.len());
        if !data.movie_genres[m].contains(&g) {
            samples.push((m, g, false));
            negatives += 1;
        }
    }
    println!("candidate edges: {} ({} positive)", samples.len(), n_pos);
    let train_n = samples.len() * 6 / 10;
    let test_n = samples.len() * 3 / 10;

    let profile = if full { LinkProfile::default() } else { LinkProfile::fast(64) };
    let mut rows = Vec::new();
    for kind in kinds {
        let matrix = suite.matrix(kind);
        // Source matrix: one row per movie; target matrix: one row per genre.
        let sources: Matrix = matrix.select_rows(&movie_ids);
        let targets: Matrix = matrix.select_rows(&genre_ids);
        let edges: Vec<EdgeSample> = samples
            .iter()
            .map(|&(m, g, exists)| EdgeSample { source: m, target: g, exists })
            .collect();
        let accs =
            run_link_prediction(&sources, &targets, &edges, train_n, test_n, reps, &profile, 0xF14);
        rows.push(ReportRow::from_samples(kind.label(), &accs));
    }
    print_report("Fig. 14: link prediction for genres", "accuracy", &rows);
    let path = write_report("fig14_link_prediction", "Fig. 14: genre link prediction", &rows);
    println!("\nreport: {}", path.display());
    println!("expected shape: DW ~chance; RN/RO > MF > PV; +DW lifts text methods");
}
