//! **Figure 11** — hyperparameter grid search for original-language
//! imputation with the series (RN) solver.

use retro_bench::grid::{grid_main, GridTask};
use retro_core::Solver;

fn main() {
    grid_main("Fig 11 language RN", Solver::Rn, GridTask::LanguageImputation);
}
