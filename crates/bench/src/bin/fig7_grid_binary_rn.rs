//! **Figure 7** — hyperparameter grid search for binary classification with
//! the series (RN) solver, with and without DeepWalk concatenation.
//!
//! Expected shape: optimum has γ > δ; δ's influence is stronger than for RO
//! (Eq. 14), and non-converging high-δ/low-α corners score poorly.

use retro_bench::grid::{grid_main, GridTask};
use retro_core::Solver;

fn main() {
    grid_main("Fig 7 binary RN", Solver::Rn, GridTask::BinaryDirectors);
}
