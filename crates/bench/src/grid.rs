//! Shared hyperparameter grid-search driver for Figs. 6/7 (binary
//! classification) and Figs. 10/11 (language imputation).
//!
//! For every (α, β, γ, δ) combination, embeddings are retrofitted with the
//! chosen solver, optionally concatenated with (once-trained) DeepWalk node
//! embeddings, and scored on the downstream task. Rows come back sorted by
//! accuracy so the figure's "which corner of the grid wins" message is
//! immediate.

use retro_core::combine::concat_normalized;
use retro_core::graphgen::generate_graph;
use retro_core::{Hyperparameters, Retro, RetroConfig, RetrofitProblem, Solver};
use retro_datasets::TmdbDataset;
use retro_deepwalk::{DeepWalk, DeepWalkConfig, SgnsConfig};
use retro_eval::tasks::{run_binary_classification, run_imputation};
use retro_eval::NetProfile;
use retro_graph::WalkConfig;
use retro_linalg::Matrix;

use crate::ReportRow;

/// Which downstream task scores the grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridTask {
    /// Fig. 6/7: US-director binary classification.
    BinaryDirectors,
    /// Fig. 10/11: original-language imputation.
    LanguageImputation,
}

/// The grid axes (the paper sweeps small integer settings).
#[derive(Clone, Debug)]
pub struct Grid {
    pub alphas: Vec<f32>,
    pub betas: Vec<f32>,
    pub gammas: Vec<f32>,
    pub deltas: Vec<f32>,
}

impl Default for Grid {
    fn default() -> Self {
        Self {
            alphas: vec![1.0, 2.0],
            betas: vec![0.0, 1.0],
            gammas: vec![1.0, 2.0, 3.0],
            deltas: vec![0.0, 1.0, 3.0],
        }
    }
}

/// Run the grid search; returns one report row per configuration,
/// best-first.
#[allow(clippy::too_many_arguments)]
pub fn run_grid(
    data: &TmdbDataset,
    solver: Solver,
    task: GridTask,
    with_dw: bool,
    grid: &Grid,
    repetitions: usize,
    profile: &NetProfile,
    seed: u64,
) -> Vec<ReportRow> {
    // Problem extraction once (solver-independent); the language task
    // ablates its label column.
    let skip: Vec<(&str, &str)> = match task {
        GridTask::BinaryDirectors => vec![],
        GridTask::LanguageImputation => vec![("movies", "original_language")],
    };
    let problem = RetrofitProblem::build(&data.db, &data.base, &skip, &[]);

    // DeepWalk once, if requested.
    let dw = with_dw.then(|| {
        let generated = generate_graph(&problem.catalog, &problem.groups);
        let config = DeepWalkConfig {
            walks: WalkConfig { walks_per_node: 8, walk_length: 20 },
            sgns: SgnsConfig { dim: data.base.dim(), ..SgnsConfig::default() },
            seed,
        };
        let node = DeepWalk::new(config).train(&generated.graph);
        node.select_rows(&(0..problem.len()).collect::<Vec<_>>())
    });

    let mut rows = Vec::new();
    for &alpha in &grid.alphas {
        for &beta in &grid.betas {
            for &gamma in &grid.gammas {
                for &delta in &grid.deltas {
                    let params = Hyperparameters::new(alpha, beta, gamma, delta);
                    let engine = Retro::new(RetroConfig {
                        solver,
                        params,
                        iterations: 10,
                        ..RetroConfig::default()
                    });
                    let output = engine.solve(problem.clone());
                    let emb = match &dw {
                        Some(dw) => concat_normalized(&output.embeddings, dw),
                        None => output.embeddings,
                    };
                    let accs = score(data, &problem, &emb, task, repetitions, profile, seed);
                    rows.push(ReportRow::from_samples(
                        format!("a={alpha} b={beta} g={gamma} d={delta}"),
                        &accs,
                    ));
                }
            }
        }
    }
    rows.sort_by(|a, b| b.mean.partial_cmp(&a.mean).unwrap_or(std::cmp::Ordering::Equal));
    rows
}

fn score(
    data: &TmdbDataset,
    problem: &RetrofitProblem,
    embeddings: &Matrix,
    task: GridTask,
    repetitions: usize,
    profile: &NetProfile,
    seed: u64,
) -> Vec<f64> {
    match task {
        GridTask::BinaryDirectors => {
            let labels = data.us_director_labels();
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for (name, is_us) in &labels {
                if let Some(id) = problem.catalog.lookup("persons", "name", name) {
                    rows.push(embeddings.row(id).to_vec());
                    ys.push(*is_us);
                }
            }
            let inputs = Matrix::from_rows(&rows);
            let us = ys.iter().filter(|b| **b).count();
            let per_class = (us.min(ys.len() - us) / 2 * 2).max(2);
            run_binary_classification(&inputs, &ys, per_class.min(120), repetitions, profile, seed)
        }
        GridTask::LanguageImputation => {
            let mut rows = Vec::new();
            let mut ys = Vec::new();
            for (m, title) in data.movie_titles.iter().enumerate() {
                if let Some(id) = problem.catalog.lookup("movies", "title", title) {
                    rows.push(embeddings.row(id).to_vec());
                    ys.push(
                        retro_datasets::tmdb::LANGUAGES
                            .iter()
                            .position(|l| *l == data.movie_language[m])
                            .expect("known language"),
                    );
                }
            }
            let inputs = Matrix::from_rows(&rows);
            let n = inputs.rows();
            run_imputation(
                &inputs,
                &ys,
                retro_datasets::tmdb::LANGUAGES.len(),
                n * 6 / 10,
                n * 3 / 10,
                repetitions,
                profile,
                seed,
            )
        }
    }
}

/// Standard main body shared by the four grid binaries.
pub fn grid_main(figure: &str, solver: Solver, task: GridTask) {
    let n_movies = crate::arg_num("movies", 300usize);
    let reps = crate::arg_num("reps", 2usize);
    let with_dw = crate::arg_value("dw", "both");

    let data = TmdbDataset::generate(retro_datasets::TmdbConfig {
        n_movies,
        dim: 48,
        ..retro_datasets::TmdbConfig::default()
    });
    let profile = NetProfile::fast(48).with_epochs(80, Some(25));
    let grid = Grid::default();

    for dw in [false, true] {
        if (with_dw == "only" && !dw) || (with_dw == "none" && dw) {
            continue;
        }
        let suffix = if dw { " + DW concat" } else { " (retrofitted only)" };
        let rows = run_grid(&data, solver, task, dw, &grid, reps, &profile, 99);
        crate::print_report(&format!("{figure}{suffix}"), "accuracy", &rows);
        let name = format!(
            "{}_{}",
            figure.to_lowercase().replace([' ', '.'], ""),
            if dw { "dw" } else { "plain" }
        );
        let path = crate::write_report(&name, figure, &rows);
        println!("report: {}", path.display());
    }
}
