//! Uniform random walks over the graph — DeepWalk's training corpus.
//!
//! DeepWalk (Perozzi et al., 2014) treats truncated random walks as
//! "sentences" over node ids and feeds them to a Skip-Gram model. This
//! module only generates the walks; the Skip-Gram training lives in
//! `retro-deepwalk`.

use rand::Rng;

use crate::Graph;

/// Walk-generation parameters (DeepWalk's γ and t).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkConfig {
    /// Walks started per node (γ).
    pub walks_per_node: usize,
    /// Maximum walk length in nodes (t).
    pub walk_length: usize,
}

impl Default for WalkConfig {
    fn default() -> Self {
        // DeepWalk's published defaults are γ=80, t=40; we default to a
        // lighter setting that preserves the method's behaviour at the scale
        // of the reproduction datasets (Table 2 measures DW as the slowest
        // method either way).
        Self { walks_per_node: 10, walk_length: 40 }
    }
}

/// A corpus of random walks (each a sequence of node ids).
#[derive(Clone, Debug)]
pub struct RandomWalks {
    walks: Vec<Vec<u32>>,
}

impl RandomWalks {
    /// Generate walks: for each round, every non-isolated node starts one
    /// walk; node order is shuffled per round (as in the original
    /// algorithm); each step moves to a uniformly random neighbour.
    pub fn generate<R: Rng + ?Sized>(graph: &Graph, config: WalkConfig, rng: &mut R) -> Self {
        let starts: Vec<usize> = (0..graph.node_count()).filter(|&v| graph.degree(v) > 0).collect();
        let mut walks = Vec::with_capacity(starts.len() * config.walks_per_node);
        let mut order = starts;
        for _ in 0..config.walks_per_node {
            // Fisher–Yates shuffle.
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for &start in &order {
                let mut walk = Vec::with_capacity(config.walk_length);
                let mut cur = start;
                walk.push(cur as u32);
                for _ in 1..config.walk_length {
                    let neighbors = graph.neighbors(cur);
                    if neighbors.is_empty() {
                        break;
                    }
                    cur = neighbors[rng.gen_range(0..neighbors.len())] as usize;
                    walk.push(cur as u32);
                }
                walks.push(walk);
            }
        }
        Self { walks }
    }

    /// The walks.
    pub fn walks(&self) -> &[Vec<u32>] {
        &self.walks
    }

    /// Number of walks.
    pub fn len(&self) -> usize {
        self.walks.len()
    }

    /// True when no walks were generated (empty or fully isolated graph).
    pub fn is_empty(&self) -> bool {
        self.walks.is_empty()
    }

    /// Total number of node visits across all walks.
    pub fn total_tokens(&self) -> usize {
        self.walks.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.add_node(NodeKind::TextValue { label: format!("n{i}") });
        }
        for i in 1..n {
            g.add_edge_labelled(i - 1, i, "e");
        }
        g
    }

    #[test]
    fn walk_counts_match_config() {
        let g = path_graph(5);
        let mut rng = StdRng::seed_from_u64(1);
        let w =
            RandomWalks::generate(&g, WalkConfig { walks_per_node: 3, walk_length: 7 }, &mut rng);
        assert_eq!(w.len(), 15);
        assert!(w.walks().iter().all(|walk| walk.len() == 7));
    }

    #[test]
    fn walks_follow_edges() {
        let g = path_graph(6);
        let mut rng = StdRng::seed_from_u64(2);
        let w = RandomWalks::generate(&g, WalkConfig::default(), &mut rng);
        for walk in w.walks() {
            for pair in walk.windows(2) {
                assert!(g.neighbors(pair[0] as usize).contains(&pair[1]));
            }
        }
    }

    #[test]
    fn isolated_nodes_start_no_walks() {
        let mut g = path_graph(3);
        g.add_node(NodeKind::TextValue { label: "isolated".into() });
        let mut rng = StdRng::seed_from_u64(3);
        let w =
            RandomWalks::generate(&g, WalkConfig { walks_per_node: 2, walk_length: 4 }, &mut rng);
        assert_eq!(w.len(), 6); // 3 connected nodes × 2 rounds
        assert!(w.walks().iter().all(|walk| walk.iter().all(|&n| n != 3)));
    }

    #[test]
    fn empty_graph_yields_no_walks() {
        let g = Graph::new();
        let mut rng = StdRng::seed_from_u64(4);
        let w = RandomWalks::generate(&g, WalkConfig::default(), &mut rng);
        assert!(w.is_empty());
        assert_eq!(w.total_tokens(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = path_graph(8);
        let w1 = RandomWalks::generate(&g, WalkConfig::default(), &mut StdRng::seed_from_u64(7));
        let w2 = RandomWalks::generate(&g, WalkConfig::default(), &mut StdRng::seed_from_u64(7));
        assert_eq!(w1.walks(), w2.walks());
    }
}
