//! # retro-graph
//!
//! The §3.4 property graph and the random walks DeepWalk trains on.
//!
//! The graph `G = (V, E)` has a node for every distinct text value of every
//! database column ([`NodeKind::TextValue`]) plus one *blank node* per text
//! column ([`NodeKind::Category`]). Edges are the relational connections
//! `Er` (labelled) plus the categorial edges `EC` linking each text value to
//! its column's blank node. The graph is undirected: every edge is stored in
//! both adjacency lists.

pub mod walks;

pub use walks::{RandomWalks, WalkConfig};

/// What a node stands for.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A distinct text value of one column; `label` is the text itself.
    TextValue { label: String },
    /// The blank node of one column (category); `label` is `table.column`.
    Category { label: String },
}

impl NodeKind {
    /// The display label.
    pub fn label(&self) -> &str {
        match self {
            NodeKind::TextValue { label } | NodeKind::Category { label } => label,
        }
    }

    /// True for text-value nodes.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::TextValue { .. })
    }
}

/// An undirected labelled multigraph over text values and category nodes.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<NodeKind>,
    /// Adjacency lists; edges appear in both endpoint lists.
    adjacency: Vec<Vec<u32>>,
    /// Edge labels, parallel per adjacency entry (relation-group name or
    /// `"category"`).
    edge_labels: Vec<Vec<u16>>,
    /// Interned label strings indexed by the u16 in `edge_labels`.
    labels: Vec<String>,
    edge_count: usize,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, kind: NodeKind) -> usize {
        self.nodes.push(kind);
        self.adjacency.push(Vec::new());
        self.edge_labels.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Intern an edge-label string; returns its id.
    pub fn intern_label(&mut self, label: &str) -> u16 {
        if let Some(pos) = self.labels.iter().position(|l| l == label) {
            return pos as u16;
        }
        self.labels.push(label.to_owned());
        (self.labels.len() - 1) as u16
    }

    /// Add an undirected edge with an interned label id.
    ///
    /// # Panics
    /// Panics on out-of-range node ids or self-loops (the paper's graph has
    /// none; a self-loop would bias random walks).
    pub fn add_edge(&mut self, a: usize, b: usize, label: u16) {
        assert!(a < self.nodes.len() && b < self.nodes.len(), "add_edge: bad node id");
        assert_ne!(a, b, "add_edge: self-loop");
        self.adjacency[a].push(b as u32);
        self.edge_labels[a].push(label);
        self.adjacency[b].push(a as u32);
        self.edge_labels[b].push(label);
        self.edge_count += 1;
    }

    /// Convenience: add an edge with a string label (interned on the fly).
    pub fn add_edge_labelled(&mut self, a: usize, b: usize, label: &str) {
        let id = self.intern_label(label);
        self.add_edge(a, b, id);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The node payload.
    pub fn node(&self, id: usize) -> &NodeKind {
        &self.nodes[id]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// Neighbour ids of `id` (with multiplicity).
    pub fn neighbors(&self, id: usize) -> &[u32] {
        &self.adjacency[id]
    }

    /// `(neighbor, label string)` pairs of `id`.
    pub fn neighbors_labelled(&self, id: usize) -> impl Iterator<Item = (usize, &str)> {
        self.adjacency[id]
            .iter()
            .zip(&self.edge_labels[id])
            .map(move |(&n, &l)| (n as usize, self.labels[l as usize].as_str()))
    }

    /// Degree of `id`.
    pub fn degree(&self, id: usize) -> usize {
        self.adjacency[id].len()
    }

    /// Ids of all isolated nodes (degree 0) — these cannot be walked from
    /// and receive no DeepWalk vector updates.
    pub fn isolated_nodes(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.adjacency[i].is_empty()).collect()
    }

    /// Check the undirected invariant: `b ∈ adj(a) ⇔ a ∈ adj(b)` with equal
    /// multiplicity. Used by tests and debug assertions.
    pub fn is_symmetric(&self) -> bool {
        for (a, neighbors) in self.adjacency.iter().enumerate() {
            for &b in neighbors {
                let forward = neighbors.iter().filter(|&&x| x == b).count();
                let back = self.adjacency[b as usize].iter().filter(|&&x| x as usize == a).count();
                if forward != back {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node(NodeKind::TextValue { label: "alien".into() });
        let b = g.add_node(NodeKind::TextValue { label: "ridley scott".into() });
        let c = g.add_node(NodeKind::Category { label: "movies.title".into() });
        g.add_edge_labelled(a, b, "movie->director");
        g.add_edge_labelled(a, c, "category");
        g
    }

    #[test]
    fn nodes_and_edges_counted() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn edges_are_undirected() {
        let g = sample();
        assert!(g.is_symmetric());
        assert!(g.neighbors(1).contains(&0));
        assert!(g.neighbors(0).contains(&1));
    }

    #[test]
    fn labels_are_interned_and_reported() {
        let g = sample();
        let labels: Vec<_> = g.neighbors_labelled(0).map(|(_, l)| l.to_owned()).collect();
        assert_eq!(labels, vec!["movie->director", "category"]);
    }

    #[test]
    fn intern_reuses_existing_labels() {
        let mut g = sample();
        let l1 = g.intern_label("category");
        let l2 = g.intern_label("category");
        assert_eq!(l1, l2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = sample();
        g.add_edge_labelled(0, 0, "x");
    }

    #[test]
    fn isolated_nodes_found() {
        let mut g = sample();
        let lonely = g.add_node(NodeKind::TextValue { label: "orphan".into() });
        assert_eq!(g.isolated_nodes(), vec![lonely]);
    }

    #[test]
    fn node_kind_helpers() {
        let g = sample();
        assert!(g.node(0).is_text());
        assert!(!g.node(2).is_text());
        assert_eq!(g.node(2).label(), "movies.title");
    }
}
