//! The Fig. 3 toy example: three movies, two countries, 2-D embeddings.
//!
//! "We trained 2-dimensional embeddings for a small example dataset
//! containing three movies and the country where those movies have been
//! produced. [...] 'Amélie' was produced in 'France', the other movies in
//! the 'USA'."

use retro_core::catalog::TextValueCatalog;
use retro_core::relations::{RelationGroup, RelationKind};
use retro_core::RetrofitProblem;
use retro_embed::EmbeddingSet;

/// Handles into the toy problem for plotting/assertions.
#[derive(Clone, Debug)]
pub struct ToyExample {
    /// The assembled problem (2-D, 5 text values).
    pub problem: RetrofitProblem,
    /// Value ids: `[inception, godfather, amelie]`.
    pub movies: [usize; 3],
    /// Value ids: `[usa, france]`.
    pub countries: [usize; 2],
}

/// Build the Fig. 3 toy problem.
///
/// Base vectors are fixed 2-D positions chosen so the four hyperparameter
/// effects of Fig. 3 are visible: movies are spread apart, countries sit
/// off to the sides, "Amélie" starts nearer to "France".
pub fn toy_problem() -> ToyExample {
    let mut catalog = TextValueCatalog::default();
    let movies_cat = catalog.add_category("movies", "title");
    let countries_cat = catalog.add_category("countries", "name");
    let inception = catalog.intern(movies_cat, "inception") as usize;
    let godfather = catalog.intern(movies_cat, "godfather") as usize;
    let amelie = catalog.intern(movies_cat, "amelie") as usize;
    let usa = catalog.intern(countries_cat, "usa") as usize;
    let france = catalog.intern(countries_cat, "france") as usize;

    let groups = vec![RelationGroup::new(
        "movies.title~countries.name".into(),
        movies_cat,
        countries_cat,
        RelationKind::ForeignKey,
        vec![
            (inception as u32, usa as u32),
            (godfather as u32, usa as u32),
            (amelie as u32, france as u32),
        ],
    )];

    let base = EmbeddingSet::new(
        vec![
            "inception".into(),
            "godfather".into(),
            "amelie".into(),
            "usa".into(),
            "france".into(),
        ],
        vec![vec![1.0, 1.2], vec![1.4, -0.4], vec![-0.8, 1.0], vec![1.8, 0.4], vec![-1.4, -0.2]],
    );

    let problem = RetrofitProblem::from_parts(catalog, groups, &base);
    ToyExample { problem, movies: [inception, godfather, amelie], countries: [usa, france] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_core::hyper::Hyperparameters;
    use retro_core::solver::{solve_rn, solve_ro};
    use retro_linalg::vector;

    #[test]
    fn toy_has_five_two_dimensional_values() {
        let toy = toy_problem();
        assert_eq!(toy.problem.len(), 5);
        assert_eq!(toy.problem.dim(), 2);
        assert!(toy.problem.oov.iter().all(|&o| !o));
    }

    #[test]
    fn higher_alpha_stays_closer_to_original() {
        // Fig. 3a: learned embeddings stay closer to their originals as α
        // increases.
        let toy = toy_problem();
        let mut prev_drift = f32::INFINITY;
        for alpha in [1.0f32, 2.0, 3.0] {
            let params = Hyperparameters::new(alpha, 1.0, 2.0, 1.0);
            let w = solve_ro(&toy.problem, &params, 20);
            let drift: f32 = (0..5).map(|i| vector::dist(w.row(i), toy.problem.w0.row(i))).sum();
            assert!(drift < prev_drift, "alpha {alpha}: drift {drift} !< {prev_drift}");
            prev_drift = drift;
        }
    }

    #[test]
    fn higher_beta_tightens_categories() {
        // Fig. 3b: higher β clusters the movie vectors together.
        let toy = toy_problem();
        let spread = |w: &retro_linalg::Matrix| {
            let [a, b, c] = toy.movies;
            vector::dist(w.row(a), w.row(b))
                + vector::dist(w.row(b), w.row(c))
                + vector::dist(w.row(a), w.row(c))
        };
        let lo = solve_ro(&toy.problem, &Hyperparameters::new(2.0, 1.0, 2.0, 1.0), 20);
        let hi = solve_ro(&toy.problem, &Hyperparameters::new(2.0, 3.0, 2.0, 1.0), 20);
        assert!(spread(&hi) < spread(&lo));
    }

    #[test]
    fn higher_gamma_pulls_related_pairs() {
        // Fig. 3c: higher γ brings movies nearer their production country.
        let toy = toy_problem();
        let related = |w: &retro_linalg::Matrix| {
            vector::dist(w.row(toy.movies[0]), w.row(toy.countries[0]))
                + vector::dist(w.row(toy.movies[2]), w.row(toy.countries[1]))
        };
        let lo = solve_ro(&toy.problem, &Hyperparameters::new(2.0, 1.0, 1.0, 1.0), 20);
        let hi = solve_ro(&toy.problem, &Hyperparameters::new(2.0, 1.0, 3.0, 1.0), 20);
        assert!(related(&hi) < related(&lo));
    }

    #[test]
    fn delta_zero_concentrates_vectors_near_origin() {
        // Fig. 3d: "δ = 0 causes all vectors to concentrate around the
        // origin" for the series solver (before normalization the pull has
        // no counter-force; after normalization the *separation* shrinks).
        let toy = toy_problem();
        let w0 = solve_rn(&toy.problem, &Hyperparameters::new(2.0, 1.0, 3.0, 0.0), 20);
        let w2 = solve_rn(&toy.problem, &Hyperparameters::new(2.0, 1.0, 3.0, 2.0), 20);
        // Average pairwise cosine similarity: higher when concentrated.
        let avg_cos = |w: &retro_linalg::Matrix| {
            let mut s = 0.0f32;
            let mut n = 0;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s += vector::cosine(w.row(i), w.row(j));
                    n += 1;
                }
            }
            s / n as f32
        };
        assert!(avg_cos(&w0) > avg_cos(&w2));
    }
}
