//! Deterministic synthetic naming: region-flavoured person names and
//! topic-flavoured content tokens.
//!
//! Person names are built from per-region syllable pools, so a name's
//! *surface form* carries a (noisy) signal of its bearer's region — the
//! stand-in for the fact that real word embeddings place "Jean-Pierre"
//! nearer to French entities than "Bubba" is. Content tokens (for titles,
//! overviews, reviews, keywords) are drawn from per-topic pools.

use rand::Rng;

/// Per-region syllable pools for person-name generation.
const REGION_SYLLABLES: [&[&str]; 4] = [
    // Region 0: "anglo"
    &["john", "smith", "bob", "mary", "bill", "ton", "son", "wood", "ham", "ley", "jack", "kate"],
    // Region 1: "romance"
    &[
        "jean", "pierre", "marie", "lou", "elle", "eau", "fran", "cois", "luc", "ette", "ami",
        "rene",
    ],
    // Region 2: "germanic"
    &[
        "hans", "gret", "wolf", "gang", "berg", "stein", "fritz", "heim", "brun", "dorf", "karl",
        "ula",
    ],
    // Region 3: "east"
    &["yuki", "taro", "chen", "wei", "ming", "sato", "kawa", "yama", "li", "zhou", "hana", "kim"],
];

/// Number of name regions.
pub const N_REGIONS: usize = REGION_SYLLABLES.len();

/// Generate a three-syllable person name flavoured by `region`.
///
/// With probability `leak`, each syllable comes from the region pool
/// (strong signal); otherwise syllables mix across regions (noise).
/// Syllables stay separate words so the §3.1 tokenizer can match them
/// against the embedding vocabulary; the numeric suffix keeps names unique
/// (and is itself out-of-vocabulary, contributing nothing to the centroid).
pub fn person_name<R: Rng + ?Sized>(
    region: usize,
    serial: usize,
    leak: f64,
    rng: &mut R,
) -> String {
    let pick = |rng: &mut R| -> &'static str {
        let pool = if rng.gen_bool(leak) {
            REGION_SYLLABLES[region % N_REGIONS]
        } else {
            REGION_SYLLABLES[rng.gen_range(0..N_REGIONS)]
        };
        pool[rng.gen_range(0..pool.len())]
    };
    format!("{} {} {} {serial}", pick(rng), pick(rng), pick(rng))
}

/// The syllables of region `region` (used to build the embedding
/// vocabulary: each syllable token gets the region's topic mixture).
pub fn region_syllables(region: usize) -> &'static [&'static str] {
    REGION_SYLLABLES[region % N_REGIONS]
}

/// Generate a pool of distinct content tokens for one topic, named
/// deterministically (`<prefix><topic>_<k>`).
pub fn topic_tokens(prefix: &str, topic: usize, count: usize) -> Vec<String> {
    (0..count).map(|k| format!("{prefix}{topic}w{k}")).collect()
}

/// Compose a multi-token text by sampling `len` tokens from `pool`.
pub fn compose<R: Rng + ?Sized>(pool: &[String], len: usize, rng: &mut R) -> String {
    let mut words = Vec::with_capacity(len);
    for _ in 0..len {
        words.push(pool[rng.gen_range(0..pool.len())].as_str());
    }
    words.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn person_names_are_unique_by_serial() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = person_name(0, 1, 1.0, &mut rng);
        let b = person_name(0, 2, 1.0, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn full_leak_uses_only_region_syllables() {
        let mut rng = StdRng::seed_from_u64(2);
        let pool = region_syllables(1);
        for _ in 0..20 {
            let name = person_name(1, 0, 1.0, &mut rng);
            for word in name.split(' ').take(3) {
                assert!(pool.contains(&word), "{word} not from region 1");
            }
        }
    }

    #[test]
    fn topic_tokens_are_distinct_across_topics() {
        let a = topic_tokens("g", 0, 5);
        let b = topic_tokens("g", 1, 5);
        assert!(a.iter().all(|t| !b.contains(t)));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn compose_draws_from_pool() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = topic_tokens("k", 2, 4);
        let text = compose(&pool, 3, &mut rng);
        for word in text.split(' ') {
            assert!(pool.iter().any(|t| t == word));
        }
    }
}
