//! Synthetic Google Play Store dataset.
//!
//! Schema shape matches the paper's Table 1 (6 tables + 1 pure n:m link
//! table):
//!
//! ```text
//! apps(id, name, rating, category_id → categories, pricing_id → pricing_types,
//!      age_id → age_groups)
//! categories(id, name)   pricing_types(id, name)   age_groups(id, name)
//! reviews(id, text, app_id → apps)
//! genres(id, name)       app_genre(app_id, genre_id)      (link table)
//! ```
//!
//! Couplings: review text is strongly flavoured by the app's category
//! (which is why the paper's RO/RN beat DataWig by up to 13% on category
//! imputation — DataWig cannot reach the review table), app names are only
//! weakly flavoured, and genres mirror categories.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_embed::synthetic::{embedding_set_from_mixtures, LatentSpace};
use retro_embed::EmbeddingSet;
use retro_store::{Database, TableSchema, Value};

use crate::names;
use crate::preset::SizePreset;

/// The 33 app categories of the paper's dataset.
pub const CATEGORIES: [&str; 33] = [
    "art and design",
    "auto and vehicles",
    "beauty",
    "books",
    "business",
    "comics",
    "communication",
    "dating",
    "education",
    "entertainment",
    "events",
    "finance",
    "food and drink",
    "health",
    "house and home",
    "libraries",
    "lifestyle",
    "maps",
    "medical",
    "music and audio",
    "news",
    "parenting",
    "personalization",
    "photography",
    "productivity",
    "shopping",
    "social",
    "sports",
    "tools",
    "travel",
    "video players",
    "weather",
    "games",
];

/// Pricing types.
pub const PRICING: [&str; 3] = ["free", "paid", "freemium"];

/// Target age groups.
pub const AGE_GROUPS: [&str; 5] = ["everyone", "everyone 10 plus", "teen", "mature", "adults only"];

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct GooglePlayConfig {
    /// Number of apps (default 400).
    pub n_apps: usize,
    /// Embedding dimensionality (default 64).
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Out-of-vocabulary probability for name tokens.
    pub oov_rate: f64,
    /// Embedding noise.
    pub noise: f32,
    /// Probability that an app-name token reveals the category (weak by
    /// default — the name alone supports only PV-level accuracy).
    pub name_leak: f64,
    /// Probability that a review token reveals the category (strong by
    /// default — reviews are the retrofitting advantage).
    pub review_leak: f64,
}

impl Default for GooglePlayConfig {
    fn default() -> Self {
        Self {
            n_apps: 400,
            dim: 64,
            seed: 13,
            oov_rate: 0.25,
            noise: 0.45,
            name_leak: 0.35,
            review_leak: 0.85,
        }
    }
}

impl GooglePlayConfig {
    /// A configuration at a named size (see [`SizePreset`]).
    ///
    /// Every app contributes ≈4 unique text values (name plus 2–4 reviews),
    /// so the `Paper` preset's 6.7k apps land at the paper's ~27k Google
    /// Play text values (Table 1). `Small` is the historical 400-app
    /// default.
    pub fn preset(preset: SizePreset) -> Self {
        match preset {
            SizePreset::Small => Self::default(),
            SizePreset::Paper => Self { n_apps: 6_700, ..Self::default() },
        }
    }
}

/// The generated dataset.
#[derive(Clone, Debug)]
pub struct GooglePlayDataset {
    /// The relational database.
    pub db: Database,
    /// The synthetic base embedding.
    pub base: EmbeddingSet,
    /// Per app (1-based id order): name.
    pub app_names: Vec<String>,
    /// Per app: category index into [`CATEGORIES`] — ground truth for
    /// Fig. 12b.
    pub app_category: Vec<usize>,
}

impl GooglePlayDataset {
    /// Generate a dataset.
    pub fn generate(config: GooglePlayConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n_topics = CATEGORIES.len() + 2;
        let mut vocab: Vec<(String, Vec<f32>)> = Vec::new();
        let add = |vocab: &mut Vec<(String, Vec<f32>)>, token: &str, mixture: Vec<f32>| {
            if !vocab.iter().any(|(t, _)| t == token) {
                vocab.push((token.to_owned(), mixture));
            }
        };
        let one_hot = |t: usize| {
            let mut m = vec![0.0f32; n_topics];
            m[t] = 1.0;
            m
        };

        // Category names + per-category content pools.
        let mut pools: Vec<Vec<String>> = Vec::with_capacity(CATEGORIES.len());
        for (c, name) in CATEGORIES.iter().enumerate() {
            add(&mut vocab, name, one_hot(c));
            let pool = names::topic_tokens("a", c, 10);
            for token in &pool {
                let mut m = one_hot(c);
                m[CATEGORIES.len()] = 0.25; // shared "app-speak" topic
                add(&mut vocab, token, m);
            }
            pools.push(pool);
        }
        let filler = names::topic_tokens("f", 0, 30);
        for token in &filler {
            add(&mut vocab, token, one_hot(CATEGORIES.len() + 1));
        }
        for name in PRICING.iter().chain(AGE_GROUPS.iter()) {
            add(&mut vocab, name, one_hot(CATEGORIES.len() + 1));
        }

        // Schema.
        use retro_store::DataType::*;
        let mut db = Database::new();
        for (table, col) in [
            ("categories", "name"),
            ("pricing_types", "name"),
            ("age_groups", "name"),
            ("genres", "name"),
        ] {
            db.create_table(TableSchema::builder(table).pk("id").column(col, Text).build())
                .expect("schema");
        }
        db.create_table(
            TableSchema::builder("apps")
                .pk("id")
                .column("name", Text)
                .column("rating", Float)
                .fk("category_id", "categories", "id")
                .fk("pricing_id", "pricing_types", "id")
                .fk("age_id", "age_groups", "id")
                .build(),
        )
        .expect("schema");
        db.create_table(
            TableSchema::builder("reviews")
                .pk("id")
                .column("text", Text)
                .fk("app_id", "apps", "id")
                .build(),
        )
        .expect("schema");
        db.create_table(
            TableSchema::builder("app_genre")
                .fk("app_id", "apps", "id")
                .fk("genre_id", "genres", "id")
                .build(),
        )
        .expect("schema");

        // One BulkLoader batch carries the whole generated dataset; staging
        // order equals the old insert order, so the committed state is
        // identical to the historical row-by-row build.
        let mut loader = db.bulk();
        let t_categories = loader.table("categories").expect("schema");
        let t_genres = loader.table("genres").expect("schema");
        let t_pricing = loader.table("pricing_types").expect("schema");
        let t_age = loader.table("age_groups").expect("schema");
        let t_apps = loader.table("apps").expect("schema");
        let t_reviews = loader.table("reviews").expect("schema");
        let t_app_genre = loader.table("app_genre").expect("schema");

        // Size hints (reviews average 3 per app; reserve is only a hint).
        loader.reserve(t_apps, config.n_apps);
        loader.reserve(t_app_genre, config.n_apps);
        loader.reserve(t_reviews, 3 * config.n_apps);

        for (c, name) in CATEGORIES.iter().enumerate() {
            loader
                .stage(t_categories, vec![Value::Int(c as i64 + 1), Value::from(*name)])
                .expect("generated row");
            // Genres mirror categories ("genre and category are often
            // equivalent", §5.5.2).
            loader
                .stage(
                    t_genres,
                    vec![Value::Int(c as i64 + 1), Value::from(format!("{name} genre"))],
                )
                .expect("generated row");
        }
        for (p, name) in PRICING.iter().enumerate() {
            loader
                .stage(t_pricing, vec![Value::Int(p as i64 + 1), Value::from(*name)])
                .expect("generated row");
        }
        for (a, name) in AGE_GROUPS.iter().enumerate() {
            loader
                .stage(t_age, vec![Value::Int(a as i64 + 1), Value::from(*name)])
                .expect("generated row");
        }

        // Apps + reviews.
        let mut app_names = Vec::with_capacity(config.n_apps);
        let mut app_category = Vec::with_capacity(config.n_apps);
        let mut review_id = 0i64;
        let mut oov_serial = 0usize;
        for a in 0..config.n_apps {
            let app_id = a as i64 + 1;
            let category = rng.gen_range(0..CATEGORIES.len());
            let mut token = |rng: &mut StdRng, leak: f64| -> String {
                if rng.gen_bool(config.oov_rate) {
                    oov_serial += 1;
                    return format!("qq{oov_serial}");
                }
                if rng.gen_bool(leak) {
                    pools[category][rng.gen_range(0..pools[category].len())].clone()
                } else {
                    filler[rng.gen_range(0..filler.len())].clone()
                }
            };
            let name = format!(
                "{} {} app{app_id}",
                token(&mut rng, config.name_leak),
                token(&mut rng, config.name_leak)
            );
            let rating = 2.5 + 2.5 * rng.gen::<f64>();
            let pricing = rng.gen_range(0..PRICING.len()) as i64 + 1;
            let age = rng.gen_range(0..AGE_GROUPS.len()) as i64 + 1;
            loader
                .stage(
                    t_apps,
                    vec![
                        Value::Int(app_id),
                        Value::from(name.clone()),
                        Value::Float(rating),
                        Value::Int(category as i64 + 1),
                        Value::Int(pricing),
                        Value::Int(age),
                    ],
                )
                .expect("generated row");
            loader
                .stage(t_app_genre, vec![Value::Int(app_id), Value::Int(category as i64 + 1)])
                .expect("generated row");

            // 2–4 reviews, median-short (the paper reports 81 chars median).
            for _ in 0..(2 + rng.gen_range(0..3usize)) {
                review_id += 1;
                let mut words = Vec::with_capacity(9);
                for _ in 0..8 {
                    words.push(token(&mut rng, config.review_leak));
                }
                let text = format!("{} r{review_id}", words.join(" "));
                loader
                    .stage(
                        t_reviews,
                        vec![Value::Int(review_id), Value::from(text), Value::Int(app_id)],
                    )
                    .expect("generated row");
            }
            app_names.push(name);
            app_category.push(category);
        }

        loader.commit().expect("generated rows satisfy every constraint");

        let space = LatentSpace::new(n_topics, config.dim, &mut rng);
        let base = embedding_set_from_mixtures(&space, &vocab, config.noise, &mut rng);
        Self { db, base, app_names, app_category }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GooglePlayDataset {
        GooglePlayDataset::generate(GooglePlayConfig {
            n_apps: 50,
            dim: 16,
            ..GooglePlayConfig::default()
        })
    }

    #[test]
    fn schema_shape_matches_table1() {
        let d = small();
        assert_eq!(d.db.table_count(), 7); // 6 tables + 1 link
        assert_eq!(d.db.link_table_count(), 1);
    }

    #[test]
    fn apps_have_labels_and_unique_names() {
        let d = small();
        assert_eq!(d.app_names.len(), 50);
        assert!(d.app_category.iter().all(|&c| c < CATEGORIES.len()));
        let mut names = d.app_names.clone();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 50);
    }

    #[test]
    fn every_app_has_at_least_one_review() {
        let d = small();
        let reviews = d.db.table("reviews").unwrap();
        assert!(reviews.len() >= 50);
    }

    #[test]
    fn categories_are_diverse_not_mode_dominated() {
        let d = GooglePlayDataset::generate(GooglePlayConfig {
            n_apps: 300,
            dim: 8,
            ..GooglePlayConfig::default()
        });
        let mut counts = vec![0usize; CATEGORIES.len()];
        for &c in &d.app_category {
            counts[c] += 1;
        }
        let max = counts.iter().max().copied().unwrap_or(0);
        // Mode imputation should be poor: no category above ~10%.
        assert!(max as f64 / 300.0 < 0.12, "mode share {}", max as f64 / 300.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.app_names, b.app_names);
        assert_eq!(a.app_category, b.app_category);
    }

    #[test]
    fn text_value_density_supports_paper_preset_math() {
        // The Paper preset banks on ≈4 unique text values per app.
        let d = GooglePlayDataset::generate(GooglePlayConfig {
            n_apps: 1000,
            dim: 8,
            ..GooglePlayConfig::default()
        });
        let per_app = d.db.unique_text_value_count() as f64 / 1000.0;
        assert!((3.6..4.4).contains(&per_app), "text values per app: {per_app}");
    }

    #[test]
    fn paper_preset_reaches_paper_cardinality() {
        let d = GooglePlayDataset::generate(GooglePlayConfig {
            dim: 8,
            ..GooglePlayConfig::preset(SizePreset::Paper)
        });
        let n = d.db.unique_text_value_count();
        // Paper Table 1: ~27k Google Play text values; allow ±10%.
        assert!((24_300..=29_700).contains(&n), "text values {n}");
    }
}
