//! Dataset size presets: laptop-friendly `Small` vs the paper's real
//! cardinalities (`Paper`).
//!
//! The paper's headline claim is that relational retrofitting stays
//! tractable at real dataset sizes — TMDB with roughly 493k unique text
//! values and Google Play with roughly 27k (Table 1). The synthetic
//! generators reproduce the schema shape and statistical couplings at any
//! size; these presets pin the two sizes every benchmark should speak
//! about.

/// A named generator size.
///
/// ```
/// use retro_datasets::{SizePreset, TmdbConfig, GooglePlayConfig};
///
/// let small = TmdbConfig::preset(SizePreset::Small);
/// let paper = TmdbConfig::preset(SizePreset::Paper);
/// assert!(paper.n_movies > 100 * small.n_movies);
/// assert!(GooglePlayConfig::preset(SizePreset::Paper).n_apps > 6_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizePreset {
    /// The historical defaults (600 movies / 400 apps): seconds to generate
    /// and solve, used by tests and the evaluation-task binaries.
    Small,
    /// The paper's real cardinalities: ~493k unique text values for TMDB
    /// (≈108.5k movies) and ~27k for Google Play (≈6.7k apps). Generation
    /// plus a full solve runs in minutes, not seconds — this is the size
    /// the `paper_scale_profile` binary and the thread-scaling benches
    /// target.
    Paper,
}

impl SizePreset {
    /// All presets, for sweeping binaries.
    pub const ALL: [SizePreset; 2] = [SizePreset::Small, SizePreset::Paper];

    /// Parse a preset from a CLI-style name (`small` / `paper`).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "small" => Some(SizePreset::Small),
            "paper" => Some(SizePreset::Paper),
            _ => None,
        }
    }

    /// The CLI-style name (`small` / `paper`).
    pub fn name(self) -> &'static str {
        match self {
            SizePreset::Small => "small",
            SizePreset::Paper => "paper",
        }
    }
}

impl std::fmt::Display for SizePreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in SizePreset::ALL {
            assert_eq!(SizePreset::from_name(p.name()), Some(p));
        }
        assert_eq!(SizePreset::from_name("PAPER"), Some(SizePreset::Paper));
        assert_eq!(SizePreset::from_name("huge"), None);
    }
}
