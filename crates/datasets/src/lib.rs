//! # retro-datasets
//!
//! Deterministic synthetic datasets standing in for the paper's Kaggle
//! sources (TMDB movies, Google Play Store apps), plus the Fig. 3 toy
//! example.
//!
//! Both generators follow the same recipe: a
//! [`retro_embed::synthetic::LatentSpace`] holds topic directions; every
//! entity (genre, country, category, …) owns a topic mixture; text *tokens*
//! derive their embedding from their entity's mixture; and the relational
//! structure (which movie has which genres, which app gets which reviews)
//! is sampled from the same mixtures. This couples textual and relational
//! signal exactly the way the real datasets do, which is what the paper's
//! evaluation shapes depend on (see DESIGN.md, "Substitutions").
//!
//! The generators emit:
//! * a [`retro_store::Database`] with the paper's schema shape (Table 1:
//!   TMDB 8 entity tables + 7 link tables, Google Play 6 + 1),
//! * a [`retro_embed::EmbeddingSet`] playing the role of the Google News
//!   vectors (with a configurable out-of-vocabulary rate),
//! * ground-truth labels for the §5 tasks (director citizenship, movie
//!   original language, app category, movie budget, movie–genre edges).

#![warn(missing_docs)]

pub mod gplay;
pub mod names;
pub mod preset;
pub mod scholar;
pub mod tmdb;
pub mod toy;

pub use gplay::{GooglePlayConfig, GooglePlayDataset};
pub use preset::SizePreset;
pub use scholar::{Mention, ScholarConfig, ScholarDataset};
pub use tmdb::{TmdbConfig, TmdbDataset};
pub use toy::{toy_problem, ToyExample};
