//! Synthetic TMDB-like movie database.
//!
//! Schema shape matches the paper's Table 1 import (8 entity tables, 7 pure
//! n:m link tables):
//!
//! ```text
//! movies(id, title, overview, original_language, budget, revenue, popularity)
//! persons(id, name)        genres(id, name)       countries(id, name)
//! languages(id, name)      companies(id, name)    keywords(id, name)
//! reviews(id, text, movie_id → movies)
//! movie_genre, movie_country, movie_language, movie_company,
//! movie_keyword, movie_actor, movie_director      (link tables)
//! ```
//!
//! Statistical couplings (all tunable through [`TmdbConfig`]):
//! * movie genres drive title/overview/review/keyword tokens and budget,
//! * a movie's production country follows its director's citizenship,
//! * `original_language` follows the production country,
//! * person-name syllables carry the citizenship's region flavour.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_embed::synthetic::{embedding_set_from_mixtures, LatentSpace};
use retro_embed::EmbeddingSet;
use retro_store::{Database, TableSchema, Value};

use crate::names::{self, N_REGIONS};
use crate::preset::SizePreset;

/// Genre names (the paper's TMDB has 20 genres).
pub const GENRES: [&str; 20] = [
    "action",
    "adventure",
    "animation",
    "comedy",
    "crime",
    "documentary",
    "drama",
    "family",
    "fantasy",
    "history",
    "horror",
    "music",
    "mystery",
    "romance",
    "science fiction",
    "thriller",
    "war",
    "western",
    "foreign",
    "tv movie",
];

/// Countries with their name-region and sampling probability.
/// Region-0 countries are anglophone, so `en` covers ≈70% of movies — the
/// MODE imputation baseline lands near the paper's 71%.
pub const COUNTRIES: [(&str, usize, f64); 12] = [
    ("usa", 0, 0.58),
    ("uk", 0, 0.07),
    ("canada", 0, 0.06),
    ("australia", 0, 0.05),
    ("france", 1, 0.07),
    ("italy", 1, 0.04),
    ("spain", 1, 0.03),
    ("germany", 2, 0.04),
    ("austria", 2, 0.02),
    ("japan", 3, 0.02),
    ("china", 3, 0.015),
    ("korea", 3, 0.005),
];

/// One language per country (index-aligned with [`COUNTRIES`]).
pub const COUNTRY_LANGUAGE: [&str; 12] =
    ["en", "en", "en", "en", "fr", "it", "es", "de", "de", "ja", "zh", "ko"];

/// Distinct language codes.
pub const LANGUAGES: [&str; 8] = ["en", "fr", "it", "es", "de", "ja", "zh", "ko"];

/// Per-genre budget scale in US dollars (action blockbusters vs
/// documentaries) — the relational driver of the Fig. 13 regression.
const GENRE_BUDGET: [f64; 20] = [
    120e6, 110e6, 90e6, 40e6, 45e6, 8e6, 25e6, 70e6, 100e6, 35e6, 20e6, 15e6, 30e6, 28e6, 115e6,
    50e6, 60e6, 30e6, 12e6, 10e6,
];

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct TmdbConfig {
    /// Number of movies (default 600; the paper's scaling experiment grows
    /// this to tens of thousands of text values).
    pub n_movies: usize,
    /// Embedding dimensionality of the synthetic base vectors (default 64;
    /// the paper uses 300-d Google News vectors — smaller dimensions keep
    /// the reproduction laptop-friendly without changing any ordering).
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a title/overview token is out-of-vocabulary.
    pub oov_rate: f64,
    /// Gaussian noise of the synthetic embeddings.
    pub noise: f32,
    /// Probability that a person-name syllable reveals its region.
    pub name_leak: f64,
    /// Probability that a movie's production country equals its director's
    /// citizenship (the relational signal for the Fig. 8 task).
    pub country_follows_director: f64,
    /// Probability that `original_language` matches the production country.
    pub language_follows_country: f64,
}

impl Default for TmdbConfig {
    fn default() -> Self {
        Self {
            n_movies: 600,
            dim: 64,
            seed: 7,
            oov_rate: 0.25,
            noise: 0.45,
            name_leak: 0.75,
            country_follows_director: 0.75,
            language_follows_country: 0.92,
        }
    }
}

impl TmdbConfig {
    /// A configuration at a named size (see [`SizePreset`]).
    ///
    /// Every movie contributes ≈4.54 unique text values (title, overview,
    /// ~1 review, 1.5 person names, 1/25 company name), so the `Paper`
    /// preset's 108.5k movies land at the paper's ~493k TMDB text values
    /// (Table 1). `Small` is the historical 600-movie default.
    pub fn preset(preset: SizePreset) -> Self {
        match preset {
            SizePreset::Small => Self::default(),
            SizePreset::Paper => Self { n_movies: 108_500, ..Self::default() },
        }
    }
}

/// The generated dataset: database, base embedding and task ground truth.
#[derive(Clone, Debug)]
pub struct TmdbDataset {
    /// The relational database.
    pub db: Database,
    /// The synthetic base embedding (stand-in for Google News vectors).
    pub base: EmbeddingSet,
    /// Per movie id (1-based): title text.
    pub movie_titles: Vec<String>,
    /// Per movie: original language (ground truth for Fig. 10–12a).
    pub movie_language: Vec<String>,
    /// Per movie: budget in dollars (ground truth for Fig. 13).
    pub movie_budget: Vec<f64>,
    /// Per movie: genre indices into [`GENRES`] (ground truth for Fig. 14).
    pub movie_genres: Vec<Vec<usize>>,
    /// Directors: `(name, country index)` — citizenship ground truth for
    /// the Fig. 8/9 binary classification (`country 0` = usa).
    pub directors: Vec<(String, usize)>,
}

impl TmdbDataset {
    /// Generate a dataset.
    pub fn generate(config: TmdbConfig) -> Self {
        Generator::new(config).run()
    }

    /// Fig. 8 labels: `(director name, is US-American)`.
    pub fn us_director_labels(&self) -> Vec<(String, bool)> {
        self.directors.iter().map(|(n, c)| (n.clone(), *c == 0)).collect()
    }
}

/// Topic layout: one topic per genre, one per region, one per country,
/// plus general filler. Countries need their own topics so that "usa" and
/// "uk" — same name region, different citizenship — stay distinguishable
/// through relational propagation, as they are for real word embeddings.
struct Topics;
impl Topics {
    const GENERAL: usize = 4;
    fn count() -> usize {
        GENRES.len() + N_REGIONS + COUNTRIES.len() + Self::GENERAL
    }
    fn genre(g: usize) -> usize {
        g
    }
    fn region(r: usize) -> usize {
        GENRES.len() + r
    }
    fn country(c: usize) -> usize {
        GENRES.len() + N_REGIONS + c
    }
    fn general(k: usize) -> usize {
        GENRES.len() + N_REGIONS + COUNTRIES.len() + k
    }
}

struct Generator {
    config: TmdbConfig,
    rng: StdRng,
    vocab: Vec<(String, Vec<f32>)>,
    genre_pools: Vec<Vec<String>>,
    general_pool: Vec<String>,
    oov_serial: usize,
}

impl Generator {
    fn new(config: TmdbConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            vocab: Vec::new(),
            genre_pools: Vec::new(),
            general_pool: Vec::new(),
            oov_serial: 0,
        }
    }

    fn one_hot(&self, topic: usize) -> Vec<f32> {
        let mut m = vec![0.0f32; Topics::count()];
        m[topic] = 1.0;
        m
    }

    fn mix(&self, entries: &[(usize, f32)]) -> Vec<f32> {
        let mut m = vec![0.0f32; Topics::count()];
        for &(t, w) in entries {
            m[t] += w;
        }
        m
    }

    fn add_token(&mut self, token: &str, mixture: Vec<f32>) {
        if !self.vocab.iter().any(|(t, _)| t == token) {
            self.vocab.push((token.to_owned(), mixture));
        }
    }

    /// Draw a token: from `pool` normally, or a fresh OOV token.
    fn content_token(&mut self, pool_idx: usize) -> String {
        if self.rng.gen_bool(self.config.oov_rate) {
            self.oov_serial += 1;
            format!("zz{}", self.oov_serial)
        } else {
            let pool = &self.genre_pools[pool_idx];
            pool[self.rng.gen_range(0..pool.len())].clone()
        }
    }

    fn general_token(&mut self) -> String {
        self.general_pool[self.rng.gen_range(0..self.general_pool.len())].clone()
    }

    fn sample_country(&mut self) -> usize {
        let x: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (i, &(_, _, p)) in COUNTRIES.iter().enumerate() {
            acc += p;
            if x < acc {
                return i;
            }
        }
        COUNTRIES.len() - 1
    }

    fn build_vocab(&mut self) {
        // Genre names and per-genre content pools.
        for (g, name) in GENRES.iter().enumerate() {
            self.add_token(name, self.one_hot(Topics::genre(g)));
            let pool = names::topic_tokens("g", g, 14);
            for token in &pool {
                // Content tokens blend their genre with a general topic so
                // text signal is informative but noisy.
                let m = self
                    .mix(&[(Topics::genre(g), 0.8), (Topics::general(g % Topics::GENERAL), 0.2)]);
                self.add_token(token, m);
            }
            self.genre_pools.push(pool);
        }
        // General filler tokens.
        let general = names::topic_tokens("x", 0, 40);
        for (k, token) in general.iter().enumerate() {
            let m = self.one_hot(Topics::general(k % Topics::GENERAL));
            self.add_token(token, m);
        }
        self.general_pool = general;
        // Region syllables.
        for r in 0..N_REGIONS {
            for syllable in names::region_syllables(r) {
                self.add_token(syllable, self.one_hot(Topics::region(r)));
            }
        }
        // Country and language names: a country blends its own identity
        // topic with its name region.
        for (c, &(name, region, _)) in COUNTRIES.iter().enumerate() {
            let m = self.mix(&[(Topics::country(c), 0.7), (Topics::region(region), 0.3)]);
            self.add_token(name, m);
        }
        for (ci, &lang) in COUNTRY_LANGUAGE.iter().enumerate() {
            let region = COUNTRIES[ci].1;
            self.add_token(lang, self.one_hot(Topics::region(region)));
        }
    }

    fn create_schema(db: &mut Database) {
        use retro_store::DataType::*;
        for (table, col) in [
            ("persons", "name"),
            ("genres", "name"),
            ("countries", "name"),
            ("languages", "name"),
            ("companies", "name"),
            ("keywords", "name"),
        ] {
            db.create_table(TableSchema::builder(table).pk("id").column(col, Text).build())
                .expect("schema");
        }
        db.create_table(
            TableSchema::builder("movies")
                .pk("id")
                .column("title", Text)
                .column("overview", Text)
                .column("original_language", Text)
                .column("budget", Float)
                .column("revenue", Float)
                .column("popularity", Float)
                .build(),
        )
        .expect("schema");
        db.create_table(
            TableSchema::builder("reviews")
                .pk("id")
                .column("text", Text)
                .fk("movie_id", "movies", "id")
                .build(),
        )
        .expect("schema");
        for (link, a, b) in [
            ("movie_genre", "movies", "genres"),
            ("movie_country", "movies", "countries"),
            ("movie_language", "movies", "languages"),
            ("movie_company", "movies", "companies"),
            ("movie_keyword", "movies", "keywords"),
            ("movie_actor", "movies", "persons"),
            ("movie_director", "movies", "persons"),
        ] {
            db.create_table(
                TableSchema::builder(link)
                    .fk(format!("{}_id", &a[..a.len() - 1]), a, "id")
                    .fk(format!("{}_{}", link, "ref"), b, "id")
                    .build(),
            )
            .expect("schema");
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run(mut self) -> TmdbDataset {
        self.build_vocab();
        let mut db = Database::new();
        Self::create_schema(&mut db);

        // Every generated row goes through one BulkLoader batch: validation
        // and name resolution are amortized once for the whole dataset.
        // Staging order equals the old insert order, so the committed state
        // is identical to the historical row-by-row build.
        let mut loader = db.bulk();
        let t_genres = loader.table("genres").expect("schema");
        let t_countries = loader.table("countries").expect("schema");
        let t_languages = loader.table("languages").expect("schema");
        let t_keywords = loader.table("keywords").expect("schema");
        let t_companies = loader.table("companies").expect("schema");
        let t_persons = loader.table("persons").expect("schema");
        let t_movies = loader.table("movies").expect("schema");
        let t_reviews = loader.table("reviews").expect("schema");
        let t_movie_genre = loader.table("movie_genre").expect("schema");
        let t_movie_country = loader.table("movie_country").expect("schema");
        let t_movie_language = loader.table("movie_language").expect("schema");
        let t_movie_company = loader.table("movie_company").expect("schema");
        let t_movie_keyword = loader.table("movie_keyword").expect("schema");
        let t_movie_actor = loader.table("movie_actor").expect("schema");
        let t_movie_director = loader.table("movie_director").expect("schema");

        // Size hints for the big tables (expected row counts; estimates for
        // the randomized link cardinalities are fine — reserve is a hint).
        let n = self.config.n_movies;
        loader.reserve(t_persons, n / 2 + n.max(8) + 2);
        loader.reserve(t_movies, n);
        loader.reserve(t_reviews, n);
        loader.reserve(t_movie_genre, 2 * n);
        loader.reserve(t_movie_country, n);
        loader.reserve(t_movie_language, n);
        loader.reserve(t_movie_company, n);
        loader.reserve(t_movie_keyword, 3 * n);
        loader.reserve(t_movie_actor, 3 * n);
        loader.reserve(t_movie_director, n);

        // Dimension tables.
        for (g, name) in GENRES.iter().enumerate() {
            loader
                .stage(t_genres, vec![Value::Int(g as i64 + 1), Value::from(*name)])
                .expect("generated row");
        }
        for (c, &(name, _, _)) in COUNTRIES.iter().enumerate() {
            loader
                .stage(t_countries, vec![Value::Int(c as i64 + 1), Value::from(name)])
                .expect("generated row");
        }
        for (l, &lang) in LANGUAGES.iter().enumerate() {
            loader
                .stage(t_languages, vec![Value::Int(l as i64 + 1), Value::from(lang)])
                .expect("generated row");
        }
        // Keywords: 8 per genre, named from the genre pool (in-vocabulary).
        let mut keyword_ids: Vec<Vec<i64>> = vec![Vec::new(); GENRES.len()];
        let mut kw_id = 0i64;
        for (g, ids) in keyword_ids.iter_mut().enumerate() {
            for k in 0..8 {
                kw_id += 1;
                let token = self.genre_pools[g][k % self.genre_pools[g].len()].clone();
                let text = format!("{token} k{kw_id}");
                loader
                    .stage(t_keywords, vec![Value::Int(kw_id), Value::from(text)])
                    .expect("generated row");
                ids.push(kw_id);
            }
        }
        // Companies: home country + favourite genre.
        let n_companies = (self.config.n_movies / 25).max(4);
        let mut company_home = Vec::with_capacity(n_companies);
        let mut company_genre = Vec::with_capacity(n_companies);
        for k in 0..n_companies {
            let home = self.sample_country();
            let genre = self.rng.gen_range(0..GENRES.len());
            company_home.push(home);
            company_genre.push(genre);
            // Company names: a country token plus a genre token keeps them
            // in-vocabulary with a meaningful mixture; serial for uniqueness.
            let name = format!("{} {} pictures {k}", COUNTRIES[home].0, self.genre_pools[genre][0]);
            loader
                .stage(t_companies, vec![Value::Int(k as i64 + 1), Value::from(name)])
                .expect("generated row");
        }
        // First company per genre/country: the per-movie "prefer a matching
        // company" pick below becomes O(1) instead of a scan over all
        // companies (which made Paper-scale generation quadratic). Taking
        // the min of the two first-matches is exactly the first index
        // satisfying the OR condition, so results are unchanged.
        let mut first_company_by_genre = vec![usize::MAX; GENRES.len()];
        let mut first_company_by_country = vec![usize::MAX; COUNTRIES.len()];
        for k in (0..n_companies).rev() {
            first_company_by_genre[company_genre[k]] = k;
            first_company_by_country[company_home[k]] = k;
        }

        // Persons: directors (1 per ~2 movies) + actor pool.
        let n_directors = (self.config.n_movies / 2).max(2);
        let n_actors = self.config.n_movies.max(8);
        let mut directors: Vec<(String, usize)> = Vec::with_capacity(n_directors);
        let mut person_id = 0i64;
        let mut actor_ids: Vec<i64> = Vec::with_capacity(n_actors);
        let mut actor_country: Vec<usize> = Vec::with_capacity(n_actors);
        let mut director_ids: Vec<i64> = Vec::with_capacity(n_directors);
        for serial in 0..n_directors {
            let country = self.sample_country();
            let region = COUNTRIES[country].1;
            let name = names::person_name(region, serial, self.config.name_leak, &mut self.rng);
            person_id += 1;
            loader
                .stage(t_persons, vec![Value::Int(person_id), Value::from(name.clone())])
                .expect("generated row");
            directors.push((name, country));
            director_ids.push(person_id);
        }
        for serial in 0..n_actors {
            let country = self.sample_country();
            let region = COUNTRIES[country].1;
            let name = names::person_name(
                region,
                n_directors + serial,
                self.config.name_leak,
                &mut self.rng,
            );
            person_id += 1;
            loader
                .stage(t_persons, vec![Value::Int(person_id), Value::from(name)])
                .expect("generated row");
            actor_ids.push(person_id);
            actor_country.push(country);
        }

        // Movies.
        let mut movie_titles = Vec::with_capacity(self.config.n_movies);
        let mut movie_language = Vec::with_capacity(self.config.n_movies);
        let mut movie_budget = Vec::with_capacity(self.config.n_movies);
        let mut movie_genres = Vec::with_capacity(self.config.n_movies);
        let mut review_id = 0i64;

        for m in 0..self.config.n_movies {
            let movie_id = m as i64 + 1;
            // Genres: 1–3, first is the "main" genre.
            let n_genres = 1 + self.rng.gen_range(0..3usize);
            let mut genres: Vec<usize> = Vec::with_capacity(n_genres);
            while genres.len() < n_genres {
                let g = self.rng.gen_range(0..GENRES.len());
                if !genres.contains(&g) {
                    genres.push(g);
                }
            }
            let main_genre = genres[0];

            // Director & production country.
            let d = self.rng.gen_range(0..director_ids.len());
            let country = if self.rng.gen_bool(self.config.country_follows_director) {
                directors[d].1
            } else {
                self.sample_country()
            };
            let language = if self.rng.gen_bool(self.config.language_follows_country) {
                COUNTRY_LANGUAGE[country]
            } else {
                LANGUAGES[self.rng.gen_range(0..LANGUAGES.len())]
            };

            // Title: mostly generic words with only a weak genre flavour +
            // serial (unique, partially OOV). Real movie titles rarely spell
            // out their genre — the genre signal lives in overviews,
            // keywords and reviews, which is what gives retrofitting (and
            // DeepWalk) their edge over plain word vectors in Figs. 13/14.
            let t1 = if self.rng.gen_bool(0.3) {
                self.content_token(main_genre)
            } else {
                self.general_token()
            };
            let t2 = if self.rng.gen_bool(0.3) {
                self.content_token(*genres.last().expect("nonempty"))
            } else {
                self.general_token()
            };
            let title = format!("{t1} {t2} m{movie_id}");
            // Overview: ~10 tokens from the movie's genres + filler.
            let mut overview_words = Vec::new();
            for _ in 0..10 {
                if self.rng.gen_bool(0.6) {
                    let g = genres[self.rng.gen_range(0..genres.len())];
                    overview_words.push(self.content_token(g));
                } else {
                    overview_words.push(self.general_token());
                }
            }
            let overview = overview_words.join(" ");

            // Budget: genre scale × country factor × lognormal noise.
            let country_factor = if COUNTRIES[country].1 == 0 { 1.3 } else { 0.7 };
            let noise = (retro_embed::synthetic::gaussian(&mut self.rng) as f64 * 0.4).exp();
            let budget = GENRE_BUDGET[main_genre] * country_factor * noise;
            let revenue = budget * (1.2 + 1.6 * self.rng.gen::<f64>());
            let popularity = 10.0 * self.rng.gen::<f64>() + budget / 2e7;

            loader
                .stage(
                    t_movies,
                    vec![
                        Value::Int(movie_id),
                        Value::from(title.clone()),
                        Value::from(overview),
                        Value::from(language),
                        Value::Float(budget),
                        Value::Float(revenue),
                        Value::Float(popularity),
                    ],
                )
                .expect("generated row");

            // Link rows.
            for &g in &genres {
                loader
                    .stage(t_movie_genre, vec![Value::Int(movie_id), Value::Int(g as i64 + 1)])
                    .expect("generated row");
            }
            loader
                .stage(t_movie_country, vec![Value::Int(movie_id), Value::Int(country as i64 + 1)])
                .expect("generated row");
            let lang_idx = LANGUAGES.iter().position(|&l| l == language).expect("known");
            loader
                .stage(
                    t_movie_language,
                    vec![Value::Int(movie_id), Value::Int(lang_idx as i64 + 1)],
                )
                .expect("generated row");
            loader
                .stage(t_movie_director, vec![Value::Int(movie_id), Value::Int(director_ids[d])])
                .expect("generated row");
            // Company: prefer the first one with matching genre or country.
            let company = first_company_by_genre[main_genre].min(first_company_by_country[country]);
            let company =
                if company == usize::MAX { self.rng.gen_range(0..n_companies) } else { company };
            loader
                .stage(t_movie_company, vec![Value::Int(movie_id), Value::Int(company as i64 + 1)])
                .expect("generated row");
            // Keywords: 2–4 from the movie's genres.
            let n_kw = 2 + self.rng.gen_range(0..3usize);
            let mut used = Vec::new();
            for _ in 0..n_kw {
                let g = genres[self.rng.gen_range(0..genres.len())];
                let kw = keyword_ids[g][self.rng.gen_range(0..keyword_ids[g].len())];
                if !used.contains(&kw) {
                    used.push(kw);
                    loader
                        .stage(t_movie_keyword, vec![Value::Int(movie_id), Value::Int(kw)])
                        .expect("generated row");
                }
            }
            // Actors: 2–4, citizenship biased toward the production country.
            let n_act = 2 + self.rng.gen_range(0..3usize);
            let mut cast = Vec::new();
            while cast.len() < n_act {
                let a = self.rng.gen_range(0..actor_ids.len());
                if cast.contains(&a) {
                    continue;
                }
                // Accept same-country actors readily, others with 30%.
                if actor_country[a] == country || self.rng.gen_bool(0.3) {
                    cast.push(a);
                    loader
                        .stage(t_movie_actor, vec![Value::Int(movie_id), Value::Int(actor_ids[a])])
                        .expect("generated row");
                }
            }
            // Reviews: 0–2, text flavoured by the movie's genres.
            for _ in 0..self.rng.gen_range(0..3usize) {
                review_id += 1;
                let mut words = Vec::new();
                for _ in 0..8 {
                    if self.rng.gen_bool(0.55) {
                        let g = genres[self.rng.gen_range(0..genres.len())];
                        words.push(self.content_token(g));
                    } else {
                        words.push(self.general_token());
                    }
                }
                let text = format!("{} r{review_id}", words.join(" "));
                loader
                    .stage(
                        t_reviews,
                        vec![Value::Int(review_id), Value::from(text), Value::Int(movie_id)],
                    )
                    .expect("generated row");
            }

            movie_titles.push(title);
            movie_language.push(language.to_owned());
            movie_budget.push(budget);
            movie_genres.push(genres);
        }

        loader.commit().expect("generated rows satisfy every constraint");

        // Materialize the embedding set.
        let space = LatentSpace::new(Topics::count(), self.config.dim, &mut self.rng);
        let base =
            embedding_set_from_mixtures(&space, &self.vocab, self.config.noise, &mut self.rng);

        TmdbDataset {
            db,
            base,
            movie_titles,
            movie_language,
            movie_budget,
            movie_genres,
            directors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TmdbDataset {
        TmdbDataset::generate(TmdbConfig { n_movies: 60, dim: 16, ..TmdbConfig::default() })
    }

    #[test]
    fn schema_shape_matches_table1() {
        let d = small();
        assert_eq!(d.db.table_count(), 15); // 8 entity + 7 link
        assert_eq!(d.db.link_table_count(), 7);
    }

    #[test]
    fn movies_are_generated_with_labels() {
        let d = small();
        assert_eq!(d.db.table("movies").unwrap().len(), 60);
        assert_eq!(d.movie_titles.len(), 60);
        assert_eq!(d.movie_language.len(), 60);
        assert!(d.movie_budget.iter().all(|&b| b > 0.0));
        assert!(d.movie_genres.iter().all(|g| !g.is_empty() && g.len() <= 3));
    }

    #[test]
    fn english_is_the_mode_language() {
        let d =
            TmdbDataset::generate(TmdbConfig { n_movies: 400, dim: 8, ..TmdbConfig::default() });
        let en = d.movie_language.iter().filter(|l| l.as_str() == "en").count();
        let frac = en as f64 / 400.0;
        assert!((0.55..0.85).contains(&frac), "en fraction {frac}");
    }

    #[test]
    fn us_director_labels_have_both_classes() {
        let d = small();
        let labels = d.us_director_labels();
        let us = labels.iter().filter(|(_, b)| *b).count();
        assert!(us > 0 && us < labels.len());
    }

    #[test]
    fn titles_are_unique_text_values() {
        let d = small();
        let mut titles = d.movie_titles.clone();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), 60);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.movie_titles, b.movie_titles);
        assert_eq!(a.movie_language, b.movie_language);
        assert_eq!(a.directors, b.directors);
        assert!(a.base.matrix().max_abs_diff(b.base.matrix()) == 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = TmdbDataset::generate(TmdbConfig {
            n_movies: 60,
            dim: 16,
            seed: 99,
            ..TmdbConfig::default()
        });
        assert_ne!(a.movie_titles, b.movie_titles);
    }

    #[test]
    fn base_vocabulary_covers_genre_and_region_tokens() {
        let d = small();
        assert!(d.base.contains("action"));
        assert!(d.base.contains("usa"));
        assert!(d.base.contains("jean"));
        assert!(d.base.contains("g0w0"));
    }

    #[test]
    fn text_value_density_supports_paper_preset_math() {
        // The Paper preset banks on ≈4.54 unique text values per movie; if
        // the generator drifts, the preset's 493k target silently drifts
        // with it, so pin the density here at a measurable size.
        let d =
            TmdbDataset::generate(TmdbConfig { n_movies: 2000, dim: 8, ..TmdbConfig::default() });
        let per_movie = d.db.unique_text_value_count() as f64 / 2000.0;
        assert!((4.2..4.9).contains(&per_movie), "text values per movie: {per_movie}");
    }

    #[test]
    #[ignore = "paper-scale: ~1.2M rows; run explicitly with --ignored"]
    fn paper_preset_reaches_paper_cardinality() {
        let d =
            TmdbDataset::generate(TmdbConfig { dim: 8, ..TmdbConfig::preset(SizePreset::Paper) });
        let n = d.db.unique_text_value_count();
        // Paper Table 1: ~493k TMDB text values; allow ±10%.
        assert!((443_000..=543_000).contains(&n), "text values {n}");
    }

    #[test]
    fn foreign_keys_are_consistent() {
        // Insert-time FK validation ran for every row; spot-check counts.
        let d = small();
        assert!(d.db.table("movie_genre").unwrap().len() >= 60);
        assert!(d.db.table("movie_director").unwrap().len() == 60);
        assert!(d.db.table("persons").unwrap().len() >= 60);
    }
}
