//! Synthetic scholarly knowledge graph: papers, authors, venues.
//!
//! The workload DBLPLink-style entity linking needs (see PAPERS.md):
//! *mention* strings — partial titles, serial-less author names — must be
//! resolved to their catalog entity by nearest-neighbour search over the
//! retrofitted embeddings at query time. The generator therefore emits,
//! besides the database and base embedding, a ground-truthed [`Mention`]
//! panel for the `retro_eval::tasks::run_entity_linking` task.
//!
//! ```text
//! venues(id, name)      authors(id, name)
//! papers(id, title, abstract, year, venue_id → venues)
//! paper_author          (n:m link table)
//! ```
//!
//! Degree distributions are **skewed** the way real bibliographies are:
//! author productivity follows a power law (a head of prolific authors
//! holds a large share of the authorship edges) and venue sizes follow the
//! same shape through a per-field venue hierarchy (every field has one
//! flagship venue most of its papers land in). Both skews are pinned by
//! tests, since they are exactly what stresses an IVF partition — hub
//! entities pull dense clusters around themselves.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_embed::synthetic::{embedding_set_from_mixtures, LatentSpace};
use retro_embed::EmbeddingSet;
use retro_store::{Database, TableSchema, Value};

use crate::names::{self, N_REGIONS};
use crate::preset::SizePreset;

/// Research fields (the topic axis of the latent space).
pub const FIELDS: [&str; 12] = [
    "databases",
    "learning",
    "vision",
    "systems",
    "theory",
    "networks",
    "security",
    "graphics",
    "robotics",
    "bioinformatics",
    "compilers",
    "languages",
];

/// Venues per field: one flagship plus this many satellites.
const VENUES_PER_FIELD: usize = 4;

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScholarConfig {
    /// Number of papers (default 500).
    pub n_papers: usize,
    /// Embedding dimensionality of the synthetic base vectors.
    pub dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that a title/abstract token is out-of-vocabulary.
    pub oov_rate: f64,
    /// Gaussian noise of the synthetic embeddings.
    pub noise: f32,
    /// Probability that an author-name syllable reveals its region.
    pub name_leak: f64,
    /// Power-law exponent of the author-productivity skew (≥ 1.0; higher
    /// is more skewed — `3.0` concentrates ~half the authorship edges on
    /// the top few percent of authors).
    pub author_skew: f64,
    /// Probability that a paper lands in its field's flagship venue
    /// (instead of a uniformly drawn satellite).
    pub flagship_rate: f64,
}

impl Default for ScholarConfig {
    fn default() -> Self {
        Self {
            n_papers: 500,
            dim: 64,
            seed: 23,
            oov_rate: 0.2,
            noise: 0.4,
            name_leak: 0.8,
            author_skew: 3.0,
            flagship_rate: 0.6,
        }
    }
}

impl ScholarConfig {
    /// A configuration at a named size (see [`SizePreset`]). `Small` is
    /// the 500-paper default; `Paper` scales to 40k papers (≈100k text
    /// values — a mid-size bibliography, kept below the TMDB preset since
    /// the acceptance-scale serving numbers are measured on TMDB).
    pub fn preset(preset: SizePreset) -> Self {
        match preset {
            SizePreset::Small => Self::default(),
            SizePreset::Paper => Self { n_papers: 40_000, ..Self::default() },
        }
    }
}

/// One ground-truthed entity-linking example: free-text `text` must
/// resolve to the stored value `table.column = entity`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mention {
    /// The mention surface form (partial title, serial-less author name).
    pub text: String,
    /// Table of the target entity.
    pub table: String,
    /// Column of the target entity.
    pub column: String,
    /// The exact stored text value the mention refers to.
    pub entity: String,
}

/// The generated dataset: database, base embedding, and the entity-linking
/// ground truth.
#[derive(Clone, Debug)]
pub struct ScholarDataset {
    /// The relational database.
    pub db: Database,
    /// The synthetic base embedding.
    pub base: EmbeddingSet,
    /// Per paper (id order): title text.
    pub paper_titles: Vec<String>,
    /// Per paper: field index into [`FIELDS`].
    pub paper_field: Vec<usize>,
    /// Per author (id order): name text.
    pub author_names: Vec<String>,
    /// Per author: number of papers authored (the skewed degree).
    pub author_degree: Vec<usize>,
    /// Per venue (id order): name text.
    pub venue_names: Vec<String>,
    /// Per venue: number of papers published there (skewed by flagships).
    pub venue_degree: Vec<usize>,
    /// The entity-linking panel.
    pub mentions: Vec<Mention>,
}

impl ScholarDataset {
    /// Generate a dataset.
    pub fn generate(config: ScholarConfig) -> Self {
        Generator::new(config).run()
    }
}

/// Topic layout: one per field, one per name region, plus general filler.
struct Topics;
impl Topics {
    const GENERAL: usize = 4;
    fn count() -> usize {
        FIELDS.len() + N_REGIONS + Self::GENERAL
    }
    fn field(f: usize) -> usize {
        f
    }
    fn region(r: usize) -> usize {
        FIELDS.len() + r
    }
    fn general(k: usize) -> usize {
        FIELDS.len() + N_REGIONS + k
    }
}

struct Generator {
    config: ScholarConfig,
    rng: StdRng,
    vocab: Vec<(String, Vec<f32>)>,
    field_pools: Vec<Vec<String>>,
    general_pool: Vec<String>,
    oov_serial: usize,
}

impl Generator {
    fn new(config: ScholarConfig) -> Self {
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            vocab: Vec::new(),
            field_pools: Vec::new(),
            general_pool: Vec::new(),
            oov_serial: 0,
        }
    }

    fn one_hot(&self, topic: usize) -> Vec<f32> {
        let mut m = vec![0.0f32; Topics::count()];
        m[topic] = 1.0;
        m
    }

    fn mix(&self, entries: &[(usize, f32)]) -> Vec<f32> {
        let mut m = vec![0.0f32; Topics::count()];
        for &(t, w) in entries {
            m[t] += w;
        }
        m
    }

    fn add_token(&mut self, token: &str, mixture: Vec<f32>) {
        if !self.vocab.iter().any(|(t, _)| t == token) {
            self.vocab.push((token.to_owned(), mixture));
        }
    }

    /// Draw a content token for `field`: from its pool normally, or a
    /// fresh OOV token.
    fn content_token(&mut self, field: usize) -> String {
        if self.rng.gen_bool(self.config.oov_rate) {
            self.oov_serial += 1;
            format!("qq{}", self.oov_serial)
        } else {
            let pool = &self.field_pools[field];
            pool[self.rng.gen_range(0..pool.len())].clone()
        }
    }

    fn general_token(&mut self) -> String {
        self.general_pool[self.rng.gen_range(0..self.general_pool.len())].clone()
    }

    /// A power-law index into `0..n`: `⌊n · u^skew⌋` — low indices are the
    /// "head" entities and soak up most draws.
    fn skewed_index(&mut self, n: usize) -> usize {
        let u: f64 = self.rng.gen();
        ((n as f64 * u.powf(self.config.author_skew)) as usize).min(n - 1)
    }

    fn build_vocab(&mut self) {
        for (f, name) in FIELDS.iter().enumerate() {
            self.add_token(name, self.one_hot(Topics::field(f)));
            let pool = names::topic_tokens("s", f, 14);
            for token in &pool {
                let m = self
                    .mix(&[(Topics::field(f), 0.8), (Topics::general(f % Topics::GENERAL), 0.2)]);
                self.add_token(token, m);
            }
            self.field_pools.push(pool);
        }
        let general = names::topic_tokens("y", 0, 40);
        for (k, token) in general.iter().enumerate() {
            let m = self.one_hot(Topics::general(k % Topics::GENERAL));
            self.add_token(token, m);
        }
        self.general_pool = general;
        for r in 0..N_REGIONS {
            for syllable in names::region_syllables(r) {
                self.add_token(syllable, self.one_hot(Topics::region(r)));
            }
        }
    }

    fn create_schema(db: &mut Database) {
        use retro_store::DataType::*;
        db.create_table(TableSchema::builder("venues").pk("id").column("name", Text).build())
            .expect("schema");
        db.create_table(TableSchema::builder("authors").pk("id").column("name", Text).build())
            .expect("schema");
        db.create_table(
            TableSchema::builder("papers")
                .pk("id")
                .column("title", Text)
                .column("abstract", Text)
                .column("year", Float)
                .fk("venue_id", "venues", "id")
                .build(),
        )
        .expect("schema");
        db.create_table(
            TableSchema::builder("paper_author")
                .fk("paper_id", "papers", "id")
                .fk("author_id", "authors", "id")
                .build(),
        )
        .expect("schema");
    }

    fn run(mut self) -> ScholarDataset {
        self.build_vocab();
        let mut db = Database::new();
        Self::create_schema(&mut db);

        let n = self.config.n_papers;
        let n_authors = (n / 2).max(4);
        let n_venues = FIELDS.len() * (1 + VENUES_PER_FIELD);

        let mut loader = db.bulk();
        let t_venues = loader.table("venues").expect("schema");
        let t_authors = loader.table("authors").expect("schema");
        let t_papers = loader.table("papers").expect("schema");
        let t_paper_author = loader.table("paper_author").expect("schema");
        loader.reserve(t_venues, n_venues);
        loader.reserve(t_authors, n_authors);
        loader.reserve(t_papers, n);
        loader.reserve(t_paper_author, 3 * n);

        // Venues: per field, one flagship (index 0) + satellites. Names
        // blend the field token (in-vocabulary) with a serial.
        let mut venue_names = Vec::with_capacity(n_venues);
        for f in 0..FIELDS.len() {
            for v in 0..=VENUES_PER_FIELD {
                let id = venue_names.len() as i64 + 1;
                let kind = if v == 0 { "symposium" } else { "workshop" };
                let name = format!("{} {} {kind} v{id}", FIELDS[f], self.field_pools[f][v]);
                loader
                    .stage(t_venues, vec![Value::Int(id), Value::from(name.clone())])
                    .expect("generated row");
                venue_names.push(name);
            }
        }

        // Authors: region-flavoured names; each author works in one home
        // field (their papers cluster there).
        let mut author_names = Vec::with_capacity(n_authors);
        let mut author_field = Vec::with_capacity(n_authors);
        for serial in 0..n_authors {
            let region = self.rng.gen_range(0..N_REGIONS);
            let name = names::person_name(region, serial, self.config.name_leak, &mut self.rng);
            loader
                .stage(t_authors, vec![Value::Int(serial as i64 + 1), Value::from(name.clone())])
                .expect("generated row");
            author_names.push(name);
            author_field.push(self.rng.gen_range(0..FIELDS.len()));
        }

        // Papers: field-topical titles/abstracts, skewed authorship, and a
        // field-local venue choice dominated by the flagship.
        let mut paper_titles = Vec::with_capacity(n);
        let mut paper_field = Vec::with_capacity(n);
        let mut author_degree = vec![0usize; n_authors];
        let mut venue_degree = vec![0usize; n_venues];
        for p in 0..n {
            let paper_id = p as i64 + 1;
            // First author drawn with the power-law skew; the paper takes
            // the first author's home field.
            let lead = self.skewed_index(n_authors);
            let field = author_field[lead];

            let t1 = self.content_token(field);
            let t2 = self.content_token(field);
            let t3 = if self.rng.gen_bool(0.5) {
                self.content_token(field)
            } else {
                self.general_token()
            };
            let title = format!("{t1} {t2} {t3} p{paper_id}");
            let mut words = Vec::with_capacity(8);
            for _ in 0..8 {
                if self.rng.gen_bool(0.65) {
                    words.push(self.content_token(field));
                } else {
                    words.push(self.general_token());
                }
            }
            let abstract_text = format!("{} a{paper_id}", words.join(" "));
            let year = 1990.0 + self.rng.gen_range(0..35) as f64;

            let venue = if self.rng.gen_bool(self.config.flagship_rate) {
                field * (1 + VENUES_PER_FIELD)
            } else {
                field * (1 + VENUES_PER_FIELD) + 1 + self.rng.gen_range(0..VENUES_PER_FIELD)
            };
            venue_degree[venue] += 1;

            loader
                .stage(
                    t_papers,
                    vec![
                        Value::Int(paper_id),
                        Value::from(title.clone()),
                        Value::from(abstract_text),
                        Value::Float(year),
                        Value::Int(venue as i64 + 1),
                    ],
                )
                .expect("generated row");

            // Authorship: the lead plus 0–3 co-authors, all skew-sampled.
            let mut team = vec![lead];
            for _ in 0..self.rng.gen_range(0..4usize) {
                let a = self.skewed_index(n_authors);
                if !team.contains(&a) {
                    team.push(a);
                }
            }
            for &a in &team {
                author_degree[a] += 1;
                loader
                    .stage(t_paper_author, vec![Value::Int(paper_id), Value::Int(a as i64 + 1)])
                    .expect("generated row");
            }

            paper_titles.push(title);
            paper_field.push(field);
        }

        loader.commit().expect("generated rows satisfy every constraint");

        // Mention panel: partial titles (the serial dropped, one token
        // kept out) and serial-less author names — resolvable only through
        // embedding-space proximity, never by exact string match.
        let mut mentions = Vec::new();
        let paper_stride = (n / 100.min(n)).max(1);
        for p in (0..n).step_by(paper_stride) {
            let words: Vec<&str> = paper_titles[p].split(' ').collect();
            mentions.push(Mention {
                text: format!("{} {}", words[0], words[1]),
                table: "papers".into(),
                column: "title".into(),
                entity: paper_titles[p].clone(),
            });
        }
        let author_stride = (n_authors / 100.min(n_authors)).max(1);
        for a in (0..n_authors).step_by(author_stride) {
            let words: Vec<&str> = author_names[a].split(' ').collect();
            mentions.push(Mention {
                text: words[..words.len() - 1].join(" "),
                table: "authors".into(),
                column: "name".into(),
                entity: author_names[a].clone(),
            });
        }

        let space = LatentSpace::new(Topics::count(), self.config.dim, &mut self.rng);
        let base =
            embedding_set_from_mixtures(&space, &self.vocab, self.config.noise, &mut self.rng);

        ScholarDataset {
            db,
            base,
            paper_titles,
            paper_field,
            author_names,
            author_degree,
            venue_names,
            venue_degree,
            mentions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScholarDataset {
        ScholarDataset::generate(ScholarConfig {
            n_papers: 200,
            dim: 16,
            ..ScholarConfig::default()
        })
    }

    #[test]
    fn schema_and_cardinalities() {
        let d = small();
        assert_eq!(d.db.table_count(), 4);
        assert_eq!(d.db.table("papers").unwrap().len(), 200);
        assert_eq!(d.db.table("authors").unwrap().len(), 100);
        assert_eq!(d.db.table("venues").unwrap().len(), FIELDS.len() * (1 + VENUES_PER_FIELD));
        assert!(d.db.table("paper_author").unwrap().len() >= 200);
    }

    #[test]
    fn author_degrees_are_skewed() {
        let d = small();
        let total: usize = d.author_degree.iter().sum();
        let mut sorted = d.author_degree.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // The top 10% of authors hold well over 10% of the authorship
        // edges — the power-law head.
        let head: usize = sorted[..sorted.len() / 10].iter().sum();
        assert!(head as f64 > 0.3 * total as f64, "authorship head too flat: {head}/{total}");
        // And the tail exists: some authors never published.
        assert!(sorted.last() == Some(&0), "no tail — skew missing");
    }

    #[test]
    fn venue_degrees_are_skewed_toward_flagships() {
        let d = small();
        let per = 1 + VENUES_PER_FIELD;
        let flagship: usize = d.venue_degree.iter().step_by(per).sum();
        let total: usize = d.venue_degree.iter().sum();
        assert_eq!(total, 200);
        assert!(flagship as f64 > 0.45 * total as f64, "flagships hold {flagship}/{total}");
    }

    #[test]
    fn mentions_resolve_to_existing_entities() {
        let d = small();
        assert!(!d.mentions.is_empty());
        for m in &d.mentions {
            match m.table.as_str() {
                "papers" => assert!(d.paper_titles.contains(&m.entity)),
                "authors" => assert!(d.author_names.contains(&m.entity)),
                other => panic!("unexpected mention table {other}"),
            }
            // A mention is never the stored string itself — linking must
            // go through embedding space.
            assert_ne!(m.text, m.entity);
            assert!(!m.text.is_empty());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small();
        let b = small();
        assert_eq!(a.paper_titles, b.paper_titles);
        assert_eq!(a.author_names, b.author_names);
        assert_eq!(a.mentions, b.mentions);
        assert!(a.base.matrix().max_abs_diff(b.base.matrix()) == 0.0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = small();
        let b = ScholarDataset::generate(ScholarConfig {
            n_papers: 200,
            dim: 16,
            seed: 99,
            ..ScholarConfig::default()
        });
        assert_ne!(a.paper_titles, b.paper_titles);
    }

    #[test]
    fn base_vocabulary_covers_field_and_region_tokens() {
        let d = small();
        assert!(d.base.contains("databases"));
        assert!(d.base.contains("s0w0"));
        assert!(d.base.contains("jean"));
    }
}
