//! Hyperparameters and the Eq. 12–14 weight derivation, plus the Eq. 7/24
//! convexity check.
//!
//! Four global knobs — α (anchor to the original embedding), β (pull toward
//! the category centroid), γ (pull toward related values), δ (push away from
//! unrelated values of related columns) — are turned into per-node,
//! per-group weights:
//!
//! * `βi = β / (|Ri| + 1)` — Eq. 12,
//! * `γ^r_i = γ / (odr(i) · (|Ri| + 1))` — Eq. 12,
//! * RO: `δ^r_i = δ / (mc(r) · mr(r))` — Eq. 13,
//! * RN: `δ^r_i = δ / (odr(i) · (|Ri| + 1))` — Eq. 14.

use crate::relations::RelationGroup;

/// The four global hyperparameters, plus one execution knob.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hyperparameters {
    /// Anchor weight to the original vector `v'ᵢ`.
    pub alpha: f32,
    /// Category-centroid weight.
    pub beta: f32,
    /// Relational attraction weight.
    pub gamma: f32,
    /// Relational repulsion weight.
    pub delta: f32,
    /// Worker threads for the solvers (execution knob, not part of the
    /// paper's Eq. 12–14; `1` = sequential). Both RO and RN produce
    /// bit-identical results for every thread count, so this only trades
    /// wall time — never output.
    pub threads: usize,
}

impl Default for Hyperparameters {
    /// The paper's series-approach configuration for the ML tasks
    /// (α=1, β=0, γ=3, δ=1, §5.2), single-threaded.
    fn default() -> Self {
        Self { alpha: 1.0, beta: 0.0, gamma: 3.0, delta: 1.0, threads: 1 }
    }
}

impl Hyperparameters {
    /// The paper's RO configuration (α=1, β=0, γ=3, δ=3, §5.2).
    pub fn paper_ro() -> Self {
        Self { alpha: 1.0, beta: 0.0, gamma: 3.0, delta: 3.0, threads: 1 }
    }

    /// The paper's RN configuration (α=1, β=0, γ=3, δ=1, §5.2).
    pub fn paper_rn() -> Self {
        Self::default()
    }

    /// Shorthand constructor (single-threaded; chain
    /// [`Self::with_threads`] for the parallel solvers).
    pub fn new(alpha: f32, beta: f32, gamma: f32, delta: f32) -> Self {
        Self { alpha, beta, gamma, delta, threads: 1 }
    }

    /// Set the solver worker-thread count (values ≤ 1 mean sequential).
    ///
    /// ```
    /// use retro_core::Hyperparameters;
    /// let params = Hyperparameters::paper_ro().with_threads(8);
    /// assert_eq!(params.threads, 8);
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Per-group derived quantities shared by both solvers.
#[derive(Clone, Debug)]
pub struct GroupWeights {
    /// `γ^r_i` for each source id `i` (indexed densely over all values;
    /// zero for non-sources).
    pub gamma_i: Vec<f32>,
    /// `δ^r_i` for each source id.
    pub delta_i: Vec<f32>,
    /// `mr(r)` of Eq. 13.
    pub mr: usize,
    /// `mc(r)` of Eq. 13.
    pub mc: usize,
}

/// `mr(r)` of Eq. 13: the maximum `|Ri| + 1` over all participants of `r`
/// (sources and targets of the forward group).
pub fn mr(group: &RelationGroup, relation_counts: &[u32]) -> usize {
    let mut m = 0usize;
    for &(i, j) in &group.edges {
        m = m.max(relation_counts[i as usize] as usize + 1);
        m = m.max(relation_counts[j as usize] as usize + 1);
    }
    m.max(1)
}

/// Derive the per-source weights of one *directed* group.
///
/// `ro_delta` selects the Eq. 13 (true, optimization solver) or Eq. 14
/// (false, series solver) δ normalization.
pub fn derive_group_weights(
    group: &RelationGroup,
    relation_counts: &[u32],
    params: &Hyperparameters,
    n_values: usize,
    ro_delta: bool,
) -> GroupWeights {
    let mut out_deg = vec![0u32; n_values];
    for &(i, _) in &group.edges {
        out_deg[i as usize] += 1;
    }
    let mr_v = mr(group, relation_counts);
    let mc_v = group.mc().max(1);
    derive_weights_from_degrees(&out_deg, relation_counts, params, mc_v, mr_v, ro_delta)
}

/// The Eq. 12 per-source weight `γ/(od·(|Ri|+1))` (also the Eq. 14 RN δ
/// with `delta` in place of `gamma`). The single source of the formula:
/// [`derive_weights_from_degrees`] and the solver kernels' direct
/// constructions all call this, so they cannot drift.
#[inline]
pub(crate) fn per_source_weight(coefficient: f32, out_degree: u32, relation_count: u32) -> f32 {
    coefficient / (out_degree as f32 * (relation_count as f32 + 1.0))
}

/// The Eq. 13 shared RO repulsion weight `δ̂ = δ/(mc·mr)`. Same
/// single-source role as [`per_source_weight`].
#[inline]
pub(crate) fn delta_hat_weight(delta: f32, mc: usize, mr: usize) -> f32 {
    delta / (mc as f32 * mr as f32)
}

/// [`derive_group_weights`] with the per-source out-degrees and the Eq. 13
/// `mc`/`mr` already known — the allocation-light path `directed_groups`
/// uses after its single counting pass over the edges (identical output to
/// re-deriving them from the group).
pub(crate) fn derive_weights_from_degrees(
    out_deg: &[u32],
    relation_counts: &[u32],
    params: &Hyperparameters,
    mc_v: usize,
    mr_v: usize,
    ro_delta: bool,
) -> GroupWeights {
    let n_values = out_deg.len();
    let mut gamma_i = vec![0.0f32; n_values];
    let mut delta_i = vec![0.0f32; n_values];
    for i in 0..n_values {
        if out_deg[i] > 0 {
            gamma_i[i] = per_source_weight(params.gamma, out_deg[i], relation_counts[i]);
            delta_i[i] = if ro_delta {
                delta_hat_weight(params.delta, mc_v, mr_v)
            } else {
                per_source_weight(params.delta, out_deg[i], relation_counts[i])
            };
        }
    }
    GroupWeights { gamma_i, delta_i, mr: mr_v, mc: mc_v }
}

/// Per-node β of Eq. 12.
pub fn beta_i(relation_counts: &[u32], beta: f32) -> Vec<f32> {
    relation_counts.iter().map(|&r| beta / (r as f32 + 1.0)).collect()
}

/// The Eq. 7 / Eq. 24 convexity check for the RO objective.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamCheck {
    /// True when Ψ is provably convex under the appendix condition
    /// `αᵢ ≥ 4 Σ_r Σ_{j:(i,j)∈Ẽr} δ^r_i` for every node.
    pub convex: bool,
    /// The worst (largest) value of `4 Σ δ` encountered, to compare with α.
    pub worst_delta_mass: f32,
    /// Id of the worst node (diagnostics).
    pub worst_node: usize,
}

/// Evaluate the convexity condition for the RO parameterization.
///
/// For a node `i` that is a source of group `r` with out-degree `odr(i)`,
/// the negative-pair set `Ẽr(i)` has `|targets(r)| − odr(i)` members, each
/// weighted `δ/(mc(r)·mr(r))`.
pub fn check_convexity(
    groups: &[RelationGroup],
    relation_counts: &[u32],
    params: &Hyperparameters,
    n_values: usize,
) -> ParamCheck {
    let mut delta_mass = vec![0.0f32; n_values];
    for group in groups {
        let mr_v = mr(group, relation_counts) as f32;
        let mc_v = group.mc().max(1) as f32;
        let delta_r = params.delta / (mc_v * mr_v);
        let n_targets = group.targets().len() as f32;
        let mut out_deg = std::collections::HashMap::new();
        for &(i, _) in &group.edges {
            *out_deg.entry(i).or_insert(0u32) += 1;
        }
        for (&i, &od) in &out_deg {
            let neg_count = (n_targets - od as f32).max(0.0);
            delta_mass[i as usize] += delta_r * neg_count;
        }
    }
    let (worst_node, &worst) = delta_mass
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .unwrap_or((0, &0.0));
    ParamCheck {
        convex: params.alpha >= 4.0 * worst
            && params.alpha >= 0.0
            && params.beta >= 0.0
            && params.gamma >= 0.0,
        worst_delta_mass: 4.0 * worst,
        worst_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::{relation_type_counts, RelationKind};

    fn group(edges: Vec<(u32, u32)>) -> RelationGroup {
        RelationGroup::new("a.x~b.y".into(), 0, 1, RelationKind::RowWise, edges)
    }

    #[test]
    fn beta_weighted_by_relation_types() {
        let b = beta_i(&[0, 1, 3], 2.0);
        assert_eq!(b, vec![2.0, 1.0, 0.5]);
    }

    #[test]
    fn gamma_matches_eq12_hand_computation() {
        // Node 0 has out-degree 2 in this group and |R0| = 1 (only source
        // here). γ^r_0 = γ / (2 · (1+1)) = γ/4.
        let g = group(vec![(0, 1), (0, 2)]);
        let counts = relation_type_counts(std::slice::from_ref(&g), 3);
        assert_eq!(counts, vec![1, 1, 1]);
        let w =
            derive_group_weights(&g, &counts, &Hyperparameters::new(1.0, 0.0, 2.0, 1.0), 3, false);
        assert!((w.gamma_i[0] - 0.5).abs() < 1e-6);
        assert_eq!(w.gamma_i[1], 0.0); // not a source
    }

    #[test]
    fn ro_delta_uses_mc_times_mr() {
        // edges (0,1),(0,2),(3,1): sources {0,3}, targets {1,2} → mc=2.
        // counts: all participants have 1 group → mr = 2.
        let g = group(vec![(0, 1), (0, 2), (3, 1)]);
        let counts = relation_type_counts(std::slice::from_ref(&g), 4);
        let w =
            derive_group_weights(&g, &counts, &Hyperparameters::new(1.0, 0.0, 1.0, 8.0), 4, true);
        assert_eq!(w.mc, 2);
        assert_eq!(w.mr, 2);
        assert!((w.delta_i[0] - 2.0).abs() < 1e-6); // 8/(2·2)
        assert!((w.delta_i[3] - 2.0).abs() < 1e-6);
        assert_eq!(w.delta_i[1], 0.0);
    }

    #[test]
    fn rn_delta_uses_outdegree() {
        let g = group(vec![(0, 1), (0, 2), (3, 1)]);
        let counts = relation_type_counts(std::slice::from_ref(&g), 4);
        let w =
            derive_group_weights(&g, &counts, &Hyperparameters::new(1.0, 0.0, 1.0, 8.0), 4, false);
        // Node 0: od 2, |R0|+1 = 2 → 8/(2·2) = 2. Node 3: od 1 → 8/2 = 4.
        assert!((w.delta_i[0] - 2.0).abs() < 1e-6);
        assert!((w.delta_i[3] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn convexity_passes_for_small_delta() {
        let g = group(vec![(0, 1), (0, 2), (3, 1)]);
        let counts = relation_type_counts(std::slice::from_ref(&g), 4);
        let check = check_convexity(&[g], &counts, &Hyperparameters::new(10.0, 0.0, 1.0, 0.5), 4);
        assert!(check.convex);
    }

    #[test]
    fn convexity_fails_for_large_delta() {
        let g = group(vec![(0, 1), (0, 2), (3, 1)]);
        let counts = relation_type_counts(std::slice::from_ref(&g), 4);
        // Node 3 has 1 negative pair (target 2), δ^r = 100/(2·2)=25,
        // 4·25 = 100 > α = 1.
        let check = check_convexity(&[g], &counts, &Hyperparameters::new(1.0, 0.0, 1.0, 100.0), 4);
        assert!(!check.convex);
        assert!(check.worst_delta_mass > 1.0);
    }

    #[test]
    fn convexity_trivially_holds_with_zero_delta() {
        let g = group(vec![(0, 1)]);
        let counts = relation_type_counts(std::slice::from_ref(&g), 2);
        let check = check_convexity(&[g], &counts, &Hyperparameters::new(0.0, 1.0, 1.0, 0.0), 2);
        assert!(check.convex);
        assert_eq!(check.worst_delta_mass, 0.0);
    }
}
