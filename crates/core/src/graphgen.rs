//! §3.4 graph generation: text-value nodes + category blank nodes, edges
//! from relation groups and category membership. This is the input to
//! DeepWalk.

use retro_graph::{Graph, NodeKind};

use crate::catalog::TextValueCatalog;
use crate::relations::RelationGroup;

/// The generated graph plus the id mapping back to the catalog.
#[derive(Clone, Debug)]
pub struct GeneratedGraph {
    /// The property graph: nodes `0..n` are text values (same ids as the
    /// catalog), nodes `n..n+m` are category blank nodes.
    pub graph: Graph,
    /// Offset of the first category node (= number of text values).
    pub category_offset: usize,
}

impl GeneratedGraph {
    /// The graph node id of a text value.
    pub fn value_node(&self, value_id: usize) -> usize {
        value_id
    }

    /// The graph node id of a category blank node.
    pub fn category_node(&self, category_id: u32) -> usize {
        self.category_offset + category_id as usize
    }
}

/// Build the §3.4 property graph.
///
/// `V = V_T ∪ V_C`, `E = ∪_r Er ∪ E_C`: every text value connects to its
/// category's blank node, and every relation edge connects two text values.
pub fn generate_graph(catalog: &TextValueCatalog, groups: &[RelationGroup]) -> GeneratedGraph {
    let n = catalog.len();
    let mut graph = Graph::new();
    for i in 0..n {
        graph.add_node(NodeKind::TextValue { label: catalog.text(i).to_owned() });
    }
    for category in catalog.categories() {
        graph.add_node(NodeKind::Category { label: category.label() });
    }
    let category_label = graph.intern_label("category");
    for i in 0..n {
        let cat = catalog.category_of(i) as usize;
        graph.add_edge(i, n + cat, category_label);
    }
    for group in groups {
        let label = graph.intern_label(&group.name);
        for &(i, j) in &group.edges {
            graph.add_edge(i as usize, j as usize, label);
        }
    }
    GeneratedGraph { graph, category_offset: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relations::RelationKind;

    fn setup() -> (TextValueCatalog, Vec<RelationGroup>) {
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("movies", "title");
        let cb = catalog.add_category("persons", "name");
        let a = catalog.intern(ca, "alien");
        let b = catalog.intern(cb, "ridley scott");
        catalog.intern(cb, "luc besson");
        let groups = vec![RelationGroup::new(
            "movies.title~persons.name".into(),
            ca,
            cb,
            RelationKind::ForeignKey,
            vec![(a, b)],
        )];
        (catalog, groups)
    }

    #[test]
    fn node_counts_are_values_plus_categories() {
        let (catalog, groups) = setup();
        let g = generate_graph(&catalog, &groups);
        assert_eq!(g.graph.node_count(), 3 + 2);
        assert_eq!(g.category_offset, 3);
    }

    #[test]
    fn category_edges_link_values_to_blank_nodes() {
        let (catalog, groups) = setup();
        let g = generate_graph(&catalog, &groups);
        // Every text value has exactly one category edge; alien also has the
        // relation edge.
        let title_cat = g.category_node(0);
        assert!(g.graph.neighbors(0).contains(&(title_cat as u32)));
        assert_eq!(g.graph.degree(title_cat), 1); // only alien in movies.title
        assert_eq!(g.graph.degree(g.category_node(1)), 2); // two persons
    }

    #[test]
    fn relation_edges_carry_group_labels() {
        let (catalog, groups) = setup();
        let g = generate_graph(&catalog, &groups);
        let labels: Vec<&str> = g.graph.neighbors_labelled(0).map(|(_, l)| l).collect();
        assert!(labels.contains(&"category"));
        assert!(labels.contains(&"movies.title~persons.name"));
    }

    #[test]
    fn edge_count_is_categories_plus_relations() {
        let (catalog, groups) = setup();
        let g = generate_graph(&catalog, &groups);
        assert_eq!(g.graph.edge_count(), 3 + 1);
        assert!(g.graph.is_symmetric());
    }
}
