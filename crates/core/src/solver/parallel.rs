//! Multi-threaded RN solver.
//!
//! The paper measures everything single-threaded (§5.3), but an adopter of
//! the library wants the cores they paid for. The RN iteration is a sparse
//! matrix product plus row-local postprocessing, so it partitions cleanly:
//! each worker computes a disjoint row range of `Γ·W` and the subsequent
//! add/normalize, while the per-group target centroids (cheap, O(n·D)
//! total) are computed once per iteration on the coordinating thread.
//!
//! Results are bit-identical to [`super::solve_rn`] — the parallelism only
//! reorders independent row computations.

use retro_linalg::{vector, CooMatrix, Matrix};

use crate::hyper::Hyperparameters;
use crate::problem::RetrofitProblem;

/// Run the RN solver with `threads` workers (values ≤ 1 fall back to the
/// serial path).
pub fn solve_rn_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    threads: usize,
) -> Matrix {
    if threads <= 1 {
        return super::solve_rn(problem, params, iterations);
    }
    let n = problem.len();
    let dim = problem.dim();
    if n == 0 {
        return Matrix::zeros(0, dim);
    }
    let groups = problem.directed_groups(params, false);
    let beta = problem.beta_weights(params);

    let mut coo = CooMatrix::new(n, n);
    for dg in &groups {
        for &(i, j) in &dg.group.edges {
            coo.push(i as usize, j as usize, dg.own.gamma_i[i as usize]);
        }
    }
    let pos = coo.to_csr();

    let mut base = Matrix::zeros(n, dim);
    for (i, &b) in beta.iter().enumerate() {
        let row = base.row_mut(i);
        row.copy_from_slice(problem.w0.row(i));
        vector::scale(params.alpha, row);
        vector::axpy(b, problem.centroid_of(i), row);
    }

    // Precompute, per node, the list of (group index, delta) pairs so the
    // row-parallel phase can apply the negative centroids locally.
    let mut node_negatives: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    for (g, dg) in groups.iter().enumerate() {
        if dg.targets.is_empty() {
            continue;
        }
        for &s in &dg.sources {
            let delta = dg.own.delta_i[s as usize];
            if delta != 0.0 {
                node_negatives[s as usize].push((g as u32, delta));
            }
        }
    }

    let rows_per_chunk = n.div_ceil(threads);
    let mut w = problem.w0.clone();
    let mut next = Matrix::zeros(n, dim);
    let mut centroids: Vec<Vec<f32>> = vec![vec![0.0; dim]; groups.len()];

    for _ in 0..iterations {
        // Serial phase: per-group target centroids (Eq. 16).
        for (g, dg) in groups.iter().enumerate() {
            let c = &mut centroids[g];
            vector::zero(c);
            if dg.targets.is_empty() {
                continue;
            }
            for &k in &dg.targets {
                vector::axpy(1.0, w.row(k as usize), c);
            }
            vector::scale(1.0 / dg.targets.len() as f32, c);
        }

        // Parallel phase: disjoint row ranges of Γ·W + base + negatives,
        // then normalization — all row-local.
        let w_ref = &w;
        let pos_ref = &pos;
        let base_ref = &base;
        let centroids_ref = &centroids;
        let negatives_ref = &node_negatives;
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in
                next.as_mut_slice().chunks_mut(rows_per_chunk * dim).enumerate()
            {
                let start = chunk_idx * rows_per_chunk;
                let end = (start + chunk.len() / dim).min(n);
                scope.spawn(move || {
                    pos_ref.mul_dense_range_into(w_ref, start..end, chunk);
                    for (local, r) in (start..end).enumerate() {
                        let out_row = &mut chunk[local * dim..(local + 1) * dim];
                        for &(g, delta) in &negatives_ref[r] {
                            vector::axpy(-delta, &centroids_ref[g as usize], out_row);
                        }
                        vector::axpy(1.0, base_ref.row(r), out_row);
                        vector::normalize(out_row);
                    }
                });
            }
        });
        std::mem::swap(&mut w, &mut next);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use crate::solver::solve_rn;
    use retro_embed::EmbeddingSet;

    fn problem(n_extra: usize) -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("a", "x");
        let cb = catalog.add_category("b", "y");
        let mut edges = Vec::new();
        let mut tokens = Vec::new();
        let mut vectors = Vec::new();
        for k in 0..(4 + n_extra) {
            let i = catalog.intern(ca, &format!("s{k}"));
            let j = catalog.intern(cb, &format!("t{k}"));
            edges.push((i, j));
            if k % 3 > 0 {
                edges.push((i, (j + 1) % 2 + catalog.len() as u32 % 2));
            }
            tokens.push(format!("s{k}"));
            vectors.push(vec![k as f32 * 0.1, 1.0, -0.3 * k as f32]);
            tokens.push(format!("t{k}"));
            vectors.push(vec![1.0 - k as f32 * 0.05, -0.5, 0.2]);
        }
        let groups =
            vec![RelationGroup::new("a.x~b.y".into(), ca, cb, RelationKind::ForeignKey, edges)];
        let base = EmbeddingSet::new(tokens, vectors);
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let p = problem(20);
        let params = Hyperparameters::paper_rn();
        let serial = solve_rn(&p, &params, 10);
        for threads in [2, 3, 8] {
            let parallel = solve_rn_parallel(&p, &params, 10, threads);
            assert!(
                serial.max_abs_diff(&parallel) < 1e-6,
                "threads={threads}: diff {}",
                serial.max_abs_diff(&parallel)
            );
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let p = problem(4);
        let params = Hyperparameters::paper_rn();
        let a = solve_rn(&p, &params, 5);
        let b = solve_rn_parallel(&p, &params, 5, 1);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_rn_parallel(&p, &Hyperparameters::default(), 3, 4);
        assert_eq!(w.shape(), (0, 1));
    }
}
