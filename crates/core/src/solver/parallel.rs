//! Multi-threaded solvers (RN and RO).
//!
//! The paper measures everything single-threaded (§5.3), but an adopter of
//! the library wants the cores they paid for. Both solvers' iterations are
//! a sparse matrix product plus row-local postprocessing, so they partition
//! cleanly: each worker computes a disjoint row range of the operator
//! product and the subsequent per-row update, while the per-group target
//! sums/centroids are themselves partitioned by *group* across the same
//! worker pool (each group written by exactly one worker).
//!
//! Results are bit-identical to the sequential [`super::solve_rn`] /
//! [`super::solve_ro`] — the parallelism only reorders independent row and
//! group computations. This is guaranteed structurally for both solvers:
//! the sequential entry points and the `*_parallel` ones run the same
//! kernels (`RoKernel` in `ro.rs`, `RnKernel` in `rn.rs`) and differ only
//! in how many threads the partitions are spread across; `threads = 1`
//! runs the phases inline on the calling thread.

use retro_linalg::Matrix;

use crate::hyper::Hyperparameters;
use crate::problem::RetrofitProblem;
use crate::solver::rn::RnKernel;
use crate::solver::ro::{NegativeMode, RoKernel};

/// Run the RO solver with `threads` workers.
///
/// Same partition shape as [`solve_rn_parallel`]: the Eq. 15 target sums
/// are computed in a group-partitioned phase, after which every output row
/// is independent. Results are **bit-identical** to [`super::solve_ro`]
/// for every thread count — including `threads = 1`, which runs both
/// phases inline on the calling thread.
///
/// ```
/// use retro_core::solver::{solve_ro, solve_ro_parallel};
/// use retro_core::{Hyperparameters, RetrofitProblem};
/// use retro_embed::EmbeddingSet;
/// use retro_store::{sql, Database};
///
/// let mut db = Database::new();
/// sql::run_script(&mut db, "
///     CREATE TABLE countries (id INTEGER PRIMARY KEY, name TEXT);
///     CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
///                          country_id INTEGER REFERENCES countries(id));
///     INSERT INTO countries VALUES (1, 'france'), (2, 'usa');
///     INSERT INTO movies VALUES (1, 'amelie', 1), (2, 'alien', 2);
/// ").unwrap();
/// let base = EmbeddingSet::new(
///     vec!["amelie".into(), "alien".into(), "france".into(), "usa".into()],
///     vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.1], vec![0.1, 0.9]],
/// );
/// let problem = RetrofitProblem::build(&db, &base, &[], &[]);
/// let params = Hyperparameters::paper_ro();
/// let serial = solve_ro(&problem, &params, 10);
/// let parallel = solve_ro_parallel(&problem, &params, 10, 4);
/// assert_eq!(serial.max_abs_diff(&parallel), 0.0);
/// ```
pub fn solve_ro_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    threads: usize,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Blanket).run(None, iterations, threads)
}

/// Run the RO solver with `threads` workers from an explicit starting
/// matrix (the multi-threaded [`super::solve_ro_seeded`]; used by warm-start
/// incremental maintenance at scale).
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_ro_seeded_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
    threads: usize,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Blanket).run(seed, iterations, threads)
}

/// Run the RN solver with `threads` workers.
///
/// Results are **bit-identical** to [`super::solve_rn`] for every thread
/// count: both run the shared `RnKernel` (see `rn.rs`), whose group- and
/// row-partitioned phases never reorder the floating-point operations that
/// produce any given centroid or row.
pub fn solve_rn_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    threads: usize,
) -> Matrix {
    solve_rn_seeded_parallel(problem, params, iterations, None, threads)
}

/// Run the RN solver with `threads` workers from an explicit starting
/// matrix (the multi-threaded [`super::solve_rn_seeded`]; used by
/// warm-start incremental maintenance).
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_rn_seeded_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
    threads: usize,
) -> Matrix {
    RnKernel::new(problem, params).run(seed, iterations, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use crate::solver::solve_rn;
    use retro_embed::EmbeddingSet;

    /// A bipartite problem with genuinely irregular adjacency: every pair
    /// `(s_k, t_k)` is related, and two strided cross-link sweeps give
    /// sources uneven fan-out and targets uneven fan-in (the strides 5 and
    /// 7 are coprime with most lengths, so the extra edges scatter across
    /// the whole target list instead of clustering).
    fn problem(n_extra: usize) -> RetrofitProblem {
        let n_pairs = 4 + n_extra;
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("a", "x");
        let cb = catalog.add_category("b", "y");
        let mut sources = Vec::new();
        let mut targets = Vec::new();
        let mut tokens = Vec::new();
        let mut vectors = Vec::new();
        for k in 0..n_pairs {
            sources.push(catalog.intern(ca, &format!("s{k}")));
            targets.push(catalog.intern(cb, &format!("t{k}")));
            tokens.push(format!("s{k}"));
            vectors.push(vec![k as f32 * 0.1, 1.0, -0.3 * k as f32]);
            tokens.push(format!("t{k}"));
            vectors.push(vec![1.0 - k as f32 * 0.05, -0.5, 0.2]);
        }
        let mut edges = Vec::new();
        for k in 0..n_pairs {
            edges.push((sources[k], targets[k]));
            let cross = (k * 5 + 2) % n_pairs;
            if k % 3 > 0 && cross != k {
                edges.push((sources[k], targets[cross]));
            }
            let far = (k * 7 + 3) % n_pairs;
            if k % 4 == 0 && far != k {
                edges.push((sources[k], targets[far]));
            }
        }
        let groups =
            vec![RelationGroup::new("a.x~b.y".into(), ca, cb, RelationKind::ForeignKey, edges)];
        let base = EmbeddingSet::new(tokens, vectors);
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn problem_helper_has_irregular_adjacency() {
        // Guard the helper itself: the cross-links must produce uneven
        // fan-in (some target related to several sources, some to one).
        let p = problem(20);
        let dg = p.directed_groups(&Hyperparameters::paper_rn(), false);
        let mut fan_in = std::collections::HashMap::new();
        for &(_, j) in &dg[0].group.edges {
            *fan_in.entry(j).or_insert(0u32) += 1;
        }
        let max = fan_in.values().max().copied().unwrap_or(0);
        let min = fan_in.values().min().copied().unwrap_or(0);
        assert!(max >= 2 && min == 1, "fan-in should be uneven, got {min}..{max}");
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let p = problem(20);
        let params = Hyperparameters::paper_rn();
        let serial = solve_rn(&p, &params, 10);
        for threads in [1, 2, 3, 8] {
            let parallel = solve_rn_parallel(&p, &params, 10, threads);
            assert_eq!(
                serial.max_abs_diff(&parallel),
                0.0,
                "threads={threads} diverged from sequential RN"
            );
        }
    }

    #[test]
    fn single_thread_runs_the_row_phase_inline() {
        let p = problem(4);
        let params = Hyperparameters::paper_rn();
        let a = solve_rn(&p, &params, 5);
        let b = solve_rn_parallel(&p, &params, 5, 1);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_rn_parallel(&p, &Hyperparameters::default(), 3, 4);
        assert_eq!(w.shape(), (0, 1));
    }

    #[test]
    fn rn_seeded_parallel_matches_seeded_serial() {
        let p = problem(12);
        let params = Hyperparameters::paper_rn();
        let warm = solve_rn(&p, &params, 3);
        let serial = crate::solver::solve_rn_seeded(&p, &params, 5, Some(&warm));
        for threads in [1, 2, 3, 8] {
            let parallel = solve_rn_seeded_parallel(&p, &params, 5, Some(&warm), threads);
            assert_eq!(serial.max_abs_diff(&parallel), 0.0, "threads={threads} (seeded)");
        }
    }

    #[test]
    fn ro_parallel_matches_serial_bit_for_bit() {
        let p = problem(20);
        let params = Hyperparameters::paper_ro();
        let serial = crate::solver::solve_ro(&p, &params, 10);
        for threads in [1, 2, 3, 8] {
            let parallel = solve_ro_parallel(&p, &params, 10, threads);
            assert_eq!(
                serial.max_abs_diff(&parallel),
                0.0,
                "threads={threads} diverged from sequential RO"
            );
        }
    }

    #[test]
    fn ro_seeded_parallel_matches_seeded_serial() {
        let p = problem(12);
        let params = Hyperparameters::paper_ro();
        let warm = crate::solver::solve_ro(&p, &params, 3);
        let serial = crate::solver::ro::solve_ro_seeded(&p, &params, 5, Some(&warm));
        for threads in [1, 2, 3, 8] {
            let parallel = solve_ro_seeded_parallel(&p, &params, 5, Some(&warm), threads);
            assert_eq!(serial.max_abs_diff(&parallel), 0.0, "threads={threads} (seeded)");
        }
    }

    #[test]
    fn zero_dimension_problem_is_handled() {
        let mut catalog = TextValueCatalog::default();
        let c = catalog.add_category("a", "x");
        catalog.intern(c, "v");
        let base = EmbeddingSet::empty(0);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        assert_eq!(solve_rn_parallel(&p, &Hyperparameters::default(), 3, 4).shape(), (1, 0));
        assert_eq!(solve_ro_parallel(&p, &Hyperparameters::paper_ro(), 3, 4).shape(), (1, 0));
    }

    #[test]
    fn ro_parallel_empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_ro_parallel(&p, &Hyperparameters::paper_ro(), 3, 4);
        assert_eq!(w.shape(), (0, 1));
    }
}
