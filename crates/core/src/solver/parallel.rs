//! Multi-threaded solvers (RN and RO).
//!
//! The paper measures everything single-threaded (§5.3), but an adopter of
//! the library wants the cores they paid for. Both solvers' iterations are
//! a sparse matrix product plus row-local postprocessing, so they partition
//! cleanly: each worker computes a disjoint row range of the operator
//! product and the subsequent per-row update, while the per-group target
//! sums/centroids (cheap, O(n·D) total) are computed once per iteration on
//! the coordinating thread.
//!
//! Results are bit-identical to the sequential [`super::solve_rn`] /
//! [`super::solve_ro`] — the parallelism only reorders independent row
//! computations. For RO this is guaranteed structurally: the sequential
//! entry points and [`solve_ro_parallel`] run the same row-partitioned
//! kernel (`RoKernel` in `ro.rs`) and differ only in how many threads the
//! row partition is spread across.

use retro_linalg::{vector, CooMatrix, Matrix};

use crate::hyper::Hyperparameters;
use crate::problem::RetrofitProblem;
use crate::solver::ro::{NegativeMode, RoKernel};

/// Run the RO solver with `threads` workers.
///
/// Same row-partition shape as [`solve_rn_parallel`]: the Eq. 15 target
/// sums are hoisted into a serial per-iteration phase, after which every
/// output row is independent. Results are **bit-identical** to
/// [`super::solve_ro`] for every thread count — including `threads = 1`,
/// which runs the row phase inline on the calling thread.
///
/// ```
/// use retro_core::solver::{solve_ro, solve_ro_parallel};
/// use retro_core::{Hyperparameters, RetrofitProblem};
/// use retro_embed::EmbeddingSet;
/// use retro_store::{sql, Database};
///
/// let mut db = Database::new();
/// sql::run_script(&mut db, "
///     CREATE TABLE countries (id INTEGER PRIMARY KEY, name TEXT);
///     CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
///                          country_id INTEGER REFERENCES countries(id));
///     INSERT INTO countries VALUES (1, 'france'), (2, 'usa');
///     INSERT INTO movies VALUES (1, 'amelie', 1), (2, 'alien', 2);
/// ").unwrap();
/// let base = EmbeddingSet::new(
///     vec!["amelie".into(), "alien".into(), "france".into(), "usa".into()],
///     vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.1], vec![0.1, 0.9]],
/// );
/// let problem = RetrofitProblem::build(&db, &base, &[], &[]);
/// let params = Hyperparameters::paper_ro();
/// let serial = solve_ro(&problem, &params, 10);
/// let parallel = solve_ro_parallel(&problem, &params, 10, 4);
/// assert_eq!(serial.max_abs_diff(&parallel), 0.0);
/// ```
pub fn solve_ro_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    threads: usize,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Blanket).run(None, iterations, threads)
}

/// Run the RO solver with `threads` workers from an explicit starting
/// matrix (the multi-threaded [`super::solve_ro_seeded`]; used by warm-start
/// incremental maintenance at scale).
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_ro_seeded_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
    threads: usize,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Blanket).run(seed, iterations, threads)
}

/// Run the RN solver with `threads` workers (values ≤ 1 fall back to the
/// serial path).
pub fn solve_rn_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    threads: usize,
) -> Matrix {
    solve_rn_seeded_parallel(problem, params, iterations, None, threads)
}

/// Run the RN solver with `threads` workers from an explicit starting
/// matrix (the multi-threaded [`super::solve_rn_seeded`]; used by
/// warm-start incremental maintenance).
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_rn_seeded_parallel(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
    threads: usize,
) -> Matrix {
    if threads <= 1 {
        return super::solve_rn_seeded(problem, params, iterations, seed);
    }
    let n = problem.len();
    let dim = problem.dim();
    if n == 0 || dim == 0 {
        // dim == 0 would make the row chunks zero-sized (`chunks_mut(0)`
        // panics); a zero-width result is exact either way.
        return Matrix::zeros(n, dim);
    }
    let groups = problem.directed_groups(params, false);
    let beta = problem.beta_weights(params);

    let mut coo = CooMatrix::new(n, n);
    for dg in &groups {
        for &(i, j) in &dg.group.edges {
            coo.push(i as usize, j as usize, dg.own.gamma_i[i as usize]);
        }
    }
    let pos = coo.to_csr();

    let mut base = Matrix::zeros(n, dim);
    for (i, &b) in beta.iter().enumerate() {
        let row = base.row_mut(i);
        row.copy_from_slice(problem.w0.row(i));
        vector::scale(params.alpha, row);
        vector::axpy(b, problem.centroid_of(i), row);
    }

    // Precompute, per node, the list of (group index, delta) pairs so the
    // row-parallel phase can apply the negative centroids locally.
    let mut node_negatives: Vec<Vec<(u32, f32)>> = vec![Vec::new(); n];
    for (g, dg) in groups.iter().enumerate() {
        if dg.targets.is_empty() {
            continue;
        }
        for &s in &dg.sources {
            let delta = dg.own.delta_i[s as usize];
            if delta != 0.0 {
                node_negatives[s as usize].push((g as u32, delta));
            }
        }
    }

    let rows_per_chunk = n.div_ceil(threads);
    let mut w = match seed {
        Some(s) => {
            assert_eq!(s.shape(), (n, dim), "RN solver: seed shape mismatch");
            s.clone()
        }
        None => problem.w0.clone(),
    };
    let mut next = Matrix::zeros(n, dim);
    let mut centroids: Vec<Vec<f32>> = vec![vec![0.0; dim]; groups.len()];

    for _ in 0..iterations {
        // Serial phase: per-group target centroids (Eq. 16).
        for (g, dg) in groups.iter().enumerate() {
            let c = &mut centroids[g];
            vector::zero(c);
            if dg.targets.is_empty() {
                continue;
            }
            for &k in &dg.targets {
                vector::axpy(1.0, w.row(k as usize), c);
            }
            vector::scale(1.0 / dg.targets.len() as f32, c);
        }

        // Parallel phase: disjoint row ranges of Γ·W + base + negatives,
        // then normalization — all row-local.
        let w_ref = &w;
        let pos_ref = &pos;
        let base_ref = &base;
        let centroids_ref = &centroids;
        let negatives_ref = &node_negatives;
        std::thread::scope(|scope| {
            for (chunk_idx, chunk) in
                next.as_mut_slice().chunks_mut(rows_per_chunk * dim).enumerate()
            {
                let start = chunk_idx * rows_per_chunk;
                let end = (start + chunk.len() / dim).min(n);
                scope.spawn(move || {
                    pos_ref.mul_dense_range_into(w_ref, start..end, chunk);
                    for (local, r) in (start..end).enumerate() {
                        let out_row = &mut chunk[local * dim..(local + 1) * dim];
                        for &(g, delta) in &negatives_ref[r] {
                            vector::axpy(-delta, &centroids_ref[g as usize], out_row);
                        }
                        vector::axpy(1.0, base_ref.row(r), out_row);
                        vector::normalize(out_row);
                    }
                });
            }
        });
        std::mem::swap(&mut w, &mut next);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use crate::solver::solve_rn;
    use retro_embed::EmbeddingSet;

    fn problem(n_extra: usize) -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("a", "x");
        let cb = catalog.add_category("b", "y");
        let mut edges = Vec::new();
        let mut tokens = Vec::new();
        let mut vectors = Vec::new();
        for k in 0..(4 + n_extra) {
            let i = catalog.intern(ca, &format!("s{k}"));
            let j = catalog.intern(cb, &format!("t{k}"));
            edges.push((i, j));
            if k % 3 > 0 {
                edges.push((i, (j + 1) % 2 + catalog.len() as u32 % 2));
            }
            tokens.push(format!("s{k}"));
            vectors.push(vec![k as f32 * 0.1, 1.0, -0.3 * k as f32]);
            tokens.push(format!("t{k}"));
            vectors.push(vec![1.0 - k as f32 * 0.05, -0.5, 0.2]);
        }
        let groups =
            vec![RelationGroup::new("a.x~b.y".into(), ca, cb, RelationKind::ForeignKey, edges)];
        let base = EmbeddingSet::new(tokens, vectors);
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let p = problem(20);
        let params = Hyperparameters::paper_rn();
        let serial = solve_rn(&p, &params, 10);
        for threads in [2, 3, 8] {
            let parallel = solve_rn_parallel(&p, &params, 10, threads);
            assert!(
                serial.max_abs_diff(&parallel) < 1e-6,
                "threads={threads}: diff {}",
                serial.max_abs_diff(&parallel)
            );
        }
    }

    #[test]
    fn single_thread_delegates_to_serial() {
        let p = problem(4);
        let params = Hyperparameters::paper_rn();
        let a = solve_rn(&p, &params, 5);
        let b = solve_rn_parallel(&p, &params, 5, 1);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_rn_parallel(&p, &Hyperparameters::default(), 3, 4);
        assert_eq!(w.shape(), (0, 1));
    }

    #[test]
    fn rn_seeded_parallel_matches_seeded_serial() {
        let p = problem(12);
        let params = Hyperparameters::paper_rn();
        let warm = solve_rn(&p, &params, 3);
        let serial = crate::solver::solve_rn_seeded(&p, &params, 5, Some(&warm));
        let parallel = solve_rn_seeded_parallel(&p, &params, 5, Some(&warm), 4);
        assert_eq!(serial.max_abs_diff(&parallel), 0.0);
    }

    #[test]
    fn ro_parallel_matches_serial_bit_for_bit() {
        let p = problem(20);
        let params = Hyperparameters::paper_ro();
        let serial = crate::solver::solve_ro(&p, &params, 10);
        for threads in [1, 2, 3, 8] {
            let parallel = solve_ro_parallel(&p, &params, 10, threads);
            assert_eq!(
                serial.max_abs_diff(&parallel),
                0.0,
                "threads={threads} diverged from sequential RO"
            );
        }
    }

    #[test]
    fn ro_seeded_parallel_matches_seeded_serial() {
        let p = problem(12);
        let params = Hyperparameters::paper_ro();
        let warm = crate::solver::solve_ro(&p, &params, 3);
        let serial = crate::solver::ro::solve_ro_seeded(&p, &params, 5, Some(&warm));
        let parallel = solve_ro_seeded_parallel(&p, &params, 5, Some(&warm), 4);
        assert_eq!(serial.max_abs_diff(&parallel), 0.0);
    }

    #[test]
    fn zero_dimension_problem_is_handled() {
        let mut catalog = TextValueCatalog::default();
        let c = catalog.add_category("a", "x");
        catalog.intern(c, "v");
        let base = EmbeddingSet::empty(0);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        assert_eq!(solve_rn_parallel(&p, &Hyperparameters::default(), 3, 4).shape(), (1, 0));
        assert_eq!(solve_ro_parallel(&p, &Hyperparameters::paper_ro(), 3, 4).shape(), (1, 0));
    }

    #[test]
    fn ro_parallel_empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_ro_parallel(&p, &Hyperparameters::paper_ro(), 3, 4);
        assert_eq!(w.shape(), (0, 1));
    }
}
