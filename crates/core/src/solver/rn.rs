//! The series-based solver (RN): Eq. 9 row updates as the Eq. 11 matrix
//! iteration with row normalization, using the Eq. 16 precomputed target
//! centroids for the negative term.
//!
//! Per iteration:
//!
//! ```text
//! W' = α·W0 + β·c + Σ_r [ Γr·W − δ^r_i · t_r ]    (t_r = centroid of targets(r))
//! W  = row-normalize(W')
//! ```
//!
//! Unlike RO there is no symmetric `γ̄ᵀ` term — every directed group only
//! updates its sources — and the normalization bounds the series, so the
//! parameter constraints of Eq. 7 do not apply (§4.2).
//!
//! ## One kernel, every execution mode
//!
//! All RN entry points ([`solve_rn`], [`solve_rn_seeded`], and the
//! multi-threaded [`solve_rn_parallel`](super::solve_rn_parallel) /
//! [`solve_rn_seeded_parallel`](super::solve_rn_seeded_parallel), plus
//! `Retro::solve` and incremental warm starts through them) run one shared
//! kernel (`RnKernel`), the RN counterpart of `RoKernel` in `ro.rs`. The
//! kernel splits each iteration into
//!
//! 1. a **group-partition phase** — the Eq. 16 per-group target centroids
//!    `t_r` (they read only the previous iterate `W`); groups are
//!    partitioned across the worker pool and each group's centroid is
//!    written by exactly one worker, so the result is independent of the
//!    partition, and
//! 2. a **row-partition phase** — `α·W0 + β·c + Γ·W` minus the negative
//!    centroids, then row normalization, all *row-local* given the `t_r`.
//!
//! Neither phase's floating-point order depends on how many workers the
//! partitions are spread across, so results are **bit-identical** from 1 to
//! N threads; the sequential entry points are the kernel at `threads = 1`
//! (phases run inline on the calling thread). All per-iteration scratch
//! (centroid matrix, ping-pong iterate buffers) lives in the kernel and is
//! built once — the iteration loop allocates nothing, and a kernel reused
//! across warm-start solves re-uses its buffers.

use retro_linalg::{vector, CooMatrix, CsrMatrix, Matrix};

use crate::hyper::{per_source_weight, Hyperparameters};
use crate::problem::RetrofitProblem;

/// The assembled RN iteration: positive operator, constant-part
/// coefficients, flattened target lists and per-node negative plans, plus
/// all iteration scratch. Built once per solve (or held across warm-start
/// solves); `run` then iterates with any number of worker threads.
pub(crate) struct RnKernel<'p> {
    problem: &'p RetrofitProblem,
    /// Positive operator `Γ` (`γ^r_i` on every directed edge).
    pos: CsrMatrix,
    /// Eq. 12 β per node. The constant part `α·W0 + β·c` is not
    /// materialized — each row update recomputes it from `W0` and the
    /// category centroids (same expression, so same bits), which saves an
    /// `n × D` buffer and a full pass over it at construction.
    beta: Vec<f32>,
    /// The anchor weight α.
    alpha: f32,
    /// Flattened group target lists (CSR-style offsets+data): group `g`
    /// covers `tgt_ids[tgt_ptr[g] .. tgt_ptr[g+1]]`.
    tgt_ptr: Vec<u32>,
    tgt_ids: Vec<u32>,
    /// Per group: true when some row actually subtracts this group's
    /// centroid (nonempty targets and ≥ 1 source with `δ^r_i ≠ 0`); dead
    /// groups are skipped in the centroid phase.
    live: Vec<bool>,
    /// Flattened per-node negative plans (CSR-style by node, group order —
    /// the order fixes each row's floating-point sequence): row `r`
    /// subtracts `neg_delta[k] · centroid(neg_group[k])` for
    /// `k ∈ neg_ptr[r] .. neg_ptr[r+1]`.
    neg_ptr: Vec<u32>,
    neg_group: Vec<u32>,
    neg_delta: Vec<f32>,
    /// Scratch, hoisted out of the iteration loop: Eq. 16 centroids (one
    /// row per directed group) and the ping-pong iterate buffers.
    centroids: Matrix,
    w: Matrix,
    next: Matrix,
}

impl<'p> RnKernel<'p> {
    /// Assemble the kernel for one problem/parameter set.
    ///
    /// Construction works directly from the forward relation groups with
    /// one degree-counting pass per group — the per-edge `γ^r_i` and
    /// per-source `δ^r_i` of Eq. 12/14 are computed on the fly from the
    /// out-degrees and `|Ri|` counts (the same expressions
    /// [`crate::hyper::derive_group_weights`] evaluates, so the same bits)
    /// without materializing [`crate::problem::DirectedGroup`]s, their
    /// `n`-length weight vectors, or inverted edge lists.
    pub(crate) fn new(problem: &'p RetrofitProblem, params: &Hyperparameters) -> Self {
        let n = problem.len();
        let dim = problem.dim();
        let beta = problem.beta_weights(params);
        let counts = &problem.relation_counts;
        let n_groups = problem.groups.len() * 2;

        // Directed groups are ordered (forward, inverted) per forward
        // group, exactly like `RetrofitProblem::directed_groups`.
        let mut coo = CooMatrix::new(n, n);
        let mut tgt_ptr = Vec::with_capacity(n_groups + 1);
        tgt_ptr.push(0u32);
        let mut tgt_ids: Vec<u32> = Vec::new();
        let mut live = vec![false; n_groups];
        // Per-node negative entries in (group-major, ascending node) visit
        // order: (node, directed group, δ^r_node). Flattened into CSR form
        // by a stable counting sort below.
        let mut neg_entries: Vec<(u32, u32, f32)> = Vec::new();
        let mut fwd_deg = vec![0u32; n];
        let mut inv_deg = vec![0u32; n];
        for (gi, group) in problem.groups.iter().enumerate() {
            for &(i, j) in &group.edges {
                fwd_deg[i as usize] += 1;
                inv_deg[j as usize] += 1;
            }
            // Forward direction: γ^r_i = γ/(od(i)·(|Ri|+1)) on every edge,
            // δ^r_i = δ/(od(i)·(|Ri|+1)) for every distinct source.
            for &(i, j) in &group.edges {
                let g = per_source_weight(params.gamma, fwd_deg[i as usize], counts[i as usize]);
                coo.push(i as usize, j as usize, g);
            }
            // Inverted direction: same formulas over the swapped edges.
            for &(i, j) in &group.edges {
                let g = per_source_weight(params.gamma, inv_deg[j as usize], counts[j as usize]);
                coo.push(j as usize, i as usize, g);
            }
            let g_fwd = (2 * gi) as u32;
            let g_inv = g_fwd + 1;
            // Distinct targets (ascending scan ≡ sorted + deduped): the
            // forward direction's targets are the nodes with inverted
            // out-degree, and vice versa.
            let has_edges = !group.edges.is_empty();
            for i in 0..n {
                if inv_deg[i] > 0 {
                    tgt_ids.push(i as u32);
                }
            }
            tgt_ptr.push(tgt_ids.len() as u32);
            for i in 0..n {
                if fwd_deg[i] > 0 {
                    tgt_ids.push(i as u32);
                }
            }
            tgt_ptr.push(tgt_ids.len() as u32);
            if params.delta != 0.0 && has_edges {
                for i in 0..n {
                    if fwd_deg[i] > 0 {
                        let delta = per_source_weight(params.delta, fwd_deg[i], counts[i]);
                        if delta != 0.0 {
                            neg_entries.push((i as u32, g_fwd, delta));
                            live[g_fwd as usize] = true;
                        }
                    }
                }
                for i in 0..n {
                    if inv_deg[i] > 0 {
                        let delta = per_source_weight(params.delta, inv_deg[i], counts[i]);
                        if delta != 0.0 {
                            neg_entries.push((i as u32, g_inv, delta));
                            live[g_inv as usize] = true;
                        }
                    }
                }
            }
            for &(i, j) in &group.edges {
                fwd_deg[i as usize] = 0;
                inv_deg[j as usize] = 0;
            }
        }
        let pos = coo.to_csr();
        let (neg_ptr, neg_group, neg_delta) = super::flatten_by_node(n, &neg_entries);

        Self {
            problem,
            pos,
            beta,
            alpha: params.alpha,
            tgt_ptr,
            tgt_ids,
            live,
            neg_ptr,
            neg_group,
            neg_delta,
            centroids: Matrix::zeros(n_groups, dim),
            // `w` is created lazily by `run` (it is handed out as the
            // result); `next` persists across runs.
            w: Matrix::zeros(0, 0),
            next: Matrix::zeros(n, dim),
        }
    }

    /// Iterate the kernel. `seed` overrides the starting matrix (warm
    /// start); `threads ≤ 1` runs both phases inline on the calling thread.
    /// Results are bit-identical for every `threads` value. The iteration
    /// loop performs no allocation: the only allocation per run is the
    /// returned matrix itself (handed out by move, lazily replaced on the
    /// next run), so repeated/warm-start solves reuse all other scratch.
    pub(crate) fn run(
        &mut self,
        seed: Option<&Matrix>,
        iterations: usize,
        threads: usize,
    ) -> Matrix {
        let n = self.problem.len();
        let dim = self.problem.dim();
        if n == 0 || dim == 0 {
            return Matrix::zeros(n, dim);
        }
        if let Some(s) = seed {
            // Validate before touching the scratch: a panic below the
            // `mem::replace` calls would leave the kernel with emptied
            // buffers and a later run would silently compute nothing.
            assert_eq!(s.shape(), (n, dim), "RN solver: seed shape mismatch");
        }
        if self.w.shape() != (n, dim) {
            // The previous run handed its `w` buffer out as the result.
            self.w = Matrix::zeros(n, dim);
        }
        // Move the scratch out of `self` so worker threads can borrow the
        // immutable kernel state while writing disjoint chunks of it.
        let mut w = std::mem::replace(&mut self.w, Matrix::zeros(0, 0));
        let mut next = std::mem::replace(&mut self.next, Matrix::zeros(0, 0));
        let mut centroids = std::mem::replace(&mut self.centroids, Matrix::zeros(0, 0));
        match seed {
            Some(s) => w.as_mut_slice().copy_from_slice(s.as_slice()),
            None => w.as_mut_slice().copy_from_slice(self.problem.w0.as_slice()),
        }

        let threads = threads.max(1);
        let n_groups = self.live.len();
        let groups_per_chunk = n_groups.div_ceil(threads).max(1);
        let rows_per_chunk = n.div_ceil(threads);

        for _ in 0..iterations {
            // Group-partition phase: the Eq. 16 target centroids. Each
            // group's centroid is written by exactly one worker, so the
            // partition never reorders any group's accumulation.
            if n_groups > 0 {
                if threads <= 1 {
                    self.centroid_rows(&w, 0, centroids.as_mut_slice());
                } else {
                    let w_ref = &w;
                    let this = &*self;
                    std::thread::scope(|scope| {
                        for (chunk_idx, chunk) in
                            centroids.as_mut_slice().chunks_mut(groups_per_chunk * dim).enumerate()
                        {
                            let start = chunk_idx * groups_per_chunk;
                            scope.spawn(move || this.centroid_rows(w_ref, start, chunk));
                        }
                    });
                }
            }

            // Row-partition phase: every output row depends only on the
            // previous iterate and the centroids — disjoint row ranges are
            // fully independent.
            if threads <= 1 {
                self.update_rows(&w, &centroids, 0, next.as_mut_slice());
            } else {
                let w_ref = &w;
                let c_ref = &centroids;
                let this = &*self;
                std::thread::scope(|scope| {
                    for (chunk_idx, chunk) in
                        next.as_mut_slice().chunks_mut(rows_per_chunk * dim).enumerate()
                    {
                        let start = chunk_idx * rows_per_chunk;
                        scope.spawn(move || this.update_rows(w_ref, c_ref, start, chunk));
                    }
                });
            }
            std::mem::swap(&mut w, &mut next);
        }

        self.next = next;
        self.centroids = centroids;
        w
    }

    /// Compute the centroids of groups `start..start + chunk.len()/dim`
    /// into `chunk` (a row-major slice of the centroid matrix).
    fn centroid_rows(&self, w: &Matrix, start: usize, chunk: &mut [f32]) {
        let dim = self.problem.dim();
        for (local, g) in (start..start + chunk.len() / dim).enumerate() {
            if !self.live[g] {
                continue; // never read by any row — skip the work
            }
            let c = &mut chunk[local * dim..(local + 1) * dim];
            let t0 = self.tgt_ptr[g] as usize;
            let t1 = self.tgt_ptr[g + 1] as usize;
            vector::zero(c);
            for &k in &self.tgt_ids[t0..t1] {
                vector::axpy(1.0, w.row(k as usize), c);
            }
            vector::scale(1.0 / (t1 - t0) as f32, c);
        }
    }

    /// Compute output rows `start..start + chunk.len()/dim` into `chunk`:
    /// constant part, `Γ·W`, negative centroids, row normalization — one
    /// fused pass while the row is hot in cache.
    ///
    /// Dispatches to a const-dimension body for the common embedding
    /// widths so the accumulator row lives in registers across the whole
    /// sparse gather (the element-wise operation order is identical, so
    /// the dispatch never changes a bit of the output).
    fn update_rows(&self, w: &Matrix, centroids: &Matrix, start: usize, chunk: &mut [f32]) {
        match self.problem.dim() {
            32 => self.update_rows_fixed::<32>(w, centroids, start, chunk),
            64 => self.update_rows_fixed::<64>(w, centroids, start, chunk),
            96 => self.update_rows_fixed::<96>(w, centroids, start, chunk),
            128 => self.update_rows_fixed::<128>(w, centroids, start, chunk),
            _ => self.update_rows_dyn(w, centroids, start, chunk),
        }
    }

    /// [`Self::update_rows`] with the row dimension known at compile time:
    /// the accumulator is a fixed-size stack array, which LLVM promotes to
    /// vector registers across the gather and negative loops.
    fn update_rows_fixed<const D: usize>(
        &self,
        w: &Matrix,
        centroids: &Matrix,
        start: usize,
        chunk: &mut [f32],
    ) {
        let end = start + chunk.len() / D;
        for (local, r) in (start..end).enumerate() {
            if r + 4 < end {
                // Overlap upcoming rows' data-dependent gathers with this
                // row's arithmetic (see `CsrMatrix::prefetch_row`); a few
                // rows of distance covers the DRAM latency.
                self.pos.prefetch_row(r + 4, w);
            }
            let mut acc = [0.0f32; D];
            let b = self.beta[r];
            let w0r = &self.problem.w0.row(r)[..D];
            let cr = &self.problem.centroid_of(r)[..D];
            for j in 0..D {
                acc[j] = self.alpha * w0r[j] + b * cr[j];
            }
            for (c, v) in self.pos.row(r) {
                let x = &w.row(c)[..D];
                for j in 0..D {
                    acc[j] += v * x[j];
                }
            }
            for k in self.neg_ptr[r] as usize..self.neg_ptr[r + 1] as usize {
                let delta = self.neg_delta[k];
                let c = &centroids.row(self.neg_group[k] as usize)[..D];
                for j in 0..D {
                    acc[j] += -delta * c[j];
                }
            }
            vector::normalize(&mut acc);
            chunk[local * D..(local + 1) * D].copy_from_slice(&acc);
        }
    }

    /// [`Self::update_rows`] for arbitrary dimensions.
    fn update_rows_dyn(&self, w: &Matrix, centroids: &Matrix, start: usize, chunk: &mut [f32]) {
        let dim = self.problem.dim();
        let end = start + chunk.len() / dim;
        for (local, r) in (start..end).enumerate() {
            if r + 1 < end {
                self.pos.prefetch_row(r + 1, w);
            }
            let out_row = &mut chunk[local * dim..(local + 1) * dim];
            let b = self.beta[r];
            for ((o, &w0v), &cv) in
                out_row.iter_mut().zip(self.problem.w0.row(r)).zip(self.problem.centroid_of(r))
            {
                *o = self.alpha * w0v + b * cv;
            }
            self.pos.mul_row_into(r, w, 1.0, out_row);
            for k in self.neg_ptr[r] as usize..self.neg_ptr[r + 1] as usize {
                vector::axpy(
                    -self.neg_delta[k],
                    centroids.row(self.neg_group[k] as usize),
                    out_row,
                );
            }
            vector::normalize(out_row);
        }
    }
}

/// Run the RN solver for `iterations` rounds, starting from `W0`.
pub fn solve_rn(problem: &RetrofitProblem, params: &Hyperparameters, iterations: usize) -> Matrix {
    solve_rn_seeded(problem, params, iterations, None)
}

/// Run the RN solver from an explicit starting matrix (warm start for
/// incremental maintenance). The series' constant term still anchors on
/// `W0`; only the iteration's initial state changes.
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_rn_seeded(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
) -> Matrix {
    RnKernel::new(problem, params).run(seed, iterations, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use retro_embed::EmbeddingSet;

    fn tiny_problem() -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "a");
        let b = catalog.intern(movies, "b");
        let x = catalog.intern(countries, "x");
        let y = catalog.intern(countries, "y");
        let groups = vec![RelationGroup::new(
            "movies.title~countries.name".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x), (b, y)],
        )];
        let base = EmbeddingSet::new(
            vec!["a".into(), "b".into(), "x".into(), "y".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.8, 0.6], vec![-0.6, 0.8]],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn rows_are_unit_norm_after_solving() {
        let p = tiny_problem();
        let w = solve_rn(&p, &Hyperparameters::paper_rn(), 10);
        for r in 0..w.rows() {
            let norm = vector::norm(w.row(r));
            assert!((norm - 1.0).abs() < 1e-5, "row {r} norm {norm}");
        }
    }

    #[test]
    fn related_pairs_end_closer_than_unrelated() {
        let p = tiny_problem();
        let w = solve_rn(&p, &Hyperparameters::new(1.0, 0.0, 3.0, 1.0), 15);
        let related = vector::cosine(w.row(0), w.row(2)); // a ~ x
        let unrelated = vector::cosine(w.row(0), w.row(3)); // a vs y
        assert!(related > unrelated, "related {related} unrelated {unrelated}");
    }

    #[test]
    fn oov_value_acquires_a_direction_from_relations() {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "zzz_oov_zzz");
        let x = catalog.intern(countries, "x");
        let groups = vec![RelationGroup::new(
            "g".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x)],
        )];
        let base = EmbeddingSet::new(vec!["x".into()], vec![vec![0.0, 1.0]]);
        let p = RetrofitProblem::from_parts(catalog, groups, &base);
        assert!(p.oov[a as usize]);
        let w = solve_rn(&p, &Hyperparameters::new(1.0, 0.0, 3.0, 0.0), 10);
        // The OOV movie must align with its related country direction.
        assert!(vector::cosine(w.row(a as usize), &[0.0, 1.0]) > 0.9);
    }

    #[test]
    fn delta_zero_concentrates_delta_positive_separates() {
        // §4.4 / Fig. 3d: with δ = 0 vectors concentrate (higher pairwise
        // cosine); δ > 0 pushes unrelated vectors apart.
        let p = tiny_problem();
        let w_no = solve_rn(&p, &Hyperparameters::new(1.0, 0.5, 3.0, 0.0), 15);
        let w_yes = solve_rn(&p, &Hyperparameters::new(1.0, 0.5, 3.0, 2.0), 15);
        let cos_no = vector::cosine(w_no.row(0), w_no.row(3));
        let cos_yes = vector::cosine(w_yes.row(0), w_yes.row(3));
        assert!(cos_yes < cos_no, "with delta {cos_yes} vs without {cos_no}");
    }

    #[test]
    fn deterministic_and_finite_even_with_large_delta() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.0, 3.0, 50.0);
        let a = solve_rn(&p, &params, 10);
        let b = solve_rn(&p, &params, 10);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_rn(&p, &Hyperparameters::default(), 5);
        assert_eq!(w.shape(), (0, 1));
    }

    #[test]
    fn kernel_thread_counts_are_bit_identical() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_rn();
        let mut kernel = RnKernel::new(&p, &params);
        let serial = kernel.run(None, 10, 1);
        for threads in [2, 3, 8] {
            let parallel = kernel.run(None, 10, threads);
            assert_eq!(serial.max_abs_diff(&parallel), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn fixed_dim_dispatch_is_bit_identical_to_dynamic_body() {
        // dim 32 takes the register-blocked const-dimension body; drive the
        // same iteration through the dynamic body and demand equal bits.
        let dim = 32usize;
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("a", "x");
        let cb = catalog.add_category("b", "y");
        let mut edges = Vec::new();
        let mut tokens = Vec::new();
        let mut vectors = Vec::new();
        for k in 0..12u32 {
            let i = catalog.intern(ca, &format!("s{k}"));
            let j = catalog.intern(cb, &format!("t{k}"));
            edges.push((i, j));
            edges.push((i, (j + 2) % 24));
            tokens.push(format!("s{k}"));
            vectors.push((0..dim).map(|d| ((k as f32 + 1.3) * (d as f32 + 0.7)).sin()).collect());
            tokens.push(format!("t{k}"));
            vectors.push((0..dim).map(|d| ((k as f32 - 2.1) * (d as f32 + 1.9)).cos()).collect());
        }
        let groups =
            vec![RelationGroup::new("a.x~b.y".into(), ca, cb, RelationKind::ForeignKey, edges)];
        let base = EmbeddingSet::new(tokens, vectors);
        let p = RetrofitProblem::from_parts(catalog, groups, &base);
        let params = Hyperparameters::paper_rn();

        let mut kernel = RnKernel::new(&p, &params);
        let fixed = kernel.run(None, 5, 1);

        let n = p.len();
        let mut w = p.w0.clone();
        let mut next = Matrix::zeros(n, dim);
        let mut centroids = Matrix::zeros(kernel.live.len(), dim);
        for _ in 0..5 {
            kernel.centroid_rows(&w, 0, centroids.as_mut_slice());
            kernel.update_rows_dyn(&w, &centroids, 0, next.as_mut_slice());
            std::mem::swap(&mut w, &mut next);
        }
        assert_eq!(fixed.max_abs_diff(&w), 0.0);
    }

    #[test]
    fn kernel_scratch_reuse_does_not_leak_state_between_runs() {
        // Warm-start reuse: a second run on the same kernel must equal a
        // run on a freshly built kernel bit-for-bit.
        let p = tiny_problem();
        let params = Hyperparameters::paper_rn();
        let mut reused = RnKernel::new(&p, &params);
        let warm = reused.run(None, 3, 2);
        let seeded_reused = reused.run(Some(&warm), 5, 3);
        let seeded_fresh = RnKernel::new(&p, &params).run(Some(&warm), 5, 1);
        assert_eq!(seeded_reused.max_abs_diff(&seeded_fresh), 0.0);
    }
}
