//! The series-based solver (RN): Eq. 9 row updates as the Eq. 11 matrix
//! iteration with row normalization, using the Eq. 16 precomputed target
//! sums for the negative term.
//!
//! Per iteration:
//!
//! ```text
//! W' = α·W0 + β·c + Σ_r [ Γr·W − δ^r_i · t_r ]    (t_r = Σ_{k∈targets(r)} v_k)
//! W  = row-normalize(W')
//! ```
//!
//! Unlike RO there is no symmetric `γ̄ᵀ` term — every directed group only
//! updates its sources — and the normalization bounds the series, so the
//! parameter constraints of Eq. 7 do not apply (§4.2).

use retro_linalg::{vector, CooMatrix, Matrix};

use crate::hyper::Hyperparameters;
use crate::problem::RetrofitProblem;

/// Run the RN solver for `iterations` rounds, starting from `W0`.
pub fn solve_rn(problem: &RetrofitProblem, params: &Hyperparameters, iterations: usize) -> Matrix {
    solve_rn_seeded(problem, params, iterations, None)
}

/// Run the RN solver from an explicit starting matrix (warm start for
/// incremental maintenance). The series' constant term still anchors on
/// `W0`; only the iteration's initial state changes.
pub fn solve_rn_seeded(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
) -> Matrix {
    let n = problem.len();
    let dim = problem.dim();
    if n == 0 {
        return Matrix::zeros(0, dim);
    }
    let groups = problem.directed_groups(params, false);
    let beta = problem.beta_weights(params);

    // Positive operator: γ^r_i on every directed edge.
    let mut coo = CooMatrix::new(n, n);
    for dg in &groups {
        for &(i, j) in &dg.group.edges {
            coo.push(i as usize, j as usize, dg.own.gamma_i[i as usize]);
        }
    }
    let pos = coo.to_csr();

    // Constant part α·W0 + β·c.
    let mut base = Matrix::zeros(n, dim);
    for (i, &b) in beta.iter().enumerate() {
        let row = base.row_mut(i);
        row.copy_from_slice(problem.w0.row(i));
        vector::scale(params.alpha, row);
        vector::axpy(b, problem.centroid_of(i), row);
    }

    let mut w = match seed {
        Some(s) => {
            assert_eq!(s.shape(), (n, dim), "solve_rn_seeded: seed shape mismatch");
            s.clone()
        }
        None => problem.w0.clone(),
    };
    let mut wr = Matrix::zeros(n, dim);
    let mut t_sum = vec![0.0f32; dim];

    for _ in 0..iterations {
        pos.mul_dense_into(&w, &mut wr);
        // §4.2: "the difference between every vector and the *centroid* of
        // all target vectors in the relation Er is calculated" — the
        // per-group centroid is the same vector for every source of r
        // (Eq. 16), so precompute it once per group per iteration. Using
        // the centroid (not the raw sum) keeps the repulsion bounded
        // regardless of column cardinality.
        for dg in &groups {
            if dg.targets.is_empty() {
                continue;
            }
            vector::zero(&mut t_sum);
            for &k in &dg.targets {
                vector::axpy(1.0, w.row(k as usize), &mut t_sum);
            }
            vector::scale(1.0 / dg.targets.len() as f32, &mut t_sum);
            for &s in &dg.sources {
                let delta = dg.own.delta_i[s as usize];
                if delta != 0.0 {
                    vector::axpy(-delta, &t_sum, wr.row_mut(s as usize));
                }
            }
        }
        wr.axpy(1.0, &base);
        wr.normalize_rows();
        std::mem::swap(&mut w, &mut wr);
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use retro_embed::EmbeddingSet;

    fn tiny_problem() -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "a");
        let b = catalog.intern(movies, "b");
        let x = catalog.intern(countries, "x");
        let y = catalog.intern(countries, "y");
        let groups = vec![RelationGroup::new(
            "movies.title~countries.name".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x), (b, y)],
        )];
        let base = EmbeddingSet::new(
            vec!["a".into(), "b".into(), "x".into(), "y".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.8, 0.6], vec![-0.6, 0.8]],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn rows_are_unit_norm_after_solving() {
        let p = tiny_problem();
        let w = solve_rn(&p, &Hyperparameters::paper_rn(), 10);
        for r in 0..w.rows() {
            let norm = vector::norm(w.row(r));
            assert!((norm - 1.0).abs() < 1e-5, "row {r} norm {norm}");
        }
    }

    #[test]
    fn related_pairs_end_closer_than_unrelated() {
        let p = tiny_problem();
        let w = solve_rn(&p, &Hyperparameters::new(1.0, 0.0, 3.0, 1.0), 15);
        let related = vector::cosine(w.row(0), w.row(2)); // a ~ x
        let unrelated = vector::cosine(w.row(0), w.row(3)); // a vs y
        assert!(related > unrelated, "related {related} unrelated {unrelated}");
    }

    #[test]
    fn oov_value_acquires_a_direction_from_relations() {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "zzz_oov_zzz");
        let x = catalog.intern(countries, "x");
        let groups = vec![RelationGroup::new(
            "g".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x)],
        )];
        let base = EmbeddingSet::new(vec!["x".into()], vec![vec![0.0, 1.0]]);
        let p = RetrofitProblem::from_parts(catalog, groups, &base);
        assert!(p.oov[a as usize]);
        let w = solve_rn(&p, &Hyperparameters::new(1.0, 0.0, 3.0, 0.0), 10);
        // The OOV movie must align with its related country direction.
        assert!(vector::cosine(w.row(a as usize), &[0.0, 1.0]) > 0.9);
    }

    #[test]
    fn delta_zero_concentrates_delta_positive_separates() {
        // §4.4 / Fig. 3d: with δ = 0 vectors concentrate (higher pairwise
        // cosine); δ > 0 pushes unrelated vectors apart.
        let p = tiny_problem();
        let w_no = solve_rn(&p, &Hyperparameters::new(1.0, 0.5, 3.0, 0.0), 15);
        let w_yes = solve_rn(&p, &Hyperparameters::new(1.0, 0.5, 3.0, 2.0), 15);
        let cos_no = vector::cosine(w_no.row(0), w_no.row(3));
        let cos_yes = vector::cosine(w_yes.row(0), w_yes.row(3));
        assert!(cos_yes < cos_no, "with delta {cos_yes} vs without {cos_no}");
    }

    #[test]
    fn deterministic_and_finite_even_with_large_delta() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.0, 3.0, 50.0);
        let a = solve_rn(&p, &params, 10);
        let b = solve_rn(&p, &params, 10);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_rn(&p, &Hyperparameters::default(), 5);
        assert_eq!(w.shape(), (0, 1));
    }
}
