//! The retrofitting solvers.
//!
//! * [`ro`] — Eq. 8/10: Jacobi iteration on the stationary point of the
//!   convex objective Ψ, with the Eq. 15 negative-centroid optimization,
//! * [`rn`] — Eq. 9/11: the normalized series update with the Eq. 16
//!   precomputed target sums (the fast solver, ~10× quicker than RO in the
//!   paper's Fig. 4),
//! * [`mf`] — Eq. 3: the Faruqui et al. baseline on the flattened relation
//!   graph.
//!
//! All solvers are deterministic. Each RETRO solver runs one shared kernel
//! (`RoKernel` in [`ro`], `RnKernel` in [`rn`]) behind every entry point:
//! the kernel builds its operators, flattened adjacency and scratch
//! matrices once, then iterates with an allocation-free hot loop split
//! into a group-partitioned centroid/target-sum phase and a row-partitioned
//! update phase. The multi-threaded flavours ([`parallel`]) are the same
//! kernels with the partitions spread across workers, so their results are
//! bit-identical to the sequential entry points for every thread count —
//! by construction, not just by test.

pub(crate) mod delta;
pub mod mf;
pub mod parallel;
pub mod rn;
pub mod ro;

/// Flatten `(node, group, coefficient)` entries into CSR-style per-node
/// offset+data arrays with a stable counting sort: per node, entries keep
/// their visit order (group-major in both kernels — the order fixes each
/// row's floating-point sequence). Shared by `RnKernel` and `RoKernel` so
/// the two cannot drift.
pub(crate) fn flatten_by_node(
    n: usize,
    entries: &[(u32, u32, f32)],
) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let mut ptr = vec![0u32; n + 1];
    for &(s, _, _) in entries {
        ptr[s as usize + 1] += 1;
    }
    for i in 0..n {
        ptr[i + 1] += ptr[i];
    }
    let mut cursor: Vec<u32> = ptr[..n].to_vec();
    let mut groups = vec![0u32; entries.len()];
    let mut coeffs = vec![0.0f32; entries.len()];
    for &(s, g, coeff) in entries {
        let at = cursor[s as usize] as usize;
        groups[at] = g;
        coeffs[at] = coeff;
        cursor[s as usize] += 1;
    }
    (ptr, groups, coeffs)
}

pub use mf::solve_mf;
pub use parallel::{
    solve_rn_parallel, solve_rn_seeded_parallel, solve_ro_parallel, solve_ro_seeded_parallel,
};
pub use rn::{solve_rn, solve_rn_seeded};
pub use ro::{solve_ro, solve_ro_enumerated, solve_ro_seeded};

/// Default iteration count (§4.3 "we set it to a fixed number of 20"; the
/// evaluation trains with 10, which [`crate::RetroConfig`] uses).
pub const DEFAULT_ITERATIONS: usize = 20;
