//! The retrofitting solvers.
//!
//! * [`ro`] — Eq. 8/10: Jacobi iteration on the stationary point of the
//!   convex objective Ψ, with the Eq. 15 negative-centroid optimization,
//! * [`rn`] — Eq. 9/11: the normalized series update with the Eq. 16
//!   precomputed target sums (the fast solver, ~10× quicker than RO in the
//!   paper's Fig. 4),
//! * [`mf`] — Eq. 3: the Faruqui et al. baseline on the flattened relation
//!   graph.
//!
//! All solvers are deterministic and allocate their working matrices once.
//! Both RETRO solvers also come in row-partitioned multi-threaded flavours
//! ([`parallel`]) whose results are bit-identical to the sequential entry
//! points for every thread count.

pub mod mf;
pub mod parallel;
pub mod rn;
pub mod ro;

pub use mf::solve_mf;
pub use parallel::{
    solve_rn_parallel, solve_rn_seeded_parallel, solve_ro_parallel, solve_ro_seeded_parallel,
};
pub use rn::{solve_rn, solve_rn_seeded};
pub use ro::{solve_ro, solve_ro_enumerated, solve_ro_seeded};

/// Default iteration count (§4.3 "we set it to a fixed number of 20"; the
/// evaluation trains with 10, which [`crate::RetroConfig`] uses).
pub const DEFAULT_ITERATIONS: usize = 20;
