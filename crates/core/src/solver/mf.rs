//! The Faruqui et al. baseline (MF): Eq. 3 updates on the flattened,
//! undirected relation graph with the standard configuration `αᵢ = 1`,
//! `βᵢ = 1/outdeg(i)` (§5.2).
//!
//! The relational structure is collapsed to a plain neighbour graph — no
//! categories, no relation-type weighting, no repulsion — which is exactly
//! why MF underperforms RO/RN on the relational tasks while being the
//! fastest method in Table 2.

use std::collections::HashSet;

use retro_linalg::{vector, Matrix};

use crate::problem::RetrofitProblem;

/// Run the MF baseline for `iterations` rounds (the paper uses 20).
///
/// Updates are performed in place over nodes in id order, as in Faruqui's
/// reference implementation (Gauss–Seidel style).
pub fn solve_mf(problem: &RetrofitProblem, iterations: usize) -> Matrix {
    let n = problem.len();
    let dim = problem.dim();
    if n == 0 {
        return Matrix::zeros(0, dim);
    }

    // Flatten every relation group into undirected, deduplicated adjacency.
    let mut edge_set: HashSet<(u32, u32)> = HashSet::new();
    for group in &problem.groups {
        for &(i, j) in &group.edges {
            edge_set.insert((i.min(j), i.max(j)));
        }
    }
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(i, j) in &edge_set {
        adjacency[i as usize].push(j);
        adjacency[j as usize].push(i);
    }

    let mut w = problem.w0.clone();
    let mut acc = vec![0.0f32; dim];
    for _ in 0..iterations {
        #[allow(clippy::needless_range_loop)] // in-place Gauss–Seidel order
        for i in 0..n {
            let neighbors = &adjacency[i];
            if neighbors.is_empty() {
                continue;
            }
            // Eq. 3 with αᵢ=1, βᵢ=1/deg: vᵢ = (v'ᵢ + mean(neighbours)) / 2.
            let inv_deg = 1.0 / neighbors.len() as f32;
            acc.copy_from_slice(problem.w0.row(i));
            for &j in neighbors {
                vector::axpy(inv_deg, w.row(j as usize), &mut acc);
            }
            vector::scale(0.5, &mut acc);
            w.set_row(i, &acc);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use retro_embed::EmbeddingSet;

    fn problem(edges: Vec<(u32, u32)>) -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("t", "a");
        let cb = catalog.add_category("t", "b");
        catalog.intern(ca, "p");
        catalog.intern(ca, "q");
        catalog.intern(cb, "r");
        let groups =
            vec![RelationGroup::new("t.a~t.b".into(), ca, cb, RelationKind::RowWise, edges)];
        let base = EmbeddingSet::new(
            vec!["p".into(), "q".into(), "r".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn single_iteration_matches_hand_computation() {
        // Edge p(0)–r(2). In-place order: v0 = (w0_0 + v2)/2 = ([1,0]+[-1,0])/2
        // = [0,0]; then v2 = (w0_2 + v0)/2 = ([-1,0]+[0,0])/2 = [-0.5, 0].
        let p = problem(vec![(0, 2)]);
        let w = solve_mf(&p, 1);
        assert!(vector::approx_eq(w.row(0), &[0.0, 0.0], 1e-6));
        assert!(vector::approx_eq(w.row(2), &[-0.5, 0.0], 1e-6));
    }

    #[test]
    fn isolated_nodes_keep_original_vectors() {
        let p = problem(vec![(0, 2)]);
        let w = solve_mf(&p, 20);
        assert_eq!(w.row(1), p.w0.row(1));
    }

    #[test]
    fn duplicate_edges_across_groups_count_once() {
        // Same edge in the group twice (dedup in RelationGroup) plus the
        // flattening dedup: degree must be 1, not 2.
        let p = problem(vec![(0, 2), (0, 2)]);
        let w1 = solve_mf(&p, 1);
        let p2 = problem(vec![(0, 2)]);
        let w2 = solve_mf(&p2, 1);
        assert!(w1.max_abs_diff(&w2) < 1e-7);
    }

    #[test]
    fn connected_nodes_converge_between_originals() {
        let p = problem(vec![(0, 2)]);
        let w = solve_mf(&p, 50);
        // Fixed point of v0 = (a + v2)/2, v2 = (c + v0)/2 with a=[1,0],
        // c=[-1,0]: v0 = [1/3, 0], v2 = [-1/3, 0].
        assert!(vector::approx_eq(w.row(0), &[1.0 / 3.0, 0.0], 1e-4));
        assert!(vector::approx_eq(w.row(2), &[-1.0 / 3.0, 0.0], 1e-4));
    }

    #[test]
    fn zero_iterations_returns_w0() {
        let p = problem(vec![(0, 2)]);
        let w = solve_mf(&p, 0);
        assert_eq!(w.max_abs_diff(&p.w0), 0.0);
    }
}
