//! The optimization-based solver (RO): Eq. 8 row updates expressed as the
//! Eq. 10 matrix iteration, with the Eq. 15 negative-term optimization.
//!
//! Per iteration:
//!
//! ```text
//! W' = α·W0 + β·c + P·W − Σ_r 2δ̂r · 1_sources(r) ⊗ t_r
//! W  = D⁻¹ W'
//! ```
//!
//! where `P` carries `(γ^r_i + γ^r̄_j) + 2δ̂r` on every relation edge — the
//! `+2δ̂r` re-adds the related vectors that the blanket subtraction of the
//! target sum `t_r = Σ_{k∈targets(r)} v_k` removed, exactly the algebra of
//! Eq. 15 — and `D` is the Eq. 10 diagonal of coefficient sums.
//!
//! ## One kernel, every execution mode
//!
//! All RO entry points ([`solve_ro`], [`solve_ro_seeded`],
//! [`solve_ro_enumerated`], and
//! [`solve_ro_parallel`](super::solve_ro_parallel)) run through one shared
//! row-partitioned kernel (`RoKernel`). The kernel splits each iteration
//! into
//!
//! 1. a cheap **serial phase** — the per-group target sums `t_r` (`O(n·D)`
//!    total; they read only the previous iterate `W`), and
//! 2. a **row-partition phase** — `P·W`, the negative term, the constant
//!    part and the diagonal divide, all *row-local* given the `t_r`.
//!
//! Because phase 2 never reads another row of the output, partitioning the
//! rows across threads reorders nothing: the sequence of floating-point
//! operations producing any given row is identical for every thread count,
//! so results are **bit-identical** from 1 to N threads. The sequential
//! entry points are simply the kernel at `threads = 1`, which is what makes
//! it impossible for the sequential and parallel paths to drift.

use retro_linalg::{vector, CooMatrix, CsrMatrix, Matrix};

use crate::hyper::Hyperparameters;
use crate::problem::{DirectedGroup, RetrofitProblem};

/// How the kernel computes the Eq. 10 negative (repulsion) term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NegativeMode {
    /// The Eq. 15 optimization: subtract `2δ̂r · t_r` blanket-wise from every
    /// source and re-add the related vectors through `+2δ̂r` edge weights in
    /// the positive operator. Cost per iteration:
    /// `O(Σ_r (|sources(r)|+|targets(r)|)·D)`.
    Blanket,
    /// Explicit enumeration of the `Ẽr` pairs — the unoptimized computation
    /// §4.5 warns about (`|Ẽr| ≫ |Er|`), kept for the Fig. 4 / Table 2
    /// runtime-shape reproduction. Cost per iteration:
    /// `O(Σ_r |sources(r)|·|targets(r)|·D)`.
    Enumerated,
}

/// The assembled RO iteration: positive operator, diagonal, constant part,
/// and per-node negative-term plans. Built once per solve; `run` then
/// iterates with any number of worker threads.
pub(crate) struct RoKernel<'p> {
    problem: &'p RetrofitProblem,
    groups: Vec<DirectedGroup>,
    /// Positive operator `P` (per-mode edge weights, see [`NegativeMode`]).
    pos: CsrMatrix,
    /// The Eq. 10 diagonal `D` of coefficient sums.
    denom: Vec<f32>,
    /// Constant part `α·W0 + β·c`.
    base: Matrix,
    /// Blanket mode: per node, `(group index, 2δ̂r)` — subtract
    /// `2δ̂r · t_r` from this node's row (in group order).
    node_negatives: Vec<Vec<(u32, f32)>>,
    /// Enumerated mode: per node, `(group index, 2δ̂r, related targets)` —
    /// subtract `2δ̂r · v_k` for every target `k` of the group that is *not*
    /// in the node's related list.
    node_pairs: Vec<Vec<(u32, f32, Vec<u32>)>>,
    mode: NegativeMode,
}

impl<'p> RoKernel<'p> {
    /// Assemble the kernel for one problem/parameter set.
    pub(crate) fn new(
        problem: &'p RetrofitProblem,
        params: &Hyperparameters,
        mode: NegativeMode,
    ) -> Self {
        let n = problem.len();
        let dim = problem.dim();
        let groups = problem.directed_groups(params, true);
        let beta = problem.beta_weights(params);

        // Positive operator P and the constant denominator D.
        let mut coo = CooMatrix::new(n, n);
        let mut denom = vec![0.0f32; n];
        for (i, d) in denom.iter_mut().enumerate() {
            *d = params.alpha + beta[i];
        }
        for dg in &groups {
            let dh = dg.delta_hat();
            match mode {
                NegativeMode::Blanket => {
                    // Edge weights carry +2δ̂ to re-add what the blanket
                    // subtraction of t_r removes (Eq. 15).
                    for &(i, j) in &dg.group.edges {
                        let w = dg.own.gamma_i[i as usize] + dg.rev.gamma_i[j as usize] + 2.0 * dh;
                        coo.push(i as usize, j as usize, w);
                        denom[i as usize] += w;
                    }
                    let t_count = dg.targets.len() as f32;
                    for &s in &dg.sources {
                        denom[s as usize] -= 2.0 * dh * t_count;
                    }
                }
                NegativeMode::Enumerated => {
                    // γ weights only; related pairs are skipped exactly in
                    // the pair sweep, not re-added via the +2δ̂ trick.
                    for &(i, j) in &dg.group.edges {
                        let w = dg.own.gamma_i[i as usize] + dg.rev.gamma_i[j as usize];
                        coo.push(i as usize, j as usize, w);
                        denom[i as usize] += w;
                    }
                    let t_count = dg.targets.len() as f32;
                    for (&s, &od) in dg.sources.iter().zip(&dg.source_out_degree) {
                        denom[s as usize] -= 2.0 * dh * (t_count - od as f32);
                    }
                }
            }
        }
        let pos = coo.to_csr();

        // Constant part α·W0 + β·c.
        let mut base = Matrix::zeros(n, dim);
        for (i, &b) in beta.iter().enumerate() {
            let row = base.row_mut(i);
            row.copy_from_slice(problem.w0.row(i));
            vector::scale(params.alpha, row);
            vector::axpy(b, problem.centroid_of(i), row);
        }

        // Per-node negative-term plans, in group order (the order fixes the
        // floating-point summation sequence for each row).
        let mut node_negatives: Vec<Vec<(u32, f32)>> = Vec::new();
        let mut node_pairs: Vec<Vec<(u32, f32, Vec<u32>)>> = Vec::new();
        match mode {
            NegativeMode::Blanket => {
                node_negatives = vec![Vec::new(); n];
                for (g, dg) in groups.iter().enumerate() {
                    let dh = dg.delta_hat();
                    if dh == 0.0 || dg.targets.is_empty() {
                        continue;
                    }
                    for &s in &dg.sources {
                        node_negatives[s as usize].push((g as u32, 2.0 * dh));
                    }
                }
            }
            NegativeMode::Enumerated => {
                node_pairs = vec![Vec::new(); n];
                for (g, dg) in groups.iter().enumerate() {
                    let dh = dg.delta_hat();
                    if dh == 0.0 || dg.targets.is_empty() {
                        continue;
                    }
                    for &s in &dg.sources {
                        let related: Vec<u32> = dg
                            .group
                            .edges
                            .iter()
                            .filter(|&&(i, _)| i == s)
                            .map(|&(_, j)| j)
                            .collect();
                        node_pairs[s as usize].push((g as u32, 2.0 * dh, related));
                    }
                }
            }
        }

        Self { problem, groups, pos, denom, base, node_negatives, node_pairs, mode }
    }

    /// Iterate the kernel. `seed` overrides the starting matrix (warm
    /// start); `threads ≤ 1` runs the row phase inline on the calling
    /// thread. Results are bit-identical for every `threads` value.
    pub(crate) fn run(&self, seed: Option<&Matrix>, iterations: usize, threads: usize) -> Matrix {
        let n = self.problem.len();
        let dim = self.problem.dim();
        if n == 0 || dim == 0 {
            return Matrix::zeros(n, dim);
        }
        let mut w = match seed {
            Some(s) => {
                assert_eq!(s.shape(), (n, dim), "RO solver: seed shape mismatch");
                s.clone()
            }
            None => self.problem.w0.clone(),
        };
        let mut next = Matrix::zeros(n, dim);
        let mut t_sums: Vec<Vec<f32>> = vec![vec![0.0f32; dim]; self.groups.len()];
        let rows_per_chunk = n.div_ceil(threads.max(1));

        for _ in 0..iterations {
            // Serial phase: the Eq. 15 target sums t_r = Σ_{k∈targets} v_k
            // (cheap, O(n·D) total; only the blanket mode consumes them).
            if self.mode == NegativeMode::Blanket {
                for (g, dg) in self.groups.iter().enumerate() {
                    if dg.delta_hat() == 0.0 || dg.targets.is_empty() {
                        continue;
                    }
                    let t_sum = &mut t_sums[g];
                    vector::zero(t_sum);
                    for &k in &dg.targets {
                        vector::axpy(1.0, w.row(k as usize), t_sum);
                    }
                }
            }

            // Row-partition phase: every output row depends only on the
            // previous iterate and the t_sums — disjoint row ranges are
            // fully independent.
            if threads <= 1 {
                self.update_rows(&w, &t_sums, 0, next.as_mut_slice());
            } else {
                let w_ref = &w;
                let t_ref = &t_sums;
                std::thread::scope(|scope| {
                    for (chunk_idx, chunk) in
                        next.as_mut_slice().chunks_mut(rows_per_chunk * dim).enumerate()
                    {
                        let start = chunk_idx * rows_per_chunk;
                        scope.spawn(move || self.update_rows(w_ref, t_ref, start, chunk));
                    }
                });
            }
            std::mem::swap(&mut w, &mut next);
        }
        w
    }

    /// Compute output rows `start..start + chunk.len()/dim` into `chunk`.
    fn update_rows(&self, w: &Matrix, t_sums: &[Vec<f32>], start: usize, chunk: &mut [f32]) {
        let dim = self.problem.dim();
        let end = start + chunk.len() / dim;
        self.pos.mul_dense_range_into(w, start..end, chunk);
        for (local, r) in (start..end).enumerate() {
            let out_row = &mut chunk[local * dim..(local + 1) * dim];
            match self.mode {
                NegativeMode::Blanket => {
                    // Blanket negative term: −2δ̂r · t_r for every group this
                    // row sources.
                    for &(g, coeff) in &self.node_negatives[r] {
                        vector::axpy(-coeff, &t_sums[g as usize], out_row);
                    }
                }
                NegativeMode::Enumerated => {
                    // Explicit Ẽr sweep: every (source, target) pair that is
                    // NOT a relation contributes −2δ̂·v_target.
                    for (g, coeff, related) in &self.node_pairs[r] {
                        for &k in &self.groups[*g as usize].targets {
                            if !related.contains(&k) {
                                vector::axpy(-coeff, w.row(k as usize), out_row);
                            }
                        }
                    }
                }
            }
            // W' = base + WR, then divide by the diagonal.
            let d = self.denom[r];
            if d.abs() > 1e-6 {
                for (o, b) in out_row.iter_mut().zip(self.base.row(r)) {
                    *o = (b + *o) / d;
                }
            } else {
                // Degenerate diagonal (δ too large): keep the previous
                // vector rather than dividing by ~0.
                out_row.copy_from_slice(w.row(r));
            }
        }
    }
}

/// Run the RO solver for `iterations` rounds, starting from `W0`.
///
/// ```
/// use retro_core::{Retro, RetroConfig, Hyperparameters};
/// use retro_core::solver::solve_ro;
/// use retro_embed::EmbeddingSet;
/// use retro_store::{sql, Database};
///
/// let mut db = Database::new();
/// sql::run_script(&mut db, "
///     CREATE TABLE countries (id INTEGER PRIMARY KEY, name TEXT);
///     CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
///                          country_id INTEGER REFERENCES countries(id));
///     INSERT INTO countries VALUES (1, 'france');
///     INSERT INTO movies VALUES (1, 'amelie', 1);
/// ").unwrap();
/// let base = EmbeddingSet::new(
///     vec!["amelie".into(), "france".into()],
///     vec![vec![1.0, 0.0], vec![0.0, 1.0]],
/// );
/// let problem = retro_core::RetrofitProblem::build(&db, &base, &[], &[]);
/// let w = solve_ro(&problem, &Hyperparameters::paper_ro(), 10);
/// assert_eq!(w.shape(), (2, 2));
/// ```
pub fn solve_ro(problem: &RetrofitProblem, params: &Hyperparameters, iterations: usize) -> Matrix {
    solve_ro_seeded(problem, params, iterations, None)
}

/// Run the RO solver from an explicit starting matrix (warm start for
/// incremental maintenance). The anchor term still pulls toward `W0`; only
/// the iteration's initial state changes.
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_ro_seeded(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Blanket).run(seed, iterations, 1)
}

/// The RO solver with the negative term computed by **explicit enumeration**
/// of the `Ẽr` pairs — the unoptimized Eq. 10 computation that §4.5 warns
/// about (`|Ẽr| ≫ |Er|`). Numerically equivalent to [`solve_ro`]; its cost
/// per iteration is `O(Σ_r |sources(r)|·|targets(r)|·D)` instead of
/// `O(Σ_r (|sources(r)|+|targets(r)|)·D)`, which is where the paper's
/// "RO is ~10× slower than RN" runtime shape comes from (Table 2 / Fig. 4).
pub fn solve_ro_enumerated(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Enumerated).run(None, iterations, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use retro_embed::EmbeddingSet;

    /// Two categories (0: movies {a, b}, 1: countries {x}), one relation
    /// a→x.
    fn tiny_problem() -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "a");
        let _b = catalog.intern(movies, "b");
        let x = catalog.intern(countries, "x");
        let groups = vec![RelationGroup::new(
            "movies.title~countries.name".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x)],
        )];
        let base = EmbeddingSet::new(
            vec!["a".into(), "b".into(), "x".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn alpha_only_is_fixed_at_w0() {
        let p = tiny_problem();
        let params = Hyperparameters::new(2.0, 0.0, 0.0, 0.0);
        let w = solve_ro(&p, &params, 15);
        assert!(w.max_abs_diff(&p.w0) < 1e-5);
    }

    #[test]
    fn gamma_pulls_related_values_together() {
        let p = tiny_problem();
        let before = vector::dist(p.w0.row(0), p.w0.row(2));
        let params = Hyperparameters::new(1.0, 0.0, 2.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        let after = vector::dist(w.row(0), w.row(2));
        assert!(after < before, "after {after} < before {before}");
    }

    #[test]
    fn unrelated_value_only_feels_alpha_and_beta() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.0, 5.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        // "b" participates in no relation and β=0 → stays at its original.
        assert!(vector::approx_eq(w.row(1), p.w0.row(1), 1e-5));
    }

    #[test]
    fn beta_pulls_toward_category_centroid() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 3.0, 0.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        // Movie centroid is [0.5, 0.5]; both movie vectors move toward it.
        let centroid = [0.5f32, 0.5];
        let before = vector::dist(p.w0.row(0), &centroid);
        let after = vector::dist(w.row(0), &centroid);
        assert!(after < before);
    }

    #[test]
    fn converges_to_a_fixed_point() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.5, 1.0, 0.1);
        let w20 = solve_ro(&p, &params, 20);
        let w40 = solve_ro(&p, &params, 40);
        assert!(w20.max_abs_diff(&w40) < 1e-4);
    }

    #[test]
    fn deterministic() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let a = solve_ro(&p, &params, 10);
        let b = solve_ro(&p, &params, 10);
        assert!(a.max_abs_diff(&b) == 0.0);
    }

    #[test]
    fn degenerate_denominator_keeps_previous_vector() {
        // Absurd δ flips the diagonal negative for related nodes; the solver
        // must not blow up or emit NaNs.
        let p = tiny_problem();
        let params = Hyperparameters::new(0.0, 0.0, 0.0, 1e9);
        let w = solve_ro(&p, &params, 5);
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn enumerated_variant_matches_optimized() {
        let p = tiny_problem();
        for params in [
            Hyperparameters::new(1.0, 0.5, 2.0, 0.5),
            Hyperparameters::paper_ro(),
            Hyperparameters::new(2.0, 0.0, 1.0, 0.0),
        ] {
            let fast = solve_ro(&p, &params, 10);
            let slow = solve_ro_enumerated(&p, &params, 10);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "divergence {} at {params:?}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0, 0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_ro(&p, &Hyperparameters::default(), 5);
        assert_eq!(w.shape(), (0, 2));
    }

    #[test]
    fn kernel_thread_counts_are_bit_identical() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let kernel = RoKernel::new(&p, &params, NegativeMode::Blanket);
        let serial = kernel.run(None, 10, 1);
        for threads in [2, 3, 8] {
            let parallel = kernel.run(None, 10, threads);
            assert_eq!(serial.max_abs_diff(&parallel), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn enumerated_kernel_parallelizes_too() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let kernel = RoKernel::new(&p, &params, NegativeMode::Enumerated);
        let serial = kernel.run(None, 8, 1);
        let parallel = kernel.run(None, 8, 4);
        assert_eq!(serial.max_abs_diff(&parallel), 0.0);
    }
}
