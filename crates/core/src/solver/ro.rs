//! The optimization-based solver (RO): Eq. 8 row updates expressed as the
//! Eq. 10 matrix iteration, with the Eq. 15 negative-term optimization.
//!
//! Per iteration:
//!
//! ```text
//! W' = α·W0 + β·c + P·W − Σ_r 2δ̂r · 1_sources(r) ⊗ t_r
//! W  = D⁻¹ W'
//! ```
//!
//! where `P` carries `(γ^r_i + γ^r̄_j) + 2δ̂r` on every relation edge — the
//! `+2δ̂r` re-adds the related vectors that the blanket subtraction of the
//! target sum `t_r = Σ_{k∈targets(r)} v_k` removed, exactly the algebra of
//! Eq. 15 — and `D` is the Eq. 10 diagonal of coefficient sums.

use retro_linalg::{vector, CooMatrix, Matrix};

use crate::hyper::Hyperparameters;
use crate::problem::RetrofitProblem;

/// Run the RO solver for `iterations` rounds, starting from `W0`.
pub fn solve_ro(problem: &RetrofitProblem, params: &Hyperparameters, iterations: usize) -> Matrix {
    solve_ro_seeded(problem, params, iterations, None)
}

/// Run the RO solver from an explicit starting matrix (warm start for
/// incremental maintenance). The anchor term still pulls toward `W0`; only
/// the iteration's initial state changes.
pub fn solve_ro_seeded(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
) -> Matrix {
    let n = problem.len();
    let dim = problem.dim();
    if n == 0 {
        return Matrix::zeros(0, dim);
    }
    let groups = problem.directed_groups(params, true);
    let beta = problem.beta_weights(params);

    // Positive operator P and the constant denominator D.
    let mut coo = CooMatrix::new(n, n);
    let mut denom = vec![0.0f32; n];
    for (i, d) in denom.iter_mut().enumerate() {
        *d = params.alpha + beta[i];
    }
    for dg in &groups {
        let dh = dg.delta_hat();
        for &(i, j) in &dg.group.edges {
            let w = dg.own.gamma_i[i as usize] + dg.rev.gamma_i[j as usize] + 2.0 * dh;
            coo.push(i as usize, j as usize, w);
            denom[i as usize] += w;
        }
        let t_count = dg.targets.len() as f32;
        for &s in &dg.sources {
            denom[s as usize] -= 2.0 * dh * t_count;
        }
    }
    let pos = coo.to_csr();

    // Constant part α·W0 + β·c.
    let mut base = Matrix::zeros(n, dim);
    for (i, &b) in beta.iter().enumerate() {
        let row = base.row_mut(i);
        row.copy_from_slice(problem.w0.row(i));
        vector::scale(params.alpha, row);
        vector::axpy(b, problem.centroid_of(i), row);
    }

    let mut w = match seed {
        Some(s) => {
            assert_eq!(s.shape(), (n, dim), "solve_ro_seeded: seed shape mismatch");
            s.clone()
        }
        None => problem.w0.clone(),
    };
    let mut wr = Matrix::zeros(n, dim);
    let mut t_sum = vec![0.0f32; dim];

    for _ in 0..iterations {
        pos.mul_dense_into(&w, &mut wr);
        // Blanket negative term: −2δ̂r · t_r for every source of r.
        for dg in &groups {
            let dh = dg.delta_hat();
            if dh == 0.0 || dg.targets.is_empty() {
                continue;
            }
            vector::zero(&mut t_sum);
            for &k in &dg.targets {
                vector::axpy(1.0, w.row(k as usize), &mut t_sum);
            }
            for &s in &dg.sources {
                vector::axpy(-2.0 * dh, &t_sum, wr.row_mut(s as usize));
            }
        }
        // W' = base + WR, then divide by the diagonal.
        #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
        for i in 0..n {
            let d = denom[i];
            let next: Vec<f32> = if d.abs() > 1e-6 {
                base.row(i).iter().zip(wr.row(i)).map(|(b, r)| (b + r) / d).collect()
            } else {
                // Degenerate diagonal (δ too large): keep the previous
                // vector rather than dividing by ~0.
                w.row(i).to_vec()
            };
            w.set_row(i, &next);
        }
    }
    w
}

/// The RO solver with the negative term computed by **explicit enumeration**
/// of the `Ẽr` pairs — the unoptimized Eq. 10 computation that §4.5 warns
/// about (`|Ẽr| ≫ |Er|`). Numerically equivalent to [`solve_ro`]; its cost
/// per iteration is `O(Σ_r |sources(r)|·|targets(r)|·D)` instead of
/// `O(Σ_r (|sources(r)|+|targets(r)|)·D)`, which is where the paper's
/// "RO is ~10× slower than RN" runtime shape comes from (Table 2 / Fig. 4).
pub fn solve_ro_enumerated(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
) -> Matrix {
    let n = problem.len();
    let dim = problem.dim();
    if n == 0 {
        return Matrix::zeros(0, dim);
    }
    let groups = problem.directed_groups(params, true);
    let beta = problem.beta_weights(params);

    // Positive operator carries only the γ weights here; the negative term
    // is enumerated pair-by-pair below (related pairs are skipped exactly,
    // not re-added via the +2δ̂ trick).
    let mut coo = CooMatrix::new(n, n);
    let mut denom = vec![0.0f32; n];
    for (i, d) in denom.iter_mut().enumerate() {
        *d = params.alpha + beta[i];
    }
    for dg in &groups {
        let dh = dg.delta_hat();
        for &(i, j) in &dg.group.edges {
            let w = dg.own.gamma_i[i as usize] + dg.rev.gamma_i[j as usize];
            coo.push(i as usize, j as usize, w);
            denom[i as usize] += w;
        }
        let t_count = dg.targets.len() as f32;
        for (&s, &od) in dg.sources.iter().zip(&dg.source_out_degree) {
            denom[s as usize] -= 2.0 * dh * (t_count - od as f32);
        }
    }
    let pos = coo.to_csr();

    let mut base = Matrix::zeros(n, dim);
    for (i, &b) in beta.iter().enumerate() {
        let row = base.row_mut(i);
        row.copy_from_slice(problem.w0.row(i));
        vector::scale(params.alpha, row);
        vector::axpy(b, problem.centroid_of(i), row);
    }

    let mut w = problem.w0.clone();
    let mut wr = Matrix::zeros(n, dim);

    for _ in 0..iterations {
        pos.mul_dense_into(&w, &mut wr);
        for dg in &groups {
            let dh = dg.delta_hat();
            if dh == 0.0 || dg.targets.is_empty() {
                continue;
            }
            // Explicit Ẽr sweep: every (source, target) pair that is NOT a
            // relation contributes −2δ̂·v_target to the source's row.
            for &s in &dg.sources {
                let related: Vec<u32> =
                    dg.group.edges.iter().filter(|&&(i, _)| i == s).map(|&(_, j)| j).collect();
                let out_row = wr.row_mut(s as usize);
                for &k in &dg.targets {
                    if !related.contains(&k) {
                        vector::axpy(-2.0 * dh, w.row(k as usize), out_row);
                    }
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // i indexes three parallel arrays
        for i in 0..n {
            let d = denom[i];
            let next: Vec<f32> = if d.abs() > 1e-6 {
                base.row(i).iter().zip(wr.row(i)).map(|(b, r)| (b + r) / d).collect()
            } else {
                w.row(i).to_vec()
            };
            w.set_row(i, &next);
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use retro_embed::EmbeddingSet;

    /// Two categories (0: movies {a, b}, 1: countries {x}), one relation
    /// a→x.
    fn tiny_problem() -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "a");
        let _b = catalog.intern(movies, "b");
        let x = catalog.intern(countries, "x");
        let groups = vec![RelationGroup::new(
            "movies.title~countries.name".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x)],
        )];
        let base = EmbeddingSet::new(
            vec!["a".into(), "b".into(), "x".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn alpha_only_is_fixed_at_w0() {
        let p = tiny_problem();
        let params = Hyperparameters::new(2.0, 0.0, 0.0, 0.0);
        let w = solve_ro(&p, &params, 15);
        assert!(w.max_abs_diff(&p.w0) < 1e-5);
    }

    #[test]
    fn gamma_pulls_related_values_together() {
        let p = tiny_problem();
        let before = vector::dist(p.w0.row(0), p.w0.row(2));
        let params = Hyperparameters::new(1.0, 0.0, 2.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        let after = vector::dist(w.row(0), w.row(2));
        assert!(after < before, "after {after} < before {before}");
    }

    #[test]
    fn unrelated_value_only_feels_alpha_and_beta() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.0, 5.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        // "b" participates in no relation and β=0 → stays at its original.
        assert!(vector::approx_eq(w.row(1), p.w0.row(1), 1e-5));
    }

    #[test]
    fn beta_pulls_toward_category_centroid() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 3.0, 0.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        // Movie centroid is [0.5, 0.5]; both movie vectors move toward it.
        let centroid = [0.5f32, 0.5];
        let before = vector::dist(p.w0.row(0), &centroid);
        let after = vector::dist(w.row(0), &centroid);
        assert!(after < before);
    }

    #[test]
    fn converges_to_a_fixed_point() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.5, 1.0, 0.1);
        let w20 = solve_ro(&p, &params, 20);
        let w40 = solve_ro(&p, &params, 40);
        assert!(w20.max_abs_diff(&w40) < 1e-4);
    }

    #[test]
    fn deterministic() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let a = solve_ro(&p, &params, 10);
        let b = solve_ro(&p, &params, 10);
        assert!(a.max_abs_diff(&b) == 0.0);
    }

    #[test]
    fn degenerate_denominator_keeps_previous_vector() {
        // Absurd δ flips the diagonal negative for related nodes; the solver
        // must not blow up or emit NaNs.
        let p = tiny_problem();
        let params = Hyperparameters::new(0.0, 0.0, 0.0, 1e9);
        let w = solve_ro(&p, &params, 5);
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn enumerated_variant_matches_optimized() {
        let p = tiny_problem();
        for params in [
            Hyperparameters::new(1.0, 0.5, 2.0, 0.5),
            Hyperparameters::paper_ro(),
            Hyperparameters::new(2.0, 0.0, 1.0, 0.0),
        ] {
            let fast = solve_ro(&p, &params, 10);
            let slow = solve_ro_enumerated(&p, &params, 10);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "divergence {} at {params:?}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0, 0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_ro(&p, &Hyperparameters::default(), 5);
        assert_eq!(w.shape(), (0, 2));
    }
}
