//! The optimization-based solver (RO): Eq. 8 row updates expressed as the
//! Eq. 10 matrix iteration, with the Eq. 15 negative-term optimization.
//!
//! Per iteration:
//!
//! ```text
//! W' = α·W0 + β·c + P·W − Σ_r 2δ̂r · 1_sources(r) ⊗ t_r
//! W  = D⁻¹ W'
//! ```
//!
//! where `P` carries `(γ^r_i + γ^r̄_j) + 2δ̂r` on every relation edge — the
//! `+2δ̂r` re-adds the related vectors that the blanket subtraction of the
//! target sum `t_r = Σ_{k∈targets(r)} v_k` removed, exactly the algebra of
//! Eq. 15 — and `D` is the Eq. 10 diagonal of coefficient sums.
//!
//! ## One kernel, every execution mode
//!
//! All RO entry points ([`solve_ro`], [`solve_ro_seeded`],
//! [`solve_ro_enumerated`], and
//! [`solve_ro_parallel`](super::solve_ro_parallel)) run through one shared
//! kernel (`RoKernel`). The kernel splits each iteration into
//!
//! 1. a **group-partition phase** — the per-group target sums `t_r`
//!    (`O(n·D)` total; they read only the previous iterate `W`), with
//!    groups partitioned across the worker pool so each group's sum is
//!    written by exactly one worker, and
//! 2. a **row-partition phase** — `P·W`, the negative term, the constant
//!    part and the diagonal divide, all *row-local* given the `t_r`.
//!
//! Because neither phase's floating-point order depends on the partition,
//! the sequence of operations producing any given row or sum is identical
//! for every thread count, so results are **bit-identical** from 1 to N
//! threads. The sequential entry points are simply the kernel at
//! `threads = 1` (phases run inline), which is what makes it impossible for
//! the sequential and parallel paths to drift. All per-iteration scratch
//! (target-sum matrix, ping-pong iterate buffers) lives in the kernel, so
//! the iteration loop allocates nothing.

use retro_linalg::{vector, CooMatrix, CsrMatrix, Matrix};

use crate::hyper::{delta_hat_weight, per_source_weight, Hyperparameters};
use crate::problem::RetrofitProblem;

/// How the kernel computes the Eq. 10 negative (repulsion) term.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum NegativeMode {
    /// The Eq. 15 optimization: subtract `2δ̂r · t_r` blanket-wise from every
    /// source and re-add the related vectors through `+2δ̂r` edge weights in
    /// the positive operator. Cost per iteration:
    /// `O(Σ_r (|sources(r)|+|targets(r)|)·D)`.
    Blanket,
    /// Explicit enumeration of the `Ẽr` pairs — the unoptimized computation
    /// §4.5 warns about (`|Ẽr| ≫ |Er|`), kept for the Fig. 4 / Table 2
    /// runtime-shape reproduction. Cost per iteration:
    /// `O(Σ_r |sources(r)|·|targets(r)|·D)`.
    Enumerated,
}

/// The assembled RO iteration: positive operator, diagonal, constant part,
/// flattened per-node negative-term plans, and all iteration scratch.
/// Built once per solve; `run` then iterates with any number of worker
/// threads.
pub(crate) struct RoKernel<'p> {
    problem: &'p RetrofitProblem,
    /// Positive operator `P` (per-mode edge weights, see [`NegativeMode`]).
    pos: CsrMatrix,
    /// The Eq. 10 diagonal `D` of coefficient sums.
    denom: Vec<f32>,
    /// Eq. 12 β per node. The constant part `α·W0 + β·c` is not
    /// materialized — each row update recomputes it from `W0` and the
    /// category centroids (same expression, so same bits), which saves an
    /// `n × D` buffer and a full pass over it at construction.
    beta: Vec<f32>,
    /// The anchor weight α.
    alpha: f32,
    /// Flattened group target lists (CSR-style offsets+data): group `g`
    /// covers `tgt_ids[tgt_ptr[g] .. tgt_ptr[g+1]]`.
    tgt_ptr: Vec<u32>,
    tgt_ids: Vec<u32>,
    /// Per group: true when some row consumes this group's target sum
    /// (blanket mode, `δ̂r ≠ 0`, nonempty targets); dead groups skip the
    /// sum phase.
    live: Vec<bool>,
    /// Blanket mode, flattened per-node plans (CSR-style by node, group
    /// order — the order fixes each row's floating-point sequence): row `r`
    /// subtracts `neg_coeff[k] · t_{neg_group[k]}` (`neg_coeff = 2δ̂r`) for
    /// `k ∈ neg_ptr[r] .. neg_ptr[r+1]`.
    neg_ptr: Vec<u32>,
    neg_group: Vec<u32>,
    neg_coeff: Vec<f32>,
    /// Enumerated mode: per node, `(group index, 2δ̂r, related targets)` —
    /// subtract `2δ̂r · v_k` for every target `k` of the group that is *not*
    /// in the node's related list. Kept nested: this is the deliberately
    /// unoptimized Fig. 4 / Table 2 diagnostic path.
    node_pairs: Vec<Vec<(u32, f32, Vec<u32>)>>,
    mode: NegativeMode,
    /// Scratch, hoisted out of the iteration loop: Eq. 15 target sums (one
    /// row per directed group) and the ping-pong iterate buffers.
    t_sums: Matrix,
    w: Matrix,
    next: Matrix,
}

impl<'p> RoKernel<'p> {
    /// Assemble the kernel for one problem/parameter set.
    ///
    /// Blanket mode (the hot path) constructs directly from the forward
    /// relation groups with one degree-counting pass per group — the
    /// per-edge `γ` weights and the shared `δ̂ = δ/(mc·mr)` of Eq. 13 are
    /// computed on the fly from out-degrees and `|Ri|` counts (the same
    /// expressions [`crate::hyper::derive_group_weights`] evaluates, so
    /// the same bits) without materializing
    /// [`crate::problem::DirectedGroup`]s. The enumerated mode (a cold
    /// diagnostic path) keeps the directed-group construction.
    pub(crate) fn new(
        problem: &'p RetrofitProblem,
        params: &Hyperparameters,
        mode: NegativeMode,
    ) -> Self {
        match mode {
            NegativeMode::Blanket => Self::new_blanket(problem, params),
            NegativeMode::Enumerated => Self::new_enumerated(problem, params),
        }
    }

    fn new_blanket(problem: &'p RetrofitProblem, params: &Hyperparameters) -> Self {
        let n = problem.len();
        let dim = problem.dim();
        let beta = problem.beta_weights(params);
        let counts = &problem.relation_counts;
        let n_groups = problem.groups.len() * 2;

        let mut coo = CooMatrix::new(n, n);
        let mut denom = vec![0.0f32; n];
        for (i, d) in denom.iter_mut().enumerate() {
            *d = params.alpha + beta[i];
        }
        let mut tgt_ptr = Vec::with_capacity(n_groups + 1);
        tgt_ptr.push(0u32);
        let mut tgt_ids: Vec<u32> = Vec::new();
        let mut live = vec![false; n_groups];
        // Per-node negative entries in (group-major, ascending node) visit
        // order: (node, directed group, 2δ̂). Flattened into CSR form by a
        // stable counting sort below.
        let mut neg_entries: Vec<(u32, u32, f32)> = Vec::new();
        let mut fwd_deg = vec![0u32; n];
        let mut inv_deg = vec![0u32; n];
        // Per-edge weight scratch: the symmetric edge weight is identical
        // in both directions (f32 addition is commutative), so it is
        // computed once in the forward pass and reused for the inverted
        // edges.
        let mut edge_w: Vec<f32> = Vec::new();
        for (gi, group) in problem.groups.iter().enumerate() {
            // One counting pass yields both directions' out-degrees, the
            // Eq. 13 mr, and (via ascending scans) the distinct
            // source/target sets.
            let mut mr = 1usize;
            for &(i, j) in &group.edges {
                fwd_deg[i as usize] += 1;
                inv_deg[j as usize] += 1;
                mr = mr.max(counts[i as usize] as usize + 1).max(counts[j as usize] as usize + 1);
            }
            let mut src_count = 0usize;
            let mut t_count = 0usize;
            for i in 0..n {
                src_count += (fwd_deg[i] > 0) as usize;
                t_count += (inv_deg[i] > 0) as usize;
            }
            let mc = src_count.max(t_count).max(1);
            let dh =
                if group.edges.is_empty() { 0.0 } else { delta_hat_weight(params.delta, mc, mr) };

            // Edge weights carry +2δ̂ to re-add what the blanket
            // subtraction of t_r removes (Eq. 15); `γ^r_i + γ^r̄_j` is the
            // forward gamma at the source plus the inverted-direction
            // gamma at the target (and symmetrically for the inverted
            // direction's edges).
            edge_w.clear();
            for &(i, j) in &group.edges {
                let g_fwd =
                    per_source_weight(params.gamma, fwd_deg[i as usize], counts[i as usize]);
                let g_inv =
                    per_source_weight(params.gamma, inv_deg[j as usize], counts[j as usize]);
                let w = g_fwd + g_inv + 2.0 * dh;
                edge_w.push(w);
                coo.push(i as usize, j as usize, w);
                denom[i as usize] += w;
            }
            for i in 0..n {
                if fwd_deg[i] > 0 {
                    denom[i] -= 2.0 * dh * t_count as f32;
                }
            }
            for (&(i, j), &w) in group.edges.iter().zip(&edge_w) {
                coo.push(j as usize, i as usize, w);
                denom[j as usize] += w;
            }
            for i in 0..n {
                if inv_deg[i] > 0 {
                    denom[i] -= 2.0 * dh * src_count as f32;
                }
            }

            // Distinct targets per direction (ascending scan ≡ sorted +
            // deduped) and the per-direction negative plans.
            let g_fwd_idx = (2 * gi) as u32;
            let g_inv_idx = g_fwd_idx + 1;
            for i in 0..n {
                if inv_deg[i] > 0 {
                    tgt_ids.push(i as u32);
                }
            }
            tgt_ptr.push(tgt_ids.len() as u32);
            for i in 0..n {
                if fwd_deg[i] > 0 {
                    tgt_ids.push(i as u32);
                }
            }
            tgt_ptr.push(tgt_ids.len() as u32);
            if dh != 0.0 && t_count > 0 {
                for i in 0..n {
                    if fwd_deg[i] > 0 {
                        neg_entries.push((i as u32, g_fwd_idx, 2.0 * dh));
                        live[g_fwd_idx as usize] = true;
                    }
                }
            }
            if dh != 0.0 && src_count > 0 {
                for i in 0..n {
                    if inv_deg[i] > 0 {
                        neg_entries.push((i as u32, g_inv_idx, 2.0 * dh));
                        live[g_inv_idx as usize] = true;
                    }
                }
            }
            for &(i, j) in &group.edges {
                fwd_deg[i as usize] = 0;
                inv_deg[j as usize] = 0;
            }
        }
        let pos = coo.to_csr();
        let (neg_ptr, neg_group, neg_coeff) = super::flatten_by_node(n, &neg_entries);

        Self {
            problem,
            pos,
            denom,
            beta,
            alpha: params.alpha,
            tgt_ptr,
            tgt_ids,
            live,
            neg_ptr,
            neg_group,
            neg_coeff,
            node_pairs: Vec::new(),
            mode: NegativeMode::Blanket,
            t_sums: Matrix::zeros(n_groups, dim),
            // `w` is created lazily by `run` (it is handed out as the
            // result); `next` persists across runs.
            w: Matrix::zeros(0, 0),
            next: Matrix::zeros(n, dim),
        }
    }

    fn new_enumerated(problem: &'p RetrofitProblem, params: &Hyperparameters) -> Self {
        let n = problem.len();
        let dim = problem.dim();
        let groups = problem.directed_groups(params, true);
        let beta = problem.beta_weights(params);

        // Positive operator P (γ weights only; related pairs are skipped
        // exactly in the pair sweep, not re-added via the +2δ̂ trick) and
        // the constant denominator D.
        let mut coo = CooMatrix::new(n, n);
        let mut denom = vec![0.0f32; n];
        for (i, d) in denom.iter_mut().enumerate() {
            *d = params.alpha + beta[i];
        }
        for dg in &groups {
            let dh = dg.delta_hat();
            for &(i, j) in &dg.group.edges {
                let w = dg.own.gamma_i[i as usize] + dg.rev.gamma_i[j as usize];
                coo.push(i as usize, j as usize, w);
                denom[i as usize] += w;
            }
            let t_count = dg.targets.len() as f32;
            for (&s, &od) in dg.sources.iter().zip(&dg.source_out_degree) {
                denom[s as usize] -= 2.0 * dh * (t_count - od as f32);
            }
        }
        let pos = coo.to_csr();

        // Flatten the group target lists into offset+data arrays.
        let mut tgt_ptr = Vec::with_capacity(groups.len() + 1);
        tgt_ptr.push(0u32);
        let mut tgt_ids = Vec::with_capacity(groups.iter().map(|dg| dg.targets.len()).sum());
        for dg in &groups {
            tgt_ids.extend_from_slice(&dg.targets);
            tgt_ptr.push(tgt_ids.len() as u32);
        }

        // Explicit Ẽr plans: per node, the related targets to skip.
        let mut node_pairs: Vec<Vec<(u32, f32, Vec<u32>)>> = vec![Vec::new(); n];
        for (g, dg) in groups.iter().enumerate() {
            let dh = dg.delta_hat();
            if dh == 0.0 || dg.targets.is_empty() {
                continue;
            }
            for &s in &dg.sources {
                let related: Vec<u32> =
                    dg.group.edges.iter().filter(|&&(i, _)| i == s).map(|&(_, j)| j).collect();
                node_pairs[s as usize].push((g as u32, 2.0 * dh, related));
            }
        }

        Self {
            problem,
            pos,
            denom,
            beta,
            alpha: params.alpha,
            tgt_ptr,
            tgt_ids,
            live: vec![false; groups.len()],
            neg_ptr: vec![0u32; n + 1],
            neg_group: Vec::new(),
            neg_coeff: Vec::new(),
            node_pairs,
            mode: NegativeMode::Enumerated,
            t_sums: Matrix::zeros(groups.len(), dim),
            // `w` is created lazily by `run` (it is handed out as the
            // result); `next` persists across runs.
            w: Matrix::zeros(0, 0),
            next: Matrix::zeros(n, dim),
        }
    }

    /// Iterate the kernel. `seed` overrides the starting matrix (warm
    /// start); `threads ≤ 1` runs both phases inline on the calling thread.
    /// Results are bit-identical for every `threads` value. The iteration
    /// loop performs no allocation: the only allocation per run is the
    /// returned matrix itself (handed out by move, lazily replaced on the
    /// next run), so repeated/warm-start solves reuse all other scratch.
    pub(crate) fn run(
        &mut self,
        seed: Option<&Matrix>,
        iterations: usize,
        threads: usize,
    ) -> Matrix {
        let n = self.problem.len();
        let dim = self.problem.dim();
        if n == 0 || dim == 0 {
            return Matrix::zeros(n, dim);
        }
        if let Some(s) = seed {
            // Validate before touching the scratch: a panic below the
            // `mem::replace` calls would leave the kernel with emptied
            // buffers and a later run would silently compute nothing.
            assert_eq!(s.shape(), (n, dim), "RO solver: seed shape mismatch");
        }
        if self.w.shape() != (n, dim) {
            // The previous run handed its `w` buffer out as the result.
            self.w = Matrix::zeros(n, dim);
        }
        // Move the scratch out of `self` so worker threads can borrow the
        // immutable kernel state while writing disjoint chunks of it.
        let mut w = std::mem::replace(&mut self.w, Matrix::zeros(0, 0));
        let mut next = std::mem::replace(&mut self.next, Matrix::zeros(0, 0));
        let mut t_sums = std::mem::replace(&mut self.t_sums, Matrix::zeros(0, 0));
        match seed {
            Some(s) => w.as_mut_slice().copy_from_slice(s.as_slice()),
            None => w.as_mut_slice().copy_from_slice(self.problem.w0.as_slice()),
        }

        let threads = threads.max(1);
        let n_groups = self.live.len();
        let groups_per_chunk = n_groups.div_ceil(threads).max(1);
        let rows_per_chunk = n.div_ceil(threads);

        for _ in 0..iterations {
            // Group-partition phase: the Eq. 15 target sums
            // t_r = Σ_{k∈targets} v_k (only the blanket mode consumes
            // them). Each group's sum is written by exactly one worker, so
            // the partition never reorders any group's accumulation.
            if self.mode == NegativeMode::Blanket && n_groups > 0 {
                if threads <= 1 {
                    self.sum_rows(&w, 0, t_sums.as_mut_slice());
                } else {
                    let w_ref = &w;
                    let this = &*self;
                    std::thread::scope(|scope| {
                        for (chunk_idx, chunk) in
                            t_sums.as_mut_slice().chunks_mut(groups_per_chunk * dim).enumerate()
                        {
                            let start = chunk_idx * groups_per_chunk;
                            scope.spawn(move || this.sum_rows(w_ref, start, chunk));
                        }
                    });
                }
            }

            // Row-partition phase: every output row depends only on the
            // previous iterate and the t_sums — disjoint row ranges are
            // fully independent.
            if threads <= 1 {
                self.update_rows(&w, &t_sums, 0, next.as_mut_slice());
            } else {
                let w_ref = &w;
                let t_ref = &t_sums;
                let this = &*self;
                std::thread::scope(|scope| {
                    for (chunk_idx, chunk) in
                        next.as_mut_slice().chunks_mut(rows_per_chunk * dim).enumerate()
                    {
                        let start = chunk_idx * rows_per_chunk;
                        scope.spawn(move || this.update_rows(w_ref, t_ref, start, chunk));
                    }
                });
            }
            std::mem::swap(&mut w, &mut next);
        }

        self.next = next;
        self.t_sums = t_sums;
        w
    }

    /// Compute the Eq. 15 sums of groups `start..start + chunk.len()/dim`
    /// into `chunk` (a row-major slice of the target-sum matrix).
    fn sum_rows(&self, w: &Matrix, start: usize, chunk: &mut [f32]) {
        let dim = self.problem.dim();
        for (local, g) in (start..start + chunk.len() / dim).enumerate() {
            if !self.live[g] {
                continue; // never read by any row — skip the work
            }
            let t_sum = &mut chunk[local * dim..(local + 1) * dim];
            vector::zero(t_sum);
            for &k in &self.tgt_ids[self.tgt_ptr[g] as usize..self.tgt_ptr[g + 1] as usize] {
                vector::axpy(1.0, w.row(k as usize), t_sum);
            }
        }
    }

    /// Compute output rows `start..start + chunk.len()/dim` into `chunk`:
    /// constant part, `P·W`, negative term, diagonal divide — one fused
    /// pass while the row is hot in cache.
    ///
    /// Blanket mode dispatches to a const-dimension body for the common
    /// embedding widths so the accumulator row lives in registers across
    /// the whole sparse gather (the element-wise operation order is
    /// identical, so the dispatch never changes a bit of the output).
    fn update_rows(&self, w: &Matrix, t_sums: &Matrix, start: usize, chunk: &mut [f32]) {
        if self.mode == NegativeMode::Blanket {
            match self.problem.dim() {
                32 => return self.update_rows_fixed::<32>(w, t_sums, start, chunk),
                64 => return self.update_rows_fixed::<64>(w, t_sums, start, chunk),
                96 => return self.update_rows_fixed::<96>(w, t_sums, start, chunk),
                128 => return self.update_rows_fixed::<128>(w, t_sums, start, chunk),
                _ => {}
            }
        }
        self.update_rows_dyn(w, t_sums, start, chunk)
    }

    /// [`Self::update_rows`] (blanket mode) with the row dimension known at
    /// compile time: the accumulator is a fixed-size stack array, which
    /// LLVM promotes to vector registers across the gather and negative
    /// loops.
    fn update_rows_fixed<const D: usize>(
        &self,
        w: &Matrix,
        t_sums: &Matrix,
        start: usize,
        chunk: &mut [f32],
    ) {
        let end = start + chunk.len() / D;
        for (local, r) in (start..end).enumerate() {
            if r + 4 < end {
                // Overlap upcoming rows' data-dependent gathers with this
                // row's arithmetic (see `CsrMatrix::prefetch_row`); a few
                // rows of distance covers the DRAM latency.
                self.pos.prefetch_row(r + 4, w);
            }
            let mut acc = [0.0f32; D];
            let b = self.beta[r];
            let w0r = &self.problem.w0.row(r)[..D];
            let cr = &self.problem.centroid_of(r)[..D];
            for j in 0..D {
                acc[j] = self.alpha * w0r[j] + b * cr[j];
            }
            for (c, v) in self.pos.row(r) {
                let x = &w.row(c)[..D];
                for j in 0..D {
                    acc[j] += v * x[j];
                }
            }
            for k in self.neg_ptr[r] as usize..self.neg_ptr[r + 1] as usize {
                let coeff = self.neg_coeff[k];
                let t = &t_sums.row(self.neg_group[k] as usize)[..D];
                for j in 0..D {
                    acc[j] += -coeff * t[j];
                }
            }
            let out_row = &mut chunk[local * D..(local + 1) * D];
            let d = self.denom[r];
            if d.abs() > 1e-6 {
                for j in 0..D {
                    acc[j] /= d;
                }
                out_row.copy_from_slice(&acc);
            } else {
                // Degenerate diagonal (δ too large): keep the previous
                // vector rather than dividing by ~0.
                out_row.copy_from_slice(w.row(r));
            }
        }
    }

    /// [`Self::update_rows`] for arbitrary dimensions and the enumerated
    /// mode.
    fn update_rows_dyn(&self, w: &Matrix, t_sums: &Matrix, start: usize, chunk: &mut [f32]) {
        let dim = self.problem.dim();
        let end = start + chunk.len() / dim;
        for (local, r) in (start..end).enumerate() {
            if r + 1 < end {
                self.pos.prefetch_row(r + 1, w);
            }
            let out_row = &mut chunk[local * dim..(local + 1) * dim];
            let b = self.beta[r];
            for ((o, &w0v), &cv) in
                out_row.iter_mut().zip(self.problem.w0.row(r)).zip(self.problem.centroid_of(r))
            {
                *o = self.alpha * w0v + b * cv;
            }
            self.pos.mul_row_into(r, w, 1.0, out_row);
            match self.mode {
                NegativeMode::Blanket => {
                    // Blanket negative term: −2δ̂r · t_r for every group this
                    // row sources.
                    for k in self.neg_ptr[r] as usize..self.neg_ptr[r + 1] as usize {
                        vector::axpy(
                            -self.neg_coeff[k],
                            t_sums.row(self.neg_group[k] as usize),
                            out_row,
                        );
                    }
                }
                NegativeMode::Enumerated => {
                    // Explicit Ẽr sweep: every (source, target) pair that is
                    // NOT a relation contributes −2δ̂·v_target.
                    for (g, coeff, related) in &self.node_pairs[r] {
                        let t0 = self.tgt_ptr[*g as usize] as usize;
                        let t1 = self.tgt_ptr[*g as usize + 1] as usize;
                        for &k in &self.tgt_ids[t0..t1] {
                            if !related.contains(&k) {
                                vector::axpy(-coeff, w.row(k as usize), out_row);
                            }
                        }
                    }
                }
            }
            // Divide W' by the diagonal.
            let d = self.denom[r];
            if d.abs() > 1e-6 {
                for o in out_row.iter_mut() {
                    *o /= d;
                }
            } else {
                // Degenerate diagonal (δ too large): keep the previous
                // vector rather than dividing by ~0.
                out_row.copy_from_slice(w.row(r));
            }
        }
    }
}

/// Run the RO solver for `iterations` rounds, starting from `W0`.
///
/// ```
/// use retro_core::{Retro, RetroConfig, Hyperparameters};
/// use retro_core::solver::solve_ro;
/// use retro_embed::EmbeddingSet;
/// use retro_store::{sql, Database};
///
/// let mut db = Database::new();
/// sql::run_script(&mut db, "
///     CREATE TABLE countries (id INTEGER PRIMARY KEY, name TEXT);
///     CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
///                          country_id INTEGER REFERENCES countries(id));
///     INSERT INTO countries VALUES (1, 'france');
///     INSERT INTO movies VALUES (1, 'amelie', 1);
/// ").unwrap();
/// let base = EmbeddingSet::new(
///     vec!["amelie".into(), "france".into()],
///     vec![vec![1.0, 0.0], vec![0.0, 1.0]],
/// );
/// let problem = retro_core::RetrofitProblem::build(&db, &base, &[], &[]);
/// let w = solve_ro(&problem, &Hyperparameters::paper_ro(), 10);
/// assert_eq!(w.shape(), (2, 2));
/// ```
pub fn solve_ro(problem: &RetrofitProblem, params: &Hyperparameters, iterations: usize) -> Matrix {
    solve_ro_seeded(problem, params, iterations, None)
}

/// Run the RO solver from an explicit starting matrix (warm start for
/// incremental maintenance). The anchor term still pulls toward `W0`; only
/// the iteration's initial state changes.
///
/// # Panics
/// Panics if `seed` is `Some` and its shape differs from `(n, dim)`.
pub fn solve_ro_seeded(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
    seed: Option<&Matrix>,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Blanket).run(seed, iterations, 1)
}

/// The RO solver with the negative term computed by **explicit enumeration**
/// of the `Ẽr` pairs — the unoptimized Eq. 10 computation that §4.5 warns
/// about (`|Ẽr| ≫ |Er|`). Numerically equivalent to [`solve_ro`]; its cost
/// per iteration is `O(Σ_r |sources(r)|·|targets(r)|·D)` instead of
/// `O(Σ_r (|sources(r)|+|targets(r)|)·D)`, which is where the paper's
/// "RO is ~10× slower than RN" runtime shape comes from (Table 2 / Fig. 4).
pub fn solve_ro_enumerated(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    iterations: usize,
) -> Matrix {
    RoKernel::new(problem, params, NegativeMode::Enumerated).run(None, iterations, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use retro_embed::EmbeddingSet;

    /// Two categories (0: movies {a, b}, 1: countries {x}), one relation
    /// a→x.
    fn tiny_problem() -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let movies = catalog.add_category("movies", "title");
        let countries = catalog.add_category("countries", "name");
        let a = catalog.intern(movies, "a");
        let _b = catalog.intern(movies, "b");
        let x = catalog.intern(countries, "x");
        let groups = vec![RelationGroup::new(
            "movies.title~countries.name".into(),
            movies,
            countries,
            RelationKind::ForeignKey,
            vec![(a, x)],
        )];
        let base = EmbeddingSet::new(
            vec!["a".into(), "b".into(), "x".into()],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![-1.0, 0.0]],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn alpha_only_is_fixed_at_w0() {
        let p = tiny_problem();
        let params = Hyperparameters::new(2.0, 0.0, 0.0, 0.0);
        let w = solve_ro(&p, &params, 15);
        assert!(w.max_abs_diff(&p.w0) < 1e-5);
    }

    #[test]
    fn gamma_pulls_related_values_together() {
        let p = tiny_problem();
        let before = vector::dist(p.w0.row(0), p.w0.row(2));
        let params = Hyperparameters::new(1.0, 0.0, 2.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        let after = vector::dist(w.row(0), w.row(2));
        assert!(after < before, "after {after} < before {before}");
    }

    #[test]
    fn unrelated_value_only_feels_alpha_and_beta() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.0, 5.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        // "b" participates in no relation and β=0 → stays at its original.
        assert!(vector::approx_eq(w.row(1), p.w0.row(1), 1e-5));
    }

    #[test]
    fn beta_pulls_toward_category_centroid() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 3.0, 0.0, 0.0);
        let w = solve_ro(&p, &params, 20);
        // Movie centroid is [0.5, 0.5]; both movie vectors move toward it.
        let centroid = [0.5f32, 0.5];
        let before = vector::dist(p.w0.row(0), &centroid);
        let after = vector::dist(w.row(0), &centroid);
        assert!(after < before);
    }

    #[test]
    fn converges_to_a_fixed_point() {
        let p = tiny_problem();
        let params = Hyperparameters::new(1.0, 0.5, 1.0, 0.1);
        let w20 = solve_ro(&p, &params, 20);
        let w40 = solve_ro(&p, &params, 40);
        assert!(w20.max_abs_diff(&w40) < 1e-4);
    }

    #[test]
    fn deterministic() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let a = solve_ro(&p, &params, 10);
        let b = solve_ro(&p, &params, 10);
        assert!(a.max_abs_diff(&b) == 0.0);
    }

    #[test]
    fn degenerate_denominator_keeps_previous_vector() {
        // Absurd δ flips the diagonal negative for related nodes; the solver
        // must not blow up or emit NaNs.
        let p = tiny_problem();
        let params = Hyperparameters::new(0.0, 0.0, 0.0, 1e9);
        let w = solve_ro(&p, &params, 5);
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn enumerated_variant_matches_optimized() {
        let p = tiny_problem();
        for params in [
            Hyperparameters::new(1.0, 0.5, 2.0, 0.5),
            Hyperparameters::paper_ro(),
            Hyperparameters::new(2.0, 0.0, 1.0, 0.0),
        ] {
            let fast = solve_ro(&p, &params, 10);
            let slow = solve_ro_enumerated(&p, &params, 10);
            assert!(
                fast.max_abs_diff(&slow) < 1e-4,
                "divergence {} at {params:?}",
                fast.max_abs_diff(&slow)
            );
        }
    }

    #[test]
    fn empty_problem_is_handled() {
        let catalog = TextValueCatalog::default();
        let base = EmbeddingSet::new(vec!["t".into()], vec![vec![0.0, 0.0]]);
        let p = RetrofitProblem::from_parts(catalog, Vec::new(), &base);
        let w = solve_ro(&p, &Hyperparameters::default(), 5);
        assert_eq!(w.shape(), (0, 2));
    }

    #[test]
    fn fixed_dim_dispatch_is_bit_identical_to_dynamic_body() {
        // dim 32 takes the register-blocked const-dimension body; drive the
        // same iteration through the dynamic body and demand equal bits.
        let dim = 32usize;
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("a", "x");
        let cb = catalog.add_category("b", "y");
        let mut edges = Vec::new();
        let mut tokens = Vec::new();
        let mut vectors = Vec::new();
        for k in 0..12u32 {
            let i = catalog.intern(ca, &format!("s{k}"));
            let j = catalog.intern(cb, &format!("t{k}"));
            edges.push((i, j));
            edges.push((i, (j + 2) % 24));
            tokens.push(format!("s{k}"));
            vectors.push((0..dim).map(|d| ((k as f32 + 1.3) * (d as f32 + 0.7)).sin()).collect());
            tokens.push(format!("t{k}"));
            vectors.push((0..dim).map(|d| ((k as f32 - 2.1) * (d as f32 + 1.9)).cos()).collect());
        }
        let groups =
            vec![RelationGroup::new("a.x~b.y".into(), ca, cb, RelationKind::ForeignKey, edges)];
        let base = EmbeddingSet::new(tokens, vectors);
        let p = RetrofitProblem::from_parts(catalog, groups, &base);
        let params = Hyperparameters::paper_ro();

        let mut kernel = RoKernel::new(&p, &params, NegativeMode::Blanket);
        let fixed = kernel.run(None, 5, 1);

        let n = p.len();
        let mut w = p.w0.clone();
        let mut next = Matrix::zeros(n, dim);
        let mut t_sums = Matrix::zeros(kernel.live.len(), dim);
        for _ in 0..5 {
            kernel.sum_rows(&w, 0, t_sums.as_mut_slice());
            kernel.update_rows_dyn(&w, &t_sums, 0, next.as_mut_slice());
            std::mem::swap(&mut w, &mut next);
        }
        assert_eq!(fixed.max_abs_diff(&w), 0.0);
    }

    #[test]
    fn kernel_thread_counts_are_bit_identical() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let mut kernel = RoKernel::new(&p, &params, NegativeMode::Blanket);
        let serial = kernel.run(None, 10, 1);
        for threads in [2, 3, 8] {
            let parallel = kernel.run(None, 10, threads);
            assert_eq!(serial.max_abs_diff(&parallel), 0.0, "threads={threads}");
        }
    }

    #[test]
    fn enumerated_kernel_parallelizes_too() {
        let p = tiny_problem();
        let params = Hyperparameters::paper_ro();
        let mut kernel = RoKernel::new(&p, &params, NegativeMode::Enumerated);
        let serial = kernel.run(None, 8, 1);
        let parallel = kernel.run(None, 8, 4);
        assert_eq!(serial.max_abs_diff(&parallel), 0.0);
    }
}
