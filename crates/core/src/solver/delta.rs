//! The row-subset solver behind delta-scoped refresh.
//!
//! Given a merged problem ([`crate::delta::extract_delta`]), a warm matrix
//! holding the previous converged vectors, and the *dirty set* of rows
//! whose neighbourhood changed, [`solve_delta`] iterates the configured
//! kernel's row update **only over the dirty rows**, reading every other
//! row's converged vector as a constant. Cost per iteration is
//! `O(|dirty adjacency| · D)` plus an `O(|dirty| · D)` target-sum patch —
//! independent of the catalog size — which is what turns a one-row insert
//! from a full re-solve into a millisecond refresh.
//!
//! The construction mirrors the full kernels (`RoKernel`, `RnKernel`)
//! term for term: the same [`crate::hyper::per_source_weight`] /
//! [`crate::hyper::delta_hat_weight`] formulas, the same group-major
//! visit order for the positive and negative plans, the same Jacobi
//! semantics (all dirty rows are staged from the previous iterate, then
//! committed together). Frozen rows introduce the *bounded drift*
//! documented in `docs/INCREMENTAL.md`: a full solve would also nudge the
//! neighbours of the dirty rows, so delta output is equal to a full
//! refresh only up to a tolerance (pinned at `≤ 0.05` L∞ by the root
//! `delta_refresh` suite), not bit-for-bit.
//!
//! The solver is single-threaded by design: dirty sets are tiny (the
//! fallback threshold caps them), so thread fan-out would cost more than
//! the arithmetic — and it makes delta output trivially independent of
//! the configured thread count.

use retro_linalg::{vector, Matrix};

use crate::hyper::{delta_hat_weight, per_source_weight, Hyperparameters};
use crate::problem::RetrofitProblem;

/// Target-sum matrix `t_r = Σ_{k ∈ targets(r)} W[k]` for every directed
/// group (row `2·gi` = forward direction of group `gi`, row `2·gi+1` =
/// inverted), matching the layout of `RoKernel`'s `t_sums`. The RN
/// kernel's Eq. 16 centroids are these sums divided by the target counts;
/// [`solve_delta`] performs that division at apply time, so one sum matrix
/// serves both solvers — and, being parameter-independent, it can be
/// cached across refreshes by `IncrementalRetro`.
pub(crate) fn build_target_sums(problem: &RetrofitProblem, w: &Matrix) -> Matrix {
    let n = problem.len();
    let dim = problem.dim();
    let mut sums = Matrix::zeros(problem.groups.len() * 2, dim);
    let mut fwd_deg = vec![0u32; n];
    let mut inv_deg = vec![0u32; n];
    for (gi, group) in problem.groups.iter().enumerate() {
        for &(i, j) in &group.edges {
            fwd_deg[i as usize] += 1;
            inv_deg[j as usize] += 1;
        }
        // Forward targets = distinct j (inv degree), inverted targets =
        // distinct i (fwd degree); reset the scratch in the same pass.
        for &(i, j) in &group.edges {
            if inv_deg[j as usize] > 0 {
                inv_deg[j as usize] = 0;
                vector::axpy(1.0, w.row(j as usize), sums.row_mut(2 * gi));
            }
            if fwd_deg[i as usize] > 0 {
                fwd_deg[i as usize] = 0;
                vector::axpy(1.0, w.row(i as usize), sums.row_mut(2 * gi + 1));
            }
        }
    }
    sums
}

/// Iterate the configured solver's row update over `dirty` only.
///
/// * `w` — the full embedding matrix; dirty rows are updated in place,
///   every other row is read-only.
/// * `sums` — the per-directed-group target sums over the *current* `w`
///   (see [`build_target_sums`]); kept in sync as dirty rows move, so the
///   caller can cache it for the next delta refresh.
/// * `ro` — `true` for the RO (Eq. 10 + Eq. 15 blanket) update, `false`
///   for the RN (Eq. 11/16, row-normalized) update.
pub(crate) fn solve_delta(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    ro: bool,
    iterations: usize,
    w: &mut Matrix,
    sums: &mut Matrix,
    dirty: &[u32],
) {
    let n = problem.len();
    let dim = problem.dim();
    let nd = dirty.len();
    if nd == 0 || n == 0 || dim == 0 || iterations == 0 {
        return;
    }
    debug_assert_eq!(w.shape(), (n, dim));
    debug_assert_eq!(sums.shape(), (problem.groups.len() * 2, dim));

    let beta = problem.beta_weights(params);
    let counts = &problem.relation_counts;

    // Dense membership: dirty id → slot, u32::MAX for clean rows.
    let mut slot_of = vec![u32::MAX; n];
    for (k, &r) in dirty.iter().enumerate() {
        slot_of[r as usize] = k as u32;
    }

    // ── Construction: the dirty rows' view of the kernels' operators ──
    // Per dirty slot: positive adjacency (neighbour id, weight), negative
    // plan (directed group, coefficient), directed groups the row is a
    // target of (for the sum patch), and — RO — the Eq. 10 diagonal.
    let mut adj: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nd];
    let mut neg: Vec<Vec<(u32, f32)>> = vec![Vec::new(); nd];
    let mut target_of: Vec<Vec<u32>> = vec![Vec::new(); nd];
    let mut denom: Vec<f32> = dirty.iter().map(|&r| params.alpha + beta[r as usize]).collect();
    // Per directed group: distinct target count (RN centroid divisor).
    let mut tgt_count = vec![0u32; problem.groups.len() * 2];

    let mut fwd_deg = vec![0u32; n];
    let mut inv_deg = vec![0u32; n];
    for (gi, group) in problem.groups.iter().enumerate() {
        // One counting pass: degrees, Eq. 13 mr, and (via 0→1 transitions)
        // the distinct source/target counts — O(E), never O(n).
        let mut mr = 1usize;
        let mut src_count = 0usize;
        let mut t_count = 0usize;
        for &(i, j) in &group.edges {
            if fwd_deg[i as usize] == 0 {
                src_count += 1;
            }
            if inv_deg[j as usize] == 0 {
                t_count += 1;
            }
            fwd_deg[i as usize] += 1;
            inv_deg[j as usize] += 1;
            mr = mr.max(counts[i as usize] as usize + 1).max(counts[j as usize] as usize + 1);
        }
        let mc = src_count.max(t_count).max(1);
        let dh = if group.edges.is_empty() { 0.0 } else { delta_hat_weight(params.delta, mc, mr) };
        let g_fwd = (2 * gi) as u32;
        let g_inv = g_fwd + 1;
        tgt_count[g_fwd as usize] = t_count as u32;
        tgt_count[g_inv as usize] = src_count as u32;

        // Positive adjacency, in the kernels' push order: all forward
        // edges of the group, then all inverted — so each dirty row's
        // gather sequence matches the full kernels' CSR row order.
        for &(i, j) in &group.edges {
            let k = slot_of[i as usize];
            if k == u32::MAX {
                continue;
            }
            let weight = if ro {
                per_source_weight(params.gamma, fwd_deg[i as usize], counts[i as usize])
                    + per_source_weight(params.gamma, inv_deg[j as usize], counts[j as usize])
                    + 2.0 * dh
            } else {
                per_source_weight(params.gamma, fwd_deg[i as usize], counts[i as usize])
            };
            adj[k as usize].push((j, weight));
            denom[k as usize] += weight;
        }
        for &(i, j) in &group.edges {
            let k = slot_of[j as usize];
            if k == u32::MAX {
                continue;
            }
            let weight = if ro {
                per_source_weight(params.gamma, fwd_deg[i as usize], counts[i as usize])
                    + per_source_weight(params.gamma, inv_deg[j as usize], counts[j as usize])
                    + 2.0 * dh
            } else {
                per_source_weight(params.gamma, inv_deg[j as usize], counts[j as usize])
            };
            adj[k as usize].push((i, weight));
            denom[k as usize] += weight;
        }

        // Negative plans and target membership, per dirty row, in
        // group-major order (same as `flatten_by_node` yields).
        for (k, &r) in dirty.iter().enumerate() {
            let fd = fwd_deg[r as usize];
            let id = inv_deg[r as usize];
            if fd > 0 {
                // Sources the forward direction → subtract its targets'
                // aggregate; and it is a target of the inverted direction.
                if ro {
                    denom[k] -= 2.0 * dh * t_count as f32;
                    if dh != 0.0 && t_count > 0 {
                        neg[k].push((g_fwd, 2.0 * dh));
                    }
                } else if params.delta != 0.0 {
                    let d = per_source_weight(params.delta, fd, counts[r as usize]);
                    if d != 0.0 {
                        neg[k].push((g_fwd, d));
                    }
                }
                target_of[k].push(g_inv);
            }
            if id > 0 {
                if ro {
                    denom[k] -= 2.0 * dh * src_count as f32;
                    if dh != 0.0 && src_count > 0 {
                        neg[k].push((g_inv, 2.0 * dh));
                    }
                } else if params.delta != 0.0 {
                    let d = per_source_weight(params.delta, id, counts[r as usize]);
                    if d != 0.0 {
                        neg[k].push((g_inv, d));
                    }
                }
                target_of[k].push(g_fwd);
            }
        }

        for &(i, j) in &group.edges {
            fwd_deg[i as usize] = 0;
            inv_deg[j as usize] = 0;
        }
    }

    // ── Iteration: Jacobi over the dirty subset ───────────────────────
    let mut staged = Matrix::zeros(nd, dim);
    for _ in 0..iterations {
        // Stage every dirty row from the current iterate (`w` + `sums`),
        // exactly like the full kernels' row phase.
        for (k, &r) in dirty.iter().enumerate() {
            let r = r as usize;
            let out = staged.row_mut(k);
            let b = beta[r];
            for ((o, &w0v), &cv) in
                out.iter_mut().zip(problem.w0.row(r)).zip(problem.centroid_of(r))
            {
                *o = params.alpha * w0v + b * cv;
            }
            for &(c, v) in &adj[k] {
                vector::axpy(v, w.row(c as usize), out);
            }
            if ro {
                for &(g, coeff) in &neg[k] {
                    vector::axpy(-coeff, sums.row(g as usize), out);
                }
                let d = denom[k];
                if d.abs() > 1e-6 {
                    vector::scale(1.0 / d, out);
                } else {
                    // Degenerate diagonal (δ too large): keep the previous
                    // vector, like the full kernel.
                    out.copy_from_slice(w.row(r));
                }
            } else {
                for &(g, delta) in &neg[k] {
                    let divisor = tgt_count[g as usize].max(1) as f32;
                    vector::axpy(-delta / divisor, sums.row(g as usize), out);
                }
                vector::normalize(out);
            }
        }
        // Commit, patching the target sums the moved rows contribute to.
        for (k, &r) in dirty.iter().enumerate() {
            let r = r as usize;
            for &g in &target_of[k] {
                vector::axpy(-1.0, w.row(r), sums.row_mut(g as usize));
            }
            w.set_row(r, staged.row(k));
            for &g in &target_of[k] {
                let new_row = staged.row(k).to_vec();
                vector::axpy(1.0, &new_row, sums.row_mut(g as usize));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve_rn_seeded, solve_ro_seeded};
    use retro_embed::EmbeddingSet;
    use retro_store::{sql, Database};

    fn setup() -> (RetrofitProblem, Matrix) {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, lang TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 'en', 1), (2, 'alien', 'en', 2),
                                       (3, 'leon', 'fr', 1);",
        )
        .unwrap();
        let base = EmbeddingSet::new(
            vec!["valerian".into(), "alien".into(), "leon".into(), "luc".into(), "scott".into()],
            vec![
                vec![1.0, 0.0, 0.2],
                vec![0.0, 1.0, 0.1],
                vec![0.3, 0.3, 0.9],
                vec![0.7, 0.1, 0.4],
                vec![0.2, 0.8, 0.3],
            ],
        );
        let problem = RetrofitProblem::build(&db, &base, &[], &[]);
        let w0 = problem.w0.clone();
        (problem, w0)
    }

    #[test]
    fn target_sums_match_kernel_definition() {
        let (problem, w0) = setup();
        let sums = build_target_sums(&problem, &w0);
        assert_eq!(sums.rows(), problem.groups.len() * 2);
        // Forward sums aggregate distinct targets, inverted sums distinct
        // sources — verified against the convenience accessors.
        for (gi, group) in problem.groups.iter().enumerate() {
            for (row, ids) in [(2 * gi, group.targets()), (2 * gi + 1, group.sources())] {
                let mut expect = vec![0.0f32; problem.dim()];
                for id in ids {
                    vector::axpy(1.0, w0.row(id as usize), &mut expect);
                }
                for (a, b) in sums.row(row).iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-6);
                }
            }
        }
    }

    /// With EVERY row dirty, the delta solver runs the same update as the
    /// full kernels — modulo the RN centroid division and sum-patch
    /// floating-point orderings, which stay within a tight tolerance.
    #[test]
    fn all_dirty_matches_full_kernels() {
        let (problem, w0) = setup();
        let dirty: Vec<u32> = (0..problem.len() as u32).collect();
        for (ro, params) in [
            (true, Hyperparameters::paper_ro()),
            (false, Hyperparameters::paper_rn()),
            (true, Hyperparameters::new(1.0, 0.5, 2.0, 0.25)),
            (false, Hyperparameters::new(1.0, 0.5, 2.0, 0.25)),
        ] {
            let mut w = w0.clone();
            let mut sums = build_target_sums(&problem, &w);
            solve_delta(&problem, &params, ro, 5, &mut w, &mut sums, &dirty);
            let full = if ro {
                solve_ro_seeded(&problem, &params, 5, Some(&w0))
            } else {
                solve_rn_seeded(&problem, &params, 5, Some(&w0))
            };
            assert!(w.max_abs_diff(&full) < 1e-4, "ro={ro} diverged by {}", w.max_abs_diff(&full));
            // The maintained sums equal a rebuild over the final matrix.
            let rebuilt = build_target_sums(&problem, &w);
            assert!(sums.max_abs_diff(&rebuilt) < 1e-4);
        }
    }

    #[test]
    fn clean_rows_never_move() {
        let (problem, w0) = setup();
        let dirty = vec![0u32, 2];
        for ro in [true, false] {
            let params = if ro { Hyperparameters::paper_ro() } else { Hyperparameters::paper_rn() };
            let mut w = w0.clone();
            let mut sums = build_target_sums(&problem, &w);
            solve_delta(&problem, &params, ro, 5, &mut w, &mut sums, &dirty);
            for r in 0..problem.len() {
                let moved = w.row(r) != w0.row(r);
                if dirty.contains(&(r as u32)) {
                    assert!(moved, "dirty row {r} should move (ro={ro})");
                } else {
                    assert!(!moved, "clean row {r} must stay verbatim (ro={ro})");
                }
            }
        }
    }

    #[test]
    fn empty_dirty_set_is_a_no_op() {
        let (problem, w0) = setup();
        let mut w = w0.clone();
        let mut sums = build_target_sums(&problem, &w);
        let before = sums.clone();
        solve_delta(&problem, &Hyperparameters::paper_rn(), false, 5, &mut w, &mut sums, &[]);
        assert_eq!(w.max_abs_diff(&w0), 0.0);
        assert_eq!(sums.max_abs_diff(&before), 0.0);
    }
}
