//! # retro-core
//!
//! RETRO — **RE**lational re**TRO**fitting (Günther, Thiele, Lehner, EDBT
//! 2020): learn a dense vector for every text value in a relational
//! database, combining the semantics of a pre-trained word embedding with
//! the relational structure of the schema.
//!
//! Pipeline (paper §2–§4):
//!
//! 1. [`catalog`] — extract every distinct `(column, text)` pair as a text
//!    value with its *category* (§3.2/§3.3 uniqueness rules),
//! 2. [`relations`] — extract relation groups from row-wise column pairs,
//!    PK/FK relationships, and n:m link tables (§3.2),
//! 3. [`problem`] — tokenize every text value against the base embedding
//!    (§3.1) to build `W0`, compute the category centroids `c`, and derive
//!    all per-node hyperparameters ([`hyper`], Eq. 12–14),
//! 4. [`solver`] — iterate one of the solvers: **RO** (Eq. 8/10, the convex
//!    optimization view), **RN** (Eq. 9/11, the normalized series view), or
//!    the **MF** Faruqui baseline (Eq. 3),
//! 5. optionally [`graphgen`] — the §3.4 property graph for DeepWalk — and
//!    [`combine`] — concatenation of retrofitted and node embeddings (§4.6).
//!
//! For long-lived deployments, [`incremental`] warm-starts a re-solve after
//! database changes, and [`serve`] publishes each converged output as a
//! generation-numbered immutable snapshot that concurrent readers query
//! lock-free while a background worker refreshes (see `docs/SERVING.md`).
//! A published generation can be persisted to a checksummed snapshot file
//! and recovered after a restart ([`EmbeddingService::save_snapshot`] /
//! [`EmbeddingService::recover`] — see `docs/DURABILITY.md`).
//!
//! The one-call entry point is [`Retro`]:
//!
//! ```
//! use retro_core::{Retro, RetroConfig, Solver};
//! use retro_embed::EmbeddingSet;
//! use retro_store::{Database, sql};
//!
//! let mut db = Database::new();
//! sql::run_script(&mut db, "
//!     CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
//!     CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
//!                          director_id INTEGER REFERENCES persons(id));
//!     INSERT INTO persons VALUES (1, 'luc besson');
//!     INSERT INTO movies VALUES (10, 'valerian', 1);
//! ").unwrap();
//! let base = EmbeddingSet::new(
//!     vec!["valerian".into(), "luc".into(), "besson".into()],
//!     vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.5, 0.5]],
//! );
//! let output = Retro::new(RetroConfig::default().with_solver(Solver::Rn))
//!     .retrofit(&db, &base)
//!     .unwrap();
//! let id = output.catalog.lookup("movies", "title", "valerian").unwrap();
//! assert_eq!(output.embeddings.row(id).len(), 2);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod catalog;
pub mod combine;
pub(crate) mod delta;
pub mod engine;
pub mod graphgen;
pub mod hyper;
pub mod incremental;
pub mod loss;
pub(crate) mod persist;
pub mod problem;
pub mod relations;
pub mod serve;
pub mod solver;

pub use api::{Retro, RetroConfig, RetroOutput, Solver};
pub use catalog::{Category, TextValueCatalog};
pub use engine::{AdmissionConfig, Engine, EngineConfig, EngineError, Overloaded, Session};
pub use hyper::{Hyperparameters, ParamCheck};
pub use incremental::{IncrementalRetro, RefreshKind, RefreshPlan};
pub use problem::RetrofitProblem;
pub use relations::{RelationGroup, RelationKind};
pub use serve::{EmbeddingService, RefreshWorker, Snapshot};
