//! Incremental maintenance of retrofitted embeddings.
//!
//! The paper's third listed advantage: "RETRO does not rely on re-training,
//! which allows us to incrementally maintain the word vectors whenever the
//! data in the database changes." Because both solvers are fixed-point
//! iterations, an update after a data change can *warm-start* from the
//! previous solution: unchanged values begin at their converged vectors and
//! only the neighbourhood of the change needs to move, so far fewer
//! iterations reach the same fixed point.
//!
//! On top of warm-starting, [`IncrementalRetro::refresh`] is **delta
//! scoped**: it reads the store's change log, and when everything since the
//! last converged state is an append it extends the previous problem in
//! place (`crate::delta`) and re-solves only the rows whose neighbourhood
//! changed (`crate::solver::delta`) — every other row is carried over
//! verbatim. A one-row insert then costs milliseconds instead of a full
//! re-extraction and re-solve. Anything the log cannot prove to be an
//! append (deletes, relational updates, log overflow, an oversized dirty
//! set) falls back to the full path automatically;
//! [`IncrementalRetro::last_refresh`] reports which path ran. See the
//! [`guide`] module (rendered from `docs/INCREMENTAL.md`) for the accuracy
//! contract.

use std::sync::Arc;

use retro_embed::EmbeddingSet;
use retro_linalg::{vector, Matrix};
use retro_store::Database;

use crate::api::{Retro, RetroConfig, RetroError, RetroOutput, Solver};
use crate::delta::{classify_changes, extract_delta, ChangeSummary, DeltaExtraction};
use crate::hyper::ParamCheck;
use crate::problem::RetrofitProblem;
use crate::solver::delta::{build_target_sums, solve_delta};
use crate::solver::mf::solve_mf;
use crate::solver::parallel::{solve_rn_seeded_parallel, solve_ro_seeded_parallel};

/// The incremental-maintenance guide, rendered from `docs/INCREMENTAL.md`
/// so its code examples compile and run as doc tests.
#[doc = include_str!("../../../docs/INCREMENTAL.md")]
pub mod guide {}

/// Which refresh path a completed refresh took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshKind {
    /// Full re-extraction and re-solve (cold, or the delta fallback).
    Full,
    /// Delta-scoped: the previous problem was extended with the appended
    /// rows and only the dirty row subset was re-solved.
    Delta,
    /// The change log proved the previous output is still exact; it was
    /// republished untouched.
    NoChange,
}

/// A delta-scoped plan: the extended problem plus everything `complete`
/// needs without touching the database again.
#[derive(Clone, Debug)]
struct DeltaPlan {
    extraction: DeltaExtraction,
    /// Convexity carried over from the previous output: the Eq. 12/14
    /// check is `O(E)` over the whole graph, which would dwarf a small
    /// delta solve. Appends can only relax `mc`/`mr`, so the previous
    /// verdict stays valid; it is re-evaluated on every full refresh.
    convexity: ParamCheck,
}

#[derive(Clone, Debug)]
enum PlanKind {
    Full {
        problem: RetrofitProblem,
        /// Warm-start matrix seeded from the previous converged state;
        /// `None` when the session has no prior state (cold full run).
        warm: Option<Matrix>,
    },
    Delta(Box<DeltaPlan>),
    NoChange {
        current: Arc<RetroOutput>,
    },
}

/// A fully extracted, ready-to-solve refresh: the output of
/// [`IncrementalRetro::prepare_refresh`], consumed by
/// [`IncrementalRetro::complete_refresh`].
///
/// Splitting refresh into *prepare* (needs the `&Database`, cheap) and
/// *complete* (solver iterations, no database access) lets a serving layer
/// hold a database read lock only for extraction and run the solve with the
/// database fully unlocked — see `retro_core::serve`.
#[derive(Clone, Debug)]
pub struct RefreshPlan {
    kind: PlanKind,
    /// The database write version the plan was extracted at; completing the
    /// plan stamps it as the session's synced version for the next delta.
    db_version: u64,
}

impl RefreshPlan {
    /// The refresh path this plan will take when completed.
    pub fn kind(&self) -> RefreshKind {
        match &self.kind {
            PlanKind::Full { .. } => RefreshKind::Full,
            PlanKind::Delta(_) => RefreshKind::Delta,
            PlanKind::NoChange { .. } => RefreshKind::NoChange,
        }
    }

    /// True when this plan reuses a previous converged state — a warm full
    /// run, a delta, or a no-change republish (false → completing it is a
    /// cold full run).
    pub fn is_warm(&self) -> bool {
        !matches!(&self.kind, PlanKind::Full { warm: None, .. })
    }

    /// A delta plan's dirty row ids (ascending; `None` for full and
    /// no-change plans). Completing a delta plan changes **only** these
    /// rows and appends past the previous length — the contract a serving
    /// layer relies on to patch derived per-row data (e.g. cached norms)
    /// instead of recomputing `O(n·D)` of it.
    pub fn dirty_rows(&self) -> Option<&[u32]> {
        match &self.kind {
            PlanKind::Delta(plan) => Some(&plan.extraction.dirty),
            _ => None,
        }
    }

    /// Number of text values the refreshed output will cover.
    pub fn len(&self) -> usize {
        match &self.kind {
            PlanKind::Full { problem, .. } => problem.len(),
            PlanKind::Delta(plan) => plan.extraction.problem.len(),
            PlanKind::NoChange { current } => current.problem.len(),
        }
    }

    /// True when the refreshed output will cover no text values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Target sums over the current converged matrix, reusable by the next
/// delta refresh (they are parameter-free aggregates, so a delta only has
/// to patch in the rows that became targets since).
#[derive(Clone, Debug)]
struct SumsCache {
    /// The database write version of the state the sums were built over.
    version: u64,
    sums: Matrix,
}

/// A retrofitting session that keeps its last solution for warm starts.
///
/// The converged state is held behind an `Arc` (it is only ever replaced,
/// never mutated in place), so a serving layer can share the latest output
/// with its published snapshot via [`Self::current_shared`] instead of
/// deep-copying a paper-scale embedding matrix per refresh.
#[derive(Clone, Debug)]
pub struct IncrementalRetro {
    engine: Retro,
    /// Iterations used for incremental refreshes (default 5).
    pub refresh_iterations: usize,
    /// Delta refreshes whose dirty set exceeds this fraction of the catalog
    /// fall back to a full refresh (default 0.5): past that point the
    /// subset solve re-does most of the work anyway, and the full path is
    /// exact.
    pub delta_max_dirty_fraction: f32,
    state: Option<Arc<RetroOutput>>,
    /// Database write version `state` is converged against; the anchor the
    /// change log is read from on the next refresh.
    state_version: Option<u64>,
    sums_cache: Option<SumsCache>,
    last_refresh: Option<RefreshKind>,
}

impl IncrementalRetro {
    /// Create a session.
    pub fn new(config: RetroConfig) -> Self {
        Self {
            engine: Retro::new(config),
            refresh_iterations: 5,
            delta_max_dirty_fraction: 0.5,
            state: None,
            state_version: None,
            sums_cache: None,
            last_refresh: None,
        }
    }

    /// Seed the session from a previously converged output — the warm-start
    /// path of `EmbeddingService::recover`.
    ///
    /// `db_version` must be the database write version `output` was
    /// converged against *when it was persisted*: it anchors the change log
    /// for the next refresh, so everything written since the snapshot is
    /// picked up (as a delta when the log allows it). The sums cache and
    /// refresh-kind report are cleared — they describe solver runs this
    /// process never performed.
    pub fn restore(&mut self, output: Arc<RetroOutput>, db_version: u64) {
        self.state = Some(output);
        self.state_version = Some(db_version);
        self.sums_cache = None;
        self.last_refresh = None;
    }

    /// The current output, if any run has completed.
    pub fn current(&self) -> Option<&RetroOutput> {
        self.state.as_deref()
    }

    /// The current output as a shareable handle, if any run has completed.
    ///
    /// The `Arc` is the session's own state handle: cloning it shares one
    /// allocation between the session (which only reads it for warm-start
    /// seeds) and any number of long-lived consumers.
    pub fn current_shared(&self) -> Option<Arc<RetroOutput>> {
        self.state.clone()
    }

    /// Which path the most recent completed run took (`None` before the
    /// first run). Full runs report [`RefreshKind::Full`].
    pub fn last_refresh(&self) -> Option<RefreshKind> {
        self.last_refresh
    }

    /// Install `out` as the session state and return a reference to it.
    ///
    /// This is the single point where session state changes; routing every
    /// path through it keeps the invariant *state, state version and
    /// refresh kind update together* in one place — and `Option::insert`
    /// returns the freshly stored value, so no panic-prone unwrap of a
    /// "just set" option is needed.
    fn install(&mut self, out: Arc<RetroOutput>, version: u64, kind: RefreshKind) -> &RetroOutput {
        self.state_version = Some(version);
        self.last_refresh = Some(kind);
        &**self.state.insert(out)
    }

    /// Full (cold) run.
    pub fn full_run(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let version = db.write_version();
        let out = self.engine.retrofit(db, base)?;
        self.sums_cache = None;
        Ok(self.install(Arc::new(out), version, RefreshKind::Full))
    }

    /// Incremental refresh after database changes.
    ///
    /// Reads the store's change log to pick the cheapest safe path — see
    /// [`Self::prepare_refresh`] for the dispatch and [`RefreshKind`] for
    /// the possible outcomes. Without prior state this is a cold full run
    /// at the engine's configured iteration count.
    ///
    /// All validation happens **before** the session state is touched
    /// ([`Self::prepare_refresh`]), so a failed refresh leaves
    /// [`Self::current`] exactly as it was — the session never silently
    /// loses its warm-start state to an error. (An earlier version `take()`d
    /// the state before validating, so one failed refresh downgraded every
    /// subsequent refresh to a cold run.)
    pub fn refresh(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let plan = self.prepare_refresh(db, base)?;
        Ok(self.complete_refresh(plan))
    }

    /// Incremental refresh that skips the delta dispatch: always
    /// re-extracts and re-solves the whole problem (warm-started when prior
    /// state exists). This is the reference delta refreshes are compared
    /// against, and an escape hatch if the change log is not to be trusted.
    pub fn refresh_full(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let plan = self.prepare_refresh_full(db, base)?;
        Ok(self.complete_refresh(plan))
    }

    /// Phase 1 of a refresh: validate, decide the refresh path and extract
    /// everything the solve needs, without mutating the session.
    ///
    /// Dispatch, most specific first:
    ///
    /// 1. no prior state → cold **full** plan;
    /// 2. database write version unchanged, or the change log shows only
    ///    irrelevant writes (e.g. numeric updates) → **no-change** plan;
    /// 3. every relevant change is an append and the dirty neighbourhood is
    ///    small ([`Self::delta_max_dirty_fraction`]) → **delta** plan;
    /// 4. otherwise (deletes, relational updates, log overflow, schema
    ///    changes, oversized dirty set, or the MF solver, which has no
    ///    warm-start story) → warm **full** plan.
    ///
    /// This is the only fallible part of a refresh and the only part that
    /// needs the database; `&self` guarantees the previous converged state
    /// survives any error. Hand the plan to [`Self::complete_refresh`] —
    /// typically after releasing the database lock a serving layer held for
    /// this call.
    pub fn prepare_refresh(
        &self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<RefreshPlan, RetroError> {
        if base.dim() == 0 {
            return Err(RetroError::EmptyEmbedding);
        }
        let db_version = db.write_version();
        if let (Some(prev), Some(synced)) = (&self.state, self.state_version) {
            if db_version == synced {
                return Ok(RefreshPlan {
                    kind: PlanKind::NoChange { current: Arc::clone(prev) },
                    db_version,
                });
            }
            // MF re-solves from W0 every time — there is no converged state
            // to scope a delta against, so only the version fast-path above
            // applies to it.
            if self.engine.config.solver != Solver::Mf {
                match classify_changes(db, synced) {
                    ChangeSummary::NoRelevantChange => {
                        return Ok(RefreshPlan {
                            kind: PlanKind::NoChange { current: Arc::clone(prev) },
                            db_version,
                        });
                    }
                    ChangeSummary::Appends(appends) => {
                        let (skip_cols, skip_rels) = self.engine.config.skip_refs();
                        if let Some(extraction) = extract_delta(
                            db,
                            base,
                            prev,
                            &appends,
                            &skip_cols,
                            &skip_rels,
                            self.delta_max_dirty_fraction,
                        ) {
                            if extraction.dirty.is_empty() {
                                // Every appended value and edge already
                                // existed: the previous output is exact.
                                return Ok(RefreshPlan {
                                    kind: PlanKind::NoChange { current: Arc::clone(prev) },
                                    db_version,
                                });
                            }
                            return Ok(RefreshPlan {
                                kind: PlanKind::Delta(Box::new(DeltaPlan {
                                    extraction,
                                    convexity: prev.convexity.clone(),
                                })),
                                db_version,
                            });
                        }
                    }
                    ChangeSummary::Full => {}
                }
            }
        }
        self.prepare_refresh_full(db, base)
    }

    /// Phase 1 of a **full** refresh: re-extract the whole problem and
    /// gather warm-start seeds, skipping the delta dispatch entirely.
    pub fn prepare_refresh_full(
        &self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<RefreshPlan, RetroError> {
        if base.dim() == 0 {
            return Err(RetroError::EmptyEmbedding);
        }
        let db_version = db.write_version();
        let (skip_cols, skip_rels) = self.engine.config.skip_refs();
        let problem = RetrofitProblem::build(db, base, &skip_cols, &skip_rels);

        // Warm start: carry over converged vectors by (category label, text).
        let warm = self.state.as_ref().map(|prev| {
            let mut warm = problem.w0.clone();
            for (id, cat, text) in problem.catalog.iter() {
                let category = &problem.catalog.categories()[cat as usize];
                if let Some(old_id) = prev.catalog.lookup(&category.table, &category.column, text) {
                    warm.set_row(id, prev.embeddings.row(old_id));
                }
            }
            warm
        });
        Ok(RefreshPlan { kind: PlanKind::Full { problem, warm }, db_version })
    }

    /// Phase 2 of a refresh: run the solver on a prepared plan and install
    /// the result as the session's current state. Infallible — every
    /// validation already happened in [`Self::prepare_refresh`].
    pub fn complete_refresh(&mut self, plan: RefreshPlan) -> &RetroOutput {
        let RefreshPlan { kind, db_version } = plan;
        match kind {
            PlanKind::NoChange { current } => {
                // The previous output is exact for `db_version` too: keep
                // the state (same `Arc`) and the sums cache, restamping
                // both to the new version so the next delta anchors here.
                if let Some(cache) = &mut self.sums_cache {
                    if Some(cache.version) == self.state_version {
                        cache.version = db_version;
                    }
                }
                self.install(current, db_version, RefreshKind::NoChange)
            }
            PlanKind::Delta(plan) => {
                let DeltaPlan { extraction, convexity } = *plan;
                let DeltaExtraction { problem, mut warm, dirty, new_targets, prev_groups } =
                    extraction;
                // Reuse cached target sums when they match the previous
                // state: patch in the rows that became targets with these
                // appends (rows of brand-new groups start at zero and get
                // all their targets this way). Otherwise rebuild — O(E),
                // still database-free.
                let cached = self.sums_cache.take().filter(|cache| {
                    Some(cache.version) == self.state_version
                        && cache.sums.shape() == (prev_groups * 2, problem.dim())
                });
                let mut sums = match cached {
                    Some(cache) => {
                        let mut sums = Matrix::zeros(problem.groups.len() * 2, problem.dim());
                        for r in 0..prev_groups * 2 {
                            sums.set_row(r, cache.sums.row(r));
                        }
                        for (gi, (fwd, inv)) in new_targets.iter().enumerate() {
                            for &id in fwd {
                                vector::axpy(1.0, warm.row(id as usize), sums.row_mut(2 * gi));
                            }
                            for &id in inv {
                                vector::axpy(1.0, warm.row(id as usize), sums.row_mut(2 * gi + 1));
                            }
                        }
                        sums
                    }
                    None => build_target_sums(&problem, &warm),
                };
                let ro = self.engine.config.solver == Solver::Ro;
                solve_delta(
                    &problem,
                    &self.engine.config.params,
                    ro,
                    self.refresh_iterations,
                    &mut warm,
                    &mut sums,
                    &dirty,
                );
                self.sums_cache = Some(SumsCache { version: db_version, sums });
                let out = RetroOutput {
                    catalog: problem.catalog.clone(),
                    problem,
                    embeddings: warm,
                    convexity,
                };
                self.install(Arc::new(out), db_version, RefreshKind::Delta)
            }
            PlanKind::Full { problem, warm } => {
                let out = match warm {
                    Some(warm) => {
                        let embeddings = self.solve_from(&problem, warm);
                        let convexity = crate::hyper::check_convexity(
                            &problem.groups,
                            &problem.relation_counts,
                            &self.engine.config.params,
                            problem.len(),
                        );
                        RetroOutput {
                            catalog: problem.catalog.clone(),
                            problem,
                            embeddings,
                            convexity,
                        }
                    }
                    // No previous state: a cold full run at the engine's
                    // configured iteration count, exactly like `full_run`.
                    None => self.engine.solve(problem),
                };
                self.sums_cache = None;
                self.install(Arc::new(out), db_version, RefreshKind::Full)
            }
        }
    }

    /// Run the configured solver starting from `warm` instead of `W0`,
    /// honouring [`crate::Hyperparameters::threads`] like the cold path.
    fn solve_from(&self, problem: &RetrofitProblem, warm: Matrix) -> Matrix {
        let params = &self.engine.config.params;
        let iters = self.refresh_iterations;
        match self.engine.config.solver {
            Solver::Ro => {
                solve_ro_seeded_parallel(problem, params, iters, Some(&warm), params.threads)
            }
            Solver::Rn => {
                solve_rn_seeded_parallel(problem, params, iters, Some(&warm), params.threads)
            }
            // MF has no anchor/seed separation worth preserving — a short
            // re-run from W0 is its incremental story.
            Solver::Mf => solve_mf(problem, iters),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    fn base() -> EmbeddingSet {
        EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "luc besson".into(),
                "ridley scott".into(),
                "prometheus".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.3], vec![0.3, 0.7], vec![0.1, 0.9]],
        )
    }

    fn db() -> Database {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2);",
        )
        .unwrap();
        db
    }

    #[test]
    fn refresh_without_prior_run_is_a_full_run() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        let out = inc.refresh(&db, &base()).unwrap();
        assert_eq!(out.embeddings.rows(), 4);
        assert_eq!(inc.last_refresh(), Some(RefreshKind::Full));
    }

    #[test]
    fn refresh_picks_up_new_values() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        // On a 4-value toy graph the two-ring dirty set is most of the
        // catalog; this test is about dispatch, not the budget.
        inc.delta_max_dirty_fraction = 1.0;
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let out = inc.refresh(&db, &base()).unwrap();
        assert!(out.vector("movies", "title", "prometheus").is_some());
        assert_eq!(out.embeddings.rows(), 5);
        // An insert-only change takes the delta path.
        assert_eq!(inc.last_refresh(), Some(RefreshKind::Delta));
    }

    #[test]
    fn unchanged_database_republishes_without_solving() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        inc.full_run(&db, &base()).unwrap();
        let before = inc.current_shared().unwrap();
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert_eq!(plan.kind(), RefreshKind::NoChange);
        inc.complete_refresh(plan);
        assert_eq!(inc.last_refresh(), Some(RefreshKind::NoChange));
        // Same allocation, not merely equal values.
        assert!(Arc::ptr_eq(&before, &inc.current_shared().unwrap()));
    }

    #[test]
    fn numeric_only_update_is_no_change() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, budget FLOAT);
             INSERT INTO movies VALUES (1, 'valerian', 180.0), (2, 'alien', 11.0);",
        )
        .unwrap();
        inc.full_run(&db, &base()).unwrap();
        db.update_rows("movies", &[(0, 2, retro_store::Value::Float(9.0))]).unwrap();
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert_eq!(plan.kind(), RefreshKind::NoChange);
    }

    #[test]
    fn delete_falls_back_to_a_full_refresh() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        db.delete_rows("movies", &[1]).unwrap();
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert_eq!(plan.kind(), RefreshKind::Full);
        assert!(plan.is_warm());
        let out = inc.complete_refresh(plan);
        assert_eq!(out.embeddings.rows(), 3);
        assert_eq!(inc.last_refresh(), Some(RefreshKind::Full));
    }

    #[test]
    fn dirty_fraction_zero_forces_the_full_path() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        inc.delta_max_dirty_fraction = 0.0;
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        inc.refresh(&db, &base()).unwrap();
        assert_eq!(inc.last_refresh(), Some(RefreshKind::Full));
    }

    #[test]
    fn failed_refresh_preserves_previous_state() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        inc.full_run(&db, &base()).unwrap();
        let before = inc.current().expect("converged").embeddings.clone();

        // A zero-dim base is invalid; the refresh must fail WITHOUT
        // dropping the session's converged state. (The old code took the
        // state before validating, so this error silently downgraded every
        // later refresh to a cold run.)
        let err = inc.refresh(&db, &EmbeddingSet::empty(0)).unwrap_err();
        assert_eq!(err, RetroError::EmptyEmbedding);
        let current = inc.current().expect("state must survive a failed refresh");
        assert_eq!(
            current.embeddings.max_abs_diff(&before),
            0.0,
            "failed refresh must leave the previous output bit-identical"
        );

        // And the next successful refresh is still warm: it carries the
        // previous vectors over rather than re-running cold.
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert!(plan.is_warm(), "state survived, so the next plan must warm-start");
        inc.refresh(&db, &base()).unwrap();
    }

    #[test]
    fn prepare_refresh_does_not_mutate_the_session() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        inc.full_run(&db, &base()).unwrap();
        let before = inc.current().unwrap().embeddings.clone();
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert!(plan.is_warm());
        assert!(!plan.is_empty());
        assert_eq!(inc.current().unwrap().embeddings.max_abs_diff(&before), 0.0);
        // Completing the plan is what installs the new state.
        let out = inc.complete_refresh(plan);
        assert_eq!(out.embeddings.rows(), 4);
    }

    #[test]
    fn split_refresh_matches_one_shot_refresh() {
        let mut db = db();
        let mut one_shot = IncrementalRetro::new(RetroConfig::default());
        one_shot.full_run(&db, &base()).unwrap();
        let mut split = one_shot.clone();

        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let expected = one_shot.refresh(&db, &base()).unwrap().embeddings.clone();
        let plan = split.prepare_refresh(&db, &base()).unwrap();
        let got = split.complete_refresh(plan).embeddings.clone();
        assert_eq!(expected.max_abs_diff(&got), 0.0, "split refresh must be the same refresh");
    }

    #[test]
    fn refresh_result_close_to_a_full_refresh() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        inc.delta_max_dirty_fraction = 1.0;
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        let mut reference = inc.clone();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        inc.refresh(&db, &base()).unwrap();
        assert_eq!(inc.last_refresh(), Some(RefreshKind::Delta));
        let full = reference.refresh_full(&db, &base()).unwrap().clone();
        assert_eq!(reference.last_refresh(), Some(RefreshKind::Full));
        // Same fixed point up to the documented bounded drift — but value
        // ids can differ (the delta catalog appends new values, a full
        // re-extraction interleaves them), so compare per
        // (table, column, text). This 4-value toy is past the worst case
        // for the production bound (the insert is 20% of the graph and
        // every frozen row is a direct neighbour of the change), so the
        // assertion here is looser; the 0.05 contract is pinned at
        // realistic sizes by the root `delta_refresh` suite.
        for (id, cat, text) in full.catalog.iter() {
            let category = &full.catalog.categories()[cat as usize];
            let mapped = inc
                .current()
                .unwrap()
                .vector(&category.table, &category.column, text)
                .expect("delta output must cover every value the full refresh has");
            let max = full
                .embeddings
                .row(id)
                .iter()
                .zip(mapped)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max < 0.1, "'{text}' drifted by {max}");
        }
    }

    /// The cached target sums must give the same delta result as a cold
    /// rebuild of the sums (second consecutive delta hits the cache).
    #[test]
    fn sums_cache_does_not_change_the_result() {
        let mut db = db();
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        inc.delta_max_dirty_fraction = 1.0;
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        inc.refresh(&db, &base()).unwrap();
        let mut uncached = inc.clone();
        uncached.sums_cache = None;

        sql::run_script(&mut db, "INSERT INTO movies VALUES (4, 'alien', 1)").unwrap();
        let cached_out = inc.refresh(&db, &base()).unwrap().embeddings.clone();
        assert_eq!(inc.last_refresh(), Some(RefreshKind::Delta));
        let rebuilt_out = uncached.refresh(&db, &base()).unwrap().embeddings.clone();
        assert!(cached_out.max_abs_diff(&rebuilt_out) < 1e-5);
    }
}
