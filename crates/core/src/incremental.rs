//! Incremental maintenance of retrofitted embeddings.
//!
//! The paper's third listed advantage: "RETRO does not rely on re-training,
//! which allows us to incrementally maintain the word vectors whenever the
//! data in the database changes." Because both solvers are fixed-point
//! iterations, an update after a data change can *warm-start* from the
//! previous solution: unchanged values begin at their converged vectors and
//! only the neighbourhood of the change needs to move, so far fewer
//! iterations reach the same fixed point.

use retro_embed::EmbeddingSet;
use retro_linalg::Matrix;
use retro_store::Database;

use crate::api::{Retro, RetroConfig, RetroError, RetroOutput, Solver};
use crate::problem::RetrofitProblem;
use crate::solver::mf::solve_mf;
use crate::solver::parallel::{solve_rn_seeded_parallel, solve_ro_seeded_parallel};

/// A retrofitting session that keeps its last solution for warm starts.
#[derive(Clone, Debug)]
pub struct IncrementalRetro {
    engine: Retro,
    /// Iterations used for incremental refreshes (default 5).
    pub refresh_iterations: usize,
    state: Option<RetroOutput>,
}

impl IncrementalRetro {
    /// Create a session.
    pub fn new(config: RetroConfig) -> Self {
        Self { engine: Retro::new(config), refresh_iterations: 5, state: None }
    }

    /// The current output, if any run has completed.
    pub fn current(&self) -> Option<&RetroOutput> {
        self.state.as_ref()
    }

    /// Full (cold) run.
    pub fn full_run(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let out = self.engine.retrofit(db, base)?;
        self.state = Some(out);
        Ok(self.state.as_ref().expect("just set"))
    }

    /// Incremental refresh after database changes.
    ///
    /// Re-extracts the problem (text values may have been added or removed),
    /// seeds every value that already existed with its previous converged
    /// vector, leaves new values at their `W0` initialization, and runs only
    /// [`Self::refresh_iterations`] solver rounds.
    pub fn refresh(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let Some(prev) = self.state.take() else {
            return self.full_run(db, base);
        };
        if base.dim() == 0 {
            return Err(RetroError::EmptyEmbedding);
        }
        let skip_cols: Vec<(&str, &str)> =
            self.engine.config.skip_columns.iter().map(|(t, c)| (t.as_str(), c.as_str())).collect();
        let skip_rels: Vec<&str> =
            self.engine.config.skip_relations.iter().map(String::as_str).collect();
        let problem = RetrofitProblem::build(db, base, &skip_cols, &skip_rels);

        // Warm start: carry over converged vectors by (category label, text).
        let mut warm = problem.w0.clone();
        for (id, cat, text) in problem.catalog.iter() {
            let category = &problem.catalog.categories()[cat as usize];
            if let Some(old_id) = prev.catalog.lookup(&category.table, &category.column, text) {
                warm.set_row(id, prev.embeddings.row(old_id));
            }
        }

        let embeddings = self.solve_from(&problem, warm);
        let convexity = crate::hyper::check_convexity(
            &problem.groups,
            &problem.relation_counts,
            &self.engine.config.params,
            problem.len(),
        );
        self.state =
            Some(RetroOutput { catalog: problem.catalog.clone(), problem, embeddings, convexity });
        Ok(self.state.as_ref().expect("just set"))
    }

    /// Run the configured solver starting from `warm` instead of `W0`,
    /// honouring [`crate::Hyperparameters::threads`] like the cold path.
    fn solve_from(&self, problem: &RetrofitProblem, warm: Matrix) -> Matrix {
        let params = &self.engine.config.params;
        let iters = self.refresh_iterations;
        match self.engine.config.solver {
            Solver::Ro => {
                solve_ro_seeded_parallel(problem, params, iters, Some(&warm), params.threads)
            }
            Solver::Rn => {
                solve_rn_seeded_parallel(problem, params, iters, Some(&warm), params.threads)
            }
            // MF has no anchor/seed separation worth preserving — a short
            // re-run from W0 is its incremental story.
            Solver::Mf => solve_mf(problem, iters),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    fn base() -> EmbeddingSet {
        EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "luc besson".into(),
                "ridley scott".into(),
                "prometheus".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.3], vec![0.3, 0.7], vec![0.1, 0.9]],
        )
    }

    fn db() -> Database {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2);",
        )
        .unwrap();
        db
    }

    #[test]
    fn refresh_without_prior_run_is_a_full_run() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        let out = inc.refresh(&db, &base()).unwrap();
        assert_eq!(out.embeddings.rows(), 4);
    }

    #[test]
    fn refresh_picks_up_new_values() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let out = inc.refresh(&db, &base()).unwrap();
        assert!(out.vector("movies", "title", "prometheus").is_some());
        assert_eq!(out.embeddings.rows(), 5);
    }

    #[test]
    fn refresh_result_close_to_cold_recompute() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let refreshed = inc.refresh(&db, &base()).unwrap().embeddings.clone();
        let cold = Retro::new(RetroConfig::default()).retrofit(&db, &base()).unwrap();
        // Same fixed point: warm refresh must land near the cold solution.
        assert!(refreshed.max_abs_diff(&cold.embeddings) < 0.05);
    }
}
