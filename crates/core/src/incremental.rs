//! Incremental maintenance of retrofitted embeddings.
//!
//! The paper's third listed advantage: "RETRO does not rely on re-training,
//! which allows us to incrementally maintain the word vectors whenever the
//! data in the database changes." Because both solvers are fixed-point
//! iterations, an update after a data change can *warm-start* from the
//! previous solution: unchanged values begin at their converged vectors and
//! only the neighbourhood of the change needs to move, so far fewer
//! iterations reach the same fixed point.

use retro_embed::EmbeddingSet;
use retro_linalg::Matrix;
use retro_store::Database;

use crate::api::{Retro, RetroConfig, RetroError, RetroOutput, Solver};
use crate::problem::RetrofitProblem;
use crate::solver::mf::solve_mf;
use crate::solver::parallel::{solve_rn_seeded_parallel, solve_ro_seeded_parallel};

/// A fully extracted, ready-to-solve refresh: the output of
/// [`IncrementalRetro::prepare_refresh`], consumed by
/// [`IncrementalRetro::complete_refresh`].
///
/// Splitting refresh into *prepare* (needs the `&Database`, cheap) and
/// *complete* (solver iterations, no database access) lets a serving layer
/// hold a database read lock only for extraction and run the solve with the
/// database fully unlocked — see `retro_core::serve`.
#[derive(Clone, Debug)]
pub struct RefreshPlan {
    problem: RetrofitProblem,
    /// Warm-start matrix seeded from the previous converged state; `None`
    /// when the session has no prior state (the plan is a cold full run).
    warm: Option<Matrix>,
}

impl RefreshPlan {
    /// True when this plan warm-starts from a previous converged state
    /// (false → completing it is a cold full run).
    pub fn is_warm(&self) -> bool {
        self.warm.is_some()
    }

    /// Number of text values the refreshed output will cover.
    pub fn len(&self) -> usize {
        self.problem.len()
    }

    /// True when the extracted problem has no text values.
    pub fn is_empty(&self) -> bool {
        self.problem.len() == 0
    }
}

/// A retrofitting session that keeps its last solution for warm starts.
///
/// The converged state is held behind an `Arc` (it is only ever replaced,
/// never mutated in place), so a serving layer can share the latest output
/// with its published snapshot via [`Self::current_shared`] instead of
/// deep-copying a paper-scale embedding matrix per refresh.
#[derive(Clone, Debug)]
pub struct IncrementalRetro {
    engine: Retro,
    /// Iterations used for incremental refreshes (default 5).
    pub refresh_iterations: usize,
    state: Option<std::sync::Arc<RetroOutput>>,
}

impl IncrementalRetro {
    /// Create a session.
    pub fn new(config: RetroConfig) -> Self {
        Self { engine: Retro::new(config), refresh_iterations: 5, state: None }
    }

    /// The current output, if any run has completed.
    pub fn current(&self) -> Option<&RetroOutput> {
        self.state.as_deref()
    }

    /// The current output as a shareable handle, if any run has completed.
    ///
    /// The `Arc` is the session's own state handle: cloning it shares one
    /// allocation between the session (which only reads it for warm-start
    /// seeds) and any number of long-lived consumers.
    pub fn current_shared(&self) -> Option<std::sync::Arc<RetroOutput>> {
        self.state.clone()
    }

    /// Full (cold) run.
    pub fn full_run(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let out = self.engine.retrofit(db, base)?;
        self.state = Some(std::sync::Arc::new(out));
        Ok(self.state.as_deref().expect("just set"))
    }

    /// Incremental refresh after database changes.
    ///
    /// Re-extracts the problem (text values may have been added or removed),
    /// seeds every value that already existed with its previous converged
    /// vector, leaves new values at their `W0` initialization, and runs only
    /// [`Self::refresh_iterations`] solver rounds. Without prior state this
    /// is a cold full run at the engine's configured iteration count.
    ///
    /// All validation happens **before** the session state is touched
    /// ([`Self::prepare_refresh`]), so a failed refresh leaves
    /// [`Self::current`] exactly as it was — the session never silently
    /// loses its warm-start state to an error. (An earlier version `take()`d
    /// the state before validating, so one failed refresh downgraded every
    /// subsequent refresh to a cold run.)
    pub fn refresh(
        &mut self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<&RetroOutput, RetroError> {
        let plan = self.prepare_refresh(db, base)?;
        Ok(self.complete_refresh(plan))
    }

    /// Phase 1 of a refresh: validate, re-extract the problem and gather
    /// warm-start seeds, without mutating the session.
    ///
    /// This is the only fallible part of a refresh and the only part that
    /// needs the database; `&self` guarantees the previous converged state
    /// survives any error. Hand the plan to [`Self::complete_refresh`] —
    /// typically after releasing the database lock a serving layer held for
    /// this call.
    pub fn prepare_refresh(
        &self,
        db: &Database,
        base: &EmbeddingSet,
    ) -> Result<RefreshPlan, RetroError> {
        if base.dim() == 0 {
            return Err(RetroError::EmptyEmbedding);
        }
        let skip_cols: Vec<(&str, &str)> =
            self.engine.config.skip_columns.iter().map(|(t, c)| (t.as_str(), c.as_str())).collect();
        let skip_rels: Vec<&str> =
            self.engine.config.skip_relations.iter().map(String::as_str).collect();
        let problem = RetrofitProblem::build(db, base, &skip_cols, &skip_rels);

        // Warm start: carry over converged vectors by (category label, text).
        let warm = self.state.as_ref().map(|prev| {
            let mut warm = problem.w0.clone();
            for (id, cat, text) in problem.catalog.iter() {
                let category = &problem.catalog.categories()[cat as usize];
                if let Some(old_id) = prev.catalog.lookup(&category.table, &category.column, text) {
                    warm.set_row(id, prev.embeddings.row(old_id));
                }
            }
            warm
        });
        Ok(RefreshPlan { problem, warm })
    }

    /// Phase 2 of a refresh: run the solver on a prepared plan and install
    /// the result as the session's current state. Infallible — every
    /// validation already happened in [`Self::prepare_refresh`].
    pub fn complete_refresh(&mut self, plan: RefreshPlan) -> &RetroOutput {
        let RefreshPlan { problem, warm } = plan;
        let out = match warm {
            Some(warm) => {
                let embeddings = self.solve_from(&problem, warm);
                let convexity = crate::hyper::check_convexity(
                    &problem.groups,
                    &problem.relation_counts,
                    &self.engine.config.params,
                    problem.len(),
                );
                RetroOutput { catalog: problem.catalog.clone(), problem, embeddings, convexity }
            }
            // No previous state: a cold full run at the engine's configured
            // iteration count, exactly like `full_run`.
            None => self.engine.solve(problem),
        };
        self.state = Some(std::sync::Arc::new(out));
        self.state.as_deref().expect("just set")
    }

    /// Run the configured solver starting from `warm` instead of `W0`,
    /// honouring [`crate::Hyperparameters::threads`] like the cold path.
    fn solve_from(&self, problem: &RetrofitProblem, warm: Matrix) -> Matrix {
        let params = &self.engine.config.params;
        let iters = self.refresh_iterations;
        match self.engine.config.solver {
            Solver::Ro => {
                solve_ro_seeded_parallel(problem, params, iters, Some(&warm), params.threads)
            }
            Solver::Rn => {
                solve_rn_seeded_parallel(problem, params, iters, Some(&warm), params.threads)
            }
            // MF has no anchor/seed separation worth preserving — a short
            // re-run from W0 is its incremental story.
            Solver::Mf => solve_mf(problem, iters),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    fn base() -> EmbeddingSet {
        EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "luc besson".into(),
                "ridley scott".into(),
                "prometheus".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.3], vec![0.3, 0.7], vec![0.1, 0.9]],
        )
    }

    fn db() -> Database {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2);",
        )
        .unwrap();
        db
    }

    #[test]
    fn refresh_without_prior_run_is_a_full_run() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        let out = inc.refresh(&db, &base()).unwrap();
        assert_eq!(out.embeddings.rows(), 4);
    }

    #[test]
    fn refresh_picks_up_new_values() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let out = inc.refresh(&db, &base()).unwrap();
        assert!(out.vector("movies", "title", "prometheus").is_some());
        assert_eq!(out.embeddings.rows(), 5);
    }

    #[test]
    fn failed_refresh_preserves_previous_state() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        inc.full_run(&db, &base()).unwrap();
        let before = inc.current().expect("converged").embeddings.clone();

        // A zero-dim base is invalid; the refresh must fail WITHOUT
        // dropping the session's converged state. (The old code took the
        // state before validating, so this error silently downgraded every
        // later refresh to a cold run.)
        let err = inc.refresh(&db, &EmbeddingSet::empty(0)).unwrap_err();
        assert_eq!(err, RetroError::EmptyEmbedding);
        let current = inc.current().expect("state must survive a failed refresh");
        assert_eq!(
            current.embeddings.max_abs_diff(&before),
            0.0,
            "failed refresh must leave the previous output bit-identical"
        );

        // And the next successful refresh is still warm: it carries the
        // previous vectors over rather than re-running cold.
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert!(plan.is_warm(), "state survived, so the next plan must warm-start");
        inc.refresh(&db, &base()).unwrap();
    }

    #[test]
    fn prepare_refresh_does_not_mutate_the_session() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let db = db();
        inc.full_run(&db, &base()).unwrap();
        let before = inc.current().unwrap().embeddings.clone();
        let plan = inc.prepare_refresh(&db, &base()).unwrap();
        assert!(plan.is_warm());
        assert!(!plan.is_empty());
        assert_eq!(inc.current().unwrap().embeddings.max_abs_diff(&before), 0.0);
        // Completing the plan is what installs the new state.
        let out = inc.complete_refresh(plan);
        assert_eq!(out.embeddings.rows(), 4);
    }

    #[test]
    fn split_refresh_matches_one_shot_refresh() {
        let mut db = db();
        let mut one_shot = IncrementalRetro::new(RetroConfig::default());
        one_shot.full_run(&db, &base()).unwrap();
        let mut split = one_shot.clone();

        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let expected = one_shot.refresh(&db, &base()).unwrap().embeddings.clone();
        let plan = split.prepare_refresh(&db, &base()).unwrap();
        let got = split.complete_refresh(plan).embeddings.clone();
        assert_eq!(expected.max_abs_diff(&got), 0.0, "split refresh must be the same refresh");
    }

    #[test]
    fn refresh_result_close_to_cold_recompute() {
        let mut inc = IncrementalRetro::new(RetroConfig::default());
        let mut db = db();
        inc.full_run(&db, &base()).unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let refreshed = inc.refresh(&db, &base()).unwrap().embeddings.clone();
        let cold = Retro::new(RetroConfig::default()).retrofit(&db, &base()).unwrap();
        // Same fixed point: warm refresh must land near the cold solution.
        assert!(refreshed.max_abs_diff(&cold.embeddings) < 0.05);
    }
}
