//! A multi-database serving engine: SQL and vector search behind one door.
//!
//! [`Engine`] owns any number of named database + [`EmbeddingService`]
//! pairs and hands out generation-pinned [`Session`]s whose SQL queries
//! and `NEAREST` calls all read **one coherent snapshot**: the store a
//! session's SQL scans is the exact database state the session's
//! embedding snapshot was extracted from, frozen at publish time via
//! [`EmbeddingService::refresh_observed`]. Concurrent writers never shift
//! the ground under an open session.
//!
//! Inside a session's SQL, `NEAREST(...)` is a table function (see
//! `retro_store::sql`): `SELECT m.title, n.score FROM NEAREST('alien', 10)
//! n JOIN movies m ON m.title = n.token` plans, joins and projects like
//! any relation, and its rows are pinned bit-identical to
//! [`Snapshot::nearest_token`] under the session's [`SearchMode`]
//! (exact by default; [`Session::set_search_mode`] turns the approximate
//! probe knob).
//!
//! Every entry point — sessions, writes, ingest — passes a bounded
//! admission gate (a concurrency limit plus a bounded wait queue with a
//! deadline). When the engine is saturated the gate sheds load with a
//! typed [`EngineError::Overloaded`] instead of queueing unboundedly; shed
//! and admitted counts are exposed for harnesses and dashboards.
//!
//! See the [`guide`] module (rendered from `docs/ENGINE.md`) for a worked
//! tour: sessions, generations, the `NEAREST` grammar, and shedding.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use parking_lot::RwLock;
use retro_embed::EmbeddingSet;
use retro_store::sql::{
    self, Literal, PlanMode, QueryResult, TableFunctionProvider, VirtualRelation,
};
use retro_store::{csv, ColumnDef, DataType, Database, SharedDatabase, StoreError, Value};

use crate::api::{RetroConfig, RetroError};
use crate::serve::{EmbeddingService, SearchMode, Snapshot};

/// The engine guide, rendered from `docs/ENGINE.md` so its code examples
/// compile and run as doctests.
#[doc = include_str!("../../../docs/ENGINE.md")]
pub mod guide {}

// ---------------------------------------------------------------------------
// Errors.
// ---------------------------------------------------------------------------

/// Why the admission gate refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Overloaded {
    /// The engine was at its concurrency limit and the wait queue was
    /// already full; the request was shed immediately.
    QueueFull {
        /// Requests already waiting when this one arrived.
        queued: usize,
        /// The configured queue bound.
        max_queue: usize,
    },
    /// The request queued but no slot freed up before its deadline.
    Deadline {
        /// How long the request waited before giving up.
        waited: Duration,
    },
}

/// Typed engine errors.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The admission gate shed this request; retry later or back off.
    Overloaded(Overloaded),
    /// No database registered under this name.
    UnknownDatabase(String),
    /// An embedding-pipeline error (extraction, solve, recovery).
    Retro(RetroError),
    /// A storage or SQL error.
    Store(StoreError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Overloaded(Overloaded::QueueFull { queued, max_queue }) => {
                write!(f, "overloaded: admission queue full ({queued}/{max_queue} waiting)")
            }
            EngineError::Overloaded(Overloaded::Deadline { waited }) => {
                write!(f, "overloaded: no slot within {waited:?}")
            }
            EngineError::UnknownDatabase(name) => write!(f, "unknown database `{name}`"),
            EngineError::Retro(err) => write!(f, "{err}"),
            EngineError::Store(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RetroError> for EngineError {
    fn from(err: RetroError) -> Self {
        EngineError::Retro(err)
    }
}

impl From<StoreError> for EngineError {
    fn from(err: StoreError) -> Self {
        EngineError::Store(err)
    }
}

// ---------------------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------------------

/// Bounds on concurrent engine work; see [`Engine`].
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// How many requests may hold a permit at once (min 1).
    pub max_concurrent: usize,
    /// How many more may wait for a permit; a request arriving beyond
    /// this is shed immediately with [`Overloaded::QueueFull`].
    pub max_queue: usize,
    /// How long a queued request waits before it is shed with
    /// [`Overloaded::Deadline`].
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self { max_concurrent: 64, max_queue: 64, queue_timeout: Duration::from_millis(100) }
    }
}

#[derive(Debug, Default)]
struct GateState {
    active: usize,
    queued: usize,
}

/// The admission gate: a counting semaphore with a bounded, deadlined
/// wait queue. Shedding is deterministic — with `max_concurrent = c` and
/// `max_queue = q`, request `c + q + 1` of any instant is refused.
#[derive(Debug)]
struct Gate {
    config: AdmissionConfig,
    state: Mutex<GateState>,
    available: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
}

impl Gate {
    fn new(config: AdmissionConfig) -> Arc<Self> {
        Arc::new(Self {
            config,
            state: Mutex::new(GateState::default()),
            available: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        // The gate holds its lock for counter arithmetic only, so a
        // poisoned mutex means a panic inside *this module*, not user code.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn admit(self: &Arc<Self>) -> Result<Permit, Overloaded> {
        let limit = self.config.max_concurrent.max(1);
        let mut state = self.lock();
        if state.active < limit {
            state.active += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { gate: Arc::clone(self) });
        }
        if state.queued >= self.config.max_queue {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Overloaded::QueueFull {
                queued: state.queued,
                max_queue: self.config.max_queue,
            });
        }
        state.queued += 1;
        let start = Instant::now();
        let deadline = start + self.config.queue_timeout;
        loop {
            if state.active < limit {
                state.queued -= 1;
                state.active += 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { gate: Arc::clone(self) });
            }
            let now = Instant::now();
            if now >= deadline {
                state.queued -= 1;
                self.shed.fetch_add(1, Ordering::Relaxed);
                return Err(Overloaded::Deadline { waited: now - start });
            }
            let (guard, _) = self
                .available
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state = guard;
        }
    }

    fn release(&self) {
        let mut state = self.lock();
        state.active = state.active.saturating_sub(1);
        drop(state);
        self.available.notify_one();
    }
}

/// RAII admission permit: holding it occupies one of the engine's
/// concurrency slots; dropping it frees the slot and wakes one waiter.
#[derive(Debug)]
struct Permit {
    gate: Arc<Gate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

// ---------------------------------------------------------------------------
// Generations and sessions.
// ---------------------------------------------------------------------------

/// One published generation, frozen whole: the embedding [`Snapshot`]
/// plus a clone of the exact database state it was extracted from (both
/// captured under one read guard via
/// [`EmbeddingService::refresh_observed`], so their write versions agree
/// by construction).
#[derive(Debug)]
pub struct PinnedGeneration {
    snapshot: Arc<Snapshot>,
    store: Arc<Database>,
}

impl PinnedGeneration {
    /// The embedding snapshot of this generation.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// The frozen database state of this generation.
    pub fn store(&self) -> &Database {
        &self.store
    }
}

/// A generation-pinned read handle.
///
/// Everything a session answers — SQL over the frozen store, `NEAREST`
/// table functions inside that SQL, direct [`Session::nearest_token`]
/// calls — comes from **one** [`PinnedGeneration`], so a query joining
/// vector ranks against relational rows can never see half of a
/// concurrent write. The pinned generation stays alive for as long as any
/// session holds it, even after the engine's bounded generation cache
/// evicts it. A session also holds an admission permit for its whole
/// lifetime; drop sessions promptly under load.
#[derive(Debug)]
pub struct Session {
    pinned: Arc<PinnedGeneration>,
    mode: SearchMode,
    _permit: Permit,
}

impl Session {
    /// The generation this session is pinned to.
    pub fn generation(&self) -> u64 {
        self.pinned.snapshot.generation()
    }

    /// The database write version this session's whole view reflects —
    /// the snapshot's stamp and the frozen store's counter agree by
    /// construction.
    pub fn write_version(&self) -> u64 {
        self.pinned.snapshot.write_version()
    }

    /// The pinned embedding snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        self.pinned.snapshot()
    }

    /// The pinned (frozen) database state.
    pub fn store(&self) -> &Database {
        self.pinned.store()
    }

    /// Choose how `NEAREST` scans: [`SearchMode::Exact`] (the default —
    /// the full-scan oracle) or [`SearchMode::Approx`] with a probe
    /// count (sub-linear; probing every list reproduces the exact
    /// ranking bit for bit).
    pub fn set_search_mode(&mut self, mode: SearchMode) {
        self.mode = mode;
    }

    /// Run one read-only SQL statement (`SELECT` or `EXPLAIN`) against
    /// the pinned generation, with `NEAREST(...)` available as a table
    /// function. Cost-based planning; results are bit-identical to
    /// [`Session::query_with`] under [`PlanMode::ForceScan`].
    pub fn query(&self, sql_text: &str) -> Result<QueryResult, EngineError> {
        self.query_with(sql_text, PlanMode::Planned)
    }

    /// [`Session::query`] under an explicit [`PlanMode`] — the forced-scan
    /// mode is the planner's correctness oracle.
    pub fn query_with(&self, sql_text: &str, mode: PlanMode) -> Result<QueryResult, EngineError> {
        let stmt = sql::parse_statement(sql_text).map_err(EngineError::Store)?;
        let provider = SnapshotFunctions { snapshot: &self.pinned.snapshot, mode: self.mode };
        sql::query_provided(&self.pinned.store, &stmt, mode, Some(&provider))
            .map_err(EngineError::Store)
    }

    /// [`Snapshot::nearest_token`] on the pinned generation under the
    /// session's search mode. The `NEAREST` table function returns
    /// exactly these pairs (ids and scores bit-identical), one row per
    /// neighbour in rank order.
    pub fn nearest_token(
        &self,
        table: &str,
        column: &str,
        text: &str,
        k: usize,
    ) -> Option<Vec<(usize, f32)>> {
        self.pinned.snapshot.nearest_token(table, column, text, k, self.mode)
    }
}

// ---------------------------------------------------------------------------
// NEAREST as a table function.
// ---------------------------------------------------------------------------

/// [`TableFunctionProvider`] backed by one embedding snapshot.
///
/// `NEAREST('text', k)` resolves `text` across all categories (first
/// match in ascending category-id order — deterministic because category
/// ids follow the store's deterministic table iteration);
/// `NEAREST('table', 'column', 'text', k)` names the category exactly.
/// Either form yields columns `id INTEGER, token TEXT, score FLOAT` with
/// one row per neighbour in rank order (nearest first), pinned
/// bit-identical to [`Snapshot::nearest_token`]: `id` is the neighbour's
/// catalog value id and `score` its cosine score widened exactly from
/// `f32`.
struct SnapshotFunctions<'a> {
    snapshot: &'a Snapshot,
    mode: SearchMode,
}

impl SnapshotFunctions<'_> {
    /// Resolve the NEAREST argument forms to `(table, column, text, k)`.
    fn parse_args<'b>(
        &self,
        args: &'b [Literal],
    ) -> Result<(String, String, &'b str, i64), StoreError> {
        let catalog = &self.snapshot.output().catalog;
        match args {
            [Literal::Str(text), Literal::Int(k)] => {
                let category = catalog
                    .categories()
                    .iter()
                    .find(|c| catalog.lookup(&c.table, &c.column, text).is_some())
                    .ok_or_else(|| {
                        StoreError::Sql(format!(
                            "NEAREST: text value '{text}' not found in any column"
                        ))
                    })?;
                Ok((category.table.clone(), category.column.clone(), text, *k))
            }
            [Literal::Str(table), Literal::Str(column), Literal::Str(text), Literal::Int(k)] => {
                Ok((table.clone(), column.clone(), text, *k))
            }
            _ => Err(StoreError::Sql(
                "NEAREST takes ('text', k) or ('table', 'column', 'text', k)".into(),
            )),
        }
    }
}

impl TableFunctionProvider for SnapshotFunctions<'_> {
    fn eval(&self, name: &str, args: &[Literal]) -> Result<VirtualRelation, StoreError> {
        if !name.eq_ignore_ascii_case("NEAREST") {
            return Err(StoreError::Sql(format!("unknown table function `{name}`")));
        }
        let (table, column, text, k) = self.parse_args(args)?;
        if k < 0 {
            return Err(StoreError::Sql(format!("NEAREST: k must be non-negative, got {k}")));
        }
        let neighbours = self
            .snapshot
            .nearest_token(&table, &column, text, k as usize, self.mode)
            .ok_or_else(|| {
                StoreError::Sql(format!(
                    "NEAREST: text value '{text}' not found in {table}.{column}"
                ))
            })?;
        let catalog = &self.snapshot.output().catalog;
        let label = if args.len() == 2 {
            format!("NEAREST('{text}', {k})")
        } else {
            format!("NEAREST('{table}', '{column}', '{text}', {k})")
        };
        Ok(VirtualRelation {
            label,
            columns: vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("token", DataType::Text),
                ColumnDef::new("score", DataType::Float),
            ],
            rows: neighbours
                .into_iter()
                .map(|(id, score)| {
                    vec![
                        Value::Int(id as i64),
                        Value::Text(catalog.text(id).to_owned()),
                        // f32 → f64 is exact, so SQL-surface scores stay
                        // bit-identical to `Snapshot::nearest_token`.
                        Value::Float(f64::from(score)),
                    ]
                })
                .collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// Engine-wide configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Admission bounds shared by every entry point.
    pub admission: AdmissionConfig,
    /// How many published generations the engine itself keeps alive per
    /// database (min 1). Sessions extend a generation's life past
    /// eviction — the cache bounds the *engine's* footprint, never a
    /// reader's view.
    pub generation_cache: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { admission: AdmissionConfig::default(), generation_cache: 4 }
    }
}

/// One registered database: its serving service plus the bounded cache
/// of recent pinned generations (newest last).
struct EngineDb {
    service: Arc<EmbeddingService>,
    generations: Mutex<VecDeque<Arc<PinnedGeneration>>>,
}

impl EngineDb {
    fn latest(&self) -> Arc<PinnedGeneration> {
        let generations =
            self.generations.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(generations.back().expect("a registered database always has a generation"))
    }
}

/// A multi-database serving engine; see the [module docs](self) and the
/// [`guide`].
pub struct Engine {
    config: EngineConfig,
    gate: Arc<Gate>,
    dbs: RwLock<BTreeMap<String, Arc<EngineDb>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("databases", &self.database_names())
            .field("admitted", &self.admitted_count())
            .field("shed", &self.shed_count())
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// An engine with the given bounds and no databases yet.
    pub fn new(config: EngineConfig) -> Self {
        Self { config, gate: Gate::new(config.admission), dbs: RwLock::new(BTreeMap::new()) }
    }

    /// [`Engine::new`] with [`EngineConfig::default`].
    pub fn with_defaults() -> Self {
        Self::new(EngineConfig::default())
    }

    /// Register a database under `name`: run the initial retrofit
    /// ([`EmbeddingService::start`]), freeze generation 1, and start
    /// serving sessions. Re-registering a name replaces the previous
    /// database (open sessions on it keep their pinned generations).
    pub fn register(
        &self,
        name: &str,
        db: SharedDatabase,
        base: EmbeddingSet,
        config: RetroConfig,
    ) -> Result<(), EngineError> {
        let service = EmbeddingService::start(db, base, config)?;
        self.register_service(name, service)
    }

    /// Register a database recovered from a persisted serving snapshot
    /// ([`EmbeddingService::recover`]). Writes that landed after the
    /// snapshot was saved are folded in with one observed refresh, so the
    /// first session already reads a coherent generation.
    pub fn register_recovered(
        &self,
        name: &str,
        db: SharedDatabase,
        base: EmbeddingSet,
        config: RetroConfig,
        snapshot_path: &std::path::Path,
    ) -> Result<(), EngineError> {
        let service = EmbeddingService::recover(db, base, config, snapshot_path)?;
        self.register_service(name, service)
    }

    /// Register an already-running [`EmbeddingService`] under `name`.
    pub fn register_service(
        &self,
        name: &str,
        service: Arc<EmbeddingService>,
    ) -> Result<(), EngineError> {
        let pinned = Self::aligned_generation(&service)?;
        let mut generations = VecDeque::with_capacity(self.config.generation_cache.max(1));
        generations.push_back(pinned);
        let edb = Arc::new(EngineDb { service, generations: Mutex::new(generations) });
        self.dbs.write().insert(name.to_owned(), edb);
        Ok(())
    }

    /// A [`PinnedGeneration`] whose store clone matches the service's
    /// published snapshot exactly. When the fast path sees a write that
    /// landed since publish, one observed refresh re-aligns: the clone is
    /// taken under the same read guard as the extraction.
    fn aligned_generation(
        service: &Arc<EmbeddingService>,
    ) -> Result<Arc<PinnedGeneration>, RetroError> {
        let snapshot = service.snapshot();
        let store = service.database().read().clone();
        if store.write_version() == snapshot.write_version() {
            return Ok(Arc::new(PinnedGeneration { snapshot, store: Arc::new(store) }));
        }
        let (snapshot, store) = service.refresh_observed(Database::clone)?;
        Ok(Arc::new(PinnedGeneration { snapshot, store: Arc::new(store) }))
    }

    fn db(&self, name: &str) -> Result<Arc<EngineDb>, EngineError> {
        self.dbs
            .read()
            .get(name)
            .map(Arc::clone)
            .ok_or_else(|| EngineError::UnknownDatabase(name.to_owned()))
    }

    /// Names of the registered databases, sorted.
    pub fn database_names(&self) -> Vec<String> {
        self.dbs.read().keys().cloned().collect()
    }

    /// The serving service behind `name` — the escape hatch for
    /// service-level operations (snapshot persistence, background
    /// refresh workers, session tuning).
    pub fn service(&self, name: &str) -> Result<Arc<EmbeddingService>, EngineError> {
        Ok(Arc::clone(&self.db(name)?.service))
    }

    /// Open a generation-pinned [`Session`] on the newest published
    /// generation of `name`. Passes the admission gate: under saturation
    /// this returns [`EngineError::Overloaded`] instead of blocking
    /// past the configured deadline.
    pub fn session(&self, name: &str) -> Result<Session, EngineError> {
        let permit = self.gate.admit().map_err(EngineError::Overloaded)?;
        let pinned = self.db(name)?.latest();
        Ok(Session { pinned, mode: SearchMode::Exact, _permit: permit })
    }

    /// Execute one SQL statement against the **live** database behind
    /// `name` — the write path (DDL/DML; reads belong in sessions, which
    /// is also where `NEAREST` is available). Passes the admission gate.
    /// The write makes published generations stale; call
    /// [`Engine::refresh`] (or run a service-level refresh worker) to
    /// publish a new one.
    pub fn execute(&self, name: &str, sql_text: &str) -> Result<QueryResult, EngineError> {
        let _permit = self.gate.admit().map_err(EngineError::Overloaded)?;
        let edb = self.db(name)?;
        let stmt = sql::parse_statement(sql_text).map_err(EngineError::Store)?;
        edb.service
            .database()
            .with_write(|db| sql::execute_provided(db, &stmt, PlanMode::Planned, None))
            .map_err(EngineError::Store)
    }

    /// Stream a headered CSV file into `table` of the live database
    /// behind `name`, in bounded memory
    /// ([`retro_store::csv::import_csv_reader`]); the import is atomic.
    /// Returns the number of inserted rows. Passes the admission gate.
    pub fn ingest_csv_file(
        &self,
        name: &str,
        table: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<usize, EngineError> {
        let _permit = self.gate.admit().map_err(EngineError::Overloaded)?;
        let edb = self.db(name)?;
        let path = path.as_ref();
        let file = std::fs::File::open(path).map_err(|err| {
            EngineError::Store(StoreError::Io(format!("opening {}: {err}", path.display())))
        })?;
        let reader = std::io::BufReader::new(file);
        edb.service
            .database()
            .with_write(|db| csv::import_csv_reader(db, table, reader))
            .map_err(EngineError::Store)
    }

    /// Publish a new generation of `name`: refresh the embedding service
    /// (delta-scoped when possible) while freezing a matching store clone
    /// under the same read guard, then add the pair to the generation
    /// cache (evicting the oldest beyond the configured bound — sessions
    /// holding an evicted generation keep it alive). Returns the new
    /// generation number.
    pub fn refresh(&self, name: &str) -> Result<u64, EngineError> {
        let edb = self.db(name)?;
        let (snapshot, store) = edb.service.refresh_observed(Database::clone)?;
        let generation = snapshot.generation();
        let pinned = Arc::new(PinnedGeneration { snapshot, store: Arc::new(store) });
        let mut generations =
            edb.generations.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        generations.push_back(pinned);
        while generations.len() > self.config.generation_cache.max(1) {
            generations.pop_front();
        }
        Ok(generation)
    }

    /// [`Engine::refresh`], but only when the live database has been
    /// written since the newest pinned generation.
    pub fn refresh_if_stale(&self, name: &str) -> Result<Option<u64>, EngineError> {
        let edb = self.db(name)?;
        let stale = edb.latest().snapshot.write_version() != edb.service.database().write_version();
        if stale {
            self.refresh(name).map(Some)
        } else {
            Ok(None)
        }
    }

    /// Generation numbers currently held by the engine's cache for
    /// `name`, oldest first (sessions may keep older ones alive).
    pub fn pinned_generations(&self, name: &str) -> Result<Vec<u64>, EngineError> {
        let edb = self.db(name)?;
        let generations = edb.generations.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(generations.iter().map(|p| p.snapshot.generation()).collect())
    }

    /// Requests admitted through the gate since construction.
    pub fn admitted_count(&self) -> u64 {
        self.gate.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed by the gate (queue full or deadline) since
    /// construction.
    pub fn shed_count(&self) -> u64 {
        self.gate.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql::run_script;

    fn base() -> EmbeddingSet {
        EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "luc besson".into(),
                "ridley scott".into(),
                "prometheus".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.3], vec![0.3, 0.7], vec![0.1, 0.9]],
        )
    }

    fn shared() -> SharedDatabase {
        let mut db = Database::new();
        run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2);",
        )
        .unwrap();
        SharedDatabase::new(db)
    }

    fn engine() -> Engine {
        let engine = Engine::with_defaults();
        engine.register("tmdb", shared(), base(), RetroConfig::default()).unwrap();
        engine
    }

    #[test]
    fn sessions_read_sql_and_nearest_from_one_generation() {
        let engine = engine();
        let session = engine.session("tmdb").unwrap();
        assert_eq!(session.generation(), 1);
        assert_eq!(session.write_version(), session.store().write_version());

        let rows = session.query("SELECT title FROM movies ORDER BY title").unwrap();
        let titles: Vec<_> = rows.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(titles, vec!["alien", "valerian"]);

        // NEAREST inside SQL matches the direct snapshot call bit for bit.
        let sql_rows = session
            .query("SELECT id, token, score FROM NEAREST('movies', 'title', 'alien', 3) n")
            .unwrap();
        let direct = session.nearest_token("movies", "title", "alien", 3).unwrap();
        assert_eq!(sql_rows.rows.len(), direct.len());
        for (row, (id, score)) in sql_rows.rows.iter().zip(&direct) {
            assert_eq!(row[0], Value::Int(*id as i64));
            assert_eq!(row[2], Value::Float(f64::from(*score)));
        }

        // The 2-argument form resolves the text across categories.
        let short = session.query("SELECT id, score FROM NEAREST('alien', 3) n").unwrap();
        assert_eq!(short.rows.len(), direct.len());

        // NEAREST joins like a relation (rank order preserved, planner or
        // forced scan alike).
        let sql_text = "SELECT m.title, n.score FROM NEAREST('alien', 3) n \
                        JOIN movies m ON m.title = n.token";
        let planned = session.query(sql_text).unwrap();
        let scanned = session.query_with(sql_text, PlanMode::ForceScan).unwrap();
        assert_eq!(planned.rows, scanned.rows);
        assert!(!planned.rows.is_empty());
    }

    #[test]
    fn unknown_names_and_functions_are_typed_errors() {
        let engine = engine();
        assert!(matches!(
            engine.session("nope").unwrap_err(),
            EngineError::UnknownDatabase(name) if name == "nope"
        ));
        let session = engine.session("tmdb").unwrap();
        let err = session.query("SELECT * FROM FROBNICATE(1) f").unwrap_err();
        assert!(
            matches!(err, EngineError::Store(StoreError::Sql(msg)) if msg.contains("FROBNICATE"))
        );
        let err = session.query("SELECT * FROM NEAREST('no such token', 3) n").unwrap_err();
        assert!(
            matches!(err, EngineError::Store(StoreError::Sql(msg)) if msg.contains("not found"))
        );
        let err = session.query("SELECT * FROM NEAREST(1, 2, 3) n").unwrap_err();
        assert!(matches!(err, EngineError::Store(StoreError::Sql(_))));
    }

    #[test]
    fn writes_do_not_move_open_sessions() {
        let engine = engine();
        let session = engine.session("tmdb").unwrap();
        engine.execute("tmdb", "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        // The open session still reads the world it pinned...
        let count = session.query("SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(2));
        // ...while a refresh publishes the write for new sessions.
        let generation = engine.refresh("tmdb").unwrap();
        assert_eq!(generation, 2);
        let fresh = engine.session("tmdb").unwrap();
        let count = fresh.query("SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(3));
        assert!(fresh.query("SELECT id FROM NEAREST('prometheus', 2) n").unwrap().rows.len() > 0);
    }

    #[test]
    fn generation_cache_is_bounded_but_sessions_extend_life() {
        let config = EngineConfig { generation_cache: 2, ..EngineConfig::default() };
        let engine = Engine::new(config);
        engine.register("tmdb", shared(), base(), RetroConfig::default()).unwrap();
        let old = engine.session("tmdb").unwrap();
        for k in 0..3 {
            engine
                .execute("tmdb", &format!("INSERT INTO persons VALUES ({}, 'p{k}')", 10 + k))
                .unwrap();
            engine.refresh("tmdb").unwrap();
        }
        // Generation 1 was evicted from the cache...
        assert_eq!(engine.pinned_generations("tmdb").unwrap(), vec![3, 4]);
        // ...but the open session still serves it, data intact.
        assert_eq!(old.generation(), 1);
        let count = old.query("SELECT COUNT(*) FROM persons").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(2));
    }

    #[test]
    fn admission_sheds_deterministically() {
        let config = EngineConfig {
            admission: AdmissionConfig {
                max_concurrent: 1,
                max_queue: 0,
                queue_timeout: Duration::from_millis(1),
            },
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        engine.register("tmdb", shared(), base(), RetroConfig::default()).unwrap();
        let held = engine.session("tmdb").unwrap();
        let err = engine.session("tmdb").unwrap_err();
        assert_eq!(err, EngineError::Overloaded(Overloaded::QueueFull { queued: 0, max_queue: 0 }));
        assert_eq!(engine.shed_count(), 1);
        drop(held);
        // The freed slot admits again.
        let _ok = engine.session("tmdb").unwrap();
        assert_eq!(engine.admitted_count(), 2, "two admissions, one shed");
    }

    #[test]
    fn queue_deadline_sheds_when_no_slot_frees() {
        let config = EngineConfig {
            admission: AdmissionConfig {
                max_concurrent: 1,
                max_queue: 4,
                queue_timeout: Duration::from_millis(5),
            },
            ..EngineConfig::default()
        };
        let engine = Engine::new(config);
        engine.register("tmdb", shared(), base(), RetroConfig::default()).unwrap();
        let _held = engine.session("tmdb").unwrap();
        let err = engine.session("tmdb").unwrap_err();
        assert!(matches!(err, EngineError::Overloaded(Overloaded::Deadline { .. })));
    }

    #[test]
    fn ingest_csv_file_streams_into_the_live_database() {
        let engine = engine();
        let path =
            std::env::temp_dir().join(format!("retro_engine_ingest_{}.csv", std::process::id()));
        std::fs::write(&path, "id,name\n7,stanley kubrick\n8,denis villeneuve\n").unwrap();
        let n = engine.ingest_csv_file("tmdb", "persons", &path).unwrap();
        assert_eq!(n, 2);
        engine.refresh_if_stale("tmdb").unwrap().unwrap();
        let session = engine.session("tmdb").unwrap();
        let count = session.query("SELECT COUNT(*) FROM persons").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(4));
        // A second call with nothing new published is a no-op.
        assert_eq!(engine.refresh_if_stale("tmdb").unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sessions_are_read_only() {
        let engine = engine();
        let session = engine.session("tmdb").unwrap();
        let err = session.query("INSERT INTO persons VALUES (9, 'x')").unwrap_err();
        assert!(matches!(err, EngineError::Store(StoreError::Sql(_))));
        // Writes go through the engine instead.
        engine.execute("tmdb", "INSERT INTO persons VALUES (9, 'x')").unwrap();
    }
}
