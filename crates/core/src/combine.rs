//! Embedding combination (§4.6): the paper concatenates retrofitted and
//! DeepWalk node embeddings ("RO+DW", "RN+DW"), after testing several
//! combination methods.

use retro_linalg::Matrix;

/// Concatenate two embedding matrices row-wise: `[a | b]`.
///
/// Each side is L2-normalized per row first so neither embedding dominates
/// the concatenation by scale — the evaluation networks normalize their
/// inputs anyway (§5.5) and normalizing per side preserves both signals.
pub fn concat_normalized(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "concat_normalized: row count mismatch");
    let mut an = a.clone();
    let mut bn = b.clone();
    an.normalize_rows();
    bn.normalize_rows();
    an.hconcat(&bn)
}

/// Plain concatenation without normalization (for ablation).
pub fn concat_raw(a: &Matrix, b: &Matrix) -> Matrix {
    a.hconcat(b)
}

/// Row-wise weighted average of two equal-dimension embeddings — the main
/// alternative combination method considered in the literature (\[14\] in the
/// paper); exposed for the combination ablation bench.
pub fn average(a: &Matrix, b: &Matrix, weight_a: f32) -> Matrix {
    assert_eq!(a.shape(), b.shape(), "average: shape mismatch");
    let mut out = a.clone();
    out.scale(weight_a);
    out.axpy(1.0 - weight_a, b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_linalg::vector;

    #[test]
    fn concat_widths_add() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]);
        let c = concat_normalized(&a, &b);
        assert_eq!(c.shape(), (1, 5));
    }

    #[test]
    fn concat_normalizes_each_side() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]); // norm 5
        let b = Matrix::from_rows(&[vec![0.0, 10.0]]); // norm 10
        let c = concat_normalized(&a, &b);
        assert!((vector::norm(&c.row(0)[..2]) - 1.0).abs() < 1e-6);
        assert!((vector::norm(&c.row(0)[2..]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn raw_concat_preserves_values() {
        let a = Matrix::from_rows(&[vec![3.0]]);
        let b = Matrix::from_rows(&[vec![7.0]]);
        assert_eq!(concat_raw(&a, &b).row(0), &[3.0, 7.0]);
    }

    #[test]
    fn average_interpolates() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let b = Matrix::from_rows(&[vec![0.0, 1.0]]);
        let m = average(&a, &b, 0.25);
        assert!(vector::approx_eq(m.row(0), &[0.25, 0.75], 1e-6));
    }
}
