//! Concurrent embedding serving over a [`SharedDatabase`].
//!
//! [`EmbeddingService`] closes the loop the paper's incremental-maintenance
//! story opens: retrofitted vectors stay queryable — lock-free, from many
//! threads — while the database underneath keeps changing. Each converged
//! [`RetroOutput`] is published as a generation-numbered immutable
//! [`Snapshot`] behind one atomically swapped `Arc`; refreshes re-extract
//! under a brief database read guard, solve with the database unlocked, and
//! swap the pointer. Readers never take the solver's lock and never wait on
//! a refresh.
//!
//! See the [`guide`] module (rendered from `docs/SERVING.md`) for the
//! snapshot lifecycle, generation semantics, the staleness model and a
//! worked example.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use retro_embed::{nn, EmbeddingSet};
use retro_linalg::vector;
use retro_nn::ann::{IvfConfig, IvfIndex};
use retro_store::{Database, SharedDatabase};

pub use retro_nn::ann::SearchMode;

use crate::api::{RetroConfig, RetroError, RetroOutput};
use crate::incremental::{IncrementalRetro, RefreshKind, RefreshPlan};

/// The serving guide, rendered from `docs/SERVING.md` so its code examples
/// compile and run as doctests.
#[doc = include_str!("../../../docs/SERVING.md")]
pub mod guide {}

/// One immutable, generation-numbered converged output.
///
/// A snapshot owns everything a query needs — catalog, embeddings,
/// precomputed row L2 norms, and an IVF-flat ANN index — so
/// [`Snapshot::nearest`] touches no lock at all: readers holding an
/// `Arc<Snapshot>` are isolated from refreshes, writers, and each other.
/// Snapshots are created complete and never mutated, which is what makes
/// the service's pointer swap atomic: every observer sees a whole
/// generation or the previous whole generation.
///
/// Queries pick their scan with a [`SearchMode`]: [`SearchMode::Exact`] is
/// the full `O(n)` oracle scan, [`SearchMode::Approx`] probes the
/// snapshot's [`IvfIndex`] — sub-linear, with the exact path kept in-tree
/// as the recall oracle (`tests/ann_recall.rs` gates recall@10 ≥ 0.95).
#[derive(Clone, Debug)]
pub struct Snapshot {
    generation: u64,
    write_version: u64,
    threads: usize,
    norms: Vec<f32>,
    /// The ANN index over `output.embeddings`. Built off the read path (at
    /// publish, under the session lock); delta refreshes patch it against
    /// frozen centroids instead of rebuilding, no-change refreshes reuse
    /// the previous generation's `Arc`.
    index: Arc<IvfIndex>,
    /// Shared with the session's own warm-start state (the session only
    /// ever *replaces* its state, so publishing is one refcount bump, not
    /// a deep copy of a paper-scale matrix).
    output: Arc<RetroOutput>,
}

impl Snapshot {
    fn new(generation: u64, write_version: u64, threads: usize, output: Arc<RetroOutput>) -> Self {
        let norms = output.embeddings.row_norms();
        let index = Arc::new(IvfIndex::build(
            &output.embeddings,
            &norms,
            IvfConfig::auto(output.embeddings.rows()),
            threads,
        ));
        Self { generation, write_version, threads, norms, index, output }
    }

    /// The snapshot's generation number (1 for the initial full run,
    /// strictly increasing with every published refresh).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The database write version this snapshot reflects
    /// ([`retro_store::Database::write_version`]).
    pub fn write_version(&self) -> u64 {
        self.write_version
    }

    /// The converged output backing this snapshot.
    pub fn output(&self) -> &RetroOutput {
        &self.output
    }

    /// Number of text values served.
    pub fn len(&self) -> usize {
        self.output.catalog.len()
    }

    /// True when the snapshot serves no text values.
    pub fn is_empty(&self) -> bool {
        self.output.catalog.is_empty()
    }

    /// The cached row L2 norms (id order).
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// The learned vector for `table.column = text`, if the value exists in
    /// this generation.
    pub fn vector(&self, table: &str, column: &str, text: &str) -> Option<&[f32]> {
        self.output.vector(table, column, text)
    }

    /// The snapshot's ANN index (IVF-flat over the embedding rows).
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    /// The default probe count for [`SearchMode::Approx`] on this snapshot
    /// (an eighth of the inverted lists, at least one).
    pub fn default_probes(&self) -> usize {
        self.index.default_probes()
    }

    /// Cosine top-`k` over all values for an arbitrary query vector.
    ///
    /// [`SearchMode::Exact`] runs one chunked dot-product scan
    /// (row-partitioned across the configured thread count) against the
    /// precomputed norms, then the shared bounded-heap selection:
    /// deterministic, `NaN`-free, and bit-identical for every thread count.
    /// [`SearchMode::Approx`] probes the snapshot's [`IvfIndex`] instead —
    /// the candidate scoring is the *same* kernel and the same sanitize
    /// rules, so probing every list reproduces the exact ranking bit for
    /// bit, and lower probe counts trade recall for speed only through the
    /// candidate set.
    pub fn nearest(&self, query: &[f32], k: usize, mode: SearchMode) -> Vec<(usize, f32)> {
        match mode {
            SearchMode::Exact => nn::top_k_cosine(
                &self.output.embeddings,
                &self.norms,
                query,
                k,
                self.threads,
                |_| false,
            ),
            SearchMode::Approx { probes } => self.index.search(query, k, probes),
        }
    }

    /// Cosine top-`k` neighbours of the stored value `table.column = text`,
    /// excluding the value itself. `None` when the value does not exist in
    /// this generation. The `mode` picks the scan exactly as in
    /// [`Snapshot::nearest`].
    pub fn nearest_token(
        &self,
        table: &str,
        column: &str,
        text: &str,
        k: usize,
        mode: SearchMode,
    ) -> Option<Vec<(usize, f32)>> {
        let id = self.output.catalog.lookup(table, column, text)?;
        let query = self.output.embeddings.row(id);
        Some(match mode {
            SearchMode::Exact => nn::top_k_cosine(
                &self.output.embeddings,
                &self.norms,
                query,
                k,
                self.threads,
                |i| i == id,
            ),
            SearchMode::Approx { probes } => {
                self.index.search_filtered(query, k, probes, |i| i == id)
            }
        })
    }
}

/// A serving handle: one [`SharedDatabase`], one retrofitting session, one
/// atomically swapped current [`Snapshot`].
///
/// * **Readers** call [`EmbeddingService::snapshot`] (an `Arc` clone behind
///   a momentary pointer lock) or the [`nearest`](EmbeddingService::nearest)
///   conveniences; they are never blocked by writers or an in-flight
///   refresh.
/// * **Writers** mutate the database through
///   [`EmbeddingService::database`]; every mutating store operation bumps
///   the database's write version, which
///   [`EmbeddingService::out_of_date`] compares against the published
///   snapshot.
/// * **Refreshes** ([`EmbeddingService::refresh`], or a background
///   [`RefreshWorker`]) are serialized on an internal session lock that no
///   read path ever touches.
pub struct EmbeddingService {
    db: SharedDatabase,
    base: EmbeddingSet,
    threads: usize,
    /// The incremental session. Refreshes take the write side; nothing
    /// else touches it — readers are served from `snapshot`.
    session: RwLock<IncrementalRetro>,
    /// The published snapshot. Held for pointer-sized critical sections
    /// only: an `Arc` clone on read, an `Arc` store on publish. The
    /// snapshot itself carries the generation number, so the published
    /// generation and the published data can never disagree.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Refreshes published since start (the initial generation is not
    /// counted). The interesting property is what this does NOT count:
    /// however many writes land while one refresh is in flight, they are
    /// all caught by at most one follow-up refresh, so this grows with
    /// *refreshes*, not with *writes*.
    refreshes: AtomicU64,
}

impl std::fmt::Debug for EmbeddingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingService")
            .field("generation", &self.generation())
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl EmbeddingService {
    /// Run the initial full retrofit and start serving it as generation 1.
    ///
    /// Extraction holds a database read guard; the solve itself runs with
    /// the database unlocked. `config.params.threads` doubles as the
    /// snapshot query-scan width.
    pub fn start(
        db: SharedDatabase,
        base: EmbeddingSet,
        config: RetroConfig,
    ) -> Result<Arc<Self>, RetroError> {
        let threads = config.params.threads;
        let mut session = IncrementalRetro::new(config);
        let (plan, write_version) = {
            let guard = db.read();
            (session.prepare_refresh(&guard, &base)?, guard.write_version())
        };
        session.complete_refresh(plan);
        let output = session.current_shared().expect("just completed");
        let snapshot = Arc::new(Snapshot::new(1, write_version, threads, output));
        Ok(Arc::new(Self {
            db,
            base,
            threads,
            session: RwLock::new(session),
            snapshot: RwLock::new(snapshot),
            refreshes: AtomicU64::new(0),
        }))
    }

    /// The shared database this service serves from (hand it to writers).
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The base embedding fixed at construction.
    pub fn base(&self) -> &EmbeddingSet {
        &self.base
    }

    /// The currently published snapshot.
    ///
    /// The returned `Arc` pins its generation for as long as the caller
    /// holds it — a concurrent refresh publishes a *new* snapshot and never
    /// touches this one.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read())
    }

    /// The generation of the currently published snapshot.
    ///
    /// Read from the snapshot itself, so this can never run ahead of (or
    /// disagree with) what [`EmbeddingService::snapshot`] returns.
    pub fn generation(&self) -> u64 {
        self.snapshot.read().generation()
    }

    /// True when the database has been written since the published snapshot
    /// was extracted (one integer compare against
    /// [`retro_store::Database::write_version`]).
    pub fn out_of_date(&self) -> bool {
        self.snapshot().write_version() != self.db.write_version()
    }

    /// [`Snapshot::nearest`] on the current snapshot.
    pub fn nearest(&self, query: &[f32], k: usize, mode: SearchMode) -> Vec<(usize, f32)> {
        self.snapshot().nearest(query, k, mode)
    }

    /// [`Snapshot::nearest_token`] on the current snapshot.
    pub fn nearest_token(
        &self,
        table: &str,
        column: &str,
        text: &str,
        k: usize,
        mode: SearchMode,
    ) -> Option<Vec<(usize, f32)>> {
        self.snapshot().nearest_token(table, column, text, k, mode)
    }

    /// Incremental refresh: re-extract under a brief database read guard,
    /// solve with the database unlocked, publish atomically. Returns the
    /// new snapshot's generation.
    ///
    /// The refresh is **delta scoped** whenever the change log allows it
    /// (see [`crate::IncrementalRetro::prepare_refresh`]): a small append
    /// re-solves only the affected rows, and a no-op change set republishes
    /// the same output — same `Arc`, cached norms — restamped with the new
    /// generation and write version, so the staleness check still clears.
    /// [`EmbeddingService::last_refresh`] reports which path ran.
    ///
    /// Refreshes are serialized on the session lock; readers are untouched
    /// throughout. On error nothing is published and the session keeps its
    /// warm-start state — the last good snapshot keeps serving.
    pub fn refresh(&self) -> Result<u64, RetroError> {
        self.refresh_observed(|_| ()).map(|(snapshot, ())| snapshot.generation())
    }

    /// [`EmbeddingService::refresh`], but running `observe` under the
    /// *same database read guard* as the extraction and returning the
    /// published snapshot together with the observation.
    ///
    /// That shared guard is the whole point: whatever `observe` reads —
    /// a [`Database::clone`], a row count, a write version — describes
    /// exactly the database state the snapshot reflects; no write can
    /// slip between the extraction and the observation. The multi-database
    /// [`crate::engine::Engine`] uses this to freeze a store clone per
    /// published generation, which is what lets a
    /// [`crate::engine::Session`] answer SQL and `NEAREST` from one
    /// coherent state.
    pub fn refresh_observed<T>(
        &self,
        observe: impl FnOnce(&Database) -> T,
    ) -> Result<(Arc<Snapshot>, T), RetroError> {
        self.refresh_with(|session, db, base| session.prepare_refresh(db, base), observe)
    }

    /// [`EmbeddingService::refresh`], but always re-extracting and
    /// re-solving the whole problem (the delta dispatch is skipped). Use it
    /// to re-converge exactly — e.g. before an evaluation — at full cost.
    pub fn refresh_full(&self) -> Result<u64, RetroError> {
        self.refresh_with(|session, db, base| session.prepare_refresh_full(db, base), |_| ())
            .map(|(snapshot, ())| snapshot.generation())
    }

    /// Adjust the inner session's tuning knobs (refresh iteration count,
    /// delta dirty-set budget) under the session lock. Takes effect on the
    /// next refresh; concurrent refreshes are serialized against it.
    pub fn tune_session(&self, tune: impl FnOnce(&mut IncrementalRetro)) {
        tune(&mut self.session.write());
    }

    fn refresh_with<T>(
        &self,
        prepare: impl FnOnce(
            &IncrementalRetro,
            &Database,
            &EmbeddingSet,
        ) -> Result<RefreshPlan, RetroError>,
        observe: impl FnOnce(&Database) -> T,
    ) -> Result<(Arc<Snapshot>, T), RetroError> {
        let mut session = self.session.write();
        let (plan, write_version, observed) = {
            let guard = self.db.read();
            // The version is read (and `observe` runs) under the same guard
            // as the extraction, so the stamp can never claim writes the
            // problem didn't see and the observation describes exactly the
            // extracted state.
            let plan = prepare(&session, &guard, &self.base)?;
            (plan, guard.write_version(), observe(&guard))
        };
        let dirty = plan.dirty_rows().map(<[u32]>::to_vec);
        session.complete_refresh(plan);
        let output = session.current_shared().expect("just completed");

        // Publish under the session lock: swap order equals solve order,
        // which is what makes generations monotone for every observer,
        // and the generation number lives inside the swapped snapshot, so
        // it can never be observed ahead of the data it numbers.
        let old = Arc::clone(&self.snapshot.read());
        let generation = old.generation() + 1;
        let snapshot = if Arc::ptr_eq(&output, &old.output) {
            // No-change refresh: the session kept its output allocation, so
            // reuse the published norms and the ANN index too — the
            // republish is O(n), not O(n·D).
            Arc::new(Snapshot {
                generation,
                write_version,
                threads: self.threads,
                norms: old.norms.clone(),
                index: Arc::clone(&old.index),
                output,
            })
        } else if let Some(dirty) = dirty.filter(|_| old.norms.len() <= output.embeddings.rows()) {
            // Delta refresh: only the dirty rows moved and new rows were
            // appended (the previous snapshot is always the plan's prior
            // state — both live under the session lock). Patch the cached
            // norms instead of renormalizing the whole matrix, and patch
            // the ANN index against its frozen centroids instead of
            // retraining — `O(Δ)` either way. Centroids retrain on the
            // next full refresh (tests/ann_serving.rs pins the patched
            // index structurally identical to a fresh assignment).
            let mut norms = Vec::with_capacity(output.embeddings.rows());
            norms.extend_from_slice(&old.norms);
            norms.resize(output.embeddings.rows(), 0.0);
            for &r in &dirty {
                norms[r as usize] = vector::norm(output.embeddings.row(r as usize));
            }
            let index = Arc::new(old.index.refreshed(&output.embeddings, &norms, &dirty));
            Arc::new(Snapshot {
                generation,
                write_version,
                threads: self.threads,
                norms,
                index,
                output,
            })
        } else {
            Arc::new(Snapshot::new(generation, write_version, self.threads, output))
        };
        *self.snapshot.write() = Arc::clone(&snapshot);
        self.refreshes.fetch_add(1, Ordering::Relaxed);
        Ok((snapshot, observed))
    }

    /// Persist the currently published snapshot to `path` — one
    /// checksummed file (written to a temp sibling and atomically renamed)
    /// holding the generation number, the database write version it
    /// reflects, the catalog and relation groups of the solved problem,
    /// and the converged embedding matrix bit for bit.
    ///
    /// [`EmbeddingService::recover`] reads it back after a restart. The
    /// snapshot captures one *published generation*, so the natural time
    /// to call this is right after a refresh — typically alongside
    /// [`retro_store::Database::checkpoint`] on the store side.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<(), RetroError> {
        let snap = self.snapshot();
        let bytes = crate::persist::encode(
            snap.generation(),
            snap.write_version(),
            &snap.output.catalog,
            &snap.output.problem.groups,
            &snap.output.embeddings,
        );
        let io =
            |err: std::io::Error| RetroError::Persist(format!("writing {}: {err}", path.display()));
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent).map_err(io)?;
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &bytes).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Restart serving from a snapshot file written by
    /// [`EmbeddingService::save_snapshot`] — the warm-start counterpart of
    /// [`EmbeddingService::start`].
    ///
    /// The persisted generation is republished as-is: same generation
    /// number, bit-identical embeddings (so rankings match the pre-crash
    /// service exactly), and an incremental session anchored at the
    /// snapshot's database write version. Writes that landed *after* the
    /// snapshot are not lost — [`EmbeddingService::out_of_date`] reports
    /// them and the next refresh catches up, delta-scoped when the store's
    /// change log allows it.
    ///
    /// `base` must be the same base embedding the snapshot was solved
    /// against (the derived problem parts are recomputed from it); a
    /// dimension mismatch is a typed [`RetroError::Persist`].
    pub fn recover(
        db: SharedDatabase,
        base: EmbeddingSet,
        config: RetroConfig,
        path: &std::path::Path,
    ) -> Result<Arc<Self>, RetroError> {
        if base.dim() == 0 {
            return Err(RetroError::EmptyEmbedding);
        }
        let bytes = std::fs::read(path)
            .map_err(|err| RetroError::Persist(format!("reading {}: {err}", path.display())))?;
        let persisted = crate::persist::decode(&bytes)?;
        if persisted.embeddings.cols() != base.dim() {
            return Err(RetroError::Persist(format!(
                "snapshot dimension {} does not match base embedding dimension {}",
                persisted.embeddings.cols(),
                base.dim()
            )));
        }

        // Replay the catalog through the public construction path in id
        // order — `add_category`/`intern` assign dense ids sequentially,
        // so the recovered ids are exactly the persisted ones.
        let mut catalog = crate::TextValueCatalog::default();
        for (table, column) in &persisted.categories {
            catalog.add_category(table, column);
        }
        for (id, (category, text)) in persisted.values.iter().enumerate() {
            let got = catalog.intern(*category, text);
            if got as usize != id {
                return Err(RetroError::Persist(format!(
                    "duplicate text value '{text}' (id {id} resolved to {got})"
                )));
            }
        }

        let problem = crate::RetrofitProblem::from_parts(catalog, persisted.groups, &base);
        if problem.len() != persisted.embeddings.rows() {
            return Err(RetroError::Persist(format!(
                "snapshot holds {} embedding rows for {} values",
                persisted.embeddings.rows(),
                problem.len()
            )));
        }
        let convexity = crate::hyper::check_convexity(
            &problem.groups,
            &problem.relation_counts,
            &config.params,
            problem.len(),
        );
        let output = Arc::new(RetroOutput {
            catalog: problem.catalog.clone(),
            problem,
            embeddings: persisted.embeddings,
            convexity,
        });

        let threads = config.params.threads;
        let mut session = IncrementalRetro::new(config);
        session.restore(Arc::clone(&output), persisted.write_version);
        let snapshot =
            Arc::new(Snapshot::new(persisted.generation, persisted.write_version, threads, output));
        Ok(Arc::new(Self {
            db,
            base,
            threads,
            session: RwLock::new(session),
            snapshot: RwLock::new(snapshot),
            refreshes: AtomicU64::new(0),
        }))
    }

    /// Which path the most recent solve took — [`RefreshKind::Full`] right
    /// after start (the initial run is a full run), then whatever the last
    /// refresh dispatched to.
    pub fn last_refresh(&self) -> Option<RefreshKind> {
        self.session.read().last_refresh()
    }

    /// Number of refreshes published since start (the initial generation
    /// does not count). Grows with refreshes, not writes: all writes
    /// landing during one in-flight refresh coalesce into at most one
    /// follow-up.
    pub fn refreshes_published(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// [`EmbeddingService::refresh`], but only if [`EmbeddingService::out_of_date`];
    /// returns the new generation when a refresh was published.
    pub fn refresh_if_stale(&self) -> Result<Option<u64>, RetroError> {
        if self.out_of_date() {
            self.refresh().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Start a background thread that watches the database write version
    /// every `poll` and publishes a refresh whenever it moved.
    ///
    /// The worker stops — joining its thread — when the returned
    /// [`RefreshWorker`] is dropped or explicitly
    /// [`stop`](RefreshWorker::stop)ped.
    pub fn spawn_refresher(self: &Arc<Self>, poll: Duration) -> RefreshWorker {
        let service = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Acquire) {
                // `start` validated the base, and the base never changes,
                // so a refresh here cannot fail; if it ever does, the last
                // good snapshot keeps serving and we retry next tick.
                let _ = service.refresh_if_stale();
                std::thread::park_timeout(poll);
            }
        });
        RefreshWorker { stop, handle: Some(handle) }
    }
}

/// Handle to a background refresh thread (see
/// [`EmbeddingService::spawn_refresher`]). Dropping it stops and joins the
/// thread.
#[derive(Debug)]
pub struct RefreshWorker {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RefreshWorker {
    /// Stop the worker and join its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}

impl Drop for RefreshWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::{sql, Database};

    fn base() -> EmbeddingSet {
        EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "luc besson".into(),
                "ridley scott".into(),
                "prometheus".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.3], vec![0.3, 0.7], vec![0.1, 0.9]],
        )
    }

    fn shared() -> SharedDatabase {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2);",
        )
        .unwrap();
        SharedDatabase::new(db)
    }

    fn insert_prometheus(shared: &SharedDatabase) {
        shared
            .with_write(|db| {
                sql::run(db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").map(|_| ())
            })
            .unwrap();
    }

    #[test]
    fn start_publishes_generation_one() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        let snap = service.snapshot();
        assert_eq!(snap.generation(), 1);
        assert_eq!(service.generation(), 1);
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.norms().len(), 4);
        assert!(!service.out_of_date());
    }

    #[test]
    fn start_rejects_empty_base() {
        let err = EmbeddingService::start(shared(), EmbeddingSet::empty(0), RetroConfig::default())
            .unwrap_err();
        assert_eq!(err, RetroError::EmptyEmbedding);
    }

    #[test]
    fn writes_make_the_snapshot_stale_and_refresh_clears_it() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        assert_eq!(service.refresh_if_stale().unwrap(), None, "fresh service must not refresh");

        insert_prometheus(service.database());
        assert!(service.out_of_date());
        let generation = service.refresh().unwrap();
        assert_eq!(generation, 2);
        assert!(!service.out_of_date());
        assert!(service.snapshot().vector("movies", "title", "prometheus").is_some());
    }

    #[test]
    fn old_snapshots_keep_serving_their_generation() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        let old = service.snapshot();
        insert_prometheus(service.database());
        service.refresh().unwrap();
        assert_eq!(old.generation(), 1);
        assert_eq!(old.len(), 4);
        assert!(old.vector("movies", "title", "prometheus").is_none());
        assert_eq!(service.snapshot().generation(), 2);
        assert_eq!(service.snapshot().len(), 5);
    }

    #[test]
    fn nearest_token_excludes_the_query_value() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        let snap = service.snapshot();
        let id = snap.output().catalog.lookup("movies", "title", "valerian").unwrap();
        let nn = snap.nearest_token("movies", "title", "valerian", 3, SearchMode::Exact).unwrap();
        assert_eq!(nn.len(), 3);
        assert!(nn.iter().all(|&(i, _)| i != id));
        assert!(snap.nearest_token("movies", "title", "missing", 3, SearchMode::Exact).is_none());
        // Service-level conveniences mirror the snapshot.
        assert_eq!(
            service.nearest_token("movies", "title", "valerian", 3, SearchMode::Exact).unwrap(),
            nn
        );
        assert_eq!(
            service.nearest(snap.output().embeddings.row(id), 2, SearchMode::Exact).len(),
            2
        );
    }

    #[test]
    fn approx_full_probe_matches_the_exact_oracle() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        let snap = service.snapshot();
        let all = SearchMode::Approx { probes: snap.index().nlist() };
        let id = snap.output().catalog.lookup("movies", "title", "valerian").unwrap();
        let query = snap.output().embeddings.row(id).to_vec();
        assert_eq!(snap.nearest(&query, 3, all), snap.nearest(&query, 3, SearchMode::Exact));
        assert_eq!(
            snap.nearest_token("movies", "title", "valerian", 3, all),
            snap.nearest_token("movies", "title", "valerian", 3, SearchMode::Exact),
        );
        assert!(snap.default_probes() >= 1);
    }

    #[test]
    fn delta_refresh_patches_the_index_coherently() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        service.tune_session(|s| s.delta_max_dirty_fraction = 1.0);
        insert_prometheus(service.database());
        service.refresh().unwrap();
        assert_eq!(service.last_refresh(), Some(RefreshKind::Delta));
        let snap = service.snapshot();
        // The patched index covers every row and agrees with a fresh
        // assignment against the same (frozen) centroids.
        assert_eq!(snap.index().len(), snap.len());
        let fresh = IvfIndex::with_centroids(
            &snap.output().embeddings,
            snap.norms(),
            snap.index().centroids().clone(),
            *snap.index().config(),
            1,
        );
        assert_eq!(snap.index().assignments(), fresh.assignments());
    }

    #[test]
    fn background_worker_picks_up_writes() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        let worker = service.spawn_refresher(Duration::from_millis(1));
        insert_prometheus(service.database());
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while service.snapshot().vector("movies", "title", "prometheus").is_none() {
            assert!(std::time::Instant::now() < deadline, "worker never refreshed");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(service.generation() >= 2);
        worker.stop();
        // After stop() the worker no longer reacts to writes.
        let generation = service.generation();
        insert_prometheus_again(service.database());
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(service.generation(), generation);
        assert!(service.out_of_date());
    }

    fn insert_prometheus_again(shared: &SharedDatabase) {
        shared
            .with_write(|db| {
                sql::run(db, "INSERT INTO movies VALUES (4, 'covenant', 2)").map(|_| ())
            })
            .unwrap();
    }

    #[test]
    fn single_insert_refresh_takes_the_delta_path() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        // The toy graph's two-ring dirty set is most of the catalog; this
        // test is about the dispatch, not the budget.
        service.tune_session(|s| s.delta_max_dirty_fraction = 1.0);
        assert_eq!(service.last_refresh(), Some(RefreshKind::Full));
        insert_prometheus(service.database());
        service.refresh().unwrap();
        assert_eq!(service.last_refresh(), Some(RefreshKind::Delta));
        let snap = service.snapshot();
        assert!(snap.vector("movies", "title", "prometheus").is_some());
        // The delta publish patches the cached norms (frozen rows reuse
        // the old entries) — they must still equal a full renormalize.
        let exact = snap.output().embeddings.row_norms();
        assert_eq!(snap.norms(), exact.as_slice());
        // The explicit full path remains available as the exact reference.
        service.refresh_full().unwrap();
        assert_eq!(service.last_refresh(), Some(RefreshKind::Full));
    }

    #[test]
    fn no_change_refresh_republishes_the_same_output() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        let before = service.snapshot();
        // Numeric-only write: staleness triggers, but nothing can move.
        service
            .database()
            .with_write(|db| {
                sql::run(db, "CREATE TABLE stats (id INTEGER PRIMARY KEY, n FLOAT)").map(|_| ())
            })
            .unwrap();
        assert!(service.out_of_date());
        // A new table IS a graph change (Full), so use a numeric update
        // instead: add the rows first, republish, then update in place.
        service.refresh().unwrap();
        let settled = service.snapshot();
        service
            .database()
            .with_write(|db| {
                sql::run(db, "INSERT INTO stats VALUES (1, 1.0)").map(|_| ())?;
                db.update_rows("stats", &[(0, 1, retro_store::Value::Float(2.0))]).map(|_| ())
            })
            .unwrap();
        assert!(service.out_of_date());
        let generation = service.refresh().unwrap();
        assert_eq!(service.last_refresh(), Some(RefreshKind::NoChange));
        assert!(!service.out_of_date(), "a no-change refresh must still clear staleness");
        let after = service.snapshot();
        assert_eq!(after.generation(), generation);
        assert!(
            Arc::ptr_eq(&after.output, &settled.output),
            "no-change republish must reuse the output allocation"
        );
        drop(before);
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("retro_serve_persist_{}_{tag}.bin", std::process::id()))
    }

    #[test]
    fn save_and_recover_republishes_the_same_generation() {
        let path = temp_path("round_trip");
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        insert_prometheus(service.database());
        service.refresh().unwrap();
        service.save_snapshot(&path).unwrap();
        let before = service.snapshot();

        let recovered = EmbeddingService::recover(
            service.database().clone(),
            base(),
            RetroConfig::default(),
            &path,
        )
        .unwrap();
        let after = recovered.snapshot();
        assert_eq!(after.generation(), before.generation());
        assert_eq!(after.write_version(), before.write_version());
        assert_eq!(after.len(), before.len());
        assert_eq!(
            after.output().embeddings.max_abs_diff(&before.output().embeddings),
            0.0,
            "recovered embeddings must be bit-identical"
        );
        assert!(!recovered.out_of_date(), "nothing was written since the snapshot");
        assert_eq!(recovered.last_refresh(), None, "no solve ran in this process yet");

        // The recovered session is a live one: a later write refreshes
        // normally and bumps the persisted generation number.
        insert_prometheus_again(recovered.database());
        assert!(recovered.out_of_date());
        let generation = recovered.refresh().unwrap();
        assert_eq!(generation, before.generation() + 1);
        assert!(recovered.snapshot().vector("movies", "title", "covenant").is_some());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_rejects_mismatched_base_and_damage() {
        let path = temp_path("faults");
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        service.save_snapshot(&path).unwrap();

        // A base with the wrong dimensionality must be refused.
        let skinny = EmbeddingSet::new(vec!["alien".into()], vec![vec![1.0, 0.0, 0.0]]);
        let err = EmbeddingService::recover(
            service.database().clone(),
            skinny,
            RetroConfig::default(),
            &path,
        )
        .unwrap_err();
        assert!(matches!(err, RetroError::Persist(_)), "got {err:?}");

        // A flipped body byte must be caught by the checksum.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = EmbeddingService::recover(
            service.database().clone(),
            base(),
            RetroConfig::default(),
            &path,
        )
        .unwrap_err();
        assert_eq!(err, RetroError::Persist("checksum mismatch".into()));

        // A missing file is a typed error, not a panic.
        std::fs::remove_file(&path).unwrap();
        let err = EmbeddingService::recover(
            service.database().clone(),
            base(),
            RetroConfig::default(),
            &path,
        )
        .unwrap_err();
        assert!(matches!(err, RetroError::Persist(_)));
    }

    #[test]
    fn refreshes_published_counts_refreshes_not_writes() {
        let service = EmbeddingService::start(shared(), base(), RetroConfig::default()).unwrap();
        assert_eq!(service.refreshes_published(), 0);
        insert_prometheus(service.database());
        insert_prometheus_again(service.database());
        service.refresh_if_stale().unwrap();
        assert_eq!(service.refreshes_published(), 1, "two writes, one refresh");
        assert_eq!(service.refresh_if_stale().unwrap(), None);
        assert_eq!(service.refreshes_published(), 1);
    }
}
