//! The one-call RETRO API: configure, point at a database and a base
//! embedding, receive vectors for every text value.

use retro_embed::EmbeddingSet;
use retro_linalg::Matrix;
use retro_store::Database;

use crate::catalog::TextValueCatalog;
use crate::hyper::{check_convexity, Hyperparameters, ParamCheck};
use crate::problem::RetrofitProblem;
use crate::solver::{solve_mf, solve_rn_parallel, solve_ro_parallel};

/// Which retrofitting algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Solver {
    /// Relational retrofitting via the Ψ optimization (Eq. 8/10).
    Ro,
    /// Relational retrofitting via the normalized series (Eq. 9/11) — the
    /// fast default.
    Rn,
    /// The Faruqui et al. baseline (Eq. 3).
    Mf,
}

/// Configuration for a retrofitting run.
#[derive(Clone, Debug)]
pub struct RetroConfig {
    /// Algorithm (default: [`Solver::Rn`]).
    pub solver: Solver,
    /// Global hyperparameters (default: the paper's RN setting α=1, β=0,
    /// γ=3, δ=1).
    pub params: Hyperparameters,
    /// Solver iterations (default 10, the §5.2 training setting; MF always
    /// uses 20 per the paper).
    pub iterations: usize,
    /// Text columns to ignore (`(table, column)`), e.g. ablated label
    /// columns.
    pub skip_columns: Vec<(String, String)>,
    /// Relation groups to drop, matched by name substring.
    pub skip_relations: Vec<String>,
}

impl Default for RetroConfig {
    fn default() -> Self {
        Self {
            solver: Solver::Rn,
            params: Hyperparameters::paper_rn(),
            iterations: 10,
            skip_columns: Vec::new(),
            skip_relations: Vec::new(),
        }
    }
}

impl RetroConfig {
    /// Select the solver (RO defaults its hyperparameters to the paper's RO
    /// setting when the current parameters are still the RN default; a
    /// previously chosen thread count is preserved).
    pub fn with_solver(mut self, solver: Solver) -> Self {
        if solver == Solver::Ro
            && (Hyperparameters { threads: 1, ..self.params }) == Hyperparameters::paper_rn()
        {
            self.params = Hyperparameters::paper_ro().with_threads(self.params.threads);
        }
        self.solver = solver;
        self
    }

    /// Override the hyperparameters.
    pub fn with_params(mut self, params: Hyperparameters) -> Self {
        self.params = params;
        self
    }

    /// Override the iteration count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Ignore a text column.
    pub fn skip_column(mut self, table: &str, column: &str) -> Self {
        self.skip_columns.push((table.to_owned(), column.to_owned()));
        self
    }

    /// Drop relation groups whose name contains `substring`.
    pub fn skip_relation(mut self, substring: &str) -> Self {
        self.skip_relations.push(substring.to_owned());
        self
    }

    /// The skip lists as borrowed slices, in the shape the extraction
    /// functions take.
    pub(crate) fn skip_refs(&self) -> (Vec<(&str, &str)>, Vec<&str>) {
        (
            self.skip_columns.iter().map(|(t, c)| (t.as_str(), c.as_str())).collect(),
            self.skip_relations.iter().map(String::as_str).collect(),
        )
    }
}

/// Errors surfaced by the high-level API.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RetroError {
    /// The base embedding has zero dimensions.
    EmptyEmbedding,
    /// Persisting or recovering a published generation failed — an I/O
    /// error, a corrupt snapshot file, or a snapshot that does not match
    /// the supplied base embedding. The message is kept as a string so the
    /// error stays `Clone + PartialEq + Eq`.
    Persist(String),
}

impl std::fmt::Display for RetroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RetroError::EmptyEmbedding => write!(f, "base embedding has dimension 0"),
            RetroError::Persist(msg) => write!(f, "embedding persistence error: {msg}"),
        }
    }
}
impl std::error::Error for RetroError {}

/// The result of a retrofitting run.
#[derive(Clone, Debug)]
pub struct RetroOutput {
    /// The extracted text values (ids index `embeddings` rows). Shares one
    /// allocation with `problem.catalog` — cloning the handle is free.
    pub catalog: std::sync::Arc<TextValueCatalog>,
    /// The assembled problem (relation groups, `W0`, centroids) — reusable
    /// for loss evaluation, graph generation and incremental updates.
    pub problem: RetrofitProblem,
    /// The learned embeddings, one row per text value.
    pub embeddings: Matrix,
    /// The Eq. 7/24 convexity diagnosis for the used parameters (only
    /// meaningful for the RO solver).
    pub convexity: ParamCheck,
}

impl RetroOutput {
    /// The learned vector for `table.column = text`, if the value exists.
    pub fn vector(&self, table: &str, column: &str, text: &str) -> Option<&[f32]> {
        self.catalog.lookup(table, column, text).map(|id| self.embeddings.row(id))
    }

    /// Cosine-similarity top-`k` neighbours of a value among all values.
    ///
    /// Runs the shared [`retro_embed::nn::top_k_cosine`] bounded-heap
    /// selection: deterministic ranking (descending score, ties by
    /// ascending id) with zero-norm/`NaN` rows scoring `0.0` instead of
    /// comparing nondeterministically. Repeated queries are better served
    /// by [`crate::serve::Snapshot`], which caches the row norms this
    /// method recomputes per call.
    pub fn nearest(&self, id: usize, k: usize) -> Vec<(usize, f32)> {
        let norms = self.embeddings.row_norms();
        retro_embed::nn::top_k_cosine(
            &self.embeddings,
            &norms,
            self.embeddings.row(id),
            k,
            1,
            |i| i == id,
        )
    }
}

/// The RETRO engine.
#[derive(Clone, Debug, Default)]
pub struct Retro {
    /// Run configuration.
    pub config: RetroConfig,
}

impl Retro {
    /// Create an engine with the given configuration.
    pub fn new(config: RetroConfig) -> Self {
        Self { config }
    }

    /// Extract, assemble and solve: the §2 end-to-end pipeline.
    pub fn retrofit(&self, db: &Database, base: &EmbeddingSet) -> Result<RetroOutput, RetroError> {
        if base.dim() == 0 {
            return Err(RetroError::EmptyEmbedding);
        }
        let (skip_cols, skip_rels) = self.config.skip_refs();
        let problem = RetrofitProblem::build(db, base, &skip_cols, &skip_rels);
        Ok(self.solve(problem))
    }

    /// Solve an already-assembled problem (used by incremental updates and
    /// the toy examples).
    ///
    /// RO and RN honour [`Hyperparameters::threads`]; both parallel paths
    /// are bit-identical to their sequential counterparts, so the thread
    /// count never changes the output, only the wall time.
    pub fn solve(&self, problem: RetrofitProblem) -> RetroOutput {
        let params = &self.config.params;
        let embeddings = match self.config.solver {
            Solver::Ro => {
                solve_ro_parallel(&problem, params, self.config.iterations, params.threads)
            }
            Solver::Rn => {
                solve_rn_parallel(&problem, params, self.config.iterations, params.threads)
            }
            // The paper runs MF with 20 iterations and its own standard
            // parameters regardless of the RETRO configuration.
            Solver::Mf => solve_mf(&problem, 20),
        };
        let convexity = check_convexity(
            &problem.groups,
            &problem.relation_counts,
            &self.config.params,
            problem.len(),
        );
        RetroOutput { catalog: problem.catalog.clone(), problem, embeddings, convexity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    fn setup() -> (Database, EmbeddingSet) {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2),
                                       (3, 'fifth element', 1);",
        )
        .unwrap();
        let base = EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "fifth element".into(),
                "luc besson".into(),
                "ridley scott".into(),
            ],
            vec![
                vec![1.0, 0.0, 0.0],
                vec![0.0, 1.0, 0.0],
                vec![0.0, 0.0, 1.0],
                vec![0.5, 0.0, 0.5],
                vec![0.0, 0.5, 0.5],
            ],
        );
        (db, base)
    }

    #[test]
    fn end_to_end_rn() {
        let (db, base) = setup();
        let out = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap();
        assert_eq!(out.embeddings.rows(), 5);
        assert_eq!(out.embeddings.cols(), 3);
        assert!(out.vector("movies", "title", "alien").is_some());
        assert!(out.vector("movies", "title", "predator").is_none());
    }

    #[test]
    fn solver_selection_changes_output() {
        let (db, base) = setup();
        let rn = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap();
        let ro = Retro::new(RetroConfig::default().with_solver(Solver::Ro))
            .retrofit(&db, &base)
            .unwrap();
        let mf = Retro::new(RetroConfig::default().with_solver(Solver::Mf))
            .retrofit(&db, &base)
            .unwrap();
        assert!(rn.embeddings.max_abs_diff(&ro.embeddings) > 1e-4);
        assert!(rn.embeddings.max_abs_diff(&mf.embeddings) > 1e-4);
    }

    #[test]
    fn ro_solver_defaults_to_paper_ro_params() {
        let config = RetroConfig::default().with_solver(Solver::Ro);
        assert_eq!(config.params, Hyperparameters::paper_ro());
    }

    #[test]
    fn with_solver_preserves_chosen_thread_count() {
        let config = RetroConfig::default()
            .with_params(Hyperparameters::paper_rn().with_threads(8))
            .with_solver(Solver::Ro);
        assert_eq!(config.params, Hyperparameters::paper_ro().with_threads(8));
    }

    // The end-to-end invariance of the thread knob (identical output for
    // any `threads` value, both solvers) is pinned by the root integration
    // suite `tests/solver_determinism.rs`.

    #[test]
    fn relations_shape_the_neighbourhood() {
        let (db, base) = setup();
        let out = Retro::new(
            RetroConfig::default().with_params(Hyperparameters::new(1.0, 0.0, 3.0, 1.0)),
        )
        .retrofit(&db, &base)
        .unwrap();
        // valerian and fifth element share a director → should be mutual
        // near neighbours among titles.
        let valerian = out.catalog.lookup("movies", "title", "valerian").unwrap();
        let fifth = out.catalog.lookup("movies", "title", "fifth element").unwrap();
        let alien = out.catalog.lookup("movies", "title", "alien").unwrap();
        let sim = |a: usize, b: usize| {
            retro_linalg::vector::cosine(out.embeddings.row(a), out.embeddings.row(b))
        };
        assert!(sim(valerian, fifth) > sim(valerian, alien));
    }

    #[test]
    fn skip_column_removes_values() {
        let (db, base) = setup();
        let out = Retro::new(RetroConfig::default().skip_column("persons", "name"))
            .retrofit(&db, &base)
            .unwrap();
        assert!(out.vector("persons", "name", "luc besson").is_none());
        assert_eq!(out.embeddings.rows(), 3);
    }

    #[test]
    fn skip_relation_keeps_values_but_drops_edges() {
        let (db, base) = setup();
        let out = Retro::new(RetroConfig::default().skip_relation("persons.name"))
            .retrofit(&db, &base)
            .unwrap();
        assert!(out.vector("persons", "name", "luc besson").is_some());
        assert!(out.problem.groups.is_empty());
    }

    #[test]
    fn empty_embedding_rejected() {
        let (db, _) = setup();
        let base = EmbeddingSet::empty(0);
        let err = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap_err();
        assert_eq!(err, RetroError::EmptyEmbedding);
    }

    #[test]
    fn nearest_returns_sorted_neighbours() {
        let (db, base) = setup();
        let out = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap();
        let id = out.catalog.lookup("movies", "title", "valerian").unwrap();
        let nn = out.nearest(id, 3);
        assert_eq!(nn.len(), 3);
        assert!(nn[0].1 >= nn[1].1 && nn[1].1 >= nn[2].1);
        assert!(nn.iter().all(|&(i, _)| i != id));
    }

    #[test]
    fn nearest_ranks_zero_norm_rows_last_deterministically() {
        let (db, base) = setup();
        let mut out = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap();
        // Isolated values with no in-vocabulary token keep a zero vector;
        // force one to pin the ranking contract: score exactly 0.0 (the
        // cosine zero-norm convention), never the top hit, never NaN —
        // and the whole ranking deterministic under the helper's explicit
        // total order.
        let zeroed = out.catalog.lookup("movies", "title", "alien").unwrap();
        let dim = out.embeddings.cols();
        out.embeddings.set_row(zeroed, &vec![0.0; dim]);
        let query = out.catalog.lookup("movies", "title", "valerian").unwrap();
        let nn = out.nearest(query, out.catalog.len());
        let zero_entry = nn.iter().find(|&&(i, _)| i == zeroed).expect("listed");
        assert_eq!(zero_entry.1, 0.0, "zero-norm rows must score exactly 0.0");
        assert_ne!(nn[0].0, zeroed, "a zero-norm row must never be the top neighbour");
        assert!(nn.iter().all(|&(_, s)| s.is_finite()), "no NaN may survive ranking");
        for _ in 0..8 {
            assert_eq!(out.nearest(query, out.catalog.len()), nn, "ranking must be stable");
        }
    }
}
