//! Delta-scoped problem extension: the extraction half of delta refresh.
//!
//! A full refresh re-reads every table, re-interns every text value and
//! re-extracts every relation edge — `O(database)` work for a one-row
//! insert. This module instead reads the store's bounded change log
//! ([`retro_store::Database::changes_since`]), classifies what happened
//! since the session's last converged state, and — when every change is an
//! append — extends the previous problem in place:
//!
//! * new text values are interned *after* the previous catalog's ids, so
//!   every old id (and therefore every old embedding row) stays valid,
//! * new edges are extracted by running the **same** relation-extraction
//!   code restricted to the appended row ranges
//!   ([`crate::relations::extract_relations_scoped`]); append-only history
//!   guarantees completeness, because every new edge has its scanning-side
//!   row among the appended rows (foreign keys are validated on insert, so
//!   a pre-existing row can never reference a row that did not exist yet),
//! * the *dirty set* — new value ids plus every endpoint of a fresh edge —
//!   is handed to the subset solver
//!   ([`crate::solver::delta::solve_delta`]); all other rows keep their
//!   converged vectors verbatim.
//!
//! The classification is deliberately conservative: anything the log cannot
//! prove to be an append (deletes, relational updates, `table_mut` access,
//! log overflow) falls back to a full refresh, as does a dirty set larger
//! than [`crate::IncrementalRetro::delta_max_dirty_fraction`] of the
//! catalog. See `docs/INCREMENTAL.md` for the accuracy contract (bounded
//! drift, pinned by the root `delta_refresh` suite).

use std::collections::{BTreeMap, HashMap, HashSet};

use retro_embed::EmbeddingSet;
use retro_linalg::Matrix;
use retro_store::{Database, TableChange};

use crate::api::RetroOutput;
use crate::catalog::TextValueCatalog;
use crate::problem::RetrofitProblem;
use crate::relations::extract_relations_scoped;

/// What the change log says happened since a known write version.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum ChangeSummary {
    /// Every recorded change is irrelevant to the text-value graph (e.g.
    /// numeric-only updates): the previous output is still exact.
    NoRelevantChange,
    /// Every relevant change is an append: `table → position of the first
    /// row appended since` (multiple appends per table are folded to the
    /// earliest start).
    Appends(BTreeMap<String, usize>),
    /// The log overflowed or recorded a change delta refresh cannot scope
    /// (delete, relational update, table creation, unchecked `table_mut`
    /// access): only a full refresh is safe.
    Full,
}

/// Classify the change log since `since` (see [`ChangeSummary`]).
pub(crate) fn classify_changes(db: &Database, since: u64) -> ChangeSummary {
    let Some(records) = db.changes_since(since) else {
        return ChangeSummary::Full;
    };
    let mut appends: BTreeMap<String, usize> = BTreeMap::new();
    let mut any = false;
    for record in records {
        match &record.change {
            TableChange::Appended { start, rows } => {
                if *rows > 0 {
                    any = true;
                    appends
                        .entry(record.table.clone())
                        .and_modify(|s| *s = (*s).min(*start))
                        .or_insert(*start);
                }
            }
            TableChange::Updated { rows, relational } => {
                if *rows > 0 && *relational {
                    return ChangeSummary::Full;
                }
            }
            TableChange::Deleted { rows } => {
                if *rows > 0 {
                    return ChangeSummary::Full;
                }
            }
            TableChange::Created | TableChange::Unknown => return ChangeSummary::Full,
        }
    }
    if any {
        ChangeSummary::Appends(appends)
    } else {
        ChangeSummary::NoRelevantChange
    }
}

/// A problem extended from a previous converged output plus the row subset
/// that needs re-solving. Produced by [`extract_delta`], consumed by
/// [`crate::IncrementalRetro::complete_refresh`].
#[derive(Clone, Debug)]
pub(crate) struct DeltaExtraction {
    /// The merged problem: previous ids unchanged, new values appended,
    /// fresh edges merged into the previous groups.
    pub problem: RetrofitProblem,
    /// Warm matrix: previous embeddings verbatim, `W0` rows for new ids.
    pub warm: Matrix,
    /// Ascending value ids whose neighbourhood changed (never empty unless
    /// the appends turned out to be pure duplicates).
    pub dirty: Vec<u32>,
    /// Per merged forward group `gi`: ids that became **targets** of the
    /// forward direction (`2·gi`) and of the inverted direction (`2·gi+1`)
    /// with these appends — exactly the rows a cached target-sum matrix is
    /// missing.
    pub new_targets: Vec<(Vec<u32>, Vec<u32>)>,
    /// Number of forward groups in the previous problem (the merged group
    /// list keeps them first, in order).
    pub prev_groups: usize,
}

/// Extend `prev`'s problem with the appended rows. Returns `None` whenever
/// the extension cannot be built safely — the caller falls back to a full
/// refresh:
///
/// * the previous output is empty or its dimensionality differs from
///   `base` (nothing sound to extend),
/// * an appended text value belongs to a category the previous catalog
///   never saw (the schema changed under us),
/// * the dirty set exceeds `max_dirty_fraction` of the merged catalog
///   (re-solving most rows anyway — the full path is simpler and exact).
pub(crate) fn extract_delta(
    db: &Database,
    base: &EmbeddingSet,
    prev: &RetroOutput,
    appends: &BTreeMap<String, usize>,
    skip_columns: &[(&str, &str)],
    skip_relations: &[&str],
    max_dirty_fraction: f32,
) -> Option<DeltaExtraction> {
    let prev_n = prev.catalog.len();
    let dim = prev.problem.dim();
    if prev_n == 0 || dim == 0 || base.dim() != dim {
        return None;
    }

    // ── 1. Intern the appended rows' text values ──────────────────────
    // First find which values are genuinely new (appends often repeat
    // existing values); only then pay for a catalog clone. Iteration
    // order — tables in name order (BTreeMap), columns in schema order,
    // rows ascending — is deterministic, which fixes the new ids.
    let mut fresh_values: Vec<(u32, String)> = Vec::new();
    let mut seen: HashSet<(u32, String)> = HashSet::new();
    for (table_name, &start) in appends {
        let Ok(table) = db.table(table_name) else { return None };
        let schema = table.schema();
        for col_idx in schema.text_columns() {
            let column = &schema.columns[col_idx].name;
            if skip_columns.iter().any(|(t, c)| *t == schema.name && *c == column.as_str()) {
                continue;
            }
            // Every text column was registered as a category at the
            // initial extraction; a missing one means the schema itself
            // changed (category ids could not stay stable).
            let cat = prev.catalog.category_id(&schema.name, column)?;
            for row in &table.rows()[start.min(table.len())..] {
                if let Some(text) = row[col_idx].as_text() {
                    if prev.catalog.lookup_in_category(cat, text).is_none()
                        && seen.insert((cat, text.to_owned()))
                    {
                        fresh_values.push((cat, text.to_owned()));
                    }
                }
            }
        }
    }
    let catalog = if fresh_values.is_empty() {
        prev.catalog.clone()
    } else {
        // `O(Δ)` copy-on-write: the extension shares the previous
        // catalog's values and appends only the fresh ones — cloning the
        // full half-million-string catalog was the single largest
        // fixed cost of a paper-scale delta refresh.
        let mut extended = prev.catalog.extend_clone();
        for (cat, text) in &fresh_values {
            extended.intern(*cat, text);
        }
        std::sync::Arc::new(extended)
    };
    let n = catalog.len();

    // ── 2. Extract the appended rows' edges with the full extractor ───
    let delta_groups = extract_relations_scoped(db, &catalog, skip_relations, Some(appends));

    // ── 3. Merge fresh edges into the previous groups ─────────────────
    let mut groups = prev.problem.groups.clone();
    let mut relation_counts = prev.problem.relation_counts.clone();
    relation_counts.resize(n, 0);
    let mut new_targets: Vec<(Vec<u32>, Vec<u32>)> = vec![(Vec::new(), Vec::new()); groups.len()];
    let by_name: HashMap<String, usize> =
        groups.iter().enumerate().map(|(i, g)| (g.name.clone(), i)).collect();
    let mut dirty_mask = vec![false; n];
    for id in prev_n..n {
        dirty_mask[id] = true;
    }
    // Degree scratch shared across groups (reset via touched edges only).
    let mut fwd_deg = vec![0u32; n];
    let mut inv_deg = vec![0u32; n];

    for dgroup in delta_groups {
        match by_name.get(&dgroup.name) {
            Some(&gi) => {
                let group = &mut groups[gi];
                for &(i, j) in &group.edges {
                    fwd_deg[i as usize] += 1;
                    inv_deg[j as usize] += 1;
                }
                // `RelationGroup::new` sorted both lists, so membership is
                // one binary search per candidate edge.
                let fresh: Vec<(u32, u32)> = dgroup
                    .edges
                    .iter()
                    .copied()
                    .filter(|e| group.edges.binary_search(e).is_err())
                    .collect();
                if !fresh.is_empty() {
                    let (tgt_fwd, tgt_inv) = &mut new_targets[gi];
                    for &(i, j) in &fresh {
                        dirty_mask[i as usize] = true;
                        dirty_mask[j as usize] = true;
                        // Degree 0 → first participation in this direction:
                        // one more directed group for |Ri|, and a target the
                        // other direction's sum has never seen.
                        if fwd_deg[i as usize] == 0 {
                            relation_counts[i as usize] += 1;
                            tgt_inv.push(i);
                        }
                        if inv_deg[j as usize] == 0 {
                            relation_counts[j as usize] += 1;
                            tgt_fwd.push(j);
                        }
                        fwd_deg[i as usize] += 1;
                        inv_deg[j as usize] += 1;
                    }
                    group.edges = merge_sorted(&group.edges, &fresh);
                }
                for &(i, j) in &group.edges {
                    fwd_deg[i as usize] = 0;
                    inv_deg[j as usize] = 0;
                }
            }
            None => {
                // A group the previous extraction never produced (it was
                // empty then). Append it: every distinct endpoint is a new
                // participant and a new target of one direction.
                let mut tgt_fwd = Vec::new();
                let mut tgt_inv = Vec::new();
                for &(i, j) in &dgroup.edges {
                    dirty_mask[i as usize] = true;
                    dirty_mask[j as usize] = true;
                    if fwd_deg[i as usize] == 0 {
                        relation_counts[i as usize] += 1;
                        tgt_inv.push(i);
                    }
                    if inv_deg[j as usize] == 0 {
                        relation_counts[j as usize] += 1;
                        tgt_fwd.push(j);
                    }
                    fwd_deg[i as usize] += 1;
                    inv_deg[j as usize] += 1;
                }
                for &(i, j) in &dgroup.edges {
                    fwd_deg[i as usize] = 0;
                    inv_deg[j as usize] = 0;
                }
                new_targets.push((tgt_fwd, tgt_inv));
                groups.push(dgroup);
            }
        }
    }

    // Expand the dirty set by one ring: direct neighbours of every row
    // with a changed edge. When a hub gains a member it moves, and its
    // existing members' fixed points move with it — freezing them is
    // where most of the frozen-neighbour approximation error lives. One
    // ring further out the effect is second-order and safely frozen.
    // O(E) per delta; the dirty set stays O(Δ · degree).
    let first_ring = dirty_mask.clone();
    for group in &groups {
        for &(i, j) in &group.edges {
            if first_ring[i as usize] {
                dirty_mask[j as usize] = true;
            }
            if first_ring[j as usize] {
                dirty_mask[i as usize] = true;
            }
        }
    }

    let dirty: Vec<u32> = (0..n as u32).filter(|&i| dirty_mask[i as usize]).collect();
    if dirty.len() as f32 > max_dirty_fraction * n as f32 {
        return None;
    }

    // ── 4. Extend W0 / OOV / centroids without re-tokenizing the world ─
    // Extend-in-place construction (`Vec::extend_from_slice` + tail
    // `resize`), not `Matrix::zeros` + overwrite: these are the two
    // `O(n·D)` buffers of the delta path, and writing each one twice is
    // measurable at paper scale.
    let mut w0_data = Vec::with_capacity(n * dim);
    w0_data.extend_from_slice(prev.problem.w0.as_slice());
    w0_data.resize(n * dim, 0.0);
    let mut w0 = Matrix::from_vec(n, dim, w0_data);
    let mut oov = prev.problem.oov.clone();
    oov.resize(n, false);
    let mut category_centroids = prev.problem.category_centroids.clone();
    if n > prev_n {
        // The base's cached tokenizer: without it, rebuilding the
        // `O(vocabulary)` trie would be the one per-refresh cost that
        // scales with the base rather than the delta.
        let tokenizer = base.tokenizer();
        for id in prev_n..n {
            let (vec, is_oov) = tokenizer.initial_vector(base, catalog.text(id));
            w0.set_row(id, &vec);
            oov[id] = is_oov;
        }
        update_centroids(&mut category_centroids, &catalog, &w0, prev_n);
    }

    // ── 5. Warm seed: previous embeddings verbatim, W0 for new ids ────
    let mut warm_data = Vec::with_capacity(n * dim);
    warm_data.extend_from_slice(prev.embeddings.as_slice());
    warm_data.extend_from_slice(&w0.as_slice()[prev_n * dim..]);
    let warm = Matrix::from_vec(n, dim, warm_data);

    let prev_groups = prev.problem.groups.len();
    let problem = RetrofitProblem { catalog, groups, w0, oov, category_centroids, relation_counts };
    Some(DeltaExtraction { problem, warm, dirty, new_targets, prev_groups })
}

/// Merge two sorted, deduplicated edge lists (disjoint by construction —
/// `fresh` was filtered against `old`).
fn merge_sorted(old: &[(u32, u32)], fresh: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out = Vec::with_capacity(old.len() + fresh.len());
    let (mut a, mut b) = (0, 0);
    while a < old.len() && b < fresh.len() {
        if old[a] < fresh[b] {
            out.push(old[a]);
            a += 1;
        } else {
            out.push(fresh[b]);
            b += 1;
        }
    }
    out.extend_from_slice(&old[a..]);
    out.extend_from_slice(&fresh[b..]);
    out
}

/// Fold the new values' `W0` rows into the Eq. 5 category centroids.
/// `centroid' = (centroid · old_count + Σ new rows) / new_count` — only
/// categories that actually gained values are touched, so unaffected
/// centroids keep their previous bits.
fn update_centroids(
    centroids: &mut Matrix,
    catalog: &TextValueCatalog,
    w0: &Matrix,
    prev_n: usize,
) {
    let n = catalog.len();
    let m = centroids.rows();
    let mut old_counts = vec![0usize; m];
    for id in 0..prev_n {
        old_counts[catalog.category_of(id) as usize] += 1;
    }
    let mut added = vec![0usize; m];
    for id in prev_n..n {
        added[catalog.category_of(id) as usize] += 1;
    }
    for (c, &extra) in added.iter().enumerate() {
        if extra == 0 {
            continue;
        }
        let row = centroids.row_mut(c);
        retro_linalg::vector::scale(old_counts[c] as f32, row);
    }
    for id in prev_n..n {
        let c = catalog.category_of(id) as usize;
        let new_row = w0.row(id).to_vec();
        retro_linalg::vector::axpy(1.0, &new_row, centroids.row_mut(c));
    }
    for (c, &extra) in added.iter().enumerate() {
        if extra == 0 {
            continue;
        }
        let total = old_counts[c] + extra;
        retro_linalg::vector::scale(1.0 / total as f32, centroids.row_mut(c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Retro, RetroConfig};
    use retro_store::sql;

    fn base() -> EmbeddingSet {
        EmbeddingSet::new(
            vec![
                "valerian".into(),
                "alien".into(),
                "luc besson".into(),
                "ridley scott".into(),
                "prometheus".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.7, 0.3], vec![0.3, 0.7], vec![0.1, 0.9]],
        )
    }

    fn db() -> Database {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott');
             INSERT INTO movies VALUES (1, 'valerian', 1), (2, 'alien', 2);",
        )
        .unwrap();
        db
    }

    fn converged(db: &Database) -> RetroOutput {
        Retro::new(RetroConfig::default()).retrofit(db, &base()).unwrap()
    }

    #[test]
    fn classify_folds_appends_and_flags_relational_updates() {
        // Two appends to one table fold to the earliest start position.
        let mut db = db();
        let v = db.write_version();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (4, 'covenant', 2)").unwrap();
        match classify_changes(&db, v) {
            ChangeSummary::Appends(map) => assert_eq!(map.get("movies"), Some(&2)),
            other => panic!("expected appends, got {other:?}"),
        }
        // Reassigning a foreign key rewires the graph → full refresh.
        let v = db.write_version();
        db.update_rows("movies", &[(0, 2, retro_store::Value::Int(2))]).unwrap();
        assert_eq!(classify_changes(&db, v), ChangeSummary::Full);
    }

    #[test]
    fn classify_full_on_overflow_and_delete() {
        let mut overflowed = db();
        let v = overflowed.write_version();
        overflowed.set_change_log_capacity(1);
        sql::run_script(&mut overflowed, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        sql::run_script(&mut overflowed, "INSERT INTO movies VALUES (4, 'covenant', 2)").unwrap();
        assert_eq!(classify_changes(&overflowed, v), ChangeSummary::Full);

        let mut db2 = db();
        let v2 = db2.write_version();
        db2.delete_rows("movies", &[1]).unwrap();
        assert_eq!(classify_changes(&db2, v2), ChangeSummary::Full);
    }

    #[test]
    fn classify_no_change_without_writes() {
        let db = db();
        assert_eq!(classify_changes(&db, db.write_version()), ChangeSummary::NoRelevantChange);
    }

    #[test]
    fn extract_delta_keeps_old_ids_and_marks_the_neighbourhood_dirty() {
        let mut db = db();
        let prev = converged(&db);
        let v = db.write_version();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let ChangeSummary::Appends(appends) = classify_changes(&db, v) else {
            panic!("expected appends");
        };
        let d = extract_delta(&db, &base(), &prev, &appends, &[], &[], 1.0).expect("delta");
        assert_eq!(d.problem.len(), 5);
        // Old ids unchanged.
        for id in 0..prev.catalog.len() {
            assert_eq!(prev.catalog.text(id), d.problem.catalog.text(id));
            assert_eq!(d.warm.row(id), prev.embeddings.row(id));
        }
        let prometheus = d.problem.catalog.lookup("movies", "title", "prometheus").unwrap() as u32;
        let ridley = d.problem.catalog.lookup("persons", "name", "ridley scott").unwrap() as u32;
        // First ring: the new value and its changed-edge neighbour. Second
        // ring: ridley's existing movie, whose fixed point moves when its
        // director does. The unrelated valerian/besson pair stays clean.
        let alien = d.problem.catalog.lookup("movies", "title", "alien").unwrap() as u32;
        assert_eq!(d.dirty, {
            let mut expect = vec![prometheus, ridley, alien];
            expect.sort_unstable();
            expect
        });
        // The fresh edge landed in the merged (sorted) group.
        let g = &d.problem.groups[0];
        assert!(g.edges.contains(&(prometheus, ridley)));
        assert!(g.edges.windows(2).all(|w| w[0] < w[1]), "merged edges stay sorted");
        // prometheus newly sources the forward direction → it is a new
        // target of the inverted direction; ridley was already a target.
        assert_eq!(d.new_targets[0].0, Vec::<u32>::new());
        assert_eq!(d.new_targets[0].1, vec![prometheus]);
        // |Ri| merged: prometheus sources one directed group (the forward
        // title→name direction) → 1, like the other titles.
        assert_eq!(d.problem.relation_counts[prometheus as usize], 1);
    }

    #[test]
    fn extract_delta_duplicate_append_has_empty_dirty_set() {
        let mut db = db();
        let prev = converged(&db);
        let v = db.write_version();
        // Same title, same director: no new value, no new edge.
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'alien', 2)").unwrap();
        let ChangeSummary::Appends(appends) = classify_changes(&db, v) else {
            panic!("expected appends");
        };
        let d = extract_delta(&db, &base(), &prev, &appends, &[], &[], 1.0).expect("delta");
        assert!(d.dirty.is_empty());
        assert_eq!(d.problem.len(), prev.catalog.len());
    }

    #[test]
    fn extract_delta_respects_dirty_fraction() {
        let mut db = db();
        let prev = converged(&db);
        let v = db.write_version();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let ChangeSummary::Appends(appends) = classify_changes(&db, v) else {
            panic!("expected appends");
        };
        // 3 dirty of 5 (new value + neighbour + second ring) = 0.6 > 0.1
        // → refuse.
        assert!(extract_delta(&db, &base(), &prev, &appends, &[], &[], 0.1).is_none());
    }

    #[test]
    fn extended_centroids_match_a_fresh_build() {
        let mut db = db();
        let prev = converged(&db);
        let v = db.write_version();
        sql::run_script(&mut db, "INSERT INTO movies VALUES (3, 'prometheus', 2)").unwrap();
        let ChangeSummary::Appends(appends) = classify_changes(&db, v) else {
            panic!("expected appends");
        };
        let d = extract_delta(&db, &base(), &prev, &appends, &[], &[], 1.0).expect("delta");
        let fresh = RetrofitProblem::build(&db, &base(), &[], &[]);
        // Value ids differ (delta appends new ids at the end; a fresh
        // extraction interleaves them), but categories keep their ids, so
        // the per-category centroids are comparable row-by-row …
        assert_eq!(d.problem.category_centroids.rows(), fresh.category_centroids.rows());
        assert!(d.problem.category_centroids.max_abs_diff(&fresh.category_centroids) < 1e-6);
        // … and the per-value quantities are compared through the catalogs.
        for (id, cat, text) in fresh.catalog.iter() {
            let category = &fresh.catalog.categories()[cat as usize];
            let did = d
                .problem
                .catalog
                .lookup(&category.table, &category.column, text)
                .expect("value present in the merged catalog");
            assert_eq!(d.problem.relation_counts[did], fresh.relation_counts[id], "{text}");
            assert_eq!(d.problem.oov[did], fresh.oov[id], "{text}");
            for (a, b) in d.problem.w0.row(did).iter().zip(fresh.w0.row(id)) {
                assert!((a - b).abs() < 1e-6, "{text}");
            }
        }
    }
}
