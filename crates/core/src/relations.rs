//! Relation-group extraction (§3.2).
//!
//! A relation group `Er` connects the text values of a *source* column to
//! those of a *target* column. Three schema shapes produce groups:
//!
//! a) **row-wise** — two text columns of the same table, connected when
//!    their values share a row;
//! b) **PK/FK (one-to-many)** — a text column of the referencing table
//!    connected to a text column of the referenced table through the key;
//! c) **many-to-many** — text columns of two tables related through a pure
//!    link table of foreign keys.
//!
//! Groups are stored in the forward direction; solvers derive the inverted
//! group `Er̄` by transposition. Edge lists are deduplicated (the same value
//! pair related by many rows is one relation).

use std::collections::{BTreeMap, HashMap, HashSet};

use retro_store::{Database, Value};

use crate::catalog::TextValueCatalog;

/// Which schema shape produced a group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelationKind {
    /// Two text columns in one table.
    RowWise,
    /// Foreign-key hop between two tables.
    ForeignKey,
    /// Two foreign keys through a link table.
    ManyToMany,
}

/// A relation group: deduplicated directed edges between text-value ids,
/// from the source category to the target category.
#[derive(Clone, Debug)]
pub struct RelationGroup {
    /// Human-readable label, e.g. `movies.title~persons.name`.
    pub name: String,
    /// Source category id.
    pub source_category: u32,
    /// Target category id.
    pub target_category: u32,
    /// Provenance.
    pub kind: RelationKind,
    /// Deduplicated `(source value id, target value id)` pairs, sorted.
    pub edges: Vec<(u32, u32)>,
}

impl RelationGroup {
    /// Build from a raw pair list (dedups and sorts).
    pub fn new(
        name: String,
        source_category: u32,
        target_category: u32,
        kind: RelationKind,
        mut edges: Vec<(u32, u32)>,
    ) -> Self {
        edges.sort_unstable();
        edges.dedup();
        Self { name, source_category, target_category, kind, edges }
    }

    /// Number of distinct edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the group carries no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Distinct source ids.
    pub fn sources(&self) -> Vec<u32> {
        let mut s: Vec<u32> = self.edges.iter().map(|&(i, _)| i).collect();
        s.sort_unstable();
        s.dedup();
        s
    }

    /// Distinct target ids.
    pub fn targets(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self.edges.iter().map(|&(_, j)| j).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// Out-degree of a source id (`odr(i)` in Eq. 12).
    pub fn out_degree(&self, i: u32) -> usize {
        self.edges.iter().filter(|&&(s, _)| s == i).count()
    }

    /// The inverted group `Er̄`.
    pub fn inverted(&self) -> RelationGroup {
        RelationGroup::new(
            format!("{}~inv", self.name),
            self.target_category,
            self.source_category,
            self.kind,
            self.edges.iter().map(|&(i, j)| (j, i)).collect(),
        )
    }

    /// `mc(r)` of Eq. 13: max of the distinct source and target counts.
    pub fn mc(&self) -> usize {
        self.sources().len().max(self.targets().len())
    }
}

/// Extract all relation groups of a database against a catalog.
///
/// Columns missing from the catalog (ablated via `skip_columns` during
/// extraction) silently produce no groups, which is how the evaluation
/// removes label leakage. `skip_relations` additionally drops groups whose
/// name contains any of the given substrings (used by the link-prediction
/// task to ablate the movie–genre relation).
pub fn extract_relations(
    db: &Database,
    catalog: &TextValueCatalog,
    skip_relations: &[&str],
) -> Vec<RelationGroup> {
    extract_relations_scoped(db, catalog, skip_relations, None)
}

/// [`extract_relations`] restricted to a row scope: when `scope` is `Some`,
/// only tables named in the map are scanned, and each is scanned from its
/// mapped row index onward. The delta-refresh path uses this to extract the
/// edges contributed by freshly appended rows with the *same* code — group
/// names, edge semantics and skip handling cannot drift from the full
/// extraction, because they are the full extraction.
pub(crate) fn extract_relations_scoped(
    db: &Database,
    catalog: &TextValueCatalog,
    skip_relations: &[&str],
    scope: Option<&BTreeMap<String, usize>>,
) -> Vec<RelationGroup> {
    let mut groups = Vec::new();

    for table in db.tables() {
        let start = match scope {
            None => 0,
            Some(map) => match map.get(table.name()) {
                Some(&s) => s.min(table.len()),
                None => continue,
            },
        };
        let schema = table.schema();
        let text_cols = schema.text_columns();

        // (a) Row-wise pairs within one table (unordered pairs, forward =
        // schema order). On the full path each text column's value ids are
        // resolved once into a row-parallel cache: a column shared by
        // several pairs is hashed once, not once per pair — and long
        // columns (overviews, review bodies) are exactly the ones that
        // appear in every pair.
        let col_caches: Vec<Option<(u32, Vec<Option<u32>>)>> =
            if scope.is_none() && text_cols.len() > 1 {
                text_cols
                    .iter()
                    .map(|&c| {
                        catalog
                            .category_id(&schema.name, &schema.columns[c].name)
                            .map(|cat| (cat, value_id_cache(table, c, cat, catalog)))
                    })
                    .collect()
            } else {
                Vec::new()
            };
        for (ai, &a) in text_cols.iter().enumerate() {
            for (bo, &b) in text_cols[ai + 1..].iter().enumerate() {
                let bi = ai + 1 + bo;
                let (Some(cat_a), Some(cat_b)) = (
                    catalog.category_id(&schema.name, &schema.columns[a].name),
                    catalog.category_id(&schema.name, &schema.columns[b].name),
                ) else {
                    continue;
                };
                let mut edges = Vec::new();
                if let (Some(Some((_, ids_a))), Some(Some((_, ids_b)))) =
                    (col_caches.get(ai), col_caches.get(bi))
                {
                    for (ia, ib) in ids_a.iter().zip(ids_b) {
                        if let (Some(i), Some(j)) = (ia, ib) {
                            edges.push((*i, *j));
                        }
                    }
                } else {
                    for row in &table.rows()[start..] {
                        if let (Some(ta), Some(tb)) = (row[a].as_text(), row[b].as_text()) {
                            if let (Some(i), Some(j)) = (
                                catalog.lookup_in_category(cat_a, ta),
                                catalog.lookup_in_category(cat_b, tb),
                            ) {
                                edges.push((i as u32, j as u32));
                            }
                        }
                    }
                }
                push_group(
                    &mut groups,
                    RelationGroup::new(
                        format!(
                            "{}.{}~{}.{}",
                            schema.name,
                            schema.columns[a].name,
                            schema.name,
                            schema.columns[b].name
                        ),
                        cat_a,
                        cat_b,
                        RelationKind::RowWise,
                        edges,
                    ),
                    skip_relations,
                );
            }
        }

        if schema.is_link_table() {
            // (c) Many-to-many: all FK pairs through this link table.
            let fks = &schema.foreign_keys;
            for (fi, fk_a) in fks.iter().enumerate() {
                for fk_b in &fks[fi + 1..] {
                    extract_m2m(
                        db,
                        catalog,
                        table,
                        if scope.is_none() { None } else { Some(start) },
                        fk_a,
                        fk_b,
                        &mut groups,
                        skip_relations,
                    );
                }
            }
        } else {
            // (b) One-to-many: the *primary* text column here ↔ the primary
            // text column of the referenced table. Cross-table relations
            // follow the paper's Fig. 2 style (movies.name ↔ actors.name,
            // movies.name ↔ reviews.text): one representative column per
            // table, which keeps |Ri| small enough that the Eq. 12 weights
            // retain their pull.
            for fk in &schema.foreign_keys {
                let Ok(ref_table) = db.table(&fk.ref_table) else { continue };
                let ref_schema = ref_table.schema();
                let fk_col = schema.column_index(&fk.column).expect("fk validated");
                if let (Some(&a), Some(b)) =
                    (text_cols.first(), ref_schema.text_columns().first().copied())
                {
                    let (Some(cat_a), Some(cat_b)) = (
                        catalog.category_id(&schema.name, &schema.columns[a].name),
                        catalog.category_id(&ref_schema.name, &ref_schema.columns[b].name),
                    ) else {
                        continue;
                    };
                    let mut edges = Vec::new();
                    let target_ids = if scope.is_none() {
                        PkValueIds::build(ref_table, b, cat_b, catalog)
                    } else {
                        None
                    };
                    if let Some(target_ids) = target_ids {
                        // Full extraction: resolve the referenced column's
                        // value ids once per *target* row keyed by pk, then
                        // walk the referencing rows with an O(1) resolver
                        // hit — instead of re-hashing the same target
                        // string once per referencing row.
                        for row in table.rows() {
                            let Some(key) = row[fk_col].as_int() else { continue };
                            let Some(j) = target_ids.get(key) else { continue };
                            let Some(ta) = row[a].as_text() else { continue };
                            let Some(i) = catalog.lookup_in_category(cat_a, ta) else { continue };
                            edges.push((i as u32, j));
                        }
                    } else {
                        // Delta scope (O(Δ) rows scanned — a table-sized
                        // resolver would cost more than it saves) or a
                        // referenced table without a pk column.
                        for row in &table.rows()[start..] {
                            let Some(key) = row[fk_col].as_int() else { continue };
                            let Some(target_row) = ref_table.row_by_pk(key) else { continue };
                            if let (Some(ta), Some(tb)) =
                                (row[a].as_text(), target_row[b].as_text())
                            {
                                if let (Some(i), Some(j)) = (
                                    catalog.lookup_in_category(cat_a, ta),
                                    catalog.lookup_in_category(cat_b, tb),
                                ) {
                                    edges.push((i as u32, j as u32));
                                }
                            }
                        }
                    }
                    push_group(
                        &mut groups,
                        RelationGroup::new(
                            format!(
                                "{}.{}~{}.{}",
                                schema.name,
                                schema.columns[a].name,
                                ref_schema.name,
                                ref_schema.columns[b].name
                            ),
                            cat_a,
                            cat_b,
                            RelationKind::ForeignKey,
                            edges,
                        ),
                        skip_relations,
                    );
                }
            }
        }
    }
    groups
}

/// `scope_start` mirrors [`extract_relations_scoped`]: `None` = full
/// extraction (cache the endpoint tables' value ids, probe the pk index),
/// `Some(start)` = delta scope (scan `O(Δ)` link rows, probe directly).
#[allow(clippy::too_many_arguments)]
fn extract_m2m(
    db: &Database,
    catalog: &TextValueCatalog,
    link: &retro_store::Table,
    scope_start: Option<usize>,
    fk_a: &retro_store::ForeignKey,
    fk_b: &retro_store::ForeignKey,
    groups: &mut Vec<RelationGroup>,
    skip_relations: &[&str],
) {
    let (Ok(table_a), Ok(table_b)) = (db.table(&fk_a.ref_table), db.table(&fk_b.ref_table)) else {
        return;
    };
    let schema = link.schema();
    let col_a = schema.column_index(&fk_a.column).expect("fk validated");
    let col_b = schema.column_index(&fk_b.column).expect("fk validated");

    if let (Some(ta), Some(tb)) = (
        table_a.schema().text_columns().first().copied(),
        table_b.schema().text_columns().first().copied(),
    ) {
        let (Some(cat_a), Some(cat_b)) = (
            catalog.category_id(&fk_a.ref_table, &table_a.schema().columns[ta].name),
            catalog.category_id(&fk_b.ref_table, &table_b.schema().columns[tb].name),
        ) else {
            return;
        };
        let mut edges = Vec::new();
        let resolvers = if scope_start.is_none() {
            PkValueIds::build(table_a, ta, cat_a, catalog)
                .zip(PkValueIds::build(table_b, tb, cat_b, catalog))
        } else {
            None
        };
        match resolvers {
            Some((ids_a, ids_b)) => {
                // Full extraction: both endpoints get a pk-keyed value-id
                // resolver; each link row is then two O(1) resolver hits —
                // no string hashing in the link loop at all.
                for row in link.rows() {
                    let (Some(ka), Some(kb)) = (row[col_a].as_int(), row[col_b].as_int()) else {
                        continue;
                    };
                    if let (Some(i), Some(j)) = (ids_a.get(ka), ids_b.get(kb)) {
                        edges.push((i, j));
                    }
                }
            }
            None => {
                let start = scope_start.unwrap_or(0);
                for row in &link.rows()[start..] {
                    let (Some(ka), Some(kb)) = (row[col_a].as_int(), row[col_b].as_int()) else {
                        continue;
                    };
                    let (Some(row_a), Some(row_b)) = (table_a.row_by_pk(ka), table_b.row_by_pk(kb))
                    else {
                        continue;
                    };
                    if let (Some(sa), Some(sb)) = (row_a[ta].as_text(), row_b[tb].as_text()) {
                        if let (Some(i), Some(j)) = (
                            catalog.lookup_in_category(cat_a, sa),
                            catalog.lookup_in_category(cat_b, sb),
                        ) {
                            edges.push((i as u32, j as u32));
                        }
                    }
                }
            }
        }
        push_group(
            groups,
            RelationGroup::new(
                format!(
                    "{}.{}~{}.{} (via {})",
                    fk_a.ref_table,
                    table_a.schema().columns[ta].name,
                    fk_b.ref_table,
                    table_b.schema().columns[tb].name,
                    schema.name
                ),
                cat_a,
                cat_b,
                RelationKind::ManyToMany,
                edges,
            ),
            skip_relations,
        );
    }
}

/// Row-parallel `position → value id` cache for one text column: one
/// catalog probe per stored row, `O(1)` per row afterwards. Built only on
/// the full-extraction path — a delta-scoped pass touches `O(Δ)` rows and
/// a table-sized cache would cost more than it saves.
fn value_id_cache(
    table: &retro_store::Table,
    col: usize,
    cat: u32,
    catalog: &TextValueCatalog,
) -> Vec<Option<u32>> {
    table
        .column_values(col)
        .map(|v| v.as_text().and_then(|t| catalog.lookup_in_category(cat, t)).map(|id| id as u32))
        .collect()
}

/// `pk → value id` resolver for one text column of an FK-referenced table,
/// built once per relation group on the full-extraction path.
///
/// Generated and imported datasets number their rows densely (`0..n` or
/// `1..n`), so the common case resolves a referencing row with a single
/// array index — no hashing at all in the link loop. Sparse pk ranges fall
/// back to an integer-keyed map. A missing entry means the same thing a
/// failed `row_by_pk` + text lookup chain meant before: no edge.
enum PkValueIds {
    Dense { min: i64, ids: Vec<Option<u32>> },
    Sparse(HashMap<i64, u32>),
}

impl PkValueIds {
    /// `None` when the table has no primary-key column (the caller falls
    /// back to per-row probes).
    fn build(
        table: &retro_store::Table,
        col: usize,
        cat: u32,
        catalog: &TextValueCatalog,
    ) -> Option<Self> {
        let pk_col = table.schema().primary_key?;
        let mut pairs: Vec<(i64, u32)> = Vec::with_capacity(table.len());
        let (mut min, mut max) = (i64::MAX, i64::MIN);
        for row in table.rows() {
            let Some(pk) = row[pk_col].as_int() else { continue };
            let Some(id) = row[col].as_text().and_then(|t| catalog.lookup_in_category(cat, t))
            else {
                continue;
            };
            min = min.min(pk);
            max = max.max(pk);
            pairs.push((pk, id as u32));
        }
        if pairs.is_empty() {
            return Some(PkValueIds::Sparse(HashMap::new()));
        }
        let span = (max as i128 - min as i128) as u128 + 1;
        Some(if span <= pairs.len() as u128 * 2 {
            let mut ids = vec![None; span as usize];
            for (pk, id) in pairs {
                ids[(pk - min) as usize] = Some(id);
            }
            PkValueIds::Dense { min, ids }
        } else {
            PkValueIds::Sparse(pairs.into_iter().collect())
        })
    }

    #[inline]
    fn get(&self, pk: i64) -> Option<u32> {
        match self {
            PkValueIds::Dense { min, ids } => {
                let off = usize::try_from(pk.checked_sub(*min)?).ok()?;
                ids.get(off).copied().flatten()
            }
            PkValueIds::Sparse(map) => map.get(&pk).copied(),
        }
    }
}

fn push_group(groups: &mut Vec<RelationGroup>, group: RelationGroup, skip: &[&str]) {
    if group.is_empty() {
        return;
    }
    if skip.iter().any(|s| group.name.contains(s)) {
        return;
    }
    groups.push(group);
}

/// `|Ri|` of Eq. 12: for every text value, the number of *directed* relation
/// groups (forward and inverted counted separately) in which it has at least
/// one outgoing edge.
pub fn relation_type_counts(groups: &[RelationGroup], n_values: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n_values];
    for group in groups {
        let mut seen: HashSet<u32> = HashSet::new();
        for &(i, _) in &group.edges {
            seen.insert(i);
        }
        for i in seen {
            counts[i as usize] += 1;
        }
        let mut seen_t: HashSet<u32> = HashSet::new();
        for &(_, j) in &group.edges {
            seen_t.insert(j);
        }
        for j in seen_t {
            counts[j as usize] += 1;
        }
    }
    counts
}

/// Utility for tests and datasets: collect the distinct text of a column
/// keyed by primary key.
pub fn text_by_pk(db: &Database, table: &str, column: &str) -> HashMap<i64, String> {
    let mut out = HashMap::new();
    if let Ok(t) = db.table(table) {
        let schema = t.schema();
        if let (Some(pk), Some(col)) = (schema.primary_key, schema.column_index(column)) {
            for row in t.rows() {
                if let (Value::Int(k), Some(text)) = (&row[pk], row[col].as_text()) {
                    out.insert(*k, text.to_owned());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    /// movies(title, lang) —director_id→ persons(name); movie_genre n:m genres(name).
    fn db() -> Database {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE genres (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, lang TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             CREATE TABLE movie_genre (movie_id INTEGER REFERENCES movies(id),
                                       genre_id INTEGER REFERENCES genres(id));
             INSERT INTO persons VALUES (1, 'Luc Besson'), (2, 'Ridley Scott');
             INSERT INTO genres VALUES (1, 'SciFi'), (2, 'Horror');
             INSERT INTO movies VALUES (1, '5th Element', 'en', 1), (2, 'Alien', 'en', 2),
                                       (3, 'Valerian', 'fr', 1);
             INSERT INTO movie_genre VALUES (1, 1), (2, 1), (2, 2), (3, 1);",
        )
        .unwrap();
        db
    }

    fn setup() -> (Database, TextValueCatalog, Vec<RelationGroup>) {
        let db = db();
        let catalog = TextValueCatalog::extract(&db, &[]);
        let groups = extract_relations(&db, &catalog, &[]);
        (db, catalog, groups)
    }

    #[test]
    fn all_three_kinds_extracted() {
        let (_, _, groups) = setup();
        assert!(groups.iter().any(|g| g.kind == RelationKind::RowWise));
        assert!(groups.iter().any(|g| g.kind == RelationKind::ForeignKey));
        assert!(groups.iter().any(|g| g.kind == RelationKind::ManyToMany));
    }

    #[test]
    fn row_wise_connects_title_and_lang() {
        let (_, catalog, groups) = setup();
        let g =
            groups.iter().find(|g| g.name == "movies.title~movies.lang").expect("row-wise group");
        let title = catalog.lookup("movies", "title", "Valerian").unwrap() as u32;
        let fr = catalog.lookup("movies", "lang", "fr").unwrap() as u32;
        assert!(g.edges.contains(&(title, fr)));
        // Two movies share 'en', edges are per value pair: 3 movies → 3 edges.
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn fk_connects_title_to_director() {
        let (_, catalog, groups) = setup();
        let g = groups.iter().find(|g| g.name == "movies.title~persons.name").expect("fk group");
        let title = catalog.lookup("movies", "title", "Alien").unwrap() as u32;
        let person = catalog.lookup("persons", "name", "Ridley Scott").unwrap() as u32;
        assert!(g.edges.contains(&(title, person)));
        assert_eq!(g.kind, RelationKind::ForeignKey);
    }

    #[test]
    fn m2m_connects_title_to_genre() {
        let (_, catalog, groups) = setup();
        let g = groups.iter().find(|g| g.kind == RelationKind::ManyToMany).expect("m2m group");
        let alien = catalog.lookup("movies", "title", "Alien").unwrap() as u32;
        let horror = catalog.lookup("genres", "name", "Horror").unwrap() as u32;
        let scifi = catalog.lookup("genres", "name", "SciFi").unwrap() as u32;
        assert!(g.edges.contains(&(alien, horror)));
        assert!(g.edges.contains(&(alien, scifi)));
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn edges_are_deduplicated() {
        let mut db = db();
        // A second SciFi link row for movie 1 must not duplicate the edge.
        sql::run_script(&mut db, "INSERT INTO movies VALUES (4, '5th Element', 'en', 1)").unwrap();
        let catalog = TextValueCatalog::extract(&db, &[]);
        let groups = extract_relations(&db, &catalog, &[]);
        let g = groups.iter().find(|g| g.name == "movies.title~persons.name").unwrap();
        let title = catalog.lookup("movies", "title", "5th Element").unwrap() as u32;
        let besson = catalog.lookup("persons", "name", "Luc Besson").unwrap() as u32;
        assert_eq!(g.edges.iter().filter(|&&e| e == (title, besson)).count(), 1);
    }

    #[test]
    fn inverted_group_swaps_edges() {
        let (_, _, groups) = setup();
        let g = &groups[0];
        let inv = g.inverted();
        assert_eq!(inv.len(), g.len());
        for &(i, j) in &g.edges {
            assert!(inv.edges.contains(&(j, i)));
        }
        assert_eq!(inv.source_category, g.target_category);
    }

    #[test]
    fn skip_relations_ablates_by_substring() {
        let db = db();
        let catalog = TextValueCatalog::extract(&db, &[]);
        let groups = extract_relations(&db, &catalog, &["genres.name"]);
        assert!(groups.iter().all(|g| g.kind != RelationKind::ManyToMany));
    }

    #[test]
    fn relation_type_counts_count_directed_participation() {
        let (_, catalog, groups) = setup();
        let counts = relation_type_counts(&groups, catalog.len());
        // 'fr' participates only in title~lang (cross-table relations touch
        // just the primary text column, which for movies is `title`).
        let fr = catalog.lookup("movies", "lang", "fr").unwrap();
        assert_eq!(counts[fr], 1);
        // A movie title participates in title~lang (source), title~persons
        // (source), title~genres m2m (source) → 3.
        let alien = catalog.lookup("movies", "title", "Alien").unwrap();
        assert_eq!(counts[alien], 3);
    }

    #[test]
    fn group_degree_helpers() {
        let (_, catalog, groups) = setup();
        let g = groups.iter().find(|g| g.kind == RelationKind::ManyToMany).unwrap();
        let alien = catalog.lookup("movies", "title", "Alien").unwrap() as u32;
        assert_eq!(g.out_degree(alien), 2);
        assert_eq!(g.sources().len(), 3);
        assert_eq!(g.targets().len(), 2);
        assert_eq!(g.mc(), 3);
    }

    #[test]
    fn text_by_pk_maps_keys() {
        let (db, _, _) = setup();
        let titles = text_by_pk(&db, "movies", "title");
        assert_eq!(titles.get(&2).map(String::as_str), Some("Alien"));
        assert_eq!(titles.len(), 3);
    }
}
