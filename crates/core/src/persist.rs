//! On-disk codec for a published embedding generation.
//!
//! `EmbeddingService::save_snapshot` serializes the currently published
//! [`crate::serve::Snapshot`] into one checksummed little-endian file and
//! `EmbeddingService::recover` reads it back to warm-start a restarted
//! service — bit-identical embeddings, same generation number, and an
//! [`crate::IncrementalRetro`] session anchored at the snapshot's database
//! write version so the next refresh catches up incrementally. See
//! `docs/DURABILITY.md` for where this sits in the durability story.
//!
//! Layout: magic `RSRV`, u32 version, u32 CRC-32 over the body
//! (`retro_store::wal::crc32` — the same checksum the store's WAL frames
//! use), then the body: generation, write version, embedding dimension,
//! the catalog (categories then values, both in id order, so replaying
//! them through [`TextValueCatalog::add_category`] /
//! [`TextValueCatalog::intern`] reproduces the exact dense id assignment),
//! the relation groups, and the converged matrix as raw f32 bits. The
//! derived parts of the problem (`W0`, centroids, weights) are *not*
//! stored — they are recomputed from the base embedding at recovery, which
//! is both smaller and self-checking: a snapshot recovered against the
//! wrong base fails loudly instead of serving subtly wrong vectors.

use retro_linalg::Matrix;
use retro_store::wal::crc32;

use crate::api::RetroError;
use crate::catalog::TextValueCatalog;
use crate::relations::{RelationGroup, RelationKind};

const MAGIC: &[u8; 4] = b"RSRV";
const VERSION: u32 = 1;
/// magic + version + crc.
const HEADER_LEN: usize = 12;

/// The decoded payload of a generation snapshot file — everything
/// `EmbeddingService::recover` needs that cannot be recomputed from the
/// base embedding.
#[derive(Debug)]
pub(crate) struct PersistedGeneration {
    /// The published generation number at save time.
    pub generation: u64,
    /// The database write version the generation was converged against.
    pub write_version: u64,
    /// `(table, column)` per category, in category-id order.
    pub categories: Vec<(String, String)>,
    /// `(category id, text)` per value, in value-id order.
    pub values: Vec<(u32, String)>,
    /// Forward relation groups of the solved problem.
    pub groups: Vec<RelationGroup>,
    /// The converged embedding matrix (one row per value, exact bits).
    pub embeddings: Matrix,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn kind_tag(kind: RelationKind) -> u8 {
    match kind {
        RelationKind::RowWise => 0,
        RelationKind::ForeignKey => 1,
        RelationKind::ManyToMany => 2,
    }
}

fn kind_from_tag(tag: u8) -> Result<RelationKind, RetroError> {
    match tag {
        0 => Ok(RelationKind::RowWise),
        1 => Ok(RelationKind::ForeignKey),
        2 => Ok(RelationKind::ManyToMany),
        other => Err(corrupt(format!("unknown relation kind tag {other}"))),
    }
}

pub(crate) fn corrupt(msg: impl Into<String>) -> RetroError {
    RetroError::Persist(msg.into())
}

/// Serialize a published generation. Infallible: the inputs are in-memory
/// structures that always encode.
pub(crate) fn encode(
    generation: u64,
    write_version: u64,
    catalog: &TextValueCatalog,
    groups: &[RelationGroup],
    embeddings: &Matrix,
) -> Vec<u8> {
    let mut body = Vec::with_capacity(64 + embeddings.rows() * embeddings.cols() * 4);
    put_u64(&mut body, generation);
    put_u64(&mut body, write_version);
    put_u32(&mut body, embeddings.cols() as u32);
    put_u32(&mut body, catalog.category_count() as u32);
    for category in catalog.categories() {
        put_str(&mut body, &category.table);
        put_str(&mut body, &category.column);
    }
    put_u32(&mut body, catalog.len() as u32);
    for (_, category, text) in catalog.iter() {
        put_u32(&mut body, category);
        put_str(&mut body, text);
    }
    put_u32(&mut body, groups.len() as u32);
    for group in groups {
        put_str(&mut body, &group.name);
        put_u32(&mut body, group.source_category);
        put_u32(&mut body, group.target_category);
        body.push(kind_tag(group.kind));
        put_u32(&mut body, group.edges.len() as u32);
        for &(i, j) in &group.edges {
            put_u32(&mut body, i);
            put_u32(&mut body, j);
        }
    }
    for r in 0..embeddings.rows() {
        for &v in embeddings.row(r) {
            body.extend_from_slice(&v.to_le_bytes());
        }
    }

    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    out
}

/// A bounds-checked little-endian reader over the snapshot body.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], RetroError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.data.len())
            .ok_or_else(|| corrupt(format!("truncated while reading {what}")))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, RetroError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, RetroError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, RetroError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8 bytes")))
    }

    fn string(&mut self, what: &str) -> Result<String, RetroError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|err| corrupt(format!("bad utf-8 in {what}: {err}")))
    }
}

/// Decode a snapshot file's bytes. Verifies magic, version and checksum
/// before trusting a single field; every structural problem is a typed
/// [`RetroError::Persist`].
pub(crate) fn decode(data: &[u8]) -> Result<PersistedGeneration, RetroError> {
    if data.len() < HEADER_LEN {
        return Err(corrupt("truncated header"));
    }
    if &data[0..4] != MAGIC {
        return Err(corrupt("bad magic (not an embedding snapshot)"));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(corrupt(format!("unsupported snapshot version {version}")));
    }
    let stored = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
    let body = &data[HEADER_LEN..];
    if crc32(body) != stored {
        return Err(corrupt("checksum mismatch"));
    }

    let mut cur = Cursor { data: body, pos: 0 };
    let generation = cur.u64("generation")?;
    let write_version = cur.u64("write version")?;
    let dim = cur.u32("embedding dimension")? as usize;

    let category_count = cur.u32("category count")? as usize;
    let mut categories = Vec::with_capacity(category_count.min(1 << 16));
    for _ in 0..category_count {
        let table = cur.string("category table")?;
        let column = cur.string("category column")?;
        categories.push((table, column));
    }

    let value_count = cur.u32("value count")? as usize;
    let mut values = Vec::with_capacity(value_count.min(1 << 20));
    for _ in 0..value_count {
        let category = cur.u32("value category")?;
        if category as usize >= category_count {
            return Err(corrupt(format!("value references unknown category {category}")));
        }
        values.push((category, cur.string("value text")?));
    }

    let group_count = cur.u32("group count")? as usize;
    let mut groups = Vec::with_capacity(group_count.min(1 << 16));
    for _ in 0..group_count {
        let name = cur.string("group name")?;
        let source_category = cur.u32("group source category")?;
        let target_category = cur.u32("group target category")?;
        if source_category as usize >= category_count || target_category as usize >= category_count
        {
            return Err(corrupt(format!("group '{name}' references an unknown category")));
        }
        let kind = kind_from_tag(cur.u8("group kind")?)?;
        let edge_count = cur.u32("group edge count")? as usize;
        let mut edges = Vec::with_capacity(edge_count.min(1 << 20));
        for _ in 0..edge_count {
            let i = cur.u32("edge source")?;
            let j = cur.u32("edge target")?;
            if i as usize >= value_count || j as usize >= value_count {
                return Err(corrupt(format!("group '{name}' edge references an unknown value")));
            }
            edges.push((i, j));
        }
        groups.push(RelationGroup::new(name, source_category, target_category, kind, edges));
    }

    let mut data = Vec::with_capacity(value_count * dim);
    for _ in 0..value_count * dim {
        let bytes = cur.take(4, "embedding value")?;
        data.push(f32::from_le_bytes(bytes.try_into().expect("4 bytes")));
    }
    if cur.pos != body.len() {
        return Err(corrupt(format!("{} trailing bytes after snapshot", body.len() - cur.pos)));
    }
    let embeddings = Matrix::from_vec(value_count, dim, data);

    Ok(PersistedGeneration { generation, write_version, categories, values, groups, embeddings })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut catalog = TextValueCatalog::default();
        let titles = catalog.add_category("movies", "title");
        let names = catalog.add_category("persons", "name");
        catalog.intern(titles, "alien");
        catalog.intern(names, "ridley scott");
        let groups = vec![RelationGroup::new(
            "movies.title~persons.name".into(),
            titles,
            names,
            RelationKind::ForeignKey,
            vec![(0, 1)],
        )];
        let embeddings = Matrix::from_rows(&[vec![1.0, -0.5], vec![0.25, 2.0]]);
        encode(7, 42, &catalog, &groups, &embeddings)
    }

    #[test]
    fn round_trip() {
        let bytes = sample();
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded.generation, 7);
        assert_eq!(decoded.write_version, 42);
        assert_eq!(
            decoded.categories,
            vec![
                ("movies".to_string(), "title".to_string()),
                ("persons".to_string(), "name".to_string())
            ]
        );
        assert_eq!(decoded.values[0], (0, "alien".to_string()));
        assert_eq!(decoded.values[1], (1, "ridley scott".to_string()));
        assert_eq!(decoded.groups.len(), 1);
        assert_eq!(decoded.groups[0].edges, vec![(0, 1)]);
        assert_eq!(decoded.groups[0].kind, RelationKind::ForeignKey);
        assert_eq!(decoded.embeddings.row(1), &[0.25, 2.0]);
    }

    #[test]
    fn every_body_bit_flip_is_caught() {
        let bytes = sample();
        for pos in HEADER_LEN..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0x10;
            let err = decode(&corrupted).unwrap_err();
            assert_eq!(err, corrupt("checksum mismatch"), "byte {pos}");
        }
    }

    #[test]
    fn header_damage_is_typed() {
        let bytes = sample();
        assert_eq!(decode(&bytes[..8]).unwrap_err(), corrupt("truncated header"));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            decode(&wrong_magic).unwrap_err(),
            corrupt("bad magic (not an embedding snapshot)")
        );
        let mut future = bytes.clone();
        future[4..8].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(decode(&future).unwrap_err(), corrupt("unsupported snapshot version 9"));
        // Truncating the body is caught by the checksum, not a panic.
        assert!(decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
