//! Evaluation of the retrofitting objective Ψ (Eq. 4–6) under the RO
//! parameterization — used for convergence diagnostics and the property
//! tests that validate the convexity theory.

use retro_linalg::{vector, Matrix};

use crate::hyper::Hyperparameters;
use crate::problem::RetrofitProblem;

/// The three components of Ψ(W).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LossBreakdown {
    /// `Σ αᵢ‖vᵢ − v'ᵢ‖²` — anchor term.
    pub anchor: f64,
    /// `Σ βᵢ‖vᵢ − cᵢ‖²` — categorial term (Eq. 5).
    pub categorial: f64,
    /// `Σ_r Σ_{(i,j)∈Er} γ^r_i‖vᵢ − vⱼ‖²` — relational attraction.
    pub attraction: f64,
    /// `Σ_r Σ_{(i,k)∈Ẽr} δ^r_i‖vᵢ − vₖ‖²` — relational repulsion
    /// (subtracted in Ψ).
    pub repulsion: f64,
}

impl LossBreakdown {
    /// Ψ(W) = anchor + categorial + attraction − repulsion.
    pub fn total(&self) -> f64 {
        self.anchor + self.categorial + self.attraction - self.repulsion
    }
}

/// Evaluate Ψ(W) for an embedding matrix under the RO weight derivation.
///
/// The repulsion term over `Ẽr(i)` (all targets of `r` not related to `i`)
/// is computed with the same algebra as the Eq. 15 solver optimization:
/// `Σ_{k∈targets} ‖vᵢ−vₖ‖² = |T|·‖vᵢ‖² − 2·vᵢ·t_r + Σ_k‖vₖ‖²`, minus the
/// explicitly-enumerated related pairs.
pub fn evaluate_loss(
    problem: &RetrofitProblem,
    params: &Hyperparameters,
    w: &Matrix,
) -> LossBreakdown {
    let n = problem.len();
    assert_eq!(w.rows(), n, "evaluate_loss: row count mismatch");
    let beta = problem.beta_weights(params);

    let mut anchor = 0.0f64;
    let mut categorial = 0.0f64;
    for (i, &b) in beta.iter().enumerate() {
        anchor += params.alpha as f64 * vector::dist_sq(w.row(i), problem.w0.row(i)) as f64;
        if b != 0.0 {
            categorial += b as f64 * vector::dist_sq(w.row(i), problem.centroid_of(i)) as f64;
        }
    }

    let mut attraction = 0.0f64;
    let mut repulsion = 0.0f64;
    for dg in problem.directed_groups(params, true) {
        for &(i, j) in &dg.group.edges {
            let g = dg.own.gamma_i[i as usize] as f64;
            attraction += g * vector::dist_sq(w.row(i as usize), w.row(j as usize)) as f64;
        }
        let dh = dg.delta_hat() as f64;
        if dh == 0.0 || dg.targets.is_empty() {
            continue;
        }
        // Precompute t_r and Σ‖vₖ‖² over targets.
        let dim = w.cols();
        let mut t_sum = vec![0.0f32; dim];
        let mut sq_sum = 0.0f64;
        for &k in &dg.targets {
            vector::axpy(1.0, w.row(k as usize), &mut t_sum);
            sq_sum += vector::norm_sq(w.row(k as usize)) as f64;
        }
        let t_count = dg.targets.len() as f64;
        for &s in &dg.sources {
            let vi = w.row(s as usize);
            let all = t_count * vector::norm_sq(vi) as f64 - 2.0 * vector::dot(vi, &t_sum) as f64
                + sq_sum;
            // Subtract the related pairs (they belong to Er, not Ẽr).
            let mut related = 0.0f64;
            for &(i, k) in &dg.group.edges {
                if i == s {
                    related += vector::dist_sq(vi, w.row(k as usize)) as f64;
                }
            }
            repulsion += dh * (all - related);
        }
    }

    LossBreakdown { anchor, categorial, attraction, repulsion }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TextValueCatalog;
    use crate::relations::{RelationGroup, RelationKind};
    use crate::solver::solve_ro;
    use retro_embed::EmbeddingSet;

    fn problem() -> RetrofitProblem {
        let mut catalog = TextValueCatalog::default();
        let ca = catalog.add_category("movies", "title");
        let cb = catalog.add_category("countries", "name");
        let a = catalog.intern(ca, "amelie");
        let b = catalog.intern(ca, "inception");
        let c = catalog.intern(ca, "godfather");
        let x = catalog.intern(cb, "france");
        let y = catalog.intern(cb, "usa");
        let groups = vec![RelationGroup::new(
            "movies.title~countries.name".into(),
            ca,
            cb,
            RelationKind::ForeignKey,
            vec![(a, x), (b, y), (c, y)],
        )];
        let base = EmbeddingSet::new(
            vec![
                "amelie".into(),
                "inception".into(),
                "godfather".into(),
                "france".into(),
                "usa".into(),
            ],
            vec![
                vec![1.0, 0.2],
                vec![-0.3, 1.0],
                vec![0.1, -0.8],
                vec![0.9, 0.5],
                vec![-0.5, -0.5],
            ],
        );
        RetrofitProblem::from_parts(catalog, groups, &base)
    }

    #[test]
    fn loss_is_zero_at_w0_with_alpha_only() {
        let p = problem();
        let params = Hyperparameters::new(1.0, 0.0, 0.0, 0.0);
        let l = evaluate_loss(&p, &params, &p.w0);
        assert_eq!(l.anchor, 0.0);
        assert_eq!(l.total(), 0.0);
    }

    #[test]
    fn attraction_counts_both_directions() {
        let p = problem();
        let params = Hyperparameters::new(1.0, 0.0, 2.0, 0.0);
        let l = evaluate_loss(&p, &params, &p.w0);
        // Hand value: forward γ^r_i = 2/(od·(|Ri|+1)) = 2/(1·2) = 1 for each
        // of the 3 movie sources. Inverted: usa has od 2 → γ = 2/(2·2)=0.5,
        // france od 1 → 1. Distances: a–x: 0.01+0.09=0.1; b–y: 0.04+2.25=2.29;
        // c–y: 0.36+0.09=0.45.
        let forward = 0.1 + 2.29 + 0.45;
        let backward = 1.0 * 0.1 + 0.5 * (2.29 + 0.45);
        assert!((l.attraction - (forward + backward)) / (forward + backward) < 1e-5);
    }

    #[test]
    fn solver_reduces_loss_under_convex_config() {
        let p = problem();
        // Convex per the Eq. 24 check: generous α, tiny δ.
        let params = Hyperparameters::new(4.0, 0.5, 1.0, 0.1);
        let check = crate::hyper::check_convexity(&p.groups, &p.relation_counts, &params, p.len());
        assert!(check.convex, "test premise: configuration must be convex");
        let before = evaluate_loss(&p, &params, &p.w0).total();
        let w = solve_ro(&p, &params, 20);
        let after = evaluate_loss(&p, &params, &w).total();
        assert!(after <= before + 1e-6, "after {after} before {before}");
    }

    #[test]
    fn more_iterations_never_increase_loss_much() {
        let p = problem();
        let params = Hyperparameters::new(4.0, 0.5, 1.0, 0.1);
        let mut prev = f64::INFINITY;
        for iters in [1usize, 2, 5, 10, 20] {
            let w = solve_ro(&p, &params, iters);
            let loss = evaluate_loss(&p, &params, &w).total();
            assert!(loss <= prev + 1e-6, "iters {iters}: {loss} > {prev}");
            prev = loss;
        }
    }

    #[test]
    fn repulsion_increases_when_unrelated_vectors_coincide() {
        let p = problem();
        let params = Hyperparameters::new(1.0, 0.0, 0.0, 1.0);
        // Collapse every vector onto one point: all distances zero →
        // repulsion zero. Spread them out → repulsion grows.
        let collapsed = Matrix::zeros(p.len(), 2);
        let l0 = evaluate_loss(&p, &params, &collapsed);
        assert_eq!(l0.repulsion, 0.0);
        let l1 = evaluate_loss(&p, &params, &p.w0);
        assert!(l1.repulsion > 0.0);
    }
}
