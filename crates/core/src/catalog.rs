//! Text-value extraction: categories and the §3.3 uniqueness rules.
//!
//! * Every text column of the database is one *category* `C`.
//! * The same string in two different columns yields **two** text values
//!   (two embeddings) — "Amélie" the person and "Amélie" the movie differ.
//! * The same string twice in one column yields **one** text value.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use retro_store::Database;

/// Word-at-a-time string hasher for the interning maps.
///
/// The default SipHash (and byte-at-a-time FNV) price long keys at roughly
/// a cycle per byte — and extraction hashes *every* cell of every text
/// column, including multi-hundred-byte overview and review bodies.
/// Folding eight bytes per multiply (FxHash-style rotate–xor–multiply)
/// cuts that by most of an order of magnitude. Determinism is free:
/// interned ids are assigned in first-occurrence row order, so the hash
/// function can never change an id, only the probe cost.
#[derive(Default)]
pub struct TextHasher(u64);

impl Hasher for TextHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h = self.0;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let v = u64::from_le_bytes(chunk.try_into().expect("exact chunk"));
            h = (h.rotate_left(5) ^ v).wrapping_mul(K);
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        self.0 = (h.rotate_left(5) ^ tail).wrapping_mul(K);
    }
}

type InternMap = HashMap<String, u32, BuildHasherDefault<TextHasher>>;

/// One category = one text column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Category {
    /// Owning table.
    pub table: String,
    /// Column within the table.
    pub column: String,
}

impl Category {
    /// `table.column` label (used for graph blank nodes and diagnostics).
    pub fn label(&self) -> String {
        format!("{}.{}", self.table, self.column)
    }
}

/// The extracted text values of a database.
///
/// Ids are dense `0..len` and deterministic: tables in name order, columns
/// in schema order, values in first-occurrence row order.
///
/// A catalog is either *flat* (every value stored inline — what
/// [`TextValueCatalog::extract`] produces) or *layered*: an immutable
/// shared `base` holding ids `0..base_len` plus a small overlay for the
/// ids appended since. Layered catalogs are how delta-scoped refresh
/// extends a half-million-value catalog in `O(Δ)` instead of cloning it;
/// see [`TextValueCatalog::extend_clone`]. The base of a layered catalog
/// is always flat, so every accessor is at most two probes deep.
#[derive(Clone, Debug, Default)]
pub struct TextValueCatalog {
    /// Shared immutable prefix (ids `0..base_len`); `None` for a flat
    /// catalog. Invariant: the base itself is flat.
    base: Option<Arc<TextValueCatalog>>,
    /// Cached `base.len()` (0 when flat).
    base_len: usize,
    /// All categories, including the base's (small: one per text column).
    categories: Vec<Category>,
    /// Per overlay value (ids `base_len..`): its category id.
    value_category: Vec<u32>,
    /// Per overlay value: the text itself.
    value_text: Vec<String>,
    /// Per category: `text → value id` for overlay values only; stored
    /// ids are global. One map per category (not one map keyed by
    /// `(category, String)`) so a lookup probes with a **borrowed** `&str`
    /// — extraction probes every cell of every text column, and a
    /// per-probe key allocation was the single hottest line of the
    /// full-extraction profile. Invariant: `index.len() == categories.len()`.
    index: Vec<InternMap>,
}

impl TextValueCatalog {
    /// Extract all text values of `db`.
    ///
    /// `skip_columns` lists `(table, column)` pairs to ignore — the
    /// evaluation ablates label columns this way (e.g. training language
    /// imputation embeddings "by ignoring the original_language column").
    pub fn extract(db: &Database, skip_columns: &[(&str, &str)]) -> Self {
        let mut catalog = Self::default();
        for table in db.tables() {
            let schema = table.schema();
            for col_idx in schema.text_columns() {
                let column = &schema.columns[col_idx].name;
                if skip_columns.iter().any(|(t, c)| *t == schema.name && *c == column.as_str()) {
                    continue;
                }
                let cat_id = catalog.add_category(&schema.name, column);
                for value in table.column_values(col_idx) {
                    if let Some(text) = value.as_text() {
                        catalog.intern(cat_id, text);
                    }
                }
            }
        }
        catalog
    }

    /// Register a category (idempotent) and return its id.
    pub fn add_category(&mut self, table: &str, column: &str) -> u32 {
        if let Some(id) = self.category_id(table, column) {
            return id;
        }
        let id = self.categories.len() as u32;
        self.categories.push(Category { table: table.to_owned(), column: column.to_owned() });
        self.index.push(InternMap::default());
        id
    }

    /// Intern a text value into a category; returns its id (existing or new).
    ///
    /// `category` must come from [`Self::add_category`] /
    /// [`Self::category_id`] — an id this catalog never issued panics.
    pub fn intern(&mut self, category: u32, text: &str) -> u32 {
        if let Some(id) = self.lookup_in_category(category, text) {
            return id as u32;
        }
        let id = (self.base_len + self.value_text.len()) as u32;
        self.value_category.push(category);
        self.value_text.push(text.to_owned());
        self.index[category as usize].insert(text.to_owned(), id);
        id
    }

    /// An `O(Δ)` clone for appending: the result shares this catalog's
    /// values instead of copying them. A flat catalog becomes the shared
    /// base of a fresh (empty-overlay) layer; a layered one keeps its
    /// base and clones only the overlay. Either way, [`Self::intern`] on
    /// the result leaves `self` untouched — exactly the copy-on-write a
    /// delta refresh needs, without paying for the hundreds of thousands
    /// of strings that did not change.
    pub fn extend_clone(self: &Arc<Self>) -> TextValueCatalog {
        match &self.base {
            Some(base) => TextValueCatalog {
                base: Some(Arc::clone(base)),
                base_len: self.base_len,
                categories: self.categories.clone(),
                value_category: self.value_category.clone(),
                value_text: self.value_text.clone(),
                index: self.index.clone(),
            },
            None => TextValueCatalog {
                base: Some(Arc::clone(self)),
                base_len: self.len(),
                categories: self.categories.clone(),
                value_category: Vec::new(),
                value_text: Vec::new(),
                index: vec![InternMap::default(); self.categories.len()],
            },
        }
    }

    /// Number of text values (embeddings to learn).
    pub fn len(&self) -> usize {
        self.base_len + self.value_text.len()
    }

    /// True when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of categories.
    pub fn category_count(&self) -> usize {
        self.categories.len()
    }

    /// The categories in id order.
    pub fn categories(&self) -> &[Category] {
        &self.categories
    }

    /// A text value's category id.
    pub fn category_of(&self, value: usize) -> u32 {
        match value.checked_sub(self.base_len) {
            Some(local) => self.value_category[local],
            None => self.base.as_ref().expect("id below base_len").value_category[value],
        }
    }

    /// A text value's text.
    pub fn text(&self, value: usize) -> &str {
        match value.checked_sub(self.base_len) {
            Some(local) => &self.value_text[local],
            None => &self.base.as_ref().expect("id below base_len").value_text[value],
        }
    }

    /// Look up a value id by table, column and text.
    pub fn lookup(&self, table: &str, column: &str, text: &str) -> Option<usize> {
        let cat = self.category_id(table, column)?;
        self.lookup_in_category(cat, text)
    }

    /// Look up a value id within a known category. Probes with the
    /// borrowed `text` — no allocation (this runs once per cell during
    /// extraction and once per row-pair during relation extraction).
    pub fn lookup_in_category(&self, category: u32, text: &str) -> Option<usize> {
        if let Some(base) = &self.base {
            if let Some(&id) = base.index.get(category as usize).and_then(|m| m.get(text)) {
                return Some(id as usize);
            }
        }
        self.index.get(category as usize).and_then(|m| m.get(text)).map(|&id| id as usize)
    }

    /// The category id of `table.column`. A linear scan: categories number
    /// one per text column (tens, not thousands) and this runs once per
    /// column pair, so a scan beats maintaining a string-keyed side map.
    pub fn category_id(&self, table: &str, column: &str) -> Option<u32> {
        self.categories
            .iter()
            .position(|c| c.table == table && c.column == column)
            .map(|i| i as u32)
    }

    /// All value ids of one category.
    pub fn values_in_category(&self, category: u32) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.category_of(i) == category).collect()
    }

    /// Iterate `(id, category, text)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32, &str)> {
        (0..self.len()).map(move |i| (i, self.category_of(i), self.text(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    fn db() -> Database {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, lang TEXT);
             INSERT INTO persons VALUES (1, 'Amelie'), (2, 'Luc Besson'), (3, 'Amelie');
             INSERT INTO movies VALUES (1, 'Amelie', 'fr'), (2, 'Alien', 'en'), (3, 'Brazil', 'en');",
        )
        .unwrap();
        db
    }

    #[test]
    fn categories_are_text_columns() {
        let cat = TextValueCatalog::extract(&db(), &[]);
        // movies.title, movies.lang, persons.name (tables in name order).
        assert_eq!(cat.category_count(), 3);
        let labels: Vec<_> = cat.categories().iter().map(Category::label).collect();
        assert_eq!(labels, vec!["movies.title", "movies.lang", "persons.name"]);
    }

    #[test]
    fn same_text_same_column_is_one_value() {
        let cat = TextValueCatalog::extract(&db(), &[]);
        // persons has two rows with "Amelie" but only one value.
        let persons_amelies: Vec<_> = (0..cat.len())
            .filter(|&i| cat.text(i) == "Amelie")
            .filter(|&i| {
                let c = &cat.categories()[cat.category_of(i) as usize];
                c.table == "persons"
            })
            .collect();
        assert_eq!(persons_amelies.len(), 1);
    }

    #[test]
    fn same_text_different_column_is_two_values() {
        let cat = TextValueCatalog::extract(&db(), &[]);
        let movie = cat.lookup("movies", "title", "Amelie").unwrap();
        let person = cat.lookup("persons", "name", "Amelie").unwrap();
        assert_ne!(movie, person);
    }

    #[test]
    fn counts_match_expectation() {
        let cat = TextValueCatalog::extract(&db(), &[]);
        // titles: Amelie, Alien, Brazil (3); lang: fr, en (2); names: Amelie, Luc Besson (2).
        assert_eq!(cat.len(), 7);
    }

    #[test]
    fn skip_columns_ablate_label_columns() {
        let cat = TextValueCatalog::extract(&db(), &[("movies", "lang")]);
        assert_eq!(cat.category_count(), 2);
        assert!(cat.lookup("movies", "lang", "en").is_none());
        assert_eq!(cat.len(), 5);
    }

    #[test]
    fn values_in_category_enumerates() {
        let cat = TextValueCatalog::extract(&db(), &[]);
        let lang_cat = cat.category_id("movies", "lang").unwrap();
        let vals = cat.values_in_category(lang_cat);
        let texts: Vec<_> = vals.iter().map(|&v| cat.text(v)).collect();
        assert_eq!(texts, vec!["fr", "en"]);
    }

    #[test]
    fn deterministic_across_extractions() {
        let a = TextValueCatalog::extract(&db(), &[]);
        let b = TextValueCatalog::extract(&db(), &[]);
        for i in 0..a.len() {
            assert_eq!(a.text(i), b.text(i));
            assert_eq!(a.category_of(i), b.category_of(i));
        }
    }

    #[test]
    fn extend_clone_shares_the_base_and_appends_on_top() {
        let flat = Arc::new(TextValueCatalog::extract(&db(), &[]));
        let mut layered = flat.extend_clone();
        let cat = layered.category_id("movies", "title").unwrap();
        // Existing values resolve to their base ids, not fresh ones.
        assert_eq!(
            layered.intern(cat, "Amelie") as usize,
            flat.lookup("movies", "title", "Amelie").unwrap()
        );
        let id = layered.intern(cat, "Stalker");
        assert_eq!(id as usize, flat.len());
        assert_eq!(layered.len(), flat.len() + 1);
        assert_eq!(layered.text(id as usize), "Stalker");
        assert_eq!(layered.category_of(id as usize), cat);
        assert_eq!(layered.lookup("movies", "title", "Stalker"), Some(id as usize));
        // The shared base is untouched by the append.
        assert_eq!(flat.len(), 7);
        assert!(flat.lookup("movies", "title", "Stalker").is_none());
        // Extending a layered catalog keeps the same flat base (depth ≤ 2)
        // and carries the overlay forward.
        let deeper = Arc::new(layered).extend_clone();
        assert_eq!(deeper.len(), flat.len() + 1);
        assert_eq!(deeper.text(id as usize), "Stalker");
        // `iter` walks base + overlay in one dense id order.
        let ids: Vec<usize> = deeper.iter().map(|(i, _, _)| i).collect();
        assert_eq!(ids, (0..deeper.len()).collect::<Vec<_>>());
    }
}
