//! Assembly of the retrofitting problem: `W0`, category centroids, relation
//! groups in both directions, and per-node weight derivations.

use retro_embed::EmbeddingSet;
use retro_linalg::Matrix;
use retro_store::Database;

use crate::catalog::TextValueCatalog;
use crate::hyper::{beta_i, Hyperparameters};
use crate::relations::{extract_relations, relation_type_counts, RelationGroup};

/// A fully-assembled retrofitting problem instance.
///
/// `groups` holds the *forward* relation groups as extracted; the solvers
/// materialize both directions via [`RetrofitProblem::directed_groups`].
///
/// The catalog is held behind an `Arc`: it is immutable once assembled, and
/// sharing it lets [`crate::RetroOutput`] (and every published serving
/// snapshot) reference the same allocation instead of deep-copying a
/// paper-scale string table on every solve or refresh.
#[derive(Clone, Debug)]
pub struct RetrofitProblem {
    /// Text values and categories (shared, immutable).
    pub catalog: std::sync::Arc<TextValueCatalog>,
    /// Forward relation groups.
    pub groups: Vec<RelationGroup>,
    /// `n × D` initial vectors (§3.1 tokenized centroids; zero rows for OOV).
    pub w0: Matrix,
    /// Per value: true when the §3.1 tokenization found no vocabulary match.
    pub oov: Vec<bool>,
    /// Per *category*: the constant centroid `cᵢ` of Eq. 5 (centroid of the
    /// original vectors of all values in the column).
    pub category_centroids: Matrix,
    /// `|Ri|` per value (directed-group participation count).
    pub relation_counts: Vec<u32>,
}

impl RetrofitProblem {
    /// Build a problem from a database and a base embedding.
    ///
    /// * `skip_columns` — text columns to ignore entirely (label ablation),
    /// * `skip_relations` — relation groups (by name substring) to drop
    ///   (relation ablation for link prediction).
    pub fn build(
        db: &Database,
        base: &EmbeddingSet,
        skip_columns: &[(&str, &str)],
        skip_relations: &[&str],
    ) -> Self {
        let catalog = TextValueCatalog::extract(db, skip_columns);
        let groups = extract_relations(db, &catalog, skip_relations);
        Self::from_parts(catalog, groups, base)
    }

    /// Build from pre-extracted parts (used by incremental maintenance and
    /// the toy examples).
    pub fn from_parts(
        catalog: TextValueCatalog,
        groups: Vec<RelationGroup>,
        base: &EmbeddingSet,
    ) -> Self {
        let tokenizer = base.tokenizer();
        let n = catalog.len();
        let dim = base.dim();
        let mut w0 = Matrix::zeros(n, dim);
        let mut oov = vec![false; n];
        for (i, oov_flag) in oov.iter_mut().enumerate() {
            let (vec, is_oov) = tokenizer.initial_vector(base, catalog.text(i));
            w0.set_row(i, &vec);
            *oov_flag = is_oov;
        }

        // Eq. 5: cᵢ is the centroid of the *original* vectors of the value's
        // category — constant across iterations, so computed once per
        // category.
        let m = catalog.category_count();
        let mut category_centroids = Matrix::zeros(m, dim);
        let mut counts = vec![0usize; m];
        for i in 0..n {
            let c = catalog.category_of(i) as usize;
            counts[c] += 1;
            let row = w0.row(i).to_vec();
            retro_linalg::vector::axpy(1.0, &row, category_centroids.row_mut(c));
        }
        for (c, &count) in counts.iter().enumerate() {
            if count > 0 {
                retro_linalg::vector::scale(1.0 / count as f32, category_centroids.row_mut(c));
            }
        }

        // Directed participation counts need forward + inverted groups.
        let relation_counts = relation_type_counts(&groups, n);

        Self {
            catalog: std::sync::Arc::new(catalog),
            groups,
            w0,
            oov,
            category_centroids,
            relation_counts,
        }
    }

    /// Number of text values.
    pub fn len(&self) -> usize {
        self.catalog.len()
    }

    /// True when there are no text values.
    pub fn is_empty(&self) -> bool {
        self.catalog.is_empty()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.w0.cols()
    }

    /// The Eq. 5 centroid for value `i`.
    pub fn centroid_of(&self, i: usize) -> &[f32] {
        self.category_centroids.row(self.catalog.category_of(i) as usize)
    }

    /// Materialize both directions of every relation group together with
    /// their derived weights — the solvers' working representation.
    ///
    /// Kernel construction is on the solve path, so this avoids the
    /// per-direction sort/dedup/binary-search passes of the convenience
    /// accessors ([`RelationGroup::sources`] etc.): one counting pass over
    /// each group's edges yields both directions' out-degrees, from which
    /// the distinct id lists (ascending id scan ≡ sorted + deduped), the
    /// Eq. 13 `mc`, and the per-source weights all follow. The degree
    /// scratch is reused across groups by resetting only touched entries.
    pub fn directed_groups(&self, params: &Hyperparameters, ro_delta: bool) -> Vec<DirectedGroup> {
        let n = self.len();
        let mut out = Vec::with_capacity(self.groups.len() * 2);
        let mut fwd_deg = vec![0u32; n];
        let mut inv_deg = vec![0u32; n];
        for group in &self.groups {
            for &(i, j) in &group.edges {
                fwd_deg[i as usize] += 1;
                inv_deg[j as usize] += 1;
            }
            let (sources, src_deg) = distinct_with_degrees(&fwd_deg);
            let (targets, tgt_deg) = distinct_with_degrees(&inv_deg);
            // `mr` and `mc` are direction-symmetric (both scan every edge's
            // two endpoints / both distinct counts), so compute them once.
            let mr_v = crate::hyper::mr(group, &self.relation_counts);
            let mc_v = sources.len().max(targets.len()).max(1);
            let w_fwd = crate::hyper::derive_weights_from_degrees(
                &fwd_deg,
                &self.relation_counts,
                params,
                mc_v,
                mr_v,
                ro_delta,
            );
            let w_inv = crate::hyper::derive_weights_from_degrees(
                &inv_deg,
                &self.relation_counts,
                params,
                mc_v,
                mr_v,
                ro_delta,
            );
            for &(i, j) in &group.edges {
                fwd_deg[i as usize] = 0;
                inv_deg[j as usize] = 0;
            }
            let inverted = group.inverted();
            out.push(DirectedGroup {
                group: group.clone(),
                own: w_fwd.clone(),
                rev: w_inv.clone(),
                sources: sources.clone(),
                targets: targets.clone(),
                source_out_degree: src_deg,
            });
            out.push(DirectedGroup {
                group: inverted,
                own: w_inv,
                rev: w_fwd,
                sources: targets,
                targets: sources,
                source_out_degree: tgt_deg,
            });
        }
        out
    }

    /// Per-node β of Eq. 12.
    pub fn beta_weights(&self, params: &Hyperparameters) -> Vec<f32> {
        beta_i(&self.relation_counts, params.beta)
    }
}

/// One *directed* relation group with the weights of its own direction
/// (`own`) and of its reverse (`rev`, used by the RO solver's symmetric
/// `γ^r_i + γ^r̄_j` coefficients).
#[derive(Clone, Debug)]
pub struct DirectedGroup {
    /// The group (edges run source → target).
    pub group: RelationGroup,
    /// Weights for this direction (`γ^r_i`, `δ^r_i` per source id).
    pub own: crate::hyper::GroupWeights,
    /// Weights of the reverse direction (`γ^r̄_j`, `δ^r̄_j` per *target* id
    /// of this direction).
    pub rev: crate::hyper::GroupWeights,
    /// Distinct source ids.
    pub sources: Vec<u32>,
    /// Distinct target ids.
    pub targets: Vec<u32>,
    /// Out-degree per source (aligned with `sources`).
    pub source_out_degree: Vec<u32>,
}

/// Collect the ids with nonzero degree (ascending, i.e. sorted and
/// deduped) together with their degrees, from a dense degree array.
fn distinct_with_degrees(deg: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut ids = Vec::new();
    let mut out_deg = Vec::new();
    for (i, &d) in deg.iter().enumerate() {
        if d > 0 {
            ids.push(i as u32);
            out_deg.push(d);
        }
    }
    (ids, out_deg)
}

impl DirectedGroup {
    /// The shared RO repulsion weight `δ̂r = δ/(mc·mr)` (identical for every
    /// participant under Eq. 13; `own` and `rev` agree because `mc`/`mr` are
    /// direction-symmetric).
    pub fn delta_hat(&self) -> f32 {
        // Any source's delta is the uniform value; zero if no sources.
        self.sources.first().map(|&s| self.own.delta_i[s as usize]).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_store::sql;

    fn setup() -> (Database, EmbeddingSet) {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE countries (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  country_id INTEGER REFERENCES countries(id));
             INSERT INTO countries VALUES (1, 'france'), (2, 'usa');
             INSERT INTO movies VALUES (1, 'amelie', 1), (2, 'inception', 2),
                                       (3, 'godfather', 2), (4, 'zorgon', 2);",
        )
        .unwrap();
        let base = EmbeddingSet::new(
            vec![
                "amelie".into(),
                "inception".into(),
                "godfather".into(),
                "france".into(),
                "usa".into(),
            ],
            vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.2, 0.8], vec![0.9, 0.1], vec![0.1, 0.9]],
        );
        (db, base)
    }

    #[test]
    fn w0_rows_come_from_tokenizer() {
        let (db, base) = setup();
        let p = RetrofitProblem::build(&db, &base, &[], &[]);
        let amelie = p.catalog.lookup("movies", "title", "amelie").unwrap();
        assert_eq!(p.w0.row(amelie), &[1.0, 0.0]);
        assert!(!p.oov[amelie]);
    }

    #[test]
    fn oov_values_get_zero_rows() {
        let (db, base) = setup();
        let p = RetrofitProblem::build(&db, &base, &[], &[]);
        let zorgon = p.catalog.lookup("movies", "title", "zorgon").unwrap();
        assert!(p.oov[zorgon]);
        assert_eq!(p.w0.row(zorgon), &[0.0, 0.0]);
    }

    #[test]
    fn category_centroid_matches_eq5() {
        let (db, base) = setup();
        let p = RetrofitProblem::build(&db, &base, &[], &[]);
        let amelie = p.catalog.lookup("movies", "title", "amelie").unwrap();
        // Titles: amelie [1,0], inception [0,1], godfather [.2,.8],
        // zorgon [0,0] → centroid [0.3, 0.45].
        let c = p.centroid_of(amelie);
        assert!((c[0] - 0.3).abs() < 1e-6);
        assert!((c[1] - 0.45).abs() < 1e-6);
    }

    #[test]
    fn directed_groups_double_forward_groups() {
        let (db, base) = setup();
        let p = RetrofitProblem::build(&db, &base, &[], &[]);
        assert_eq!(p.groups.len(), 1); // movies.title~countries.name
        let dg = p.directed_groups(&Hyperparameters::default(), true);
        assert_eq!(dg.len(), 2);
        assert_eq!(dg[0].sources.len(), 4);
        assert_eq!(dg[0].targets.len(), 2);
        assert_eq!(dg[1].sources.len(), 2); // inverted: countries are sources
    }

    #[test]
    fn delta_hat_is_uniform_for_ro() {
        let (db, base) = setup();
        let p = RetrofitProblem::build(&db, &base, &[], &[]);
        let params = Hyperparameters::new(1.0, 0.0, 1.0, 4.0);
        let dg = p.directed_groups(&params, true);
        // mc = max(4 titles, 2 countries) = 4; mr = 2 (one group each
        // direction → counts 1, +1). δ̂ = 4/(4·2) = 0.5.
        assert!((dg[0].delta_hat() - 0.5).abs() < 1e-6);
        assert!((dg[1].delta_hat() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn out_degrees_align_with_sources() {
        let (db, base) = setup();
        let p = RetrofitProblem::build(&db, &base, &[], &[]);
        let dg = p.directed_groups(&Hyperparameters::default(), false);
        // Inverted group: usa has 3 movies, france 1.
        let inv = &dg[1];
        let usa = p.catalog.lookup("countries", "name", "usa").unwrap() as u32;
        let pos = inv.sources.binary_search(&usa).unwrap();
        assert_eq!(inv.source_out_degree[pos], 3);
    }
}
