//! Metrics and seeded sampling helpers.

use rand::seq::SliceRandom;
use rand::Rng;

/// Classification accuracy.
pub fn accuracy<T: PartialEq>(predictions: &[T], truth: &[T]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "accuracy: length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions.iter().zip(truth).filter(|(p, t)| p == t).count();
    correct as f64 / predictions.len() as f64
}

/// Mean absolute error.
pub fn mean_absolute_error(predictions: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(predictions.len(), truth.len(), "mae: length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions.iter().zip(truth).map(|(p, t)| (p - t).abs()).sum::<f64>()
        / predictions.len() as f64
}

/// Shuffle `0..n` and split into `(train, test)` index sets of the given
/// sizes (panics if `n < train + test`).
pub fn split_indices<R: Rng + ?Sized>(
    n: usize,
    train: usize,
    test: usize,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    assert!(n >= train + test, "split_indices: need {} samples, have {n}", train + test);
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let test_set = idx[train..train + test].to_vec();
    let train_set = idx[..train].to_vec();
    (train_set, test_set)
}

/// Balanced binary sampling: draw `per_class` positives and negatives
/// (§5.5.1 samples 3000 US + 3000 non-US directors), then split each half
/// into train/test halves. Returns `(train, test)` as index lists into the
/// original slice.
pub fn balanced_binary_split<R: Rng + ?Sized>(
    labels: &[bool],
    per_class: usize,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    assert!(
        pos.len() >= per_class && neg.len() >= per_class,
        "balanced_binary_split: need {per_class} per class, have {}/{}",
        pos.len(),
        neg.len()
    );
    pos.shuffle(rng);
    neg.shuffle(rng);
    let half = per_class / 2;
    let mut train: Vec<usize> = Vec::with_capacity(per_class);
    let mut test: Vec<usize> = Vec::with_capacity(per_class);
    train.extend(&pos[..half]);
    train.extend(&neg[..half]);
    test.extend(&pos[half..per_class]);
    test.extend(&neg[half..per_class]);
    (train, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 9, 3]), 2.0 / 3.0);
        assert_eq!(accuracy::<u8>(&[], &[]), 0.0);
    }

    #[test]
    fn mae_matches_hand_computation() {
        assert_eq!(mean_absolute_error(&[1.0, -1.0], &[2.0, 1.0]), 1.5);
    }

    #[test]
    fn split_indices_are_disjoint_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = split_indices(100, 60, 30, &mut rng);
        assert_eq!(train.len(), 60);
        assert_eq!(test.len(), 30);
        for t in &test {
            assert!(!train.contains(t));
        }
    }

    #[test]
    #[should_panic(expected = "need 120 samples")]
    fn split_rejects_oversubscription() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = split_indices(100, 80, 40, &mut rng);
    }

    #[test]
    fn balanced_split_is_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let labels: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let (train, test) = balanced_binary_split(&labels, 40, &mut rng);
        let train_pos = train.iter().filter(|&&i| labels[i]).count();
        let test_pos = test.iter().filter(|&&i| labels[i]).count();
        assert_eq!(train_pos, 20);
        assert_eq!(test_pos, 20);
        assert_eq!(train.len(), 40);
        assert_eq!(test.len(), 40);
        for t in &test {
            assert!(!train.contains(t));
        }
    }
}
