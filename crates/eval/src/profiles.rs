//! Network profiles: the Fig. 5 architectures plus a lighter profile for
//! unit tests and quick runs.

use retro_nn::{Activation, Loss, Network, TrainConfig};

/// A reusable network recipe.
#[derive(Clone, Debug)]
pub struct NetProfile {
    /// Hidden layer widths.
    pub hidden: Vec<usize>,
    /// Hidden activation.
    pub activation: Activation,
    /// Learning rate.
    pub lr: f32,
    /// L2 regularization.
    pub l2: f32,
    /// Dropout rate.
    pub dropout: f32,
    /// Training-loop settings.
    pub train: TrainConfig,
}

impl NetProfile {
    /// Fig. 5a binary classifier: one 600-unit sigmoid hidden layer, L2 and
    /// dropout against overfitting, early stopping with patience 50.
    pub fn paper_binary() -> Self {
        Self {
            hidden: vec![600],
            activation: Activation::Sigmoid,
            lr: 0.002,
            l2: 1e-4,
            dropout: 0.2,
            train: TrainConfig {
                max_epochs: 300,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(50),
            },
        }
    }

    /// Fig. 5a imputation classifier: 600 → 300 sigmoid hidden layers,
    /// softmax output.
    pub fn paper_imputation() -> Self {
        Self {
            hidden: vec![600, 300],
            activation: Activation::Sigmoid,
            lr: 0.002,
            l2: 0.0,
            dropout: 0.2,
            train: TrainConfig {
                max_epochs: 300,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(50),
            },
        }
    }

    /// Fig. 5b regressor: four 300-unit ReLU hidden layers with dropout,
    /// linear output, MAE loss.
    pub fn paper_regression() -> Self {
        Self {
            hidden: vec![300, 300, 300, 300],
            activation: Activation::Relu,
            lr: 0.002,
            l2: 0.0,
            dropout: 0.1,
            train: TrainConfig {
                max_epochs: 300,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(50),
            },
        }
    }

    /// A lighter profile for unit tests and smoke runs: same shapes scaled
    /// down, fewer epochs. Orderings between embedding variants are
    /// preserved; absolute accuracies are a little lower.
    pub fn fast(hidden: usize) -> Self {
        Self {
            hidden: vec![hidden],
            activation: Activation::Sigmoid,
            lr: 0.01,
            l2: 1e-4,
            dropout: 0.0,
            train: TrainConfig {
                max_epochs: 150,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(40),
            },
        }
    }

    /// Scale epochs/patience (e.g. for grid searches where 10× fewer epochs
    /// suffice to rank configurations).
    pub fn with_epochs(mut self, max_epochs: usize, patience: Option<usize>) -> Self {
        self.train.max_epochs = max_epochs;
        self.train.patience = patience;
        self
    }

    /// Build a binary classifier network (sigmoid output, BCE).
    pub fn build_binary(&self, input_dim: usize, seed: u64) -> Network {
        let mut b = Network::builder(input_dim);
        for &h in &self.hidden {
            b = b.dense(h, self.activation);
        }
        b.dense(1, Activation::Sigmoid)
            .loss(Loss::BinaryCrossEntropy)
            .learning_rate(self.lr)
            .l2(self.l2)
            .dropout(self.dropout)
            .seed(seed)
            .build()
    }

    /// Build a multi-class classifier (softmax output, CCE).
    pub fn build_classifier(&self, input_dim: usize, classes: usize, seed: u64) -> Network {
        let mut b = Network::builder(input_dim);
        for &h in &self.hidden {
            b = b.dense(h, self.activation);
        }
        b.dense(classes, Activation::Softmax)
            .loss(Loss::CategoricalCrossEntropy)
            .learning_rate(self.lr)
            .l2(self.l2)
            .dropout(self.dropout)
            .seed(seed)
            .build()
    }

    /// Build a regressor (linear output, MAE).
    pub fn build_regressor(&self, input_dim: usize, seed: u64) -> Network {
        let mut b = Network::builder(input_dim);
        for &h in &self.hidden {
            b = b.dense(h, Activation::Relu);
        }
        b.dense(1, Activation::Linear)
            .loss(Loss::MeanAbsoluteError)
            .learning_rate(self.lr)
            .l2(self.l2)
            .dropout(self.dropout)
            .seed(seed)
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_linalg::Matrix;

    #[test]
    fn paper_profiles_have_figure5_shapes() {
        assert_eq!(NetProfile::paper_binary().hidden, vec![600]);
        assert_eq!(NetProfile::paper_imputation().hidden, vec![600, 300]);
        assert_eq!(NetProfile::paper_regression().hidden.len(), 4);
    }

    #[test]
    fn builders_produce_working_networks() {
        let p = NetProfile::fast(8);
        let x = Matrix::zeros(4, 6);
        assert_eq!(p.build_binary(6, 0).predict(&x).shape(), (4, 1));
        assert_eq!(p.build_classifier(6, 5, 0).predict(&x).shape(), (4, 5));
        assert_eq!(p.build_regressor(6, 0).predict(&x).shape(), (4, 1));
    }

    #[test]
    fn with_epochs_overrides_training() {
        let p = NetProfile::fast(8).with_epochs(5, None);
        assert_eq!(p.train.max_epochs, 5);
        assert_eq!(p.train.patience, None);
    }
}
