//! Non-embedding baselines of §5.4: MODE imputation and a DataWig-like
//! n-gram imputer.

pub mod datawig;
pub mod mode;

pub use datawig::{DataWigConfig, DataWigImputer};
pub use mode::mode_imputation_accuracy;
