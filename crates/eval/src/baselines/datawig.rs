//! A DataWig-like category imputer (Biessmann et al., CIKM 2018).
//!
//! DataWig encodes text cells with **character n-gram hashing** and feeds
//! the features to a neural classifier. This module reproduces that
//! pipeline: character 1–3-grams of all provided text columns are hashed
//! into a fixed-width bag-of-features vector, L2-normalized, and classified
//! with an MLP. Like the original, it sees only a *single table's* columns
//! — it cannot follow foreign keys to, say, the review table, which is
//! exactly the limitation the paper's Fig. 12 exposes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retro_linalg::{vector, Matrix};
use retro_nn::{Activation, Loss, Network, TrainConfig};

use crate::metrics::{accuracy, split_indices};

/// Imputer configuration.
#[derive(Clone, Copy, Debug)]
pub struct DataWigConfig {
    /// Hash-feature width (DataWig defaults to the low thousands; 512 keeps
    /// the reproduction fast without changing behaviour).
    pub n_features: usize,
    /// Hidden width of the classifier.
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training loop.
    pub train: TrainConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for DataWigConfig {
    fn default() -> Self {
        Self {
            n_features: 512,
            hidden: 128,
            lr: 0.005,
            train: TrainConfig {
                max_epochs: 120,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(25),
            },
            seed: 0xDA7A,
        }
    }
}

/// FNV-1a hash (stable across runs, unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Hash the character 1–3-grams of every text field into a feature vector.
pub fn ngram_features(fields: &[&str], n_features: usize) -> Vec<f32> {
    let mut features = vec![0.0f32; n_features];
    for field in fields {
        let lower = field.to_lowercase();
        let chars: Vec<char> = lower.chars().collect();
        for n in 1..=3usize {
            if chars.len() < n {
                continue;
            }
            for window in chars.windows(n) {
                let gram: String = window.iter().collect();
                let idx = (fnv1a(gram.as_bytes()) % n_features as u64) as usize;
                features[idx] += 1.0;
            }
        }
    }
    vector::normalize(&mut features);
    features
}

/// The imputer: rows of text fields → category predictions.
#[derive(Debug)]
pub struct DataWigImputer {
    config: DataWigConfig,
}

impl DataWigImputer {
    /// Create an imputer.
    pub fn new(config: DataWigConfig) -> Self {
        Self { config }
    }

    /// Featurize a dataset: one row of text fields per sample.
    pub fn featurize(&self, rows: &[Vec<&str>]) -> Matrix {
        let feats: Vec<Vec<f32>> =
            rows.iter().map(|fields| ngram_features(fields, self.config.n_features)).collect();
        Matrix::from_rows(&feats)
    }

    /// Run the full §5.5.2 protocol: per repetition split train/test, train
    /// the classifier on hashed features, record test accuracy.
    pub fn evaluate(
        &self,
        rows: &[Vec<&str>],
        labels: &[usize],
        n_classes: usize,
        train_n: usize,
        test_n: usize,
        repetitions: usize,
    ) -> Vec<f64> {
        assert_eq!(rows.len(), labels.len(), "datawig: row/label mismatch");
        let features = self.featurize(rows);
        let mut accs = Vec::with_capacity(repetitions);
        for rep in 0..repetitions {
            let mut rng =
                StdRng::seed_from_u64(self.config.seed ^ (rep as u64).wrapping_mul(0xBEEF));
            let (train_idx, test_idx) = split_indices(rows.len(), train_n, test_n, &mut rng);
            let x_train = features.select_rows(&train_idx);
            let mut y_rows = Vec::with_capacity(train_idx.len());
            for &i in &train_idx {
                let mut onehot = vec![0.0f32; n_classes];
                onehot[labels[i]] = 1.0;
                y_rows.push(onehot);
            }
            let y_train = Matrix::from_rows(&y_rows);
            let x_test = features.select_rows(&test_idx);
            let truth: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();

            let mut net = Network::builder(self.config.n_features)
                .dense(self.config.hidden, Activation::Sigmoid)
                .dense(n_classes, Activation::Softmax)
                .loss(Loss::CategoricalCrossEntropy)
                .learning_rate(self.config.lr)
                .seed(self.config.seed.wrapping_add(rep as u64))
                .build();
            net.train(&x_train, &y_train, self.config.train);
            accs.push(accuracy(&net.predict_classes(&x_test), &truth));
        }
        accs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ngram_features_are_normalized_and_stable() {
        let a = ngram_features(&["hello world"], 64);
        let b = ngram_features(&["hello world"], 64);
        assert_eq!(a, b);
        assert!((vector::norm(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn different_texts_differ() {
        let a = ngram_features(&["aaaa"], 128);
        let b = ngram_features(&["zzzz"], 128);
        assert!(vector::dist(&a, &b) > 0.1);
    }

    #[test]
    fn empty_fields_give_zero_vector() {
        let a = ngram_features(&[""], 32);
        assert!(a.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn imputes_categories_from_text_patterns() {
        // Class 0 texts contain "alpha", class 1 texts contain "omega".
        let mut rows: Vec<Vec<&str>> = Vec::new();
        let mut labels = Vec::new();
        let a_texts =
            ["alpha one", "the alpha app", "alpha tool", "my alpha", "alpha pro", "go alpha"];
        let o_texts =
            ["omega one", "the omega app", "omega tool", "my omega", "omega pro", "go omega"];
        for k in 0..60 {
            if k % 2 == 0 {
                rows.push(vec![a_texts[k % 6]]);
                labels.push(0);
            } else {
                rows.push(vec![o_texts[k % 6]]);
                labels.push(1);
            }
        }
        let imputer = DataWigImputer::new(DataWigConfig {
            n_features: 128,
            hidden: 16,
            ..DataWigConfig::default()
        });
        let accs = imputer.evaluate(&rows, &labels, 2, 40, 20, 1);
        assert!(accs[0] > 0.9, "accuracy {}", accs[0]);
    }
}
