//! MODE imputation: "replace a null value by the mode value (most frequent
//! value) occurring in the column" — the simplest baseline of §5.4, and per
//! the paper the only imputation most data-wrangling frameworks offer for
//! non-numerical data.

use std::collections::HashMap;

/// The most frequent label in `train` (ties broken by smaller label, making
/// the result deterministic).
pub fn mode_label(train: &[usize]) -> Option<usize> {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &l in train {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(label, _)| label)
}

/// Accuracy of always predicting the training mode on the test labels.
pub fn mode_imputation_accuracy(train: &[usize], test: &[usize]) -> f64 {
    let Some(mode) = mode_label(train) else {
        return 0.0;
    };
    if test.is_empty() {
        return 0.0;
    }
    test.iter().filter(|&&l| l == mode).count() as f64 / test.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_is_most_frequent() {
        assert_eq!(mode_label(&[1, 2, 2, 3, 2]), Some(2));
        assert_eq!(mode_label(&[]), None);
    }

    #[test]
    fn ties_break_deterministically() {
        assert_eq!(mode_label(&[1, 2, 1, 2]), mode_label(&[2, 1, 2, 1]));
    }

    #[test]
    fn accuracy_is_mode_share_of_test() {
        // Train mode = 0; test has 3 of 4 zeros.
        assert_eq!(mode_imputation_accuracy(&[0, 0, 1], &[0, 0, 0, 1]), 0.75);
        assert_eq!(mode_imputation_accuracy(&[], &[1]), 0.0);
        assert_eq!(mode_imputation_accuracy(&[1], &[]), 0.0);
    }
}
