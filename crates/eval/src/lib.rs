//! # retro-eval
//!
//! The §5 extrinsic evaluation harness: build every embedding variant the
//! paper compares (PV, MF, RO, RN, DW and the `+DW` concatenations), run
//! the four downstream tasks (binary classification, category imputation,
//! regression, link prediction) with the Fig. 5 network architectures, and
//! provide the non-embedding baselines (MODE imputation and a DataWig-like
//! n-gram imputer).
//!
//! Everything is seeded and deterministic; experiment binaries in
//! `retro-bench` drive these APIs to regenerate the paper's tables and
//! figures.

pub mod baselines;
pub mod metrics;
pub mod profiles;
pub mod suite;
pub mod tasks;

pub use metrics::{accuracy, mean_absolute_error};
pub use profiles::NetProfile;
pub use suite::{EmbeddingKind, EmbeddingSuite, SuiteConfig};
