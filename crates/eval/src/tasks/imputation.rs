//! §5.5.2 missing-value imputation (Fig. 10–12): predict a categorical
//! property (movie language, app category) from embeddings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retro_linalg::Matrix;

use crate::metrics::{accuracy, split_indices};
use crate::profiles::NetProfile;
use crate::tasks::gather_normalized;

/// Run the imputation protocol: per repetition, draw disjoint train/test
/// sets, train the Fig. 5a softmax classifier, record test accuracy.
#[allow(clippy::too_many_arguments)] // mirrors the paper's protocol knobs
pub fn run_imputation(
    inputs: &Matrix,
    labels: &[usize],
    n_classes: usize,
    train_n: usize,
    test_n: usize,
    repetitions: usize,
    profile: &NetProfile,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(inputs.rows(), labels.len(), "imputation: row/label mismatch");
    assert!(labels.iter().all(|&l| l < n_classes), "imputation: label out of range");
    let mut accuracies = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let mut rng = StdRng::seed_from_u64(seed ^ (rep as u64).wrapping_mul(0xA5A5_5A5A));
        let (train_idx, test_idx) = split_indices(inputs.rows(), train_n, test_n, &mut rng);

        let x_train = gather_normalized(inputs, &train_idx);
        let mut y_rows = Vec::with_capacity(train_idx.len());
        for &i in &train_idx {
            let mut onehot = vec![0.0f32; n_classes];
            onehot[labels[i]] = 1.0;
            y_rows.push(onehot);
        }
        let y_train = Matrix::from_rows(&y_rows);
        let x_test = gather_normalized(inputs, &test_idx);
        let truth: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();

        let mut net =
            profile.build_classifier(inputs.cols(), n_classes, seed.wrapping_add(rep as u64));
        net.train(&x_train, &y_train, profile.train);
        let preds = net.predict_classes(&x_test);
        accuracies.push(accuracy(&preds, &truth));
    }
    accuracies
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize, classes: usize, dim: usize, signal: f32) -> (Matrix, Vec<usize>) {
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut state = 7u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for i in 0..n {
            let c = i % classes;
            let mut row: Vec<f32> = (0..dim).map(|_| next()).collect();
            row[c % dim] += signal;
            rows.push(row);
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_clustered_classes() {
        let (x, y) = blobs(240, 4, 8, 2.0);
        let accs = run_imputation(&x, &y, 4, 120, 80, 2, &NetProfile::fast(24), 11);
        for a in &accs {
            assert!(*a > 0.8, "accuracy {a}");
        }
    }

    #[test]
    fn noise_gives_chance_level() {
        let (x, y) = blobs(240, 4, 8, 0.0);
        let accs = run_imputation(&x, &y, 4, 120, 80, 2, &NetProfile::fast(8), 12);
        let mean: f64 = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!(mean < 0.5, "mean accuracy {mean}");
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let (x, _) = blobs(10, 2, 4, 1.0);
        let bad = vec![5usize; 10];
        let _ = run_imputation(&x, &bad, 2, 5, 5, 1, &NetProfile::fast(4), 0);
    }
}
