//! §5.5.1 binary classification (Fig. 8/9): label text values as
//! US-American / non-US-American directors from their embeddings.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retro_linalg::Matrix;

use crate::metrics::{accuracy, balanced_binary_split};
use crate::profiles::NetProfile;
use crate::tasks::gather_normalized;

/// Run the balanced binary-classification protocol.
///
/// Per repetition: sample `per_class` positives and negatives, train on one
/// half, test on the other (the §5.5.1 protocol), and record test accuracy.
/// Returns one accuracy per repetition.
pub fn run_binary_classification(
    inputs: &Matrix,
    labels: &[bool],
    per_class: usize,
    repetitions: usize,
    profile: &NetProfile,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(inputs.rows(), labels.len(), "binary: row/label mismatch");
    let mut accuracies = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let mut rng = StdRng::seed_from_u64(seed ^ (rep as u64).wrapping_mul(0x9E37_79B9));
        let (train_idx, test_idx) = balanced_binary_split(labels, per_class, &mut rng);

        let x_train = gather_normalized(inputs, &train_idx);
        let y_train = Matrix::from_rows(
            &train_idx.iter().map(|&i| vec![if labels[i] { 1.0 } else { 0.0 }]).collect::<Vec<_>>(),
        );
        let x_test = gather_normalized(inputs, &test_idx);
        let truth: Vec<bool> = test_idx.iter().map(|&i| labels[i]).collect();

        let mut net = profile.build_binary(inputs.cols(), seed.wrapping_add(rep as u64));
        net.train(&x_train, &y_train, profile.train);
        let preds = net.predict_binary(&x_test);
        accuracies.push(accuracy(&preds, &truth));
    }
    accuracies
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable synthetic embedding task.
    fn separable(n: usize, dim: usize, signal: f32) -> (Matrix, Vec<bool>) {
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        let mut rng_state = 42u64;
        let mut next = || {
            rng_state =
                rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng_state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for i in 0..n {
            let positive = i % 2 == 0;
            let mut row = vec![0.0f32; dim];
            for v in row.iter_mut() {
                *v = next();
            }
            row[0] += if positive { signal } else { -signal };
            rows.push(row);
            labels.push(positive);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn learns_separable_labels() {
        let (x, y) = separable(200, 8, 1.5);
        let accs = run_binary_classification(&x, &y, 60, 2, &NetProfile::fast(16), 5);
        assert_eq!(accs.len(), 2);
        for a in &accs {
            assert!(*a > 0.8, "accuracy {a}");
        }
    }

    #[test]
    fn chance_level_on_pure_noise() {
        let (x, y) = separable(200, 8, 0.0);
        let accs = run_binary_classification(&x, &y, 60, 3, &NetProfile::fast(8), 6);
        let mean: f64 = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!((0.3..0.7).contains(&mean), "mean accuracy {mean}");
    }

    #[test]
    fn one_accuracy_per_repetition_in_unit_range() {
        let (x, y) = separable(300, 8, 0.8);
        let accs = run_binary_classification(&x, &y, 80, 3, &NetProfile::fast(8), 7);
        assert_eq!(accs.len(), 3);
        assert!(accs.iter().all(|a| (0.0..=1.0).contains(a)));
    }
}
