//! Entity linking over a served snapshot: resolve free-text mentions to
//! catalog entities by nearest-neighbour search at query time (the
//! DBLPLink-shaped workload — see PAPERS.md).
//!
//! A mention ("databases s0w3", "jean pierre lou") is embedded with the
//! §3.1 tokenizer — the centroid of its in-vocabulary tokens in the *base*
//! space — and looked up against the snapshot's *retrofitted* embeddings
//! via [`Snapshot::nearest`]. The task reports hit@1 / hit@10, and takes a
//! [`SearchMode`], so the same panel measures the exact oracle and the ANN
//! index: the recall cost of approximate probing shows up directly as a
//! hit-rate delta on a task with semantics, not just as rank overlap.

use retro_core::serve::{SearchMode, Snapshot};
use retro_datasets::Mention;
use retro_embed::EmbeddingSet;

/// Aggregate linking quality over a mention panel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkingReport {
    /// Fraction of resolved mentions whose target entity ranked first.
    pub hit_at_1: f64,
    /// Fraction of resolved mentions whose target entity ranked in the
    /// top 10.
    pub hit_at_10: f64,
    /// Mentions actually evaluated (target in catalog, mention not fully
    /// out-of-vocabulary).
    pub resolved: usize,
    /// Mentions skipped (missing entity or fully-OOV mention text).
    pub skipped: usize,
}

/// Link every mention against `snapshot` and score hit@1 / hit@10.
///
/// `base` must be the embedding set the snapshot's service was started
/// with — mention vectors are base-space token centroids, which is the
/// §3.1 initialization the retrofitted vectors were anchored to (Eq. 2's
/// `α` term keeps them close, which is what makes base-space queries
/// meaningful against the retrofitted matrix).
///
/// Mentions whose target entity is not in the snapshot's catalog, or
/// whose text is fully out-of-vocabulary (zero query vector), are counted
/// in `skipped`, never silently scored.
pub fn run_entity_linking(
    snapshot: &Snapshot,
    base: &EmbeddingSet,
    mentions: &[Mention],
    mode: SearchMode,
) -> LinkingReport {
    let tokenizer = base.tokenizer();
    let mut hit1 = 0usize;
    let mut hit10 = 0usize;
    let mut resolved = 0usize;
    let mut skipped = 0usize;
    for mention in mentions {
        let target = match snapshot.output().catalog.lookup(
            &mention.table,
            &mention.column,
            &mention.entity,
        ) {
            Some(id) => id,
            None => {
                skipped += 1;
                continue;
            }
        };
        let (query, oov) = tokenizer.initial_vector(base, &mention.text);
        if oov {
            skipped += 1;
            continue;
        }
        let top = snapshot.nearest(&query, 10, mode);
        resolved += 1;
        if top.first().is_some_and(|&(id, _)| id == target) {
            hit1 += 1;
        }
        if top.iter().any(|&(id, _)| id == target) {
            hit10 += 1;
        }
    }
    let denom = resolved.max(1) as f64;
    LinkingReport {
        hit_at_1: hit1 as f64 / denom,
        hit_at_10: hit10 as f64 / denom,
        resolved,
        skipped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_core::serve::EmbeddingService;
    use retro_core::{Hyperparameters, RetroConfig};
    use retro_datasets::{ScholarConfig, ScholarDataset};
    use retro_store::SharedDatabase;
    use std::sync::Arc;

    fn serve(n_papers: usize) -> (Arc<EmbeddingService>, ScholarDataset) {
        let data = ScholarDataset::generate(ScholarConfig {
            n_papers,
            dim: 24,
            ..ScholarConfig::default()
        });
        let config = RetroConfig::default()
            .with_params(Hyperparameters::paper_rn().with_threads(1))
            .with_iterations(3);
        let service = EmbeddingService::start(
            SharedDatabase::new(data.db.clone()),
            data.base.clone(),
            config,
        )
        .unwrap();
        (service, data)
    }

    #[test]
    fn links_mentions_well_above_chance() {
        let (service, data) = serve(150);
        let snapshot = service.snapshot();
        let exact = run_entity_linking(&snapshot, &data.base, &data.mentions, SearchMode::Exact);
        assert!(exact.resolved > 20, "panel too small: {exact:?}");
        // Chance hit@10 over a catalog of hundreds of values is a few
        // percent; the linked panel must do far better.
        assert!(exact.hit_at_10 > 0.3, "hit@10 {:?}", exact);
        assert!(exact.hit_at_1 <= exact.hit_at_10);

        // Full-probe ANN is the same ranking, so the same hits.
        let all = SearchMode::Approx { probes: snapshot.index().nlist() };
        let approx = run_entity_linking(&snapshot, &data.base, &data.mentions, all);
        assert_eq!(approx, exact, "full-probe ANN must reproduce the oracle's hits");

        // Moderate probing stays close: the linking metric is where ANN
        // recall loss becomes visible, and it must stay small.
        let probed = run_entity_linking(
            &snapshot,
            &data.base,
            &data.mentions,
            SearchMode::Approx { probes: snapshot.default_probes().max(2) },
        );
        assert!(
            probed.hit_at_10 >= exact.hit_at_10 - 0.15,
            "ANN hit@10 {} vs exact {}",
            probed.hit_at_10,
            exact.hit_at_10
        );
    }

    #[test]
    fn unknown_entities_and_oov_mentions_are_skipped() {
        let (service, data) = serve(60);
        let snapshot = service.snapshot();
        let panel = vec![
            Mention {
                text: "databases".into(),
                table: "papers".into(),
                column: "title".into(),
                entity: "no such title".into(),
            },
            Mention {
                text: "qxqxqx zzz".into(),
                table: "papers".into(),
                column: "title".into(),
                entity: data.paper_titles[0].clone(),
            },
        ];
        let report = run_entity_linking(&snapshot, &data.base, &panel, SearchMode::Exact);
        assert_eq!(report.resolved, 0);
        assert_eq!(report.skipped, 2);
        assert_eq!(report.hit_at_1, 0.0);
    }
}
