//! The four §5 downstream tasks, plus the entity-linking serving workload
//! (mention → entity via nearest-neighbour search over a snapshot).

pub mod binary;
pub mod entity_linking;
pub mod imputation;
pub mod link;
pub mod regression;

pub use binary::run_binary_classification;
pub use entity_linking::{run_entity_linking, LinkingReport};
pub use imputation::run_imputation;
pub use link::run_link_prediction;
pub use regression::run_regression;

use retro_linalg::Matrix;

/// Gather rows by index and L2-normalize them (§5.5: "we normalize the
/// embedding vectors before they are processed by the network").
pub fn gather_normalized(matrix: &Matrix, ids: &[usize]) -> Matrix {
    let mut out = matrix.select_rows(ids);
    out.normalize_rows();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_linalg::vector;

    #[test]
    fn gather_normalizes_rows() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0], vec![10.0, 0.0]]);
        let g = gather_normalized(&m, &[0, 2, 0]);
        assert_eq!(g.rows(), 3);
        assert!((vector::norm(g.row(0)) - 1.0).abs() < 1e-6);
        assert!((vector::norm(g.row(1)) - 1.0).abs() < 1e-6);
        assert_eq!(g.row(0), g.row(2));
    }
}
