//! §5.7 link prediction (Fig. 14): decide whether a (movie, genre) edge
//! exists, using the Fig. 5c two-tower subtract network.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use retro_linalg::Matrix;
use retro_nn::{LinkNet, TrainConfig};

use crate::metrics::accuracy;
use crate::tasks::gather_normalized;

/// A labelled candidate edge: indices into the source/target embedding
/// matrices plus the ground truth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeSample {
    /// Row in the source matrix (e.g. a movie).
    pub source: usize,
    /// Row in the target matrix (e.g. a genre).
    pub target: usize,
    /// Whether the edge actually exists.
    pub exists: bool,
}

/// Link-prediction network settings.
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Tower width (the paper uses 300).
    pub hidden: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training loop.
    pub train: TrainConfig,
}

impl Default for LinkProfile {
    fn default() -> Self {
        Self {
            hidden: 300,
            lr: 0.002,
            train: TrainConfig {
                max_epochs: 200,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(30),
            },
        }
    }
}

impl LinkProfile {
    /// A lighter profile for tests. The subtract-merge architecture can
    /// optimize slowly from some initializations, so the fast profile keeps
    /// a generous epoch budget and patience.
    pub fn fast(hidden: usize) -> Self {
        Self {
            hidden,
            lr: 0.01,
            train: TrainConfig {
                max_epochs: 300,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(60),
            },
        }
    }
}

/// Run the link-prediction protocol: per repetition, shuffle the candidate
/// edges, train on `train_n` and test on the next `test_n`, recording
/// accuracy.
#[allow(clippy::too_many_arguments)] // mirrors the paper's protocol knobs
pub fn run_link_prediction(
    source_embeddings: &Matrix,
    target_embeddings: &Matrix,
    samples: &[EdgeSample],
    train_n: usize,
    test_n: usize,
    repetitions: usize,
    profile: &LinkProfile,
    seed: u64,
) -> Vec<f64> {
    assert!(
        samples.len() >= train_n + test_n,
        "link: need {} samples, have {}",
        train_n + test_n,
        samples.len()
    );
    assert_eq!(
        source_embeddings.cols(),
        target_embeddings.cols(),
        "link: towers need equal input dims"
    );
    let mut accuracies = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let mut rng = StdRng::seed_from_u64(seed ^ (rep as u64).wrapping_mul(0x1234_5678));
        let mut shuffled = samples.to_vec();
        shuffled.shuffle(&mut rng);
        let (train, rest) = shuffled.split_at(train_n);
        let test = &rest[..test_n];

        let gather = |set: &[EdgeSample]| {
            let s_idx: Vec<usize> = set.iter().map(|e| e.source).collect();
            let t_idx: Vec<usize> = set.iter().map(|e| e.target).collect();
            let labels = Matrix::from_rows(
                &set.iter().map(|e| vec![if e.exists { 1.0 } else { 0.0 }]).collect::<Vec<_>>(),
            );
            (
                gather_normalized(source_embeddings, &s_idx),
                gather_normalized(target_embeddings, &t_idx),
                labels,
            )
        };
        let (s_train, t_train, y_train) = gather(train);
        let (s_test, t_test, _) = gather(test);
        let truth: Vec<bool> = test.iter().map(|e| e.exists).collect();

        let mut net = LinkNet::new(
            source_embeddings.cols(),
            profile.hidden,
            profile.lr,
            seed.wrapping_add(rep as u64),
        );
        net.train(&s_train, &t_train, &y_train, profile.train);
        let preds = net.predict_binary(&s_test, &t_test);
        accuracies.push(accuracy(&preds, &truth));
    }
    accuracies
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic edges: an edge exists iff source and target share their
    /// dominant coordinate.
    fn synthetic(
        n_nodes: usize,
        n_samples: usize,
        dim: usize,
    ) -> (Matrix, Matrix, Vec<EdgeSample>) {
        let mut state = 5u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let make = |group: usize, noise_seed: usize| {
            let mut row = vec![0.05f32 * ((noise_seed % 7) as f32 - 3.0); dim];
            row[group % dim] = 1.0;
            row
        };
        let mut sources = Vec::new();
        let mut targets = Vec::new();
        let mut s_group = Vec::new();
        let mut t_group = Vec::new();
        for i in 0..n_nodes {
            let g = next() % 2;
            sources.push(make(g, i));
            s_group.push(g);
            let g = next() % 2;
            targets.push(make(g, i + 1));
            t_group.push(g);
        }
        let mut samples = Vec::new();
        for _ in 0..n_samples {
            let s = next() % n_nodes;
            let t = next() % n_nodes;
            samples.push(EdgeSample { source: s, target: t, exists: s_group[s] == t_group[t] });
        }
        (Matrix::from_rows(&sources), Matrix::from_rows(&targets), samples)
    }

    #[test]
    fn learns_structured_edges() {
        let (s, t, samples) = synthetic(40, 400, 6);
        let accs = run_link_prediction(&s, &t, &samples, 250, 100, 1, &LinkProfile::fast(16), 21);
        assert!(accs[0] > 0.85, "accuracy {}", accs[0]);
    }

    #[test]
    fn uninformative_embeddings_stay_near_chance() {
        let (s, t, mut samples) = synthetic(40, 400, 6);
        // Scramble labels to decouple them from the embeddings.
        for (k, e) in samples.iter_mut().enumerate() {
            e.exists = k % 2 == 0;
        }
        let accs = run_link_prediction(&s, &t, &samples, 250, 100, 2, &LinkProfile::fast(8), 22);
        let mean: f64 = accs.iter().sum::<f64>() / accs.len() as f64;
        assert!((0.3..0.7).contains(&mean), "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "need 1000 samples")]
    fn rejects_insufficient_samples() {
        let (s, t, samples) = synthetic(10, 50, 4);
        let _ = run_link_prediction(&s, &t, &samples, 800, 200, 1, &LinkProfile::fast(4), 0);
    }
}
