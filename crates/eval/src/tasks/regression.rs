//! §5.6 regression (Fig. 13): predict movie budgets from embeddings with
//! the Fig. 5b ReLU network, reporting MAE in original units.

use rand::rngs::StdRng;
use rand::SeedableRng;
use retro_linalg::Matrix;

use crate::metrics::{mean_absolute_error, split_indices};
use crate::profiles::NetProfile;
use crate::tasks::gather_normalized;

/// Run the regression protocol. Targets are internally scaled to unit
/// magnitude for training; the returned MAEs are in the original units
/// (dollars for the budget task).
pub fn run_regression(
    inputs: &Matrix,
    targets: &[f64],
    train_n: usize,
    test_n: usize,
    repetitions: usize,
    profile: &NetProfile,
    seed: u64,
) -> Vec<f64> {
    assert_eq!(inputs.rows(), targets.len(), "regression: row/target mismatch");
    let scale = targets.iter().fold(0.0f64, |m, t| m.max(t.abs())).max(1e-12);

    let mut maes = Vec::with_capacity(repetitions);
    for rep in 0..repetitions {
        let mut rng = StdRng::seed_from_u64(seed ^ (rep as u64).wrapping_mul(0xC0FF_EE00));
        let (train_idx, test_idx) = split_indices(inputs.rows(), train_n, test_n, &mut rng);

        let x_train = gather_normalized(inputs, &train_idx);
        let y_train = Matrix::from_rows(
            &train_idx.iter().map(|&i| vec![(targets[i] / scale) as f32]).collect::<Vec<_>>(),
        );
        let x_test = gather_normalized(inputs, &test_idx);

        let mut net = profile.build_regressor(inputs.cols(), seed.wrapping_add(rep as u64));
        net.train(&x_train, &y_train, profile.train);
        let pred = net.predict(&x_test);
        let predictions: Vec<f64> =
            (0..pred.rows()).map(|r| pred.get(r, 0) as f64 * scale).collect();
        let truth: Vec<f64> = test_idx.iter().map(|&i| targets[i]).collect();
        maes.push(mean_absolute_error(&predictions, &truth));
    }
    maes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize, dim: usize, noise: f64) -> (Matrix, Vec<f64>) {
        let mut rows = Vec::with_capacity(n);
        let mut targets = Vec::with_capacity(n);
        let mut state = 17u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        for _ in 0..n {
            let row: Vec<f32> = (0..dim).map(|_| next() as f32).collect();
            // Target depends on the direction of the (normalized) row.
            let norm = (row.iter().map(|v| v * v).sum::<f32>()).sqrt().max(1e-6);
            let t = 1e6 * (row[0] / norm) as f64 + noise * next();
            rows.push(row);
            targets.push(t);
        }
        (Matrix::from_rows(&rows), targets)
    }

    #[test]
    fn fits_linear_relationship() {
        let (x, y) = linear_data(300, 6, 0.0);
        let profile = NetProfile { activation: retro_nn::Activation::Relu, ..NetProfile::fast(32) };
        let maes = run_regression(&x, &y, 200, 80, 1, &profile, 3);
        // Baseline: predicting the mean gives MAE ≈ E|t| ≈ 2.2e5 for the
        // normalized-first-coordinate distribution; the net must beat it.
        assert!(maes[0] < 2.0e5, "MAE {}", maes[0]);
    }

    #[test]
    fn uninformative_inputs_leave_high_error() {
        let (x, y) = linear_data(200, 6, 0.0);
        // Decouple targets from inputs by rotating them half-way round.
        let y_rotated: Vec<f64> = (0..y.len()).map(|i| y[(i + 100) % y.len()]).collect();
        let maes = run_regression(&x, &y_rotated, 120, 60, 1, &NetProfile::fast(8), 4);
        assert!(maes[0] > 1.0e5, "MAE {}", maes[0]);
    }

    #[test]
    fn returns_one_mae_per_repetition() {
        let (x, y) = linear_data(120, 4, 0.0);
        let maes = run_regression(&x, &y, 60, 40, 3, &NetProfile::fast(8), 5);
        assert_eq!(maes.len(), 3);
        assert!(maes.iter().all(|m| m.is_finite() && *m >= 0.0));
    }
}
