//! The embedding suite: one call to materialize every §5 embedding variant
//! over a database.

use std::collections::HashMap;

use retro_core::graphgen::generate_graph;
use retro_core::{Retro, RetroConfig, Solver, TextValueCatalog};
use retro_deepwalk::{DeepWalk, DeepWalkConfig, SgnsConfig};
use retro_embed::EmbeddingSet;
use retro_graph::WalkConfig;
use retro_linalg::Matrix;
use retro_store::Database;

/// The embedding variants of the evaluation (§5.2/§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EmbeddingKind {
    /// Plain word vectors — tokenized `W0`, no retrofitting.
    Pv,
    /// Faruqui et al. baseline retrofitting.
    Mf,
    /// Relational retrofitting, optimization solver.
    Ro,
    /// Relational retrofitting, series solver.
    Rn,
    /// DeepWalk node embeddings.
    Dw,
    /// Concatenations with DeepWalk (§4.6).
    PvDw,
    MfDw,
    RoDw,
    RnDw,
}

impl EmbeddingKind {
    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            EmbeddingKind::Pv => "PV",
            EmbeddingKind::Mf => "MF",
            EmbeddingKind::Ro => "RO",
            EmbeddingKind::Rn => "RN",
            EmbeddingKind::Dw => "DW",
            EmbeddingKind::PvDw => "PV+DW",
            EmbeddingKind::MfDw => "MF+DW",
            EmbeddingKind::RoDw => "RO+DW",
            EmbeddingKind::RnDw => "RN+DW",
        }
    }

    /// All variants in the paper's presentation order.
    pub fn all() -> [EmbeddingKind; 9] {
        [
            EmbeddingKind::Pv,
            EmbeddingKind::Mf,
            EmbeddingKind::Dw,
            EmbeddingKind::Ro,
            EmbeddingKind::Rn,
            EmbeddingKind::PvDw,
            EmbeddingKind::MfDw,
            EmbeddingKind::RoDw,
            EmbeddingKind::RnDw,
        ]
    }

    /// Whether this variant needs DeepWalk training.
    pub fn needs_dw(self) -> bool {
        matches!(
            self,
            EmbeddingKind::Dw
                | EmbeddingKind::PvDw
                | EmbeddingKind::MfDw
                | EmbeddingKind::RoDw
                | EmbeddingKind::RnDw
        )
    }

    /// The text-only component of a concatenated variant.
    fn text_component(self) -> Option<EmbeddingKind> {
        match self {
            EmbeddingKind::PvDw => Some(EmbeddingKind::Pv),
            EmbeddingKind::MfDw => Some(EmbeddingKind::Mf),
            EmbeddingKind::RoDw => Some(EmbeddingKind::Ro),
            EmbeddingKind::RnDw => Some(EmbeddingKind::Rn),
            _ => None,
        }
    }
}

/// Suite configuration (§5.2 training setup).
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// RO hyperparameters (paper: α=1, β=0, γ=3, δ=3).
    pub ro_params: retro_core::Hyperparameters,
    /// RN hyperparameters (paper: α=1, β=0, γ=3, δ=1).
    pub rn_params: retro_core::Hyperparameters,
    /// Retrofitting iterations (paper trains with 10).
    pub iterations: usize,
    /// DeepWalk dimensionality (defaults to the base embedding's dim so
    /// concatenation is balanced; the paper uses 300 for both).
    pub dw_dim: Option<usize>,
    /// DeepWalk walk settings.
    pub walks: WalkConfig,
    /// Ablated text columns (`(table, column)`).
    pub skip_columns: Vec<(String, String)>,
    /// Ablated relation groups (name substrings).
    pub skip_relations: Vec<String>,
    /// Seed for DeepWalk.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            ro_params: retro_core::Hyperparameters::paper_ro(),
            rn_params: retro_core::Hyperparameters::paper_rn(),
            iterations: 10,
            dw_dim: None,
            walks: WalkConfig { walks_per_node: 8, walk_length: 20 },
            skip_columns: Vec::new(),
            skip_relations: Vec::new(),
            seed: 0xDECAF,
        }
    }
}

impl SuiteConfig {
    /// Ablate a text column.
    pub fn skip_column(mut self, table: &str, column: &str) -> Self {
        self.skip_columns.push((table.to_owned(), column.to_owned()));
        self
    }

    /// Ablate relation groups by name substring.
    pub fn skip_relation(mut self, substring: &str) -> Self {
        self.skip_relations.push(substring.to_owned());
        self
    }

    fn retro_config(&self, solver: Solver) -> RetroConfig {
        let params = match solver {
            Solver::Ro => self.ro_params,
            _ => self.rn_params,
        };
        RetroConfig {
            solver,
            params,
            iterations: self.iterations,
            skip_columns: self.skip_columns.clone(),
            skip_relations: self.skip_relations.clone(),
        }
    }
}

/// All materialized embedding variants over one database.
#[derive(Clone, Debug)]
pub struct EmbeddingSuite {
    /// The shared text-value catalog (same ids for every variant).
    pub catalog: TextValueCatalog,
    variants: HashMap<EmbeddingKind, Matrix>,
}

impl EmbeddingSuite {
    /// Build the requested variants.
    ///
    /// The expensive artifacts are shared: the problem is extracted once,
    /// and DeepWalk is trained once if any `*+DW` variant is requested.
    pub fn build(
        db: &Database,
        base: &EmbeddingSet,
        config: &SuiteConfig,
        kinds: &[EmbeddingKind],
    ) -> Self {
        // PV/problem extraction happens through the RN config (extraction is
        // solver-independent).
        let rn_out = Retro::new(config.retro_config(Solver::Rn))
            .retrofit(db, base)
            .expect("suite: retrofit failed");
        let catalog = (*rn_out.catalog).clone();
        let problem = &rn_out.problem;
        let n = catalog.len();

        let mut variants: HashMap<EmbeddingKind, Matrix> = HashMap::new();
        let want = |k: EmbeddingKind| {
            kinds.contains(&k) || kinds.iter().any(|&c| c.text_component() == Some(k))
        };

        if want(EmbeddingKind::Pv) {
            variants.insert(EmbeddingKind::Pv, problem.w0.clone());
        }
        if want(EmbeddingKind::Rn) {
            variants.insert(EmbeddingKind::Rn, rn_out.embeddings.clone());
        }
        if want(EmbeddingKind::Ro) {
            let out = Retro::new(config.retro_config(Solver::Ro)).solve(problem.clone());
            variants.insert(EmbeddingKind::Ro, out.embeddings);
        }
        if want(EmbeddingKind::Mf) {
            let out =
                Retro::new(RetroConfig { solver: Solver::Mf, ..config.retro_config(Solver::Rn) })
                    .solve(problem.clone());
            variants.insert(EmbeddingKind::Mf, out.embeddings);
        }

        let needs_dw = kinds.iter().any(|k| k.needs_dw());
        if needs_dw {
            let generated = generate_graph(&catalog, &problem.groups);
            let dw_dim = config.dw_dim.unwrap_or(base.dim());
            let dw_config = DeepWalkConfig {
                walks: config.walks,
                sgns: SgnsConfig { dim: dw_dim, ..SgnsConfig::default() },
                seed: config.seed,
            };
            let node_embeddings = DeepWalk::new(dw_config).train(&generated.graph);
            // Keep only the text-value rows (ids 0..n).
            let dw = node_embeddings.select_rows(&(0..n).collect::<Vec<_>>());
            for kind in EmbeddingKind::all() {
                if !kinds.contains(&kind) {
                    continue;
                }
                if kind == EmbeddingKind::Dw {
                    variants.insert(kind, dw.clone());
                } else if let Some(text) = kind.text_component() {
                    let text_matrix = variants.get(&text).expect("text component computed above");
                    variants.insert(kind, retro_core::combine::concat_normalized(text_matrix, &dw));
                }
            }
        }

        // Drop helper variants that were computed only as components.
        variants.retain(|k, _| kinds.contains(k));
        Self { catalog, variants }
    }

    /// The matrix for a variant.
    pub fn matrix(&self, kind: EmbeddingKind) -> &Matrix {
        self.variants.get(&kind).unwrap_or_else(|| panic!("variant {} not built", kind.label()))
    }

    /// Which variants are available.
    pub fn kinds(&self) -> Vec<EmbeddingKind> {
        let mut ks: Vec<_> = self.variants.keys().copied().collect();
        ks.sort_by_key(|k| EmbeddingKind::all().iter().position(|x| x == k));
        ks
    }

    /// The embedding row for a text value, by lookup.
    pub fn vector(
        &self,
        kind: EmbeddingKind,
        table: &str,
        column: &str,
        text: &str,
    ) -> Option<&[f32]> {
        let id = self.catalog.lookup(table, column, text)?;
        Some(self.matrix(kind).row(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_datasets::{TmdbConfig, TmdbDataset};

    fn tiny_suite(kinds: &[EmbeddingKind]) -> (TmdbDataset, EmbeddingSuite) {
        let data =
            TmdbDataset::generate(TmdbConfig { n_movies: 30, dim: 12, ..TmdbConfig::default() });
        let config = SuiteConfig {
            walks: WalkConfig { walks_per_node: 3, walk_length: 8 },
            ..SuiteConfig::default()
        };
        let suite = EmbeddingSuite::build(&data.db, &data.base, &config, kinds);
        (data, suite)
    }

    #[test]
    fn builds_requested_text_variants() {
        let (_, suite) = tiny_suite(&[EmbeddingKind::Pv, EmbeddingKind::Rn, EmbeddingKind::Mf]);
        assert_eq!(suite.kinds().len(), 3);
        let n = suite.catalog.len();
        assert_eq!(suite.matrix(EmbeddingKind::Pv).rows(), n);
        assert_eq!(suite.matrix(EmbeddingKind::Rn).rows(), n);
    }

    #[test]
    fn concatenated_variants_double_width() {
        let (_, suite) = tiny_suite(&[EmbeddingKind::Rn, EmbeddingKind::RnDw]);
        let d = suite.matrix(EmbeddingKind::Rn).cols();
        assert_eq!(suite.matrix(EmbeddingKind::RnDw).cols(), 2 * d);
    }

    #[test]
    #[should_panic(expected = "variant RO not built")]
    fn missing_variant_panics_with_label() {
        let (_, suite) = tiny_suite(&[EmbeddingKind::Pv]);
        let _ = suite.matrix(EmbeddingKind::Ro);
    }

    #[test]
    fn vector_lookup_round_trips() {
        let (data, suite) = tiny_suite(&[EmbeddingKind::Rn]);
        let title = &data.movie_titles[0];
        assert!(suite.vector(EmbeddingKind::Rn, "movies", "title", title).is_some());
        assert!(suite.vector(EmbeddingKind::Rn, "movies", "title", "nope").is_none());
    }

    #[test]
    fn skip_column_propagates_to_catalog() {
        let data =
            TmdbDataset::generate(TmdbConfig { n_movies: 20, dim: 8, ..TmdbConfig::default() });
        let config = SuiteConfig::default().skip_column("movies", "original_language");
        let suite = EmbeddingSuite::build(&data.db, &data.base, &config, &[EmbeddingKind::Pv]);
        assert!(suite.catalog.lookup("movies", "original_language", "en").is_none());
    }
}
