//! Approximate nearest-neighbour serving: a deterministic IVF-flat index.
//!
//! `Snapshot` kNN queries used to run the exact `O(n)` `top_k_cosine` scan
//! per query — fine at 493k rows, fatal for millions of users. [`IvfIndex`]
//! makes lookup sub-linear: the snapshot's rows are partitioned into
//! `nlist` inverted lists by a seeded spherical k-means, and a query scores
//! only the `probes` lists whose centroids are most cosine-similar to it —
//! a candidate set of roughly `probes / nlist` of the data instead of all
//! of it.
//!
//! Design contracts, each pinned by `tests/ann_recall.rs` /
//! `tests/ann_serving.rs`:
//!
//! * **Deterministic given a seed.** Training samples are strided (no RNG
//!   in the build path at all), k-means ties break toward the lower
//!   centroid id, and list membership is kept in ascending row order. Two
//!   builds from the same rows and [`IvfConfig`] are structurally
//!   identical.
//! * **The exact scan is the recall oracle.** Candidate scoring runs
//!   [`retro_embed::nn::top_k_cosine_blocks`] — the same sanitize rules and
//!   the same chunked dot kernel as the exact path — so probing *every*
//!   list returns bit-for-bit the exact `top_k_cosine` ranking, and any
//!   recall loss at lower `probes` is purely from unprobed lists, never
//!   from scoring drift.
//! * **Probes stream, they don't gather.** Each inverted list stores a
//!   contiguous *packed copy* of its member vectors (and their norms), so
//!   scanning a probed list is sequential reads at full memory bandwidth —
//!   a gather of the same candidates through the 493k-row matrix is
//!   4–5× slower per candidate from cache misses alone, which is the
//!   difference between a 2× and a 10×+ speedup over the exact scan.
//! * **Degenerate rows never surface.** Zero-norm (OOV) and
//!   `NaN`/`±inf`-poisoned rows are assigned to list 0 and score exactly
//!   `0.0` through the shared sanitize, the same convention as the exact
//!   path.
//! * **Refreshes patch, full rebuilds retrain.** [`IvfIndex::refreshed`]
//!   re-assigns only the dirty rows against the *frozen* centroids — `O(Δ ·
//!   nlist · dim)`, matching the delta-refresh cost model — and is pinned
//!   structurally identical to [`IvfIndex::with_centroids`] over the same
//!   rows. Centroids only retrain on a full build, where the solve already
//!   dominates.

use retro_embed::nn::top_k_cosine_blocks;
use retro_linalg::{vector, Matrix};

/// How a snapshot kNN query scans: the exact oracle or the IVF index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchMode {
    /// The full `O(n)` `top_k_cosine` scan — the recall oracle.
    Exact,
    /// Probe the `probes` inverted lists nearest the query (clamped to
    /// `[1, nlist]`; `probes >= nlist` reproduces the exact ranking).
    Approx {
        /// Number of inverted lists to scan.
        probes: usize,
    },
}

/// Build parameters for an [`IvfIndex`]. Everything is deterministic: the
/// same config over the same rows always builds the same index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IvfConfig {
    /// Number of inverted lists (clamped to the number of usable rows at
    /// build time; at least 1).
    pub nlist: usize,
    /// Spherical k-means refinement passes over the training sample.
    pub train_iters: usize,
    /// Training-sample cap: k-means trains on at most this many rows,
    /// strided deterministically across the matrix.
    pub sample_cap: usize,
    /// Seed stirred into the strided sample offset, so distinct seeds
    /// train on distinct (but still deterministic) samples.
    pub seed: u64,
}

impl IvfConfig {
    /// The serving default for an `n`-row snapshot: `nlist = ⌈√n⌉` capped
    /// at 128 (≈3.9k rows per list at the paper's 493k-row TMDB scale),
    /// trained on at most `32·nlist` sampled rows.
    pub fn auto(rows: usize) -> Self {
        let nlist = ((rows as f64).sqrt().ceil() as usize).clamp(1, 128);
        Self { nlist, train_iters: 6, sample_cap: nlist * 32, seed: 0x5eed_1df5 }
    }

    /// Override the number of inverted lists.
    pub fn with_nlist(self, nlist: usize) -> Self {
        Self { nlist: nlist.max(1), ..self }
    }

    /// Override the training seed.
    pub fn with_seed(self, seed: u64) -> Self {
        Self { seed, ..self }
    }

    /// The default probe count for this config: an eighth of the lists,
    /// at least 1 — ≈12.5% of the data scanned per query.
    pub fn default_probes(&self) -> usize {
        (self.nlist / 8).max(1)
    }
}

/// A deterministic IVF-flat index over one matrix of row vectors.
///
/// The index is self-contained: each inverted list keeps a packed,
/// contiguous copy of its member vectors and norms (bit-equal to the
/// matrix rows it was built or refreshed from), so a probe is a streaming
/// scan over `≈ probes/nlist` of the data — never a cache-hostile gather
/// through the full matrix. The price is one extra `O(n · dim)` copy of
/// the indexed rows, the classic IVF memory/speed trade.
///
/// ```
/// use retro_linalg::Matrix;
/// use retro_nn::ann::{IvfConfig, IvfIndex};
///
/// let m = Matrix::from_fn(300, 8, |r, c| ((r * 13 + c * 7) as f32 * 0.21).sin());
/// let norms = m.row_norms();
/// let index = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
///
/// // Probing every list IS the exact scan, bit for bit.
/// let exact = retro_embed::nn::top_k_cosine(&m, &norms, m.row(7), 5, 1, |_| false);
/// assert_eq!(index.search(m.row(7), 5, index.nlist()), exact);
/// ```
#[derive(Clone, Debug)]
pub struct IvfIndex {
    config: IvfConfig,
    /// Row vector width.
    dim: usize,
    /// `nlist × dim`, unit rows (a cluster that never received a training
    /// point keeps its init row).
    centroids: Matrix,
    /// Row id → owning list.
    assignments: Vec<u32>,
    /// Per list: member row ids, ascending.
    lists: Vec<Vec<u32>>,
    /// Per list: the members' vectors, packed back to back in list order.
    packed: Vec<Vec<f32>>,
    /// Per list: the members' L2 norms, in list order.
    packed_norms: Vec<Vec<f32>>,
}

impl IvfIndex {
    /// Train centroids on `matrix`'s rows (seeded spherical k-means over a
    /// strided sample) and assign every row. `norms` must be the matrix's
    /// cached row L2 norms; `threads` partitions the assignment pass
    /// (bit-identical for every thread count — each row's assignment is
    /// independent).
    pub fn build(matrix: &Matrix, norms: &[f32], config: IvfConfig, threads: usize) -> Self {
        let centroids = train_centroids(matrix, norms, &config);
        Self::with_centroids(matrix, norms, centroids, config, threads)
    }

    /// Assign every row of `matrix` to its nearest of the given `centroids`
    /// — the second half of [`IvfIndex::build`], split out so tests can pin
    /// [`IvfIndex::refreshed`] equivalent to a fresh assignment of the same
    /// rows against the same centroids.
    pub fn with_centroids(
        matrix: &Matrix,
        norms: &[f32],
        centroids: Matrix,
        config: IvfConfig,
        threads: usize,
    ) -> Self {
        assert_eq!(norms.len(), matrix.rows(), "IvfIndex: norm cache length mismatch");
        assert_eq!(centroids.cols(), matrix.cols(), "IvfIndex: centroid dimension mismatch");
        assert!(centroids.rows() > 0, "IvfIndex: need at least one centroid");
        let rows = matrix.rows();
        let mut assignments = vec![0u32; rows];
        let threads = threads.clamp(1, rows.max(1));
        let chunk = rows.div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for (t, out) in assignments.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                let centroids = &centroids;
                s.spawn(move || {
                    for (j, slot) in out.iter_mut().enumerate() {
                        *slot = assign_row(matrix.row(start + j), norms[start + j], centroids);
                    }
                });
            }
        });
        let mut lists = vec![Vec::new(); centroids.rows()];
        for (id, &list) in assignments.iter().enumerate() {
            lists[list as usize].push(id as u32);
        }
        // Pack every list's vectors contiguously (probes stream, see the
        // module docs).
        let dim = matrix.cols();
        let mut packed = vec![Vec::new(); lists.len()];
        let mut packed_norms = vec![Vec::new(); lists.len()];
        for (l, list) in lists.iter().enumerate() {
            packed[l].reserve_exact(list.len() * dim);
            packed_norms[l].reserve_exact(list.len());
            for &id in list {
                packed[l].extend_from_slice(matrix.row(id as usize));
                packed_norms[l].push(norms[id as usize]);
            }
        }
        Self { config, dim, centroids, assignments, lists, packed, packed_norms }
    }

    /// The index after a delta refresh: rows in `dirty` (moved, re-solved,
    /// or freshly appended — the serving layer's `RefreshPlan::dirty_rows`)
    /// are re-assigned against the **frozen** centroids and their packed
    /// copies rewritten from the new matrix; every other row keeps its list
    /// and bytes. The patch itself is `O(|dirty| · nlist · dim)` (plus the
    /// `O(n · dim)` clone of the packed storage every published generation
    /// needs anyway — same follow-up as the snapshot's own buffer
    /// materializations, see ROADMAP).
    ///
    /// Pinned by `tests/ann_serving.rs`: the patched index is structurally
    /// identical to [`IvfIndex::with_centroids`] over the same rows, so
    /// coherence never decays across a refresh chain. (Recall against
    /// *retrained* centroids can — `EmbeddingService::refresh_full`
    /// rebuilds from scratch.)
    pub fn refreshed(&self, matrix: &Matrix, norms: &[f32], dirty: &[u32]) -> Self {
        assert_eq!(norms.len(), matrix.rows(), "IvfIndex: norm cache length mismatch");
        assert_eq!(matrix.cols(), self.dim, "IvfIndex::refreshed: dimension changed");
        assert!(
            matrix.rows() >= self.assignments.len(),
            "IvfIndex::refreshed: rows shrank ({} -> {}); rebuild instead",
            self.assignments.len(),
            matrix.rows()
        );
        let dim = self.dim;
        let mut out = self.clone();
        out.assignments.resize(matrix.rows(), u32::MAX);
        for &r in dirty {
            let id = r;
            let r = r as usize;
            assert!(r < out.assignments.len(), "IvfIndex::refreshed: dirty row out of range");
            let old = out.assignments[r];
            let new = assign_row(matrix.row(r), norms[r], &out.centroids);
            if old == new {
                // Same list — but a dirty row's values may have changed, so
                // its packed copy is rewritten in place.
                let at =
                    out.lists[old as usize].binary_search(&id).expect("assignments/lists agree");
                out.packed[old as usize][at * dim..(at + 1) * dim].copy_from_slice(matrix.row(r));
                out.packed_norms[old as usize][at] = norms[r];
                continue;
            }
            if old != u32::MAX {
                let at =
                    out.lists[old as usize].binary_search(&id).expect("assignments/lists agree");
                out.lists[old as usize].remove(at);
                out.packed[old as usize].drain(at * dim..(at + 1) * dim);
                out.packed_norms[old as usize].remove(at);
            }
            let at = out.lists[new as usize]
                .binary_search(&id)
                .expect_err("row not yet in its new list");
            out.lists[new as usize].insert(at, id);
            out.packed[new as usize].splice(at * dim..at * dim, matrix.row(r).iter().copied());
            out.packed_norms[new as usize].insert(at, norms[r]);
            out.assignments[r] = new;
        }
        debug_assert!(
            !out.assignments.contains(&u32::MAX),
            "appended rows must all be in the dirty set"
        );
        out
    }

    /// Approximate cosine top-`k`: rank the inverted lists by centroid
    /// similarity, take the best `probes`, then stream the shared exact
    /// scoring ([`top_k_cosine_blocks`]) over their packed members. Rows
    /// for which `exclude` returns `true` are skipped. Deterministic: list
    /// order breaks centroid-score ties by ascending list id, and the
    /// result depends only on the probed candidate set. Scores are against
    /// the rows the index was built / last refreshed from.
    pub fn search_filtered(
        &self,
        query: &[f32],
        k: usize,
        probes: usize,
        exclude: impl FnMut(usize) -> bool,
    ) -> Vec<(usize, f32)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let probes = probes.clamp(1, self.nlist());
        let mut ranked: Vec<(f32, usize)> = (0..self.nlist())
            .map(|l| {
                let dot = vector::dot(self.centroids.row(l), query);
                // Degenerate centroid scores sort last, not randomly.
                (if dot.is_finite() { dot } else { f32::NEG_INFINITY }, l)
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        let blocks = ranked[..probes].iter().map(|&(_, l)| {
            (self.lists[l].as_slice(), self.packed[l].as_slice(), self.packed_norms[l].as_slice())
        });
        top_k_cosine_blocks(self.dim, query, k, blocks, exclude)
    }

    /// [`IvfIndex::search_filtered`] with no exclusions.
    pub fn search(&self, query: &[f32], k: usize, probes: usize) -> Vec<(usize, f32)> {
        self.search_filtered(query, k, probes, |_| false)
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// True when no rows are indexed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// The build configuration (nlist reflects the pre-clamp request; use
    /// [`IvfIndex::nlist`] for the actual list count).
    pub fn config(&self) -> &IvfConfig {
        &self.config
    }

    /// The default probe count for this index.
    pub fn default_probes(&self) -> usize {
        (self.nlist() / 8).max(1)
    }

    /// The trained centroids (`nlist × dim`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Row id → owning list.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Member row ids of list `l`, ascending.
    pub fn list(&self, l: usize) -> &[u32] {
        &self.lists[l]
    }
}

/// A row is usable for training / meaningful assignment when its cached
/// norm is a positive finite number — the same predicate the shared
/// sanitize clamps on (`NaN` and `±inf` norms are non-finite; zero-norm
/// rows have no direction).
#[inline]
fn usable(norm: f32) -> bool {
    norm.is_finite() && norm > f32::EPSILON
}

/// Nearest-centroid assignment by raw dot product (row norms are positive
/// scalars, so the argmax equals the cosine argmax). Ties break toward the
/// lower centroid id; degenerate rows (zero-norm, `NaN`, `±inf`) always
/// land in list 0.
fn assign_row(row: &[f32], norm: f32, centroids: &Matrix) -> u32 {
    if !usable(norm) {
        return 0;
    }
    let mut best = f32::NEG_INFINITY;
    let mut at = 0u32;
    for l in 0..centroids.rows() {
        let dot = vector::dot(centroids.row(l), row);
        if dot.is_finite() && dot > best {
            best = dot;
            at = l as u32;
        }
    }
    at
}

/// Seeded spherical k-means over a strided sample of the usable rows.
/// Deterministic end to end: the stride offset is the only place the seed
/// enters, assignment ties break low, and empty clusters keep their
/// previous centroid.
fn train_centroids(matrix: &Matrix, norms: &[f32], config: &IvfConfig) -> Matrix {
    let dim = matrix.cols().max(1);
    let usable_ids: Vec<usize> = (0..matrix.rows()).filter(|&r| usable(norms[r])).collect();
    if usable_ids.is_empty() {
        // Nothing to train on: one catch-all list.
        return Matrix::zeros(1, dim);
    }
    let nlist = config.nlist.clamp(1, usable_ids.len());

    // Strided training sample of normalized rows. The seed rotates the
    // starting offset so distinct seeds see distinct samples, with no RNG
    // state anywhere in the build.
    let cap = config.sample_cap.max(nlist);
    let take = usable_ids.len().min(cap);
    let offset = (config.seed as usize) % usable_ids.len();
    let mut sample = Matrix::zeros(take, dim);
    for i in 0..take {
        let r = usable_ids[(offset + i * usable_ids.len() / take) % usable_ids.len()];
        sample.set_row(i, matrix.row(r));
        vector::normalize(sample.row_mut(i));
    }
    let sample_norms = vec![1.0f32; take];

    // Init: centroids strided across the sample.
    let mut centroids = Matrix::zeros(nlist, dim);
    for l in 0..nlist {
        centroids.set_row(l, sample.row(l * take / nlist));
    }

    // Lloyd refinement with cosine assignment and renormalized means.
    let mut sums = Matrix::zeros(nlist, dim);
    let mut counts = vec![0u32; nlist];
    for _ in 0..config.train_iters {
        sums.fill(0.0);
        counts.iter_mut().for_each(|c| *c = 0);
        for i in 0..take {
            let l = assign_row(sample.row(i), sample_norms[i], &centroids) as usize;
            vector::axpy(1.0, sample.row(i), sums.row_mut(l));
            counts[l] += 1;
        }
        for l in 0..nlist {
            if counts[l] == 0 {
                continue; // empty cluster keeps its previous centroid
            }
            let mean = sums.row(l);
            if vector::norm(mean) > f32::EPSILON {
                centroids.set_row(l, mean);
                vector::normalize(centroids.row_mut(l));
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_embed::nn::top_k_cosine;

    /// Clustered rows: `n` points around `k` unit anchors plus noise — the
    /// shape retrofitted embeddings have (topics attract their values).
    fn clustered(n: usize, dim: usize, k: usize) -> Matrix {
        Matrix::from_fn(n, dim, |r, c| {
            let anchor = ((r % k) * dim + c) as f32;
            (anchor * 0.7).sin() + 0.15 * ((r * 31 + c * 17) as f32 * 0.13).cos()
        })
    }

    #[test]
    fn build_is_deterministic_and_partitions_every_row() {
        let m = clustered(250, 12, 7);
        let norms = m.row_norms();
        let a = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
        let b = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
        assert_eq!(a.assignments(), b.assignments());
        assert_eq!(a.centroids().max_abs_diff(b.centroids()), 0.0);
        // Every row is in exactly one list, lists are ascending.
        let mut seen = vec![false; m.rows()];
        for l in 0..a.nlist() {
            let list = a.list(l);
            assert!(list.windows(2).all(|w| w[0] < w[1]), "list {l} not ascending");
            for &id in list {
                assert!(!seen[id as usize], "row {id} in two lists");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "a row fell out of every list");
    }

    #[test]
    fn threads_do_not_change_the_build() {
        let m = clustered(300, 8, 5);
        let norms = m.row_norms();
        let serial = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
        for threads in [2usize, 3, 8] {
            let parallel = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), threads);
            assert_eq!(serial.assignments(), parallel.assignments(), "{threads} threads");
        }
    }

    #[test]
    fn full_probe_reproduces_the_exact_oracle() {
        let m = clustered(220, 10, 6);
        let norms = m.row_norms();
        let index = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
        for q in [0usize, 3, 57, 219] {
            let exact = top_k_cosine(&m, &norms, m.row(q), 10, 1, |_| false);
            let approx = index.search(m.row(q), 10, index.nlist());
            assert_eq!(approx, exact, "query row {q}");
        }
    }

    #[test]
    fn distinct_seeds_build_distinct_but_valid_indexes() {
        let m = clustered(200, 8, 6);
        let norms = m.row_norms();
        let a = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()).with_seed(1), 1);
        let b = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()).with_seed(2), 1);
        // Both must still reproduce the oracle at full probe depth.
        let exact = top_k_cosine(&m, &norms, m.row(5), 8, 1, |_| false);
        assert_eq!(a.search(m.row(5), 8, a.nlist()), exact);
        assert_eq!(b.search(m.row(5), 8, b.nlist()), exact);
    }

    #[test]
    fn degenerate_rows_land_in_list_zero_and_score_zero() {
        let mut m = clustered(60, 6, 4);
        m.row_mut(10).fill(0.0); // zero-norm
        m.row_mut(20)[0] = f32::NAN; // poisoned
        m.row_mut(30)[2] = f32::INFINITY; // poisoned
        let norms = m.row_norms();
        let index = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
        for r in [10usize, 20, 30] {
            assert_eq!(index.assignments()[r], 0, "degenerate row {r}");
        }
        let top = index.search(m.row(1), m.rows(), index.nlist());
        assert!(top.iter().all(|&(_, s)| s.is_finite()));
        for &(id, s) in &top {
            if [10usize, 20, 30].contains(&id) {
                assert_eq!(s, 0.0, "degenerate row {id} must score 0.0");
            }
        }
        assert!(![10usize, 20, 30].contains(&top[0].0), "degenerate row surfaced on top");
    }

    #[test]
    fn search_excludes_and_clamps_probes() {
        let m = clustered(80, 6, 4);
        let norms = m.row_norms();
        let index = IvfIndex::build(&m, &norms, IvfConfig::auto(m.rows()), 1);
        let top = index.search_filtered(m.row(7), 5, usize::MAX, |id| id == 7);
        assert!(top.iter().all(|&(id, _)| id != 7));
        assert_eq!(top.len(), 5);
        assert!(index.search(m.row(7), 0, 1).is_empty());
    }

    #[test]
    fn refreshed_patch_equals_fresh_assignment() {
        let mut m = clustered(120, 8, 5);
        let norms = m.row_norms();
        let config = IvfConfig::auto(m.rows());
        let index = IvfIndex::build(&m, &norms, config, 1);

        // Move two rows, append one.
        let mut rows: Vec<Vec<f32>> = (0..m.rows()).map(|r| m.row(r).to_vec()).collect();
        rows[17] = (0..8).map(|c| ((c * 3) as f32 * 0.9).cos()).collect();
        rows[63] = (0..8).map(|c| ((c * 5 + 1) as f32 * 0.4).sin()).collect();
        rows.push((0..8).map(|c| (c as f32 * 1.3).sin()).collect());
        m = Matrix::from_rows(&rows);
        let norms = m.row_norms();

        let patched = index.refreshed(&m, &norms, &[17, 63, 120]);
        let fresh = IvfIndex::with_centroids(&m, &norms, index.centroids().clone(), config, 1);
        assert_eq!(patched.assignments(), fresh.assignments());
        for l in 0..patched.nlist() {
            assert_eq!(patched.list(l), fresh.list(l), "list {l} diverged");
        }
        let q = m.row(17);
        assert_eq!(
            patched.search(q, 10, 3),
            fresh.search(q, 10, 3),
            "patched index answers diverged from a fresh assignment"
        );
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        let empty = Matrix::zeros(0, 4);
        let index = IvfIndex::build(&empty, &[], IvfConfig::auto(0), 1);
        assert!(index.is_empty());
        assert!(index.search(&[1.0, 0.0, 0.0, 0.0], 3, 1).is_empty());

        let one = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let norms = one.row_norms();
        let index = IvfIndex::build(&one, &norms, IvfConfig::auto(1), 1);
        assert_eq!(index.search(&[1.0, 2.0], 2, 5), vec![(0, 1.0)]);

        let zeros = Matrix::zeros(3, 2);
        let norms = zeros.row_norms();
        let index = IvfIndex::build(&zeros, &norms, IvfConfig::auto(3), 1);
        assert_eq!(index.nlist(), 1, "all-degenerate input gets one catch-all list");
        assert_eq!(index.len(), 3);
    }
}
