//! Activation functions and their derivatives.

use retro_linalg::Matrix;

/// Supported activations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Logistic sigmoid — the paper's hidden layers for classification.
    Sigmoid,
    /// Rectified linear unit — the paper's regression hidden layers.
    Relu,
    /// Identity — regression output.
    Linear,
    /// Row-wise softmax — imputation (multi-class) output. Must be paired
    /// with categorical cross-entropy (the gradient is fused).
    Softmax,
}

/// Numerically-stable logistic function.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

impl Activation {
    /// Apply in place to a batch of pre-activations (rows = samples).
    pub fn apply(self, z: &mut Matrix) {
        match self {
            Activation::Sigmoid => {
                for v in z.as_mut_slice() {
                    *v = sigmoid(*v);
                }
            }
            Activation::Relu => {
                for v in z.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            Activation::Linear => {}
            Activation::Softmax => {
                let cols = z.cols();
                for r in 0..z.rows() {
                    let row = z.row_mut(r);
                    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let mut sum = 0.0;
                    for v in row.iter_mut() {
                        *v = (*v - max).exp();
                        sum += *v;
                    }
                    if sum > 0.0 {
                        for v in row.iter_mut() {
                            *v /= sum;
                        }
                    } else {
                        // Degenerate row: fall back to uniform.
                        for v in row.iter_mut() {
                            *v = 1.0 / cols as f32;
                        }
                    }
                }
            }
        }
    }

    /// Multiply `grad` by the activation derivative, given the *post*-
    /// activation values `a` (all our activations have derivatives
    /// expressible from outputs).
    ///
    /// Softmax is intentionally unsupported here: its derivative is fused
    /// with categorical cross-entropy in the output-layer gradient
    /// (`predictions - targets`), which is the only configuration the
    /// builder permits.
    pub fn backprop(self, a: &Matrix, grad: &mut Matrix) {
        debug_assert_eq!(a.shape(), grad.shape());
        match self {
            Activation::Sigmoid => {
                for (g, &y) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *g *= y * (1.0 - y);
                }
            }
            Activation::Relu => {
                for (g, &y) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    if y <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Activation::Linear => {}
            Activation::Softmax => {
                unreachable!("softmax derivative is fused with the loss gradient")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_squashes() {
        let mut z = Matrix::from_rows(&[vec![0.0, 100.0, -100.0]]);
        Activation::Sigmoid.apply(&mut z);
        assert!((z.get(0, 0) - 0.5).abs() < 1e-6);
        assert!(z.get(0, 1) > 0.999);
        assert!(z.get(0, 2) < 0.001);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut z = Matrix::from_rows(&[vec![-1.0, 0.0, 2.0]]);
        Activation::Relu.apply(&mut z);
        assert_eq!(z.row(0), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut z = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![1000.0, 1000.0, 1000.0]]);
        Activation::Softmax.apply(&mut z);
        for r in 0..2 {
            let sum: f32 = z.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone: bigger logit, bigger probability.
        assert!(z.get(0, 2) > z.get(0, 1));
        assert!(z.get(0, 1) > z.get(0, 0));
    }

    #[test]
    fn softmax_extreme_logits_are_stable() {
        let mut z = Matrix::from_rows(&[vec![1e30, -1e30]]);
        Activation::Softmax.apply(&mut z);
        assert!(z.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sigmoid_backprop_matches_derivative() {
        // d/dx sigmoid(x) at x=0 is 0.25.
        let a = Matrix::from_rows(&[vec![0.5]]);
        let mut g = Matrix::from_rows(&[vec![1.0]]);
        Activation::Sigmoid.backprop(&a, &mut g);
        assert!((g.get(0, 0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn relu_backprop_zeroes_dead_units() {
        let a = Matrix::from_rows(&[vec![0.0, 3.0]]);
        let mut g = Matrix::from_rows(&[vec![5.0, 5.0]]);
        Activation::Relu.backprop(&a, &mut g);
        assert_eq!(g.row(0), &[0.0, 5.0]);
    }

    #[test]
    fn linear_is_identity_both_ways() {
        let mut z = Matrix::from_rows(&[vec![-2.0, 7.0]]);
        let orig = z.clone();
        Activation::Linear.apply(&mut z);
        assert_eq!(z, orig);
        let mut g = Matrix::from_rows(&[vec![1.5, -1.5]]);
        let g_orig = g.clone();
        Activation::Linear.backprop(&z, &mut g);
        assert_eq!(g, g_orig);
    }
}
