//! Loss functions with fused output-layer gradients.

use retro_linalg::Matrix;

/// Supported training losses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Loss {
    /// Binary cross-entropy over sigmoid outputs (binary classification,
    /// link prediction).
    BinaryCrossEntropy,
    /// Categorical cross-entropy over softmax outputs (imputation).
    CategoricalCrossEntropy,
    /// Mean absolute error over linear outputs (regression, as in Fig. 13).
    MeanAbsoluteError,
}

const EPS: f32 = 1e-7;

impl Loss {
    /// Mean loss over a batch.
    pub fn value(self, predictions: &Matrix, targets: &Matrix) -> f32 {
        assert_eq!(predictions.shape(), targets.shape(), "Loss::value: shape mismatch");
        let n = predictions.rows().max(1) as f32;
        match self {
            Loss::BinaryCrossEntropy => {
                let mut sum = 0.0;
                for (&p, &y) in predictions.as_slice().iter().zip(targets.as_slice()) {
                    let p = p.clamp(EPS, 1.0 - EPS);
                    sum -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
                }
                sum / (n * predictions.cols().max(1) as f32)
            }
            Loss::CategoricalCrossEntropy => {
                let mut sum = 0.0;
                for (&p, &y) in predictions.as_slice().iter().zip(targets.as_slice()) {
                    if y > 0.0 {
                        sum -= y * p.clamp(EPS, 1.0).ln();
                    }
                }
                sum / n
            }
            Loss::MeanAbsoluteError => {
                let mut sum = 0.0;
                for (&p, &y) in predictions.as_slice().iter().zip(targets.as_slice()) {
                    sum += (p - y).abs();
                }
                sum / (n * predictions.cols().max(1) as f32)
            }
        }
    }

    /// The gradient ∂L/∂Z at the output layer, with the activation
    /// derivative already fused:
    ///
    /// * BCE + sigmoid → `(p - y)/n`
    /// * CCE + softmax → `(p - y)/n`
    /// * MAE + linear → `sign(p - y)/n`
    pub fn output_gradient(self, predictions: &Matrix, targets: &Matrix) -> Matrix {
        assert_eq!(predictions.shape(), targets.shape(), "Loss::output_gradient: shape mismatch");
        let n = predictions.rows().max(1) as f32;
        let mut grad = predictions.clone();
        grad.axpy(-1.0, targets);
        match self {
            Loss::BinaryCrossEntropy | Loss::CategoricalCrossEntropy => {
                grad.scale(1.0 / n);
            }
            Loss::MeanAbsoluteError => {
                for v in grad.as_mut_slice() {
                    *v = v.signum() / n;
                }
            }
        }
        grad
    }

    /// Whether the output gradient already includes the activation
    /// derivative (true for every variant here — kept explicit so the
    /// network knows not to backprop through the output activation twice).
    pub fn is_fused(self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_prediction_is_near_zero() {
        let p = Matrix::from_rows(&[vec![1.0], vec![0.0]]);
        let y = p.clone();
        assert!(Loss::BinaryCrossEntropy.value(&p, &y) < 1e-4);
    }

    #[test]
    fn bce_penalizes_confident_mistakes() {
        let y = Matrix::from_rows(&[vec![1.0]]);
        let good = Matrix::from_rows(&[vec![0.9]]);
        let bad = Matrix::from_rows(&[vec![0.1]]);
        assert!(
            Loss::BinaryCrossEntropy.value(&bad, &y) > Loss::BinaryCrossEntropy.value(&good, &y)
        );
    }

    #[test]
    fn cce_matches_hand_computation() {
        // One sample, true class 0 with p=0.5: loss = -ln(0.5).
        let p = Matrix::from_rows(&[vec![0.5, 0.5]]);
        let y = Matrix::from_rows(&[vec![1.0, 0.0]]);
        assert!((Loss::CategoricalCrossEntropy.value(&p, &y) - 0.5f32.ln().abs()).abs() < 1e-5);
    }

    #[test]
    fn mae_is_mean_absolute_difference() {
        let p = Matrix::from_rows(&[vec![1.0], vec![-1.0]]);
        let y = Matrix::from_rows(&[vec![2.0], vec![1.0]]);
        assert!((Loss::MeanAbsoluteError.value(&p, &y) - 1.5).abs() < 1e-6);
    }

    #[test]
    fn fused_gradients_point_from_target_to_prediction() {
        let p = Matrix::from_rows(&[vec![0.8, 0.2]]);
        let y = Matrix::from_rows(&[vec![1.0, 0.0]]);
        let g = Loss::CategoricalCrossEntropy.output_gradient(&p, &y);
        assert!(g.get(0, 0) < 0.0); // push class-0 probability up
        assert!(g.get(0, 1) > 0.0); // push class-1 probability down
    }

    #[test]
    fn mae_gradient_is_sign() {
        let p = Matrix::from_rows(&[vec![2.0], vec![-3.0]]);
        let y = Matrix::from_rows(&[vec![0.0], vec![0.0]]);
        let g = Loss::MeanAbsoluteError.output_gradient(&p, &y);
        assert_eq!(g.get(0, 0), 0.5);
        assert_eq!(g.get(1, 0), -0.5);
    }
}
