//! Fully-connected layers with cached forward state for backprop.

use rand::Rng;
use retro_linalg::{vector, Matrix};

use crate::activation::Activation;
use crate::optimizer::Nadam;

/// A dense layer `A = act(X·W + b)` with its optimizer state.
#[derive(Clone, Debug)]
pub struct Dense {
    /// `input_dim × output_dim` weights.
    w: Matrix,
    /// Bias per output unit.
    b: Vec<f32>,
    activation: Activation,
    opt_w: Nadam,
    opt_b: Nadam,
    /// Cached input of the latest forward pass (needed for dW).
    cache_input: Option<Matrix>,
    /// Cached post-activation output (needed for activation backprop).
    cache_output: Option<Matrix>,
}

impl Dense {
    /// Glorot-uniform initialization, as Keras defaults (the paper built its
    /// ANNs with default initializers).
    pub fn new<R: Rng + ?Sized>(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        lr: f32,
        rng: &mut R,
    ) -> Self {
        let limit = (6.0 / (input_dim + output_dim) as f32).sqrt();
        let w = Matrix::from_fn(input_dim, output_dim, |_, _| rng.gen_range(-limit..limit));
        Self {
            w,
            b: vec![0.0; output_dim],
            activation,
            opt_w: Nadam::new(input_dim * output_dim, lr),
            opt_b: Nadam::new(output_dim, lr),
            cache_input: None,
            cache_output: None,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// This layer's activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Forward pass without caching (inference).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        for r in 0..z.rows() {
            vector::axpy(1.0, &self.b, z.row_mut(r));
        }
        self.activation.apply(&mut z);
        z
    }

    /// Forward pass with caching (training).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let out = self.infer(x);
        self.cache_input = Some(x.clone());
        self.cache_output = Some(out.clone());
        out
    }

    /// Backward pass.
    ///
    /// `grad` is ∂L/∂A when `through_activation` is true (hidden layers) or
    /// the already-fused ∂L/∂Z (softmax+CCE, sigmoid+BCE, MAE output
    /// layers). Applies the Nadam update with L2 weight decay `l2` and
    /// returns ∂L/∂X for the previous layer.
    pub fn backward(&mut self, mut grad: Matrix, through_activation: bool, l2: f32) -> Matrix {
        let x = self.cache_input.take().expect("backward without forward");
        let a = self.cache_output.take().expect("backward without forward");
        if through_activation {
            self.activation.backprop(&a, &mut grad);
        }
        // dW = Xᵀ · dZ  (+ L2), db = column sums of dZ, dX = dZ · Wᵀ.
        let mut dw = x.transpose().matmul(&grad);
        if l2 > 0.0 {
            dw.axpy(l2, &self.w);
        }
        let mut db = vec![0.0f32; self.b.len()];
        for r in 0..grad.rows() {
            vector::axpy(1.0, grad.row(r), &mut db);
        }
        let dx = grad.matmul(&self.w.transpose());
        self.opt_w.step(self.w.as_mut_slice(), dw.as_slice());
        self.opt_b.step(&mut self.b, &db);
        dx
    }

    /// Borrow the weights (tests / inspection).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::new(3, 2, Activation::Linear, 0.01, &mut rng);
        let x = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]);
        let y = layer.infer(&x);
        assert_eq!(y.shape(), (2, 2));
        // Zero input → output equals bias (zero at init).
        assert_eq!(y.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn glorot_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Dense::new(8, 8, Activation::Relu, 0.01, &mut rng);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(layer.weights().as_slice().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn single_layer_learns_linear_map() {
        // Learn y = x1 - x2 with a linear layer under squared-error-style
        // gradients (dZ = pred - target).
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(2, 1, Activation::Linear, 0.02, &mut rng);
        let x =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, -1.0]]);
        let y = Matrix::from_rows(&[vec![1.0], vec![-1.0], vec![0.0], vec![3.0]]);
        // 2000 iterations: enough for the slowest Glorot draw to settle
        // well under the assertion threshold (unlucky inits need ~1000).
        for _ in 0..2000 {
            let pred = layer.forward(&x);
            let mut grad = pred.clone();
            grad.axpy(-1.0, &y);
            grad.scale(1.0 / 4.0);
            layer.backward(grad, false, 0.0);
        }
        let final_pred = layer.infer(&x);
        assert!(final_pred.max_abs_diff(&y) < 0.05, "pred {:?}", final_pred);
    }

    #[test]
    fn backward_returns_input_gradient_shape() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Dense::new(5, 3, Activation::Sigmoid, 0.01, &mut rng);
        let x = Matrix::zeros(7, 5);
        let _ = layer.forward(&x);
        let dx = layer.backward(Matrix::zeros(7, 3), true, 0.0);
        assert_eq!(dx.shape(), (7, 5));
    }

    #[test]
    fn l2_shrinks_weights_under_zero_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(2, 2, Activation::Linear, 0.05, &mut rng);
        let norm_before = layer.weights().frobenius_norm();
        let x = Matrix::zeros(1, 2);
        for _ in 0..50 {
            let _ = layer.forward(&x);
            layer.backward(Matrix::zeros(1, 2), false, 0.1);
        }
        assert!(layer.weights().frobenius_norm() < norm_before);
    }
}
