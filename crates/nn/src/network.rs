//! Multi-layer networks with mini-batch training, dropout, validation split
//! and early stopping — §5.5's training protocol.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_linalg::Matrix;

use crate::activation::Activation;
use crate::layer::Dense;
use crate::loss::Loss;

/// Builder for [`Network`].
pub struct NetworkBuilder {
    input_dim: usize,
    specs: Vec<(usize, Activation)>,
    loss: Loss,
    lr: f32,
    l2: f32,
    dropout: f32,
    seed: u64,
}

impl NetworkBuilder {
    /// Start a network taking `input_dim` features.
    pub fn new(input_dim: usize) -> Self {
        Self {
            input_dim,
            specs: Vec::new(),
            loss: Loss::BinaryCrossEntropy,
            lr: 0.002,
            l2: 0.0,
            dropout: 0.0,
            seed: 0,
        }
    }

    /// Append a dense layer.
    pub fn dense(mut self, units: usize, activation: Activation) -> Self {
        self.specs.push((units, activation));
        self
    }

    /// Set the training loss.
    pub fn loss(mut self, loss: Loss) -> Self {
        self.loss = loss;
        self
    }

    /// Set the Nadam learning rate (default 0.002, the Keras default).
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Set the L2 weight-decay coefficient.
    pub fn l2(mut self, l2: f32) -> Self {
        self.l2 = l2;
        self
    }

    /// Set the dropout rate applied to hidden-layer outputs during training.
    pub fn dropout(mut self, rate: f32) -> Self {
        assert!((0.0..1.0).contains(&rate), "dropout rate must be in [0, 1)");
        self.dropout = rate;
        self
    }

    /// Set the RNG seed (initialization, shuffling, dropout masks).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the network.
    ///
    /// # Panics
    /// Panics when no layers were added, or when softmax appears anywhere
    /// except the output of a categorical-cross-entropy network (the fused
    /// gradient only holds there).
    pub fn build(self) -> Network {
        assert!(!self.specs.is_empty(), "network needs at least one layer");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut dim = self.input_dim;
        for (i, &(units, act)) in self.specs.iter().enumerate() {
            let is_last = i == self.specs.len() - 1;
            if act == Activation::Softmax {
                assert!(
                    is_last && self.loss == Loss::CategoricalCrossEntropy,
                    "softmax is only valid as the output of a CCE network"
                );
            }
            layers.push(Dense::new(dim, units, act, self.lr, &mut rng));
            dim = units;
        }
        Network { layers, loss: self.loss, l2: self.l2, dropout: self.dropout, rng }
    }
}

/// Training-loop parameters (§5.5: 10% validation split, stop after 50
/// epochs without validation improvement, restore the best model).
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Hard cap on epochs.
    pub max_epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Fraction of the training data held out for validation.
    pub validation_fraction: f32,
    /// Early-stopping patience in epochs (`None` disables early stopping).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { max_epochs: 300, batch_size: 32, validation_fraction: 0.1, patience: Some(50) }
    }
}

/// Outcome of a training run.
#[derive(Clone, Copy, Debug)]
pub struct TrainReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Best validation loss seen (or final training loss when no split).
    pub best_val_loss: f32,
    /// Whether early stopping triggered.
    pub early_stopped: bool,
}

/// A feed-forward network.
pub struct Network {
    layers: Vec<Dense>,
    loss: Loss,
    l2: f32,
    dropout: f32,
    rng: StdRng,
}

impl Network {
    /// Start building a network.
    pub fn builder(input_dim: usize) -> NetworkBuilder {
        NetworkBuilder::new(input_dim)
    }

    /// Inference forward pass (no dropout, no caching).
    pub fn predict(&self, x: &Matrix) -> Matrix {
        let mut a = x.clone();
        for layer in &self.layers {
            a = layer.infer(&a);
        }
        a
    }

    /// Argmax class per row (for softmax/multi-output networks).
    pub fn predict_classes(&self, x: &Matrix) -> Vec<usize> {
        let p = self.predict(x);
        (0..p.rows())
            .map(|r| {
                p.row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Binary decision per row for single-output sigmoid networks.
    pub fn predict_binary(&self, x: &Matrix) -> Vec<bool> {
        let p = self.predict(x);
        (0..p.rows()).map(|r| p.get(r, 0) >= 0.5).collect()
    }

    /// The configured loss on a dataset.
    pub fn evaluate(&self, x: &Matrix, y: &Matrix) -> f32 {
        self.loss.value(&self.predict(x), y)
    }

    /// One mini-batch gradient step; returns the batch loss.
    fn train_batch(&mut self, x: &Matrix, y: &Matrix) -> f32 {
        let n_layers = self.layers.len();
        let mut masks: Vec<Option<Vec<f32>>> = vec![None; n_layers];
        let mut a = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            a = layer.forward(&a);
            let is_hidden = i + 1 < n_layers;
            if is_hidden && self.dropout > 0.0 {
                // Inverted dropout: zero with probability p, scale by 1/(1-p).
                let keep = 1.0 - self.dropout;
                let mask: Vec<f32> = (0..a.as_slice().len())
                    .map(|_| if self.rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
                    .collect();
                for (v, &m) in a.as_mut_slice().iter_mut().zip(&mask) {
                    *v *= m;
                }
                masks[i] = Some(mask);
            }
        }
        let loss = self.loss.value(&a, y);
        let mut grad = self.loss.output_gradient(&a, y);
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let is_last = i + 1 == n_layers;
            if let Some(mask) = &masks[i] {
                for (g, &m) in grad.as_mut_slice().iter_mut().zip(mask) {
                    *g *= m;
                }
            }
            // The output gradient is fused with the output activation, so
            // only hidden layers backprop through their activation.
            grad = layer.backward(grad, !is_last, self.l2);
        }
        loss
    }

    /// Train on `(x, y)` with shuffled mini-batches, a validation split and
    /// early stopping with best-model restoration.
    pub fn train(&mut self, x: &Matrix, y: &Matrix, config: TrainConfig) -> TrainReport {
        assert_eq!(x.rows(), y.rows(), "train: sample count mismatch");
        let n = x.rows();
        let mut indices: Vec<usize> = (0..n).collect();
        // Shuffle once before splitting so the validation set is unbiased.
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let n_val = ((n as f32) * config.validation_fraction).round() as usize;
        let n_val = n_val.min(n.saturating_sub(1));
        let (train_idx, val_idx) = indices.split_at(n - n_val);
        let mut train_idx = train_idx.to_vec();
        let x_val = x.select_rows(val_idx);
        let y_val = y.select_rows(val_idx);

        let mut best_val = f32::INFINITY;
        let mut best_layers: Option<Vec<Dense>> = None;
        let mut since_best = 0usize;
        let mut epochs = 0usize;
        let mut early_stopped = false;
        let mut last_train_loss = f32::INFINITY;

        for _ in 0..config.max_epochs {
            epochs += 1;
            for i in (1..train_idx.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                train_idx.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in train_idx.chunks(config.batch_size.max(1)) {
                let xb = x.select_rows(chunk);
                let yb = y.select_rows(chunk);
                epoch_loss += self.train_batch(&xb, &yb);
                batches += 1;
            }
            last_train_loss = epoch_loss / batches.max(1) as f32;

            let monitored = if n_val > 0 { self.evaluate(&x_val, &y_val) } else { last_train_loss };
            if monitored < best_val {
                best_val = monitored;
                best_layers = Some(self.layers.clone());
                since_best = 0;
            } else {
                since_best += 1;
                if let Some(patience) = config.patience {
                    if since_best >= patience {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }
        if let Some(best) = best_layers {
            self.layers = best;
        }
        TrainReport {
            epochs,
            best_val_loss: if best_val.is_finite() { best_val } else { last_train_loss },
            early_stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-style dataset, the classic non-linear sanity check.
    fn xor_data() -> (Matrix, Matrix) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..40 {
            for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
                xs.push(vec![a, b]);
                ys.push(vec![if (a > 0.5) != (b > 0.5) { 1.0 } else { 0.0 }]);
            }
        }
        (Matrix::from_rows(&xs), Matrix::from_rows(&ys))
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut net = Network::builder(2)
            .dense(8, Activation::Sigmoid)
            .dense(1, Activation::Sigmoid)
            .loss(Loss::BinaryCrossEntropy)
            .learning_rate(0.01)
            .seed(1)
            .build();
        net.train(
            &x,
            &y,
            TrainConfig {
                max_epochs: 200,
                batch_size: 16,
                validation_fraction: 0.1,
                patience: None,
            },
        );
        let preds = net.predict_binary(&x);
        let correct =
            preds.iter().zip(y.iter_rows()).filter(|(p, yr)| **p == (yr[0] > 0.5)).count();
        assert!(correct as f32 / preds.len() as f32 > 0.95, "accuracy {correct}/{}", preds.len());
    }

    #[test]
    fn softmax_classifier_learns_three_classes() {
        // Three well-separated 2-D blobs.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let centers = [(0.0, 0.0), (5.0, 5.0), (-5.0, 5.0)];
        let mut rng = StdRng::seed_from_u64(3);
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..60 {
                let dx: f32 = rng.gen_range(-1.0..1.0);
                let dy: f32 = rng.gen_range(-1.0..1.0);
                xs.push(vec![cx + dx, cy + dy]);
                let mut onehot = vec![0.0; 3];
                onehot[c] = 1.0;
                ys.push(onehot);
            }
        }
        let x = Matrix::from_rows(&xs);
        let y = Matrix::from_rows(&ys);
        let mut net = Network::builder(2)
            .dense(16, Activation::Sigmoid)
            .dense(3, Activation::Softmax)
            .loss(Loss::CategoricalCrossEntropy)
            .learning_rate(0.01)
            .seed(4)
            .build();
        net.train(
            &x,
            &y,
            TrainConfig {
                max_epochs: 150,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(50),
            },
        );
        let classes = net.predict_classes(&x);
        let correct = classes.iter().zip(ys.iter()).filter(|(c, y)| y[**c] > 0.5).count();
        assert!(correct as f32 / classes.len() as f32 > 0.95);
    }

    #[test]
    fn regression_fits_linear_function() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let v = i as f32 / 50.0 - 1.0;
            xs.push(vec![v]);
            ys.push(vec![3.0 * v + 1.0]);
        }
        let x = Matrix::from_rows(&xs);
        let y = Matrix::from_rows(&ys);
        let mut net = Network::builder(1)
            .dense(16, Activation::Relu)
            .dense(1, Activation::Linear)
            .loss(Loss::MeanAbsoluteError)
            .learning_rate(0.01)
            .seed(5)
            .build();
        net.train(
            &x,
            &y,
            TrainConfig {
                max_epochs: 300,
                batch_size: 25,
                validation_fraction: 0.0,
                patience: None,
            },
        );
        let mae = Loss::MeanAbsoluteError.value(&net.predict(&x), &y);
        assert!(mae < 0.25, "MAE {mae}");
    }

    #[test]
    fn early_stopping_halts_before_max_epochs() {
        let (x, y) = xor_data();
        let mut net = Network::builder(2)
            .dense(4, Activation::Sigmoid)
            .dense(1, Activation::Sigmoid)
            .seed(6)
            .build();
        let report = net.train(
            &x,
            &y,
            TrainConfig {
                max_epochs: 5000,
                batch_size: 16,
                validation_fraction: 0.2,
                patience: Some(10),
            },
        );
        assert!(report.epochs < 5000);
        assert!(report.early_stopped);
    }

    #[test]
    #[should_panic(expected = "softmax is only valid as the output")]
    fn softmax_hidden_layer_rejected() {
        let _ =
            Network::builder(2).dense(4, Activation::Softmax).dense(1, Activation::Sigmoid).build();
    }

    #[test]
    fn dropout_network_still_learns() {
        let (x, y) = xor_data();
        let mut net = Network::builder(2)
            .dense(16, Activation::Sigmoid)
            .dense(1, Activation::Sigmoid)
            .dropout(0.2)
            .learning_rate(0.01)
            .seed(7)
            .build();
        net.train(
            &x,
            &y,
            TrainConfig {
                max_epochs: 300,
                batch_size: 16,
                validation_fraction: 0.1,
                patience: None,
            },
        );
        let preds = net.predict_binary(&x);
        let correct =
            preds.iter().zip(y.iter_rows()).filter(|(p, yr)| **p == (yr[0] > 0.5)).count();
        assert!(correct as f32 / preds.len() as f32 > 0.9);
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
}
