//! The Nadam optimizer (Adam with Nesterov momentum, Dozat 2016) — the
//! optimizer the paper trains all its networks with.

/// Per-tensor Nadam state.
#[derive(Clone, Debug)]
pub struct Nadam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical-stability ε.
    pub eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
}

impl Nadam {
    /// Fresh state for a tensor with `len` parameters. Default
    /// hyperparameters follow the Keras Nadam implementation the paper used
    /// (lr=0.002, β₁=0.9, β₂=0.999).
    pub fn new(len: usize, lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-7, m: vec![0.0; len], v: vec![0.0; len], t: 0 }
    }

    /// Apply one Nadam step: `params -= update(grads)`.
    ///
    /// The Nesterov-corrected update is
    /// `lr · (β₁·m̂ + (1-β₁)·g/(1-β₁ᵗ)) / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "Nadam::step: parameter count changed");
        assert_eq!(params.len(), grads.len(), "Nadam::step: gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t);
        let b2t = 1.0 - self.beta2.powi(self.t);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            let m_nesterov = self.beta1 * m_hat + (1.0 - self.beta1) * g / b1t;
            params[i] -= self.lr * m_nesterov / (v_hat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x-3)², gradient 2(x-3). Nadam should converge to 3.
        let mut x = vec![0.0f32];
        let mut opt = Nadam::new(1, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn first_step_moves_against_gradient() {
        let mut x = vec![1.0f32, 1.0];
        let mut opt = Nadam::new(2, 0.01);
        opt.step(&mut x, &[1.0, -1.0]);
        assert!(x[0] < 1.0);
        assert!(x[1] > 1.0);
    }

    #[test]
    fn zero_gradient_is_fixed_point_from_rest() {
        let mut x = vec![2.0f32];
        let mut opt = Nadam::new(1, 0.01);
        opt.step(&mut x, &[0.0]);
        assert!((x[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gradient count mismatch")]
    fn mismatched_lengths_panic() {
        let mut x = vec![0.0f32];
        let mut opt = Nadam::new(1, 0.01);
        opt.step(&mut x, &[1.0, 2.0]);
    }
}
