//! # retro-nn
//!
//! A from-scratch feed-forward neural-network library implementing exactly
//! what the paper's evaluation needs (Fig. 5):
//!
//! * dense layers with sigmoid / ReLU / linear / softmax activations,
//! * binary & categorical cross-entropy and mean-absolute-error losses,
//! * the Nadam optimizer (Dozat 2016) the paper trains with,
//! * inverted dropout and L2 regularization,
//! * mini-batch training with a validation split and early stopping
//!   ("stop when validation loss has not improved for 50 epochs, restore
//!   the best model"),
//! * [`LinkNet`], the two-tower subtract architecture of Fig. 5c.
//!
//! The library is deliberately CPU-only, `f32`, deterministic under a seed,
//! and free of external dependencies beyond `rand`.

pub mod activation;
pub mod layer;
pub mod link;
pub mod loss;
pub mod network;
pub mod optimizer;

pub use activation::Activation;
pub use layer::Dense;
pub use link::LinkNet;
pub use loss::Loss;
pub use network::{Network, NetworkBuilder, TrainConfig, TrainReport};
pub use optimizer::Nadam;
