//! # retro-nn
//!
//! A from-scratch feed-forward neural-network library implementing exactly
//! what the paper's evaluation needs (Fig. 5):
//!
//! * dense layers with sigmoid / ReLU / linear / softmax activations,
//! * binary & categorical cross-entropy and mean-absolute-error losses,
//! * the Nadam optimizer (Dozat 2016) the paper trains with,
//! * inverted dropout and L2 regularization,
//! * mini-batch training with a validation split and early stopping
//!   ("stop when validation loss has not improved for 50 epochs, restore
//!   the best model"),
//! * [`LinkNet`], the two-tower subtract architecture of Fig. 5c.
//!
//! The library is deliberately CPU-only, `f32`, deterministic under a seed,
//! and free of external dependencies beyond `rand`.
//!
//! It also hosts the serving-side approximate nearest-neighbour index
//! ([`ann::IvfIndex`]): a deterministic IVF-flat partition of a snapshot's
//! embedding rows that makes kNN queries sub-linear while keeping the exact
//! scan as a recall oracle (probing every list reproduces it bit for bit).

pub mod activation;
pub mod ann;
pub mod layer;
pub mod link;
pub mod loss;
pub mod network;
pub mod optimizer;

pub use activation::Activation;
pub use ann::{IvfConfig, IvfIndex, SearchMode};
pub use layer::Dense;
pub use link::LinkNet;
pub use loss::Loss;
pub use network::{Network, NetworkBuilder, TrainConfig, TrainReport};
pub use optimizer::Nadam;
