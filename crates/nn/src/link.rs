//! The Fig. 5c link-prediction architecture: two input towers (source and
//! target embedding), each through its own dense layer, merged by
//! subtraction, then a further hidden layer and a single sigmoid output.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_linalg::Matrix;

use crate::activation::Activation;
use crate::layer::Dense;
use crate::loss::Loss;
use crate::network::{TrainConfig, TrainReport};

/// Two-tower subtract network for edge classification.
pub struct LinkNet {
    source_tower: Dense,
    target_tower: Dense,
    hidden: Dense,
    output: Dense,
    lr: f32,
    rng: StdRng,
}

/// Binary cross-entropy of always predicting 0.5 — the plateau an
/// all-sigmoid subtract network can saturate into from a bad draw.
const CHANCE_BCE: f32 = core::f32::consts::LN_2;

/// Fresh initializations attempted when a training run ends at the
/// chance plateau.
const MAX_RESTARTS: usize = 3;

impl LinkNet {
    /// Build for `dim`-dimensional source/target embeddings with
    /// `hidden`-unit towers (the paper uses 300).
    pub fn new(dim: usize, hidden: usize, lr: f32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            source_tower: Dense::new(dim, hidden, Activation::Sigmoid, lr, &mut rng),
            target_tower: Dense::new(dim, hidden, Activation::Sigmoid, lr, &mut rng),
            hidden: Dense::new(hidden, hidden, Activation::Sigmoid, lr, &mut rng),
            output: Dense::new(hidden, 1, Activation::Sigmoid, lr, &mut rng),
            lr,
            rng,
        }
    }

    /// Redraw all weights (continuing this network's RNG stream) for a
    /// training restart.
    fn reinitialize(&mut self) {
        let dim = self.source_tower.input_dim();
        let hidden = self.source_tower.output_dim();
        self.source_tower = Dense::new(dim, hidden, Activation::Sigmoid, self.lr, &mut self.rng);
        self.target_tower = Dense::new(dim, hidden, Activation::Sigmoid, self.lr, &mut self.rng);
        self.hidden = Dense::new(hidden, hidden, Activation::Sigmoid, self.lr, &mut self.rng);
        self.output = Dense::new(hidden, 1, Activation::Sigmoid, self.lr, &mut self.rng);
    }

    /// Predicted edge probability per row.
    pub fn predict(&self, sources: &Matrix, targets: &Matrix) -> Matrix {
        let s = self.source_tower.infer(sources);
        let t = self.target_tower.infer(targets);
        let mut merged = s;
        merged.axpy(-1.0, &t);
        self.output.infer(&self.hidden.infer(&merged))
    }

    /// Binary edge decision per row.
    pub fn predict_binary(&self, sources: &Matrix, targets: &Matrix) -> Vec<bool> {
        let p = self.predict(sources, targets);
        (0..p.rows()).map(|r| p.get(r, 0) >= 0.5).collect()
    }

    fn train_batch(&mut self, sources: &Matrix, targets: &Matrix, labels: &Matrix) -> f32 {
        let s = self.source_tower.forward(sources);
        let t = self.target_tower.forward(targets);
        let mut merged = s;
        merged.axpy(-1.0, &t);
        let h = self.hidden.forward(&merged);
        let p = self.output.forward(&h);

        let loss = Loss::BinaryCrossEntropy.value(&p, labels);
        let grad_out = Loss::BinaryCrossEntropy.output_gradient(&p, labels);
        let grad_h = self.output.backward(grad_out, false, 0.0);
        let grad_merged = self.hidden.backward(grad_h, true, 0.0);
        // merged = source_act - target_act ⇒ towers receive ±grad.
        let mut neg = grad_merged.clone();
        neg.scale(-1.0);
        let _ = self.source_tower.backward(grad_merged, true, 0.0);
        let _ = self.target_tower.backward(neg, true, 0.0);
        loss
    }

    /// Train on `(source, target, label)` triples with shuffled mini-batches
    /// and a validation split with early stopping, mirroring
    /// [`crate::Network::train`].
    ///
    /// The subtract-merge architecture can saturate into an
    /// always-predict-0.5 plateau from an unlucky initialization; when a
    /// run ends there (`CHANCE_BCE` = ln 2 or worse on the monitored loss),
    /// the weights are redrawn and training reruns, up to `MAX_RESTARTS`
    /// times, keeping the best attempt.
    pub fn train(
        &mut self,
        sources: &Matrix,
        targets: &Matrix,
        labels: &Matrix,
        config: TrainConfig,
    ) -> TrainReport {
        let mut report = self.train_once(sources, targets, labels, config);
        let mut best = (
            self.source_tower.clone(),
            self.target_tower.clone(),
            self.hidden.clone(),
            self.output.clone(),
        );
        for _ in 0..MAX_RESTARTS {
            if report.best_val_loss < CHANCE_BCE - 0.05 {
                break;
            }
            self.reinitialize();
            let retry = self.train_once(sources, targets, labels, config);
            if retry.best_val_loss < report.best_val_loss {
                report = retry;
                best = (
                    self.source_tower.clone(),
                    self.target_tower.clone(),
                    self.hidden.clone(),
                    self.output.clone(),
                );
            }
        }
        (self.source_tower, self.target_tower, self.hidden, self.output) = best;
        report
    }

    fn train_once(
        &mut self,
        sources: &Matrix,
        targets: &Matrix,
        labels: &Matrix,
        config: TrainConfig,
    ) -> TrainReport {
        assert_eq!(sources.rows(), targets.rows(), "LinkNet::train: row mismatch");
        assert_eq!(sources.rows(), labels.rows(), "LinkNet::train: label mismatch");
        let n = sources.rows();
        let mut indices: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = self.rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let n_val = ((n as f32) * config.validation_fraction).round() as usize;
        let n_val = n_val.min(n.saturating_sub(1));
        let (train_idx, val_idx) = indices.split_at(n - n_val);
        let mut train_idx = train_idx.to_vec();
        let sv = sources.select_rows(val_idx);
        let tv = targets.select_rows(val_idx);
        let lv = labels.select_rows(val_idx);

        let mut best_val = f32::INFINITY;
        let mut best: Option<(Dense, Dense, Dense, Dense)> = None;
        let mut since_best = 0;
        let mut epochs = 0;
        let mut early_stopped = false;
        let mut last_loss = f32::INFINITY;

        for _ in 0..config.max_epochs {
            epochs += 1;
            for i in (1..train_idx.len()).rev() {
                let j = self.rng.gen_range(0..=i);
                train_idx.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in train_idx.chunks(config.batch_size.max(1)) {
                let sb = sources.select_rows(chunk);
                let tb = targets.select_rows(chunk);
                let lb = labels.select_rows(chunk);
                epoch_loss += self.train_batch(&sb, &tb, &lb);
                batches += 1;
            }
            last_loss = epoch_loss / batches.max(1) as f32;
            let monitored = if n_val > 0 {
                Loss::BinaryCrossEntropy.value(&self.predict(&sv, &tv), &lv)
            } else {
                last_loss
            };
            if monitored < best_val {
                best_val = monitored;
                best = Some((
                    self.source_tower.clone(),
                    self.target_tower.clone(),
                    self.hidden.clone(),
                    self.output.clone(),
                ));
                since_best = 0;
            } else {
                since_best += 1;
                if let Some(p) = config.patience {
                    if since_best >= p {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }
        if let Some((s, t, h, o)) = best {
            self.source_tower = s;
            self.target_tower = t;
            self.hidden = h;
            self.output = o;
        }
        TrainReport {
            epochs,
            best_val_loss: if best_val.is_finite() { best_val } else { last_loss },
            early_stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic link task: an edge exists iff source and target share the
    /// dominant coordinate block.
    fn link_data(seed: u64, n: usize) -> (Matrix, Matrix, Matrix) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = Vec::new();
        let mut t = Vec::new();
        let mut l = Vec::new();
        for _ in 0..n {
            let group_s = rng.gen_range(0..2usize);
            let linked: bool = rng.gen();
            let group_t = if linked { group_s } else { 1 - group_s };
            let mut sv = vec![0.0f32; 8];
            let mut tv = vec![0.0f32; 8];
            for k in 0..4 {
                sv[group_s * 4 + k] = 1.0 + rng.gen_range(-0.2f32..0.2);
                tv[group_t * 4 + k] = 1.0 + rng.gen_range(-0.2f32..0.2);
            }
            s.push(sv);
            t.push(tv);
            l.push(vec![if linked { 1.0 } else { 0.0 }]);
        }
        (Matrix::from_rows(&s), Matrix::from_rows(&t), Matrix::from_rows(&l))
    }

    #[test]
    fn learns_block_structured_links() {
        let (s, t, l) = link_data(1, 400);
        let mut net = LinkNet::new(8, 16, 0.01, 2);
        net.train(
            &s,
            &t,
            &l,
            TrainConfig {
                max_epochs: 150,
                batch_size: 32,
                validation_fraction: 0.1,
                patience: Some(30),
            },
        );
        let preds = net.predict_binary(&s, &t);
        let correct =
            preds.iter().zip(l.iter_rows()).filter(|(p, lr)| **p == (lr[0] > 0.5)).count();
        assert!(correct as f32 / preds.len() as f32 > 0.9, "acc {correct}/400");
    }

    #[test]
    fn prediction_shape_is_one_column() {
        let (s, t, _) = link_data(3, 10);
        let net = LinkNet::new(8, 4, 0.01, 4);
        assert_eq!(net.predict(&s, &t).shape(), (10, 1));
    }

    #[test]
    fn asymmetric_towers_distinguish_direction() {
        // After training, swapping source and target should change outputs
        // (the towers have independent weights).
        let (s, t, l) = link_data(5, 200);
        let mut net = LinkNet::new(8, 8, 0.01, 6);
        net.train(
            &s,
            &t,
            &l,
            TrainConfig {
                max_epochs: 50,
                batch_size: 32,
                validation_fraction: 0.0,
                patience: None,
            },
        );
        let forward = net.predict(&s, &t);
        let backward = net.predict(&t, &s);
        assert!(forward.max_abs_diff(&backward) > 1e-4);
    }
}
