//! Skip-Gram with negative sampling (SGNS), the word2vec training core.
//!
//! Given "sentences" (random walks over node ids), the model learns input
//! embeddings `W_in` and output embeddings `W_out` such that
//! `σ(W_in[center] · W_out[context])` is high for co-occurring pairs and low
//! for `k` sampled negatives. The input embeddings are the published node
//! vectors.

use rand::Rng;
use retro_linalg::{vector, Matrix};

use crate::negative::NegativeTable;

/// SGNS hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct SgnsConfig {
    /// Embedding dimensionality (the paper uses 300).
    pub dim: usize,
    /// Maximum context window size; the effective window per position is
    /// sampled uniformly from `1..=window` (word2vec's dynamic window).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Initial learning rate, linearly decayed to 1e-4 of itself.
    pub learning_rate: f32,
    /// Passes over the walk corpus.
    pub epochs: usize,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        Self { dim: 300, window: 10, negatives: 5, learning_rate: 0.025, epochs: 1 }
    }
}

/// The Skip-Gram model state.
#[derive(Clone, Debug)]
pub struct SkipGram {
    config: SgnsConfig,
    w_in: Matrix,
    w_out: Matrix,
}

/// Numerically-stable logistic function.
#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

impl SkipGram {
    /// Initialize for `vocab` ids: `W_in` uniform in `±0.5/dim` (word2vec's
    /// convention), `W_out` zero.
    pub fn new<R: Rng + ?Sized>(vocab: usize, config: SgnsConfig, rng: &mut R) -> Self {
        let spread = 0.5 / config.dim as f32;
        let w_in = Matrix::from_fn(vocab, config.dim, |_, _| rng.gen_range(-spread..spread));
        let w_out = Matrix::zeros(vocab, config.dim);
        Self { config, w_in, w_out }
    }

    /// Train on a walk corpus.
    pub fn train<R: Rng + ?Sized>(&mut self, walks: &[Vec<u32>], rng: &mut R) {
        let vocab = self.w_in.rows();
        let table = NegativeTable::from_walks(walks, vocab);
        if table.total_mass() <= 0.0 {
            return;
        }
        let total_steps = (walks.iter().map(Vec::len).sum::<usize>() * self.config.epochs).max(1);
        let mut step = 0usize;
        let lr0 = self.config.learning_rate;
        let mut grad_in = vec![0.0f32; self.config.dim];

        for _ in 0..self.config.epochs {
            for walk in walks {
                for (pos, &center) in walk.iter().enumerate() {
                    // Linear learning-rate decay, floored at 1e-4 · lr0.
                    let progress = step as f32 / total_steps as f32;
                    let lr = (lr0 * (1.0 - progress)).max(lr0 * 1e-4);
                    step += 1;

                    let b = rng.gen_range(0..self.config.window);
                    let window = self.config.window - b;
                    let lo = pos.saturating_sub(window);
                    let hi = (pos + window).min(walk.len() - 1);
                    for (ctx_pos, &context) in walk.iter().enumerate().take(hi + 1).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        self.train_pair(
                            center as usize,
                            context as usize,
                            lr,
                            &table,
                            rng,
                            &mut grad_in,
                        );
                    }
                }
            }
        }
    }

    /// One positive pair + `negatives` sampled negatives.
    fn train_pair<R: Rng + ?Sized>(
        &mut self,
        center: usize,
        context: usize,
        lr: f32,
        table: &NegativeTable,
        rng: &mut R,
        grad_in: &mut [f32],
    ) {
        vector::zero(grad_in);
        // Positive example, then negatives with label 0.
        for k in 0..=self.config.negatives {
            let (target, label) = if k == 0 {
                (context, 1.0f32)
            } else {
                let Some(neg) = table.sample(rng) else { break };
                if neg == context {
                    continue;
                }
                (neg, 0.0f32)
            };
            let score = sigmoid(vector::dot(self.w_in.row(center), self.w_out.row(target)));
            let g = lr * (label - score);
            vector::axpy(g, self.w_out.row(target), grad_in);
            // W_out[target] += g * W_in[center]
            let center_row: Vec<f32> = self.w_in.row(center).to_vec();
            vector::axpy(g, &center_row, self.w_out.row_mut(target));
        }
        vector::axpy(1.0, grad_in, self.w_in.row_mut(center));
    }

    /// The learned input embeddings.
    pub fn input_embeddings(&self) -> &Matrix {
        &self.w_in
    }

    /// Consume the model, returning the input embeddings.
    pub fn into_input_embeddings(self) -> Matrix {
        self.w_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(-1000.0) >= 0.0); // no NaN/underflow panic
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cooccurring_ids_gain_similarity() {
        // Corpus where 0 and 1 always co-occur, 2 and 3 always co-occur.
        let mut walks = Vec::new();
        for _ in 0..200 {
            walks.push(vec![0u32, 1, 0, 1, 0, 1]);
            walks.push(vec![2u32, 3, 2, 3, 2, 3]);
        }
        let mut rng = StdRng::seed_from_u64(9);
        let config =
            SgnsConfig { dim: 12, window: 2, negatives: 4, epochs: 2, ..SgnsConfig::default() };
        let mut model = SkipGram::new(4, config, &mut rng);
        model.train(&walks, &mut rng);
        let emb = model.input_embeddings();
        let same = vector::cosine(emb.row(0), emb.row(1));
        let cross = vector::cosine(emb.row(0), emb.row(3));
        assert!(same > cross, "same {same} cross {cross}");
    }

    #[test]
    fn empty_corpus_is_a_noop() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = SgnsConfig { dim: 4, ..SgnsConfig::default() };
        let mut model = SkipGram::new(3, config, &mut rng);
        let before = model.input_embeddings().clone();
        model.train(&[], &mut rng);
        assert!(model.input_embeddings().max_abs_diff(&before) < 1e-9);
    }

    #[test]
    fn initialization_respects_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = SgnsConfig { dim: 10, ..SgnsConfig::default() };
        let model = SkipGram::new(5, config, &mut rng);
        let bound = 0.5 / 10.0;
        for r in 0..5 {
            for &v in model.input_embeddings().row(r) {
                assert!(v.abs() <= bound);
            }
        }
    }
}
