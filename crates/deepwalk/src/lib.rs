//! # retro-deepwalk
//!
//! DeepWalk node embeddings (Perozzi et al., KDD 2014): truncated random
//! walks over the §3.4 property graph are treated as sentences and a
//! Skip-Gram model with negative sampling is trained on them.
//!
//! The paper uses DeepWalk both as a strong baseline (DW) and as a partner
//! in concatenated embeddings (RO+DW / RN+DW, §4.6). [`DeepWalk::train`]
//! returns one vector per graph node; callers slice out the text-value rows
//! they need.

pub mod negative;
pub mod sgns;

pub use negative::NegativeTable;
pub use sgns::{SgnsConfig, SkipGram};

use rand::rngs::StdRng;
use rand::SeedableRng;
use retro_graph::{Graph, RandomWalks, WalkConfig};
use retro_linalg::Matrix;

/// End-to-end DeepWalk configuration.
#[derive(Clone, Copy, Debug)]
pub struct DeepWalkConfig {
    /// Random-walk generation parameters.
    pub walks: WalkConfig,
    /// Skip-Gram training parameters.
    pub sgns: SgnsConfig,
    /// RNG seed (walks and SGD share it deterministically).
    pub seed: u64,
}

impl Default for DeepWalkConfig {
    fn default() -> Self {
        Self { walks: WalkConfig::default(), sgns: SgnsConfig::default(), seed: 0x5eed }
    }
}

/// The DeepWalk trainer.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeepWalk {
    pub config: DeepWalkConfig,
}

impl DeepWalk {
    /// Create a trainer with the given configuration.
    pub fn new(config: DeepWalkConfig) -> Self {
        Self { config }
    }

    /// Train node embeddings for `graph`.
    ///
    /// The output matrix has one row per graph node (id order). Isolated
    /// nodes keep their random initialization — they appear in no walk, the
    /// same behaviour as the reference implementation.
    pub fn train(&self, graph: &Graph) -> Matrix {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let walks = RandomWalks::generate(graph, self.config.walks, &mut rng);
        let mut model = SkipGram::new(graph.node_count(), self.config.sgns, &mut rng);
        model.train(walks.walks(), &mut rng);
        model.into_input_embeddings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use retro_graph::NodeKind;
    use retro_linalg::vector;

    /// Two dense clusters joined by a single bridge edge: DeepWalk must
    /// place intra-cluster nodes closer than inter-cluster nodes.
    fn two_cluster_graph() -> Graph {
        let mut g = Graph::new();
        for i in 0..10 {
            g.add_node(NodeKind::TextValue { label: format!("n{i}") });
        }
        // Clusters {0..4} and {5..9}, each a clique.
        for a in 0..5 {
            for b in (a + 1)..5 {
                g.add_edge_labelled(a, b, "e");
                g.add_edge_labelled(a + 5, b + 5, "e");
            }
        }
        g.add_edge_labelled(4, 5, "bridge");
        g
    }

    #[test]
    fn embeddings_have_requested_shape() {
        let g = two_cluster_graph();
        let config = DeepWalkConfig {
            sgns: SgnsConfig { dim: 16, ..SgnsConfig::default() },
            ..DeepWalkConfig::default()
        };
        let emb = DeepWalk::new(config).train(&g);
        assert_eq!(emb.shape(), (10, 16));
    }

    #[test]
    fn clusters_separate_in_embedding_space() {
        let g = two_cluster_graph();
        let config = DeepWalkConfig {
            walks: WalkConfig { walks_per_node: 20, walk_length: 20 },
            sgns: SgnsConfig { dim: 16, epochs: 3, ..SgnsConfig::default() },
            seed: 11,
        };
        let emb = DeepWalk::new(config).train(&g);
        // Average intra- vs inter-cluster cosine similarity.
        let mut intra = 0.0f32;
        let mut inter = 0.0f32;
        let mut n_intra = 0;
        let mut n_inter = 0;
        for a in 0..10 {
            for b in (a + 1)..10 {
                let s = vector::cosine(emb.row(a), emb.row(b));
                if (a < 5) == (b < 5) {
                    intra += s;
                    n_intra += 1;
                } else {
                    inter += s;
                    n_inter += 1;
                }
            }
        }
        assert!(
            intra / n_intra as f32 > inter / n_inter as f32 + 0.1,
            "intra {} vs inter {}",
            intra / n_intra as f32,
            inter / n_inter as f32
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = two_cluster_graph();
        let config = DeepWalkConfig {
            sgns: SgnsConfig { dim: 8, ..SgnsConfig::default() },
            ..DeepWalkConfig::default()
        };
        let a = DeepWalk::new(config).train(&g);
        let b = DeepWalk::new(config).train(&g);
        assert!(a.max_abs_diff(&b) < 1e-7);
    }
}
