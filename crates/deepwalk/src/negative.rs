//! Negative-sampling noise distribution.
//!
//! word2vec draws negatives from the unigram distribution raised to the 3/4
//! power. We implement it as a cumulative table with binary search — O(log n)
//! per draw, exact, and without the memory of the classic 10⁸-slot table.

use rand::Rng;

/// Sampler over `P(i) ∝ count(i)^0.75`.
#[derive(Clone, Debug)]
pub struct NegativeTable {
    cumulative: Vec<f64>,
}

impl NegativeTable {
    /// Build from raw occurrence counts (one per node/word id). Ids with a
    /// zero count are never sampled.
    pub fn new(counts: &[u64]) -> Self {
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for &c in counts {
            acc += (c as f64).powf(0.75);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Build from a walk corpus (counting node visits).
    pub fn from_walks(walks: &[Vec<u32>], vocab_size: usize) -> Self {
        let mut counts = vec![0u64; vocab_size];
        for walk in walks {
            for &node in walk {
                counts[node as usize] += 1;
            }
        }
        Self::new(&counts)
    }

    /// Total (powered) mass; zero means nothing can be sampled.
    pub fn total_mass(&self) -> f64 {
        self.cumulative.last().copied().unwrap_or(0.0)
    }

    /// Draw one id, or `None` when the table is empty / massless.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        let total = self.total_mass();
        if total <= 0.0 {
            return None;
        }
        let x = rng.gen_range(0.0..total);
        // First index whose cumulative mass exceeds x.
        let idx = self.cumulative.partition_point(|&c| c <= x);
        Some(idx.min(self.cumulative.len() - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_count_ids_never_sampled() {
        let table = NegativeTable::new(&[10, 0, 10]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert_ne!(table.sample(&mut rng), Some(1));
        }
    }

    #[test]
    fn frequencies_follow_powered_counts() {
        // count^0.75 of [16, 1] is [8, 1] → id 0 should win ~8/9 of draws.
        let table = NegativeTable::new(&[16, 1]);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let zeros = (0..n).filter(|_| table.sample(&mut rng) == Some(0)).count();
        let frac = zeros as f64 / n as f64;
        assert!((frac - 8.0 / 9.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn empty_table_returns_none() {
        let table = NegativeTable::new(&[]);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(table.sample(&mut rng), None);
        let table = NegativeTable::new(&[0, 0]);
        assert_eq!(table.sample(&mut rng), None);
    }

    #[test]
    fn from_walks_counts_visits() {
        let walks = vec![vec![0, 1, 1], vec![2]];
        let table = NegativeTable::from_walks(&walks, 4);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let s = table.sample(&mut rng).unwrap();
            assert!(s < 3, "id 3 has no visits");
        }
    }
}
