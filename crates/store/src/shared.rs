//! A thread-safe database handle for concurrent readers.
//!
//! RETRO's extraction phase is read-only over the whole database, and the
//! evaluation harness likes to score several embedding variants in
//! parallel. [`SharedDatabase`] wraps a [`Database`] in a `parking_lot`
//! read-write lock: many concurrent readers, exclusive writers, no lock
//! poisoning to handle.

use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::Database;

/// A cloneable, thread-safe handle to a database.
#[derive(Clone, Debug, Default)]
pub struct SharedDatabase {
    inner: Arc<RwLock<Database>>,
}

impl SharedDatabase {
    /// Wrap a database.
    pub fn new(db: Database) -> Self {
        Self { inner: Arc::new(RwLock::new(db)) }
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.inner.read()
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, Database> {
        self.inner.write()
    }

    /// Run a closure with read access (convenience for short scopes).
    pub fn with_read<T>(&self, f: impl FnOnce(&Database) -> T) -> T {
        f(&self.inner.read())
    }

    /// Run a closure with write access.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Database) -> T) -> T {
        f(&mut self.inner.write())
    }

    /// The wrapped database's monotonic [`Database::write_version`].
    ///
    /// Takes (and immediately releases) a read guard, so the answer is a
    /// consistent point-in-time observation. `retro_core`'s serving layer
    /// polls this to detect that a published embedding snapshot has gone
    /// stale.
    pub fn write_version(&self) -> u64 {
        self.inner.read().write_version()
    }
}

impl From<Database> for SharedDatabase {
    fn from(db: Database) -> Self {
        Self::new(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sql, Value};

    fn seeded() -> SharedDatabase {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
             INSERT INTO t VALUES (1, 'a'), (2, 'b');",
        )
        .unwrap();
        SharedDatabase::new(db)
    }

    #[test]
    fn concurrent_readers_see_consistent_state() {
        let shared = seeded();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = shared.clone();
                std::thread::spawn(move || s.with_read(|db| db.table("t").unwrap().len()))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 2);
        }
    }

    #[test]
    fn writes_are_visible_to_subsequent_readers() {
        let shared = seeded();
        shared.with_write(|db| {
            db.insert("t", vec![Value::Int(3), Value::from("c")]).unwrap();
        });
        assert_eq!(shared.with_read(|db| db.table("t").unwrap().len()), 3);
    }

    #[test]
    fn clones_share_the_same_database() {
        let a = seeded();
        let b = a.clone();
        a.with_write(|db| {
            db.insert("t", vec![Value::Int(3), Value::from("c")]).unwrap();
        });
        assert_eq!(b.with_read(|db| db.table("t").unwrap().len()), 3);
    }
}
