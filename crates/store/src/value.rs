//! Cell values and column types.

use std::fmt;

/// The type of a column.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for keys).
    Int,
    /// 64-bit float (budgets, revenues, scores, ratings).
    Float,
    /// UTF-8 text — the values RETRO learns embeddings for.
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INTEGER"),
            DataType::Float => write!(f, "REAL"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A single cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// SQL NULL — the imputation tasks predict these.
    Null,
    /// A 64-bit integer (keys and counts).
    Int(i64),
    /// A 64-bit float (budgets, revenues, scores, ratings).
    Float(f64),
    /// UTF-8 text — the values RETRO learns embeddings for.
    Text(String),
}

impl Value {
    /// The type this value inhabits, or `None` for NULL (NULL fits any type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow the text content, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an int value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float content; ints widen to float.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Whether the value can be stored in a column of type `ty`.
    ///
    /// NULL is storable anywhere; ints are accepted by float columns
    /// (widening), mirroring common SQL coercion.
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
        )
    }

    /// Total ordering used by `ORDER BY`: NULLs sort first, numbers by value
    /// (ints and floats comparable), text lexicographically; across kinds the
    /// order is NULL < numbers < text.
    pub fn cmp_sql(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering::*;
        use Value::*;
        match (self, other) {
            (Null, Null) => Equal,
            (Null, _) => Less,
            (_, Null) => Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_) | Float(_), Int(_) | Float(_)) => {
                let a = self.as_float().expect("numeric");
                let b = other.as_float().expect("numeric");
                a.partial_cmp(&b).unwrap_or(Equal)
            }
            (Int(_) | Float(_), Text(_)) => Less,
            (Text(_), Int(_) | Float(_)) => Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn type_checking() {
        assert!(Value::Int(1).fits(DataType::Int));
        assert!(Value::Int(1).fits(DataType::Float));
        assert!(!Value::Int(1).fits(DataType::Text));
        assert!(Value::Null.fits(DataType::Text));
        assert!(Value::Text("x".into()).fits(DataType::Text));
        assert!(!Value::Float(1.0).fits(DataType::Int));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Text("abc".into()).as_text(), Some("abc"));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn sql_ordering_nulls_first() {
        assert_eq!(Value::Null.cmp_sql(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(3).cmp_sql(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(Value::Text("a".into()).cmp_sql(&Value::Text("b".into())), Ordering::Less);
        assert_eq!(Value::Int(9).cmp_sql(&Value::Text("a".into())), Ordering::Less);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }
}
