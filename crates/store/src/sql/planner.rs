//! Cost-based query planning: access paths, predicate pushdown, and
//! greedy join ordering.
//!
//! The planner turns a resolved [`Select`] (or the predicate list of an
//! `UPDATE`/`DELETE`) into an explicit plan the executor interprets:
//!
//! * **Access paths** — a single-table predicate `col = literal` can be
//!   answered by the primary-key index (O(1)) or a secondary equality
//!   index ([`crate::index::IndexSet`], O(matches)) instead of a scan.
//!   Only exact-typed keys use an index (`INTEGER` literal on an
//!   `INTEGER` column, string literal on a `TEXT` column), so the index
//!   answer is bit-identical to evaluating the predicate row by row.
//! * **Predicate pushdown** — single-binding predicates run where their
//!   table's rows first appear (base access or join probe), shrinking
//!   intermediate results; cross-binding predicates stay residual.
//! * **Join ordering** — joins execute greedily from the smallest
//!   estimated binding outward along the equi-join edges, not in
//!   declared order. Statistics are exact where the engine has them
//!   (table row counts, posting-list lengths, per-index distinct
//!   counts) and fixed selectivity constants elsewhere. Ties break
//!   toward declared order, so plans are deterministic.
//!
//! Plans never change results: the executor re-orders its output tuples
//! back to declared-order row positions before projection, so every
//! plan — including [`PlanMode::ForceScan`], the brute-force oracle that
//! scans and hash-joins in declared order with no pushdown — produces
//! bit-identical rows. `tests/index_equivalence.rs` drives that contract
//! under randomized schemas, data, and queries; `EXPLAIN <stmt>` renders
//! the chosen plan as text.

use crate::error::StoreError;
use crate::sql::ast::{BinOp, ColumnRef, Expr, Operand, Select, SelectItem, Statement};
use crate::sql::executor::QueryResult;
use crate::sql::relation::{self, Rel, TableFunctionProvider};
use crate::value::{DataType, Value};
use crate::{Database, Result};

/// How [`crate::sql::execute_with`] turns a statement into a plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanMode {
    /// Cost-based planning: index access paths, predicate pushdown, and
    /// greedy join ordering. What [`crate::sql::execute`] uses.
    Planned,
    /// The correctness oracle: scan every table, hash-join in declared
    /// order, evaluate every predicate after all joins. Slow and
    /// obviously correct; results must be bit-identical to `Planned`.
    ForceScan,
}

/// Default selectivity of an equality filter on an unindexed column.
const SEL_EQ_DEFAULT: f64 = 0.1;
/// Selectivity of a range comparison (`<`, `<=`, `>`, `>=`).
const SEL_RANGE: f64 = 1.0 / 3.0;
/// Assumed NULL fraction of a column (`IS NULL` keeps this much).
const SEL_IS_NULL: f64 = 0.1;
/// Selectivity of a same-table column-to-column comparison.
const SEL_COL_CMP: f64 = 0.5;

/// A predicate with every column reference resolved to
/// `(binding index, column index)`.
#[derive(Clone, Debug)]
pub(crate) enum Pred {
    /// `col IS NULL`.
    IsNull {
        /// Binding the column lives in.
        b: usize,
        /// Column index within that binding.
        c: usize,
    },
    /// `col IS NOT NULL`.
    IsNotNull {
        /// Binding / column, as above.
        b: usize,
        /// Column index within that binding.
        c: usize,
    },
    /// `col OP literal`.
    CmpLit {
        /// Binding / column of the left-hand side.
        b: usize,
        /// Column index within that binding.
        c: usize,
        /// The comparison operator.
        op: BinOp,
        /// The literal, materialized once.
        value: Value,
    },
    /// `col OP col` (possibly across bindings).
    CmpCol {
        /// Left binding.
        lb: usize,
        /// Left column.
        lc: usize,
        /// The comparison operator.
        op: BinOp,
        /// Right binding.
        rb: usize,
        /// Right column.
        rc: usize,
    },
    /// An equi-join edge demoted to a filter: the greedy order already
    /// connected both endpoints through other edges, so this condition
    /// is checked residually — with *join-key* equality semantics, the
    /// same the hash/index join paths use.
    JoinEq {
        /// Left binding.
        lb: usize,
        /// Left column.
        lc: usize,
        /// Right binding.
        rb: usize,
        /// Right column.
        rc: usize,
    },
}

impl Pred {
    /// The single binding this predicate constrains, or `None` when it
    /// spans two bindings (must stay residual).
    fn single_binding(&self) -> Option<usize> {
        match self {
            Pred::IsNull { b, .. } | Pred::IsNotNull { b, .. } | Pred::CmpLit { b, .. } => Some(*b),
            Pred::CmpCol { lb, rb, .. } if lb == rb => Some(*lb),
            Pred::CmpCol { .. } | Pred::JoinEq { .. } => None,
        }
    }
}

/// How the first step of a plan (or a DML statement) reaches its rows.
#[derive(Clone, Debug)]
pub(crate) enum Access {
    /// Walk every row.
    Scan,
    /// Primary-key lookup: zero or one row.
    PkEq(i64),
    /// Secondary-index probe: the sorted posting list of one key.
    IndexEq {
        /// The indexed column.
        col: usize,
        /// The probe key (exact-typed for the column).
        key: Value,
    },
}

/// How a join step matches the new binding against already-placed rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JoinVia {
    /// Probe the new binding's primary-key index per outer row.
    Pk,
    /// Probe a secondary equality index per outer row.
    Index,
    /// Build a hash table over the new binding's (filtered) rows.
    Hash,
}

/// The equi-join edge a step executes.
#[derive(Clone, Debug)]
pub(crate) struct StepJoin {
    /// Already-placed binding supplying probe values.
    pub outer: usize,
    /// Column of `outer` holding the probe value.
    pub outer_col: usize,
    /// Column of the step's own binding being matched.
    pub inner_col: usize,
    /// Match strategy.
    pub via: JoinVia,
}

/// One step of a select plan: place one binding.
#[derive(Clone, Debug)]
pub(crate) struct Step {
    /// Which binding (declared index) this step places.
    pub binding: usize,
    /// Base access (first step only; join steps scan/probe per the edge).
    pub access: Access,
    /// `None` for the first step.
    pub join: Option<StepJoin>,
    /// Pushed-down single-binding predicates, applied to candidate rows.
    pub filters: Vec<Pred>,
    /// Estimated rows after this step (for EXPLAIN).
    pub est: f64,
}

/// One relation binding of a select, in declared order.
#[derive(Clone, Debug)]
pub(crate) struct BindingInfo {
    /// Underlying table name, or the function's display label.
    pub table: String,
    /// Binding name (alias or table name).
    pub name: String,
}

/// A resolved projection item.
#[derive(Clone, Debug)]
pub(crate) enum ProjItem {
    /// Every column of every binding, declared order.
    All,
    /// One column, as a flattened-row offset.
    Col(usize),
}

/// A fully planned SELECT.
#[derive(Clone, Debug)]
pub(crate) struct SelectPlan {
    /// Bindings in declared order.
    pub bindings: Vec<BindingInfo>,
    /// Execution steps (a permutation of the bindings).
    pub steps: Vec<Step>,
    /// Predicates evaluated after all joins.
    pub residual: Vec<Pred>,
    /// `(flattened column offset, descending)`.
    pub order_by: Option<(usize, bool)>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
    /// Resolved projection (empty when `count_star`).
    pub projection: Vec<ProjItem>,
    /// Output column names.
    pub columns: Vec<String>,
    /// `SELECT COUNT(*)`.
    pub count_star: bool,
}

/// A planned UPDATE/DELETE predicate evaluation (single table, so all
/// predicate bindings are 0).
#[derive(Clone, Debug)]
pub(crate) struct DmlPlan {
    /// How candidate rows are reached.
    pub access: Access,
    /// Predicates applied to each candidate (the access-consumed
    /// equality, if any, is not repeated here).
    pub filters: Vec<Pred>,
    /// Estimated matching rows (for EXPLAIN).
    pub est: f64,
}

// ---------------------------------------------------------------------
// Resolution
// ---------------------------------------------------------------------

/// Column-reference resolution over the bindings visible so far.
struct Binder<'a> {
    names: Vec<String>,
    rels: Vec<Rel<'a>>,
}

impl<'a> Binder<'a> {
    /// Resolve `[t.]c` against the first `upto` bindings, with the same
    /// ambiguity / unknown-column errors the executor always raised.
    fn resolve_prefix(&self, col: &ColumnRef, upto: usize) -> Result<(usize, usize)> {
        let mut found = None;
        for (b, (name, rel)) in self.names.iter().zip(&self.rels).enumerate().take(upto) {
            if let Some(qual) = &col.table {
                if qual != name {
                    continue;
                }
            }
            if let Some(c) = rel.column_index(&col.column) {
                if found.is_some() {
                    return Err(StoreError::Sql(format!("ambiguous column `{}`", col.display())));
                }
                found = Some((b, c));
            }
        }
        found.ok_or_else(|| StoreError::Sql(format!("unknown column `{}`", col.display())))
    }

    fn resolve(&self, col: &ColumnRef) -> Result<(usize, usize)> {
        self.resolve_prefix(col, self.names.len())
    }

    fn resolve_expr(&self, expr: &Expr) -> Result<Pred> {
        Ok(match expr {
            Expr::IsNull(col) => {
                let (b, c) = self.resolve(col)?;
                Pred::IsNull { b, c }
            }
            Expr::IsNotNull(col) => {
                let (b, c) = self.resolve(col)?;
                Pred::IsNotNull { b, c }
            }
            Expr::Cmp { left, op, right } => {
                let (b, c) = self.resolve(left)?;
                match right {
                    Operand::Lit(lit) => Pred::CmpLit { b, c, op: *op, value: lit.to_value() },
                    Operand::Col(rcol) => {
                        let (rb, rc) = self.resolve(rcol)?;
                        Pred::CmpCol { lb: b, lc: c, op: *op, rb, rc }
                    }
                }
            }
        })
    }
}

/// An equi-join edge between two bindings, from a `JOIN ... ON` clause.
#[derive(Clone, Copy, Debug)]
struct Edge {
    /// `(binding, column)` endpoints; `p` is the earlier-declared side.
    p: (usize, usize),
    q: (usize, usize),
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

/// Distinct-value count of a column, where the engine knows it exactly:
/// primary keys are unique, secondary indexes count their keys.
fn distinct(rel: Rel<'_>, col: usize) -> Option<f64> {
    if rel.primary_key() == Some(col) {
        return Some(rel.len().max(1) as f64);
    }
    rel.index_distinct(col).map(|d| d.max(1) as f64)
}

/// Fraction of rows a pushed-down filter keeps.
fn selectivity(rel: Rel<'_>, pred: &Pred) -> f64 {
    match pred {
        Pred::IsNull { .. } => SEL_IS_NULL,
        Pred::IsNotNull { .. } => 1.0 - SEL_IS_NULL,
        Pred::CmpLit { value: Value::Null, .. } => 0.0, // NULL compares false
        Pred::CmpLit { c, op: BinOp::Eq, .. } => {
            1.0 / distinct(rel, *c).unwrap_or(1.0 / SEL_EQ_DEFAULT)
        }
        Pred::CmpLit { c, op: BinOp::Ne, .. } => {
            1.0 - 1.0 / distinct(rel, *c).unwrap_or(1.0 / SEL_EQ_DEFAULT)
        }
        Pred::CmpLit { .. } => SEL_RANGE,
        Pred::CmpCol { .. } => SEL_COL_CMP,
        Pred::JoinEq { .. } => SEL_COL_CMP,
    }
}

/// Exact row count an access path yields before filters. For a table
/// function this is its materialized row count (`k` for a kNN call) —
/// the estimate is exact by construction.
fn access_rows(rel: Rel<'_>, access: &Access) -> f64 {
    match access {
        Access::Scan => rel.len() as f64,
        Access::PkEq(key) => {
            if rel.row_position_by_pk(*key).is_some() {
                1.0
            } else {
                0.0
            }
        }
        Access::IndexEq { col, key } => {
            rel.index_probe(*col, key).map_or(0.0, |list| list.len() as f64)
        }
    }
}

/// Pick the cheapest base access for `rel` given its pushed-down
/// predicates. Returns the access plus the index (into `filters`) of the
/// equality predicate the access consumes, if any.
///
/// Only *exact-typed* equalities become index lookups — an `INTEGER`
/// literal on the primary key or an indexed `INTEGER` column, a string
/// literal on an indexed `TEXT` column — so a probe answers exactly the
/// rows a scan would keep. Virtual relations have no indexes, so they
/// always scan their (already small) materialized rows.
fn choose_access(rel: Rel<'_>, filters: &[Pred]) -> (Access, Option<usize>) {
    let mut best: Option<(Access, usize, f64)> = None;
    for (i, pred) in filters.iter().enumerate() {
        let Pred::CmpLit { c, op: BinOp::Eq, value, .. } = pred else { continue };
        let exact = matches!(
            (rel.columns()[*c].ty, value),
            (DataType::Int, Value::Int(_)) | (DataType::Text, Value::Text(_))
        );
        if !exact {
            continue;
        }
        let candidate = if rel.primary_key() == Some(*c) {
            let Value::Int(key) = value else { unreachable!("exact-typed above") };
            Some(Access::PkEq(*key))
        } else if rel.has_secondary_index(*c) {
            Some(Access::IndexEq { col: *c, key: value.clone() })
        } else {
            None
        };
        if let Some(access) = candidate {
            let rows = access_rows(rel, &access);
            // Strict `<` keeps the earliest (declared-order) predicate on
            // ties, so plans are deterministic.
            if best.as_ref().is_none_or(|(_, _, r)| rows < *r) {
                best = Some((access, i, rows));
            }
        }
    }
    match best {
        Some((access, i, _)) => (access, Some(i)),
        None => (Access::Scan, None),
    }
}

// ---------------------------------------------------------------------
// SELECT planning
// ---------------------------------------------------------------------

/// Plan a SELECT over pre-bound relation sources (one [`Rel`] per
/// declared binding, from [`relation::bind_rels`]).
pub(crate) fn plan_select(sel: &Select, rels: &[Rel<'_>], mode: PlanMode) -> Result<SelectPlan> {
    // Bind FROM and JOIN sources in declared order, resolving each ON
    // clause against the prefix scope it could see (error compatibility:
    // a later binding cannot make an earlier ON ambiguous).
    let mut binder = Binder { names: Vec::new(), rels: Vec::new() };
    binder.names.push(sel.from.binding().to_owned());
    binder.rels.push(rels[0]);

    let mut edges: Vec<Edge> = Vec::new();
    for (join, rel) in sel.joins.iter().zip(&rels[1..]) {
        binder.names.push(join.table.binding().to_owned());
        binder.rels.push(*rel);
        let b = binder.names.len() - 1;
        let l = binder.resolve_prefix(&join.left, b + 1)?;
        let r = binder.resolve_prefix(&join.right, b + 1)?;
        let edge = if l.0 == b && r.0 < b {
            Edge { p: r, q: l }
        } else if r.0 == b && l.0 < b {
            Edge { p: l, q: r }
        } else {
            return Err(StoreError::Sql(
                "JOIN condition must relate the joined table to a prior table".to_owned(),
            ));
        };
        edges.push(edge);
    }

    // Resolve WHERE, ORDER BY, and the projection up front — resolution
    // errors surface whether or not any row is reached.
    let preds: Vec<Pred> =
        sel.predicates.iter().map(|e| binder.resolve_expr(e)).collect::<Result<_>>()?;

    let offsets: Vec<usize> = binder
        .rels
        .iter()
        .scan(0, |acc, r| {
            let at = *acc;
            *acc += r.columns().len();
            Some(at)
        })
        .collect();
    let flat = |(b, c): (usize, usize)| offsets[b] + c;

    let order_by = match &sel.order_by {
        Some((col, desc)) => Some((flat(binder.resolve(col)?), *desc)),
        None => None,
    };

    let mut columns = Vec::new();
    let mut projection = Vec::new();
    let mut count_star = false;
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for (name, rel) in binder.names.iter().zip(&binder.rels) {
                    for col in rel.columns() {
                        columns.push(format!("{name}.{}", col.name));
                    }
                }
                projection.push(ProjItem::All);
            }
            SelectItem::Column(c) => {
                columns.push(c.display());
                projection.push(ProjItem::Col(flat(binder.resolve(c)?)));
            }
            SelectItem::CountStar => {
                columns.push("count".to_owned());
                count_star = true;
            }
        }
    }
    if count_star && sel.items.len() != 1 {
        return Err(StoreError::Sql(
            "COUNT(*) cannot be combined with other select items".to_owned(),
        ));
    }
    if count_star {
        projection.clear();
    }

    let bindings: Vec<BindingInfo> = binder
        .names
        .iter()
        .zip(&binder.rels)
        .map(|(name, rel)| BindingInfo { table: rel.display_name().to_owned(), name: name.clone() })
        .collect();

    let (steps, residual) = match mode {
        PlanMode::ForceScan => force_scan_steps(&edges, preds),
        PlanMode::Planned => planned_steps(&binder, &edges, preds),
    };

    Ok(SelectPlan {
        bindings,
        steps,
        residual,
        order_by,
        limit: sel.limit,
        projection,
        columns,
        count_star,
    })
}

/// Declared order, scans and hash joins only, every predicate residual.
fn force_scan_steps(edges: &[Edge], preds: Vec<Pred>) -> (Vec<Step>, Vec<Pred>) {
    let mut steps =
        vec![Step { binding: 0, access: Access::Scan, join: None, filters: Vec::new(), est: 0.0 }];
    for (j, edge) in edges.iter().enumerate() {
        steps.push(Step {
            binding: j + 1,
            access: Access::Scan,
            join: Some(StepJoin {
                outer: edge.p.0,
                outer_col: edge.p.1,
                inner_col: edge.q.1,
                via: JoinVia::Hash,
            }),
            filters: Vec::new(),
            est: 0.0,
        });
    }
    (steps, preds)
}

/// Greedy cost-based ordering with pushdown and index access paths.
fn planned_steps(binder: &Binder<'_>, edges: &[Edge], preds: Vec<Pred>) -> (Vec<Step>, Vec<Pred>) {
    let n = binder.rels.len();

    // Partition predicates: single-binding ones push down to their
    // binding; cross-binding ones stay residual.
    let mut pushed: Vec<Vec<Pred>> = vec![Vec::new(); n];
    let mut residual: Vec<Pred> = Vec::new();
    for pred in preds {
        match pred.single_binding() {
            Some(b) => pushed[b].push(pred),
            None => residual.push(pred),
        }
    }

    // Estimated rows of each binding after base access and pushdown.
    let base: Vec<(Access, Option<usize>, f64)> = (0..n)
        .map(|b| {
            let rel = binder.rels[b];
            let (access, consumed) = choose_access(rel, &pushed[b]);
            let mut est = access_rows(rel, &access);
            for (i, pred) in pushed[b].iter().enumerate() {
                if Some(i) != consumed {
                    est *= selectivity(rel, pred);
                }
            }
            (access, consumed, est)
        })
        .collect();

    // Start from the smallest estimated binding (ties: declared order).
    let start = (0..n)
        .min_by(|&a, &b| base[a].2.partial_cmp(&base[b].2).expect("estimates are finite"))
        .expect("at least one binding");

    let (access, consumed, est) = base[start].clone();
    let filters: Vec<Pred> = pushed[start]
        .iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != consumed)
        .map(|(_, p)| p.clone())
        .collect();
    let mut steps = vec![Step { binding: start, access, join: None, filters, est }];

    let mut placed = vec![false; n];
    placed[start] = true;
    let mut edge_used = vec![false; edges.len()];
    let mut cur_est = est;

    while steps.len() < n {
        // Candidates: unplaced bindings connected to the placed set.
        // Among a candidate's connecting edges, the one with the largest
        // known key-distinct count joins tightest; the others demote to
        // residual join-key checks once the candidate is placed.
        let mut best: Option<(usize, usize, f64)> = None; // (binding, edge, est_out)
        for b in 0..n {
            if placed[b] {
                continue;
            }
            let mut best_edge: Option<(usize, f64)> = None;
            for (e, edge) in edges.iter().enumerate() {
                let (this, other) = if edge.p.0 == b {
                    (edge.p, edge.q)
                } else if edge.q.0 == b {
                    (edge.q, edge.p)
                } else {
                    continue;
                };
                if !placed[other.0] {
                    continue;
                }
                let d = distinct(binder.rels[b], this.1)
                    .or_else(|| distinct(binder.rels[other.0], other.1))
                    .unwrap_or_else(|| base[b].2.max(1.0));
                let est_out = cur_est * base[b].2 / d;
                if best_edge.as_ref().is_none_or(|(_, prev)| est_out < *prev) {
                    best_edge = Some((e, est_out));
                }
            }
            if let Some((e, est_out)) = best_edge {
                if best.as_ref().is_none_or(|(_, _, prev)| est_out < *prev) {
                    best = Some((b, e, est_out));
                }
            }
        }
        let Some((b, e, est_out)) = best else {
            // Unreachable with the parser's join grammar (every join
            // connects to a prior binding), but stay total: fall back to
            // the first unplaced binding as a cross product via hash join
            // on a degenerate edge — cannot happen, so just panic loudly
            // in debug and pick declared order in release.
            debug_assert!(false, "join graph disconnected");
            break;
        };

        let rel = binder.rels[b];
        let (this, other) =
            if edges[e].p.0 == b { (edges[e].p, edges[e].q) } else { (edges[e].q, edges[e].p) };
        let via = if rel.primary_key() == Some(this.1) {
            JoinVia::Pk
        } else if rel.has_secondary_index(this.1) {
            JoinVia::Index
        } else {
            JoinVia::Hash
        };
        steps.push(Step {
            binding: b,
            access: Access::Scan,
            join: Some(StepJoin { outer: other.0, outer_col: other.1, inner_col: this.1, via }),
            filters: pushed[b].clone(),
            est: est_out,
        });
        placed[b] = true;
        edge_used[e] = true;
        cur_est = est_out;

        // Any other edge now fully inside the placed set is a residual
        // join-key equality.
        for (i, edge) in edges.iter().enumerate() {
            if !edge_used[i] && placed[edge.p.0] && placed[edge.q.0] {
                residual.push(Pred::JoinEq {
                    lb: edge.p.0,
                    lc: edge.p.1,
                    rb: edge.q.0,
                    rc: edge.q.1,
                });
                edge_used[i] = true;
            }
        }
    }
    (steps, residual)
}

// ---------------------------------------------------------------------
// DML planning
// ---------------------------------------------------------------------

/// Plan the predicate evaluation of an UPDATE/DELETE on `table`.
pub(crate) fn plan_dml(
    db: &Database,
    table_name: &str,
    predicates: &[Expr],
    mode: PlanMode,
) -> Result<DmlPlan> {
    let table = db.table(table_name)?;
    let rel = Rel::Stored(table);
    // DML column references resolve against the one target table; a
    // mismatched qualifier is an unknown column of that qualifier, the
    // error the row-at-a-time evaluator always raised.
    let resolve = |col: &ColumnRef| -> Result<(usize, usize)> {
        if let Some(qual) = &col.table {
            if qual != &table.schema().name {
                return Err(StoreError::UnknownColumn {
                    table: qual.clone(),
                    column: col.column.clone(),
                });
            }
        }
        let c =
            table.schema().column_index(&col.column).ok_or_else(|| StoreError::UnknownColumn {
                table: table.schema().name.clone(),
                column: col.column.clone(),
            })?;
        Ok((0, c))
    };
    let mut preds = Vec::with_capacity(predicates.len());
    for expr in predicates {
        preds.push(match expr {
            Expr::IsNull(col) => Pred::IsNull { b: 0, c: resolve(col)?.1 },
            Expr::IsNotNull(col) => Pred::IsNotNull { b: 0, c: resolve(col)?.1 },
            Expr::Cmp { left, op, right } => {
                let (_, c) = resolve(left)?;
                match right {
                    Operand::Lit(lit) => Pred::CmpLit { b: 0, c, op: *op, value: lit.to_value() },
                    Operand::Col(rcol) => {
                        let (_, rc) = resolve(rcol)?;
                        Pred::CmpCol { lb: 0, lc: c, op: *op, rb: 0, rc }
                    }
                }
            }
        });
    }

    let (access, consumed) = match mode {
        PlanMode::ForceScan => (Access::Scan, None),
        PlanMode::Planned => choose_access(rel, &preds),
    };
    let mut est = access_rows(rel, &access);
    let filters: Vec<Pred> = preds
        .into_iter()
        .enumerate()
        .filter(|(i, _)| Some(*i) != consumed)
        .map(|(_, p)| p)
        .collect();
    for pred in &filters {
        est *= selectivity(rel, pred);
    }
    Ok(DmlPlan { access, filters, est })
}

// ---------------------------------------------------------------------
// EXPLAIN rendering
// ---------------------------------------------------------------------

/// Render the plan of `stmt` as one text row per plan line.
///
/// The relational parts of the plan obey `mode` (`EXPLAIN` under
/// [`PlanMode::ForceScan`] shows the oracle's scans and hash joins).
/// Table functions are *always* "planned": they materialize before
/// planning regardless of mode, so their access line renders as a
/// `table function` source with its exact row count in either mode.
pub(crate) fn explain(
    db: &Database,
    stmt: &Statement,
    mode: PlanMode,
    provider: Option<&dyn TableFunctionProvider>,
) -> Result<QueryResult> {
    let mut lines = Vec::new();
    match stmt {
        Statement::Select(sel) => {
            let virt = relation::materialize_functions(sel, provider)?;
            let rels = relation::bind_rels(db, sel, &virt)?;
            let plan = plan_select(sel, &rels, mode)?;
            lines.push("SELECT".to_owned());
            render_select(sel, &plan, &rels, &mut lines);
        }
        Statement::Update(upd) => {
            let plan = plan_dml(db, &upd.table, &upd.predicates, mode)?;
            lines.push(format!("UPDATE {}", upd.table));
            render_dml(db, &upd.table, &plan, &mut lines)?;
        }
        Statement::Delete(del) => {
            let plan = plan_dml(db, &del.table, &del.predicates, mode)?;
            lines.push(format!("DELETE FROM {}", del.table));
            render_dml(db, &del.table, &plan, &mut lines)?;
        }
        _ => {
            return Err(StoreError::Sql(
                "EXPLAIN supports SELECT, UPDATE, and DELETE statements".to_owned(),
            ))
        }
    }
    Ok(QueryResult {
        columns: vec!["plan".to_owned()],
        rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
        rows_affected: 0,
    })
}

fn fmt_lit(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{s}'"),
        other => other.to_string(),
    }
}

fn fmt_est(est: f64) -> u64 {
    est.ceil().max(0.0) as u64
}

fn fmt_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Eq => "=",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
    }
}

/// `binding.column` display for a resolved column.
fn fmt_col(bindings: &[BindingInfo], rels: &[Rel<'_>], b: usize, c: usize) -> String {
    format!("{}.{}", bindings[b].name, rels[b].columns()[c].name)
}

fn fmt_pred(bindings: &[BindingInfo], rels: &[Rel<'_>], pred: &Pred) -> String {
    match pred {
        Pred::IsNull { b, c } => format!("{} IS NULL", fmt_col(bindings, rels, *b, *c)),
        Pred::IsNotNull { b, c } => format!("{} IS NOT NULL", fmt_col(bindings, rels, *b, *c)),
        Pred::CmpLit { b, c, op, value } => {
            format!("{} {} {}", fmt_col(bindings, rels, *b, *c), fmt_op(*op), fmt_lit(value))
        }
        Pred::CmpCol { lb, lc, op, rb, rc } => format!(
            "{} {} {}",
            fmt_col(bindings, rels, *lb, *lc),
            fmt_op(*op),
            fmt_col(bindings, rels, *rb, *rc)
        ),
        Pred::JoinEq { lb, lc, rb, rc } => format!(
            "{} = {} (join key)",
            fmt_col(bindings, rels, *lb, *lc),
            fmt_col(bindings, rels, *rb, *rc)
        ),
    }
}

fn fmt_binding(binding: &BindingInfo) -> String {
    if binding.name == binding.table {
        binding.table.clone()
    } else {
        format!("{} {}", binding.table, binding.name)
    }
}

fn fmt_access(binding: &BindingInfo, rel: Rel<'_>, access: &Access) -> String {
    let total = rel.len();
    let shown = fmt_binding(binding);
    // A table function materializes before planning in every mode — its
    // access line never claims a scan/index choice was made.
    if rel.is_virtual() {
        return format!("access {shown}: table function [{total} rows]");
    }
    match access {
        Access::Scan => format!("access {shown}: scan [{total} rows]"),
        Access::PkEq(key) => {
            let pk = rel.primary_key().expect("pk access on pk table");
            let hits = usize::from(rel.row_position_by_pk(*key).is_some());
            format!(
                "access {shown}: pk lookup ({} = {key}) [{hits} of {total} rows]",
                rel.columns()[pk].name
            )
        }
        Access::IndexEq { col, key } => {
            let hits = rel.index_probe(*col, key).map_or(0, <[u32]>::len);
            format!(
                "access {shown}: index lookup ({} = {}) [{hits} of {total} rows]",
                rel.columns()[*col].name,
                fmt_lit(key)
            )
        }
    }
}

fn render_select(sel: &Select, plan: &SelectPlan, rels: &[Rel<'_>], lines: &mut Vec<String>) {
    for step in &plan.steps {
        let binding = &plan.bindings[step.binding];
        let rel = rels[step.binding];
        match &step.join {
            None => lines.push(format!("  {}", fmt_access(binding, rel, &step.access))),
            Some(join) => {
                let strategy = match join.via {
                    JoinVia::Pk => "pk probe",
                    JoinVia::Index => "index probe",
                    JoinVia::Hash => "hash join",
                };
                let shown = fmt_binding(binding);
                let source = if rel.is_virtual() { " (table function)" } else { "" };
                lines.push(format!(
                    "  join {shown}: {strategy}{source} ({} = {}) [~{} rows]",
                    fmt_col(&plan.bindings, rels, step.binding, join.inner_col),
                    fmt_col(&plan.bindings, rels, join.outer, join.outer_col),
                    fmt_est(step.est)
                ));
            }
        }
        for pred in &step.filters {
            lines.push(format!("    filter {}", fmt_pred(&plan.bindings, rels, pred)));
        }
    }
    for pred in &plan.residual {
        lines.push(format!("  residual {}", fmt_pred(&plan.bindings, rels, pred)));
    }
    if let Some((col, desc)) = &sel.order_by {
        lines.push(format!("  order by {}{}", col.display(), if *desc { " desc" } else { "" }));
    }
    if let Some(n) = plan.limit {
        lines.push(format!("  limit {n}"));
    }
}

fn render_dml(
    db: &Database,
    table_name: &str,
    plan: &DmlPlan,
    lines: &mut Vec<String>,
) -> Result<()> {
    let rel = Rel::Stored(db.table(table_name)?);
    let binding = BindingInfo { table: table_name.to_owned(), name: table_name.to_owned() };
    lines.push(format!("  {}", fmt_access(&binding, rel, &plan.access)));
    let bindings = [binding];
    let rels = [rel];
    for pred in &plan.filters {
        lines.push(format!("    filter {}", fmt_pred(&bindings, &rels, pred)));
    }
    lines.push(format!("  [~{} rows match]", fmt_est(plan.est)));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;

    fn two_tables() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("parents").pk("id").column("name", DataType::Text).build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("kids").pk("id").fk("parent_id", "parents", "id").build(),
        )
        .unwrap();
        for i in 0..10 {
            db.insert("parents", vec![Value::Int(i), Value::from(format!("p{i}"))]).unwrap();
        }
        for i in 0..30 {
            db.insert("kids", vec![Value::Int(i), Value::Int(i % 10)]).unwrap();
        }
        db
    }

    fn parse_select(sql: &str) -> Select {
        match crate::sql::parse_statement(sql).unwrap() {
            Statement::Select(sel) => sel,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    /// Bind and plan a provider-free SELECT (the pre-table-function path).
    fn plan_stored(db: &Database, sel: &Select, mode: PlanMode) -> SelectPlan {
        let virt = relation::materialize_functions(sel, None).unwrap();
        let rels = relation::bind_rels(db, sel, &virt).unwrap();
        plan_select(sel, &rels, mode).unwrap()
    }

    #[test]
    fn pk_equality_chooses_pk_access() {
        let db = two_tables();
        let plan = plan_stored(
            &db,
            &parse_select("SELECT name FROM parents WHERE id = 3"),
            PlanMode::Planned,
        );
        assert!(matches!(plan.steps[0].access, Access::PkEq(3)));
        assert!(plan.steps[0].filters.is_empty(), "the equality is consumed by the access");
    }

    #[test]
    fn fk_equality_chooses_index_access() {
        let db = two_tables();
        let plan = plan_stored(
            &db,
            &parse_select("SELECT id FROM kids WHERE parent_id = 2"),
            PlanMode::Planned,
        );
        assert!(matches!(plan.steps[0].access, Access::IndexEq { .. }));
    }

    #[test]
    fn float_literal_on_int_column_scans() {
        // 2.0 equals 2 under SQL comparison but is not an exact-typed
        // key; the planner must not risk an index/scan divergence.
        let db = two_tables();
        let plan = plan_stored(
            &db,
            &parse_select("SELECT id FROM kids WHERE parent_id = 2.0"),
            PlanMode::Planned,
        );
        assert!(matches!(plan.steps[0].access, Access::Scan));
        assert_eq!(plan.steps[0].filters.len(), 1);
    }

    #[test]
    fn join_ordering_starts_from_filtered_binding() {
        let db = two_tables();
        // parents filtered to ~1 row by pk; the join should start there
        // even though kids is declared first.
        let plan = plan_stored(
            &db,
            &parse_select(
                "SELECT k.id FROM kids k JOIN parents p ON k.parent_id = p.id WHERE p.id = 3",
            ),
            PlanMode::Planned,
        );
        assert_eq!(plan.steps[0].binding, 1, "start from the pk-filtered parents binding");
        let join = plan.steps[1].join.as_ref().unwrap();
        assert_eq!(join.via, JoinVia::Index, "kids.parent_id is FK-indexed");
    }

    #[test]
    fn force_scan_uses_declared_order_and_no_pushdown() {
        let db = two_tables();
        let plan = plan_stored(
            &db,
            &parse_select(
                "SELECT k.id FROM kids k JOIN parents p ON k.parent_id = p.id WHERE p.id = 3",
            ),
            PlanMode::ForceScan,
        );
        assert_eq!(plan.steps[0].binding, 0);
        assert!(matches!(plan.steps[0].access, Access::Scan));
        assert_eq!(plan.steps[1].join.as_ref().unwrap().via, JoinVia::Hash);
        assert_eq!(plan.residual.len(), 1, "the WHERE predicate stays residual");
        assert!(plan.steps.iter().all(|s| s.filters.is_empty()));
    }

    #[test]
    fn dml_plan_uses_pk_access() {
        let db = two_tables();
        let stmt = crate::sql::parse_statement("DELETE FROM parents WHERE id = 3").unwrap();
        let Statement::Delete(del) = stmt else { panic!("expected DELETE") };
        let plan = plan_dml(&db, &del.table, &del.predicates, PlanMode::Planned).unwrap();
        assert!(matches!(plan.access, Access::PkEq(3)));
        assert!(plan.filters.is_empty());
    }

    #[test]
    fn explain_rejects_ddl() {
        let db = two_tables();
        let stmt =
            crate::sql::parse_statement("EXPLAIN INSERT INTO parents VALUES (99, 'x')").unwrap();
        let Statement::Explain(inner) = stmt else { panic!("expected EXPLAIN") };
        assert!(explain(&db, &inner, PlanMode::Planned, None).is_err());
    }
}
