//! Pluggable relation sources: stored tables and table-function results.
//!
//! The planner and executor used to reach rows exclusively through
//! [`crate::Table`]. Table functions — `FROM NEAREST('alien', 10) n` —
//! introduce a second kind of relation: a small result set materialized
//! by an injected [`TableFunctionProvider`] before planning begins. The
//! [`Rel`] enum unifies the two behind the handful of accessors the
//! planner needs (rows, column metadata, index statistics), so join
//! ordering, predicate pushdown, and canonical output ordering treat a
//! function binding exactly like a k-row table with no indexes.
//!
//! Materialization happens once per statement, *before* planning, which
//! is what makes the cost model exact: a function's estimated row count
//! is its actual row count (`k` for a kNN function). It also keeps the
//! bit-identical-output contract trivially intact — both
//! [`crate::sql::PlanMode`]s see the same materialized rows.

use crate::error::StoreError;
use crate::schema::ColumnDef;
use crate::sql::ast::{Literal, Select, TableRef};
use crate::table::Table;
use crate::value::Value;
use crate::{Database, Result};

/// A materialized table-function result: an anonymous, index-less
/// relation that lives for the duration of one statement.
///
/// Row order is part of the relation's contract — the executor's
/// canonical output ordering sorts by row *position*, so a provider
/// that returns ranked rows (nearest first) surfaces them in rank order.
#[derive(Clone, Debug, PartialEq)]
pub struct VirtualRelation {
    /// Display label for `EXPLAIN` (e.g. `NEAREST('alien', 10)`).
    pub label: String,
    /// Output column definitions, in order.
    pub columns: Vec<ColumnDef>,
    /// The materialized rows. Each row's arity must equal `columns.len()`.
    pub rows: Vec<Vec<Value>>,
}

impl VirtualRelation {
    /// Validate that every row matches the declared arity.
    pub fn validate(&self) -> Result<()> {
        for row in &self.rows {
            if row.len() != self.columns.len() {
                return Err(StoreError::Sql(format!(
                    "table function `{}` returned a row of arity {} (expected {})",
                    self.label,
                    row.len(),
                    self.columns.len()
                )));
            }
        }
        Ok(())
    }
}

/// Evaluates table functions referenced in a `FROM`/`JOIN` clause.
///
/// Implementations resolve a function name (matched case-insensitively by
/// convention; providers receive the name as written) plus its literal
/// arguments to a [`VirtualRelation`]. `retro-core` injects a provider
/// backed by an embedding snapshot to serve `NEAREST(...)`.
pub trait TableFunctionProvider {
    /// Materialize the named function for one statement.
    fn eval(&self, name: &str, args: &[Literal]) -> Result<VirtualRelation>;
}

/// A bound relation source: either a stored table or a materialized
/// table-function result. This is the planner/executor view — every
/// accessor degrades gracefully for virtual relations (no primary key,
/// no secondary indexes), so the planner simply never chooses an index
/// path for them.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Rel<'a> {
    /// A table stored in the database.
    Stored(&'a Table),
    /// A materialized table-function result.
    Virtual(&'a VirtualRelation),
}

impl<'a> Rel<'a> {
    /// The column definitions, in order.
    pub fn columns(&self) -> &'a [ColumnDef] {
        match self {
            Rel::Stored(t) => &t.schema().columns,
            Rel::Virtual(v) => &v.columns,
        }
    }

    /// Position of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        match self {
            Rel::Stored(t) => t.schema().column_index(name),
            Rel::Virtual(v) => v.columns.iter().position(|c| c.name == name),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows().len()
    }

    /// All rows, in position order.
    pub fn rows(&self) -> &'a [Vec<Value>] {
        match self {
            Rel::Stored(t) => t.rows(),
            Rel::Virtual(v) => &v.rows,
        }
    }

    /// The primary-key column, if any (never for virtual relations).
    pub fn primary_key(&self) -> Option<usize> {
        match self {
            Rel::Stored(t) => t.schema().primary_key,
            Rel::Virtual(_) => None,
        }
    }

    /// Whether a secondary equality index covers `col`.
    pub fn has_secondary_index(&self, col: usize) -> bool {
        match self {
            Rel::Stored(t) => t.has_secondary_index(col),
            Rel::Virtual(_) => false,
        }
    }

    /// Probe a secondary index (sorted positions of one key).
    pub fn index_probe(&self, col: usize, key: &Value) -> Option<&'a [u32]> {
        match self {
            Rel::Stored(t) => t.index_probe(col, key),
            Rel::Virtual(_) => None,
        }
    }

    /// Exact distinct-key count of an indexed column.
    pub fn index_distinct(&self, col: usize) -> Option<usize> {
        match self {
            Rel::Stored(t) => t.index_distinct(col),
            Rel::Virtual(_) => None,
        }
    }

    /// Row position holding primary key `key`.
    pub fn row_position_by_pk(&self, key: i64) -> Option<usize> {
        match self {
            Rel::Stored(t) => t.row_position_by_pk(key),
            Rel::Virtual(_) => None,
        }
    }

    /// Display name for plans and `EXPLAIN` (table name or function label).
    pub fn display_name(&self) -> &'a str {
        match self {
            Rel::Stored(t) => &t.schema().name,
            Rel::Virtual(v) => &v.label,
        }
    }

    /// Whether this binding is a table-function result.
    pub fn is_virtual(&self) -> bool {
        matches!(self, Rel::Virtual(_))
    }
}

/// Every `FROM`/`JOIN` source of `sel`, in declared order.
fn sources(sel: &Select) -> impl Iterator<Item = &TableRef> {
    std::iter::once(&sel.from).chain(sel.joins.iter().map(|j| &j.table))
}

/// Materialize every table function referenced by `sel`, in declared
/// binding order (`None` for stored-table bindings). Errors if a
/// function is referenced but no provider was supplied.
pub(crate) fn materialize_functions(
    sel: &Select,
    provider: Option<&dyn TableFunctionProvider>,
) -> Result<Vec<Option<VirtualRelation>>> {
    sources(sel)
        .map(|tref| match &tref.args {
            None => Ok(None),
            Some(args) => {
                let provider = provider.ok_or_else(|| {
                    StoreError::Sql(format!(
                        "table function `{}` requires a provider (none registered)",
                        tref.table
                    ))
                })?;
                let rel = provider.eval(&tref.table, args)?;
                rel.validate()?;
                Ok(Some(rel))
            }
        })
        .collect()
}

/// Bind every source of `sel` to a [`Rel`]: virtual bindings take their
/// materialized relation from `virt`, stored bindings resolve against
/// the database. `virt` must come from [`materialize_functions`] for the
/// same statement.
pub(crate) fn bind_rels<'a>(
    db: &'a Database,
    sel: &Select,
    virt: &'a [Option<VirtualRelation>],
) -> Result<Vec<Rel<'a>>> {
    debug_assert_eq!(virt.len(), 1 + sel.joins.len());
    sources(sel)
        .zip(virt)
        .map(|(tref, v)| match v {
            Some(rel) => Ok(Rel::Virtual(rel)),
            None => Ok(Rel::Stored(db.table(&tref.table)?)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    struct OneRow;
    impl TableFunctionProvider for OneRow {
        fn eval(&self, name: &str, args: &[Literal]) -> Result<VirtualRelation> {
            assert!(name.eq_ignore_ascii_case("one"));
            let k = match args {
                [Literal::Int(k)] => *k,
                _ => return Err(StoreError::Sql("ONE(k) takes one integer".into())),
            };
            Ok(VirtualRelation {
                label: format!("ONE({k})"),
                columns: vec![ColumnDef::new("v", DataType::Int)],
                rows: (0..k).map(|i| vec![Value::Int(i)]).collect(),
            })
        }
    }

    #[test]
    fn rel_accessors_degrade_for_virtual() {
        let v = VirtualRelation {
            label: "F()".into(),
            columns: vec![ColumnDef::new("v", DataType::Int)],
            rows: vec![vec![Value::Int(7)]],
        };
        let rel = Rel::Virtual(&v);
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.column_index("v"), Some(0));
        assert_eq!(rel.primary_key(), None);
        assert!(!rel.has_secondary_index(0));
        assert_eq!(rel.index_probe(0, &Value::Int(7)), None);
        assert_eq!(rel.row_position_by_pk(7), None);
        assert!(rel.is_virtual());
    }

    #[test]
    fn materialize_requires_provider() {
        let sel = match crate::sql::parse_statement("SELECT v FROM one(3) o").unwrap() {
            crate::sql::Statement::Select(sel) => sel,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let err = materialize_functions(&sel, None).unwrap_err();
        assert!(matches!(err, StoreError::Sql(msg) if msg.contains("provider")));
        let virt = materialize_functions(&sel, Some(&OneRow)).unwrap();
        assert_eq!(virt[0].as_ref().unwrap().rows.len(), 3);
    }

    #[test]
    fn bind_mixes_stored_and_virtual() {
        let mut db = Database::new();
        db.create_table(TableSchema::builder("t").pk("id").build()).unwrap();
        db.insert("t", vec![Value::Int(1)]).unwrap();
        let sel = match crate::sql::parse_statement("SELECT * FROM one(2) o JOIN t ON t.id = o.v")
            .unwrap()
        {
            crate::sql::Statement::Select(sel) => sel,
            other => panic!("expected SELECT, got {other:?}"),
        };
        let virt = materialize_functions(&sel, Some(&OneRow)).unwrap();
        let rels = bind_rels(&db, &sel, &virt).unwrap();
        assert!(rels[0].is_virtual());
        assert!(!rels[1].is_virtual());
        assert_eq!(rels[0].display_name(), "ONE(2)");
        assert_eq!(rels[1].display_name(), "t");
    }

    #[test]
    fn arity_violations_are_typed_errors() {
        let bad = VirtualRelation {
            label: "BAD()".into(),
            columns: vec![ColumnDef::new("a", DataType::Int)],
            rows: vec![vec![Value::Int(1), Value::Int(2)]],
        };
        assert!(bad.validate().is_err());
    }
}
