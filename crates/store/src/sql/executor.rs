//! Statement execution: DDL, inserts, and planned SELECT/UPDATE/DELETE.
//!
//! SELECT/UPDATE/DELETE go through [`crate::sql::planner`]: the planner
//! resolves names, chooses access paths and a join order, and the
//! executor here interprets the plan. Joins track *row positions*, not
//! materialized rows — values are cloned once, at projection time — and
//! hash joins key on a 64-bit hash of the borrowed join value (collision
//! buckets verified by [`join_eq`]), so the probe loop allocates nothing
//! per row.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::index::FastBuild;
use crate::schema::{ForeignKey, TableSchema};
use crate::sql::ast::*;
use crate::sql::planner::{self, Access, DmlPlan, JoinVia, PlanMode, Pred, ProjItem};
use crate::sql::relation::{self, Rel, TableFunctionProvider};
use crate::table::Table;
use crate::value::Value;
use crate::{Database, Result};

/// The result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DDL; DML reports `rows_affected`).
    pub rows: Vec<Vec<Value>>,
    /// Number of rows created by DML.
    pub rows_affected: usize,
}

impl QueryResult {
    /// An empty result (DDL success).
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Execute a parsed statement with cost-based planning.
pub fn execute(db: &mut Database, stmt: &Statement) -> Result<QueryResult> {
    execute_with(db, stmt, PlanMode::Planned)
}

/// Execute a parsed statement under an explicit [`PlanMode`].
///
/// [`PlanMode::ForceScan`] is the correctness oracle: no index is
/// consulted, joins run as declared-order hash joins, and every
/// predicate is evaluated after all joins. Results are bit-identical to
/// [`PlanMode::Planned`] by contract (`tests/index_equivalence.rs`).
pub fn execute_with(db: &mut Database, stmt: &Statement, mode: PlanMode) -> Result<QueryResult> {
    execute_provided(db, stmt, mode, None)
}

/// Execute a parsed statement with a [`TableFunctionProvider`] serving
/// `FROM`/`JOIN` table-function references. Statements that reference a
/// function without a provider fail with a typed SQL error.
pub fn execute_provided(
    db: &mut Database,
    stmt: &Statement,
    mode: PlanMode,
    funcs: Option<&dyn TableFunctionProvider>,
) -> Result<QueryResult> {
    match stmt {
        Statement::CreateTable(ct) => exec_create(db, ct),
        Statement::Insert(ins) => exec_insert(db, ins),
        Statement::Select(sel) => exec_select(db, sel, mode, funcs),
        Statement::Update(upd) => exec_update(db, upd, mode),
        Statement::Delete(del) => exec_delete(db, del, mode),
        Statement::Explain(inner) => planner::explain(db, inner, mode, funcs),
    }
}

/// Execute a *read-only* statement (`SELECT` or `EXPLAIN`) against a
/// shared database reference. This is the entry point for callers that
/// hold only `&Database` — e.g. a generation-pinned serving session —
/// and is exactly what [`execute_provided`] runs for the same statement.
/// Anything that could mutate is rejected with a typed SQL error.
pub fn query_provided(
    db: &Database,
    stmt: &Statement,
    mode: PlanMode,
    funcs: Option<&dyn TableFunctionProvider>,
) -> Result<QueryResult> {
    match stmt {
        Statement::Select(sel) => exec_select(db, sel, mode, funcs),
        Statement::Explain(inner) => planner::explain(db, inner, mode, funcs),
        _ => {
            Err(StoreError::Sql("read-only execution supports only SELECT and EXPLAIN".to_owned()))
        }
    }
}

// ---------------------------------------------------------------------
// Join-key semantics
// ---------------------------------------------------------------------

/// The canonical form of a join key. Ints and integral floats collapse
/// to the same key (SQL equality says `1 = 1.0`); non-integral floats
/// compare by bits; text joins text; NULL never joins. This is a proper
/// equivalence relation — unlike raw SQL comparison, which is not
/// transitive across int/float precision edges — and every join path
/// (hash, secondary index, pk probe) matches it exactly.
#[derive(PartialEq, Eq)]
enum JoinKey<'a> {
    Int(i64),
    Bits(u64),
    Text(&'a str),
}

/// Same integral-float window the index probe uses
/// (`crate::index::IndexMap::probe`): keep the two paths bit-identical.
fn join_canon(v: &Value) -> Option<JoinKey<'_>> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(JoinKey::Int(*i)),
        Value::Float(x) if x.fract() == 0.0 && x.abs() < 2f64.powi(63) => {
            Some(JoinKey::Int(*x as i64))
        }
        Value::Float(x) => {
            Some(JoinKey::Bits(if x.is_nan() { f64::NAN.to_bits() } else { x.to_bits() }))
        }
        Value::Text(s) => Some(JoinKey::Text(s)),
    }
}

/// Join equality: canonical keys equal, NULL never matches.
pub(crate) fn join_eq(a: &Value, b: &Value) -> bool {
    match (join_canon(a), join_canon(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

/// Hash of the canonical join key — no allocation, even for text.
/// Equal keys hash equal; collisions are resolved by [`join_eq`].
fn join_hash(v: &Value) -> Option<u64> {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    Some(match join_canon(v)? {
        JoinKey::Int(i) => (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        JoinKey::Bits(b) => b.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15,
        JoinKey::Text(s) => {
            s.bytes().fold(FNV_OFFSET, |h, b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
        }
    })
}

// ---------------------------------------------------------------------
// Predicate evaluation
// ---------------------------------------------------------------------

/// Evaluate a pushed-down (single-binding) predicate on one table row.
fn pred_on_row(pred: &Pred, row: &[Value]) -> bool {
    match pred {
        Pred::IsNull { c, .. } => row[*c].is_null(),
        Pred::IsNotNull { c, .. } => !row[*c].is_null(),
        Pred::CmpLit { c, op, value, .. } => op.eval(&row[*c], value),
        Pred::CmpCol { lc, op, rc, .. } => op.eval(&row[*lc], &row[*rc]),
        Pred::JoinEq { lc, rc, .. } => join_eq(&row[*lc], &row[*rc]),
    }
}

/// Evaluate a residual predicate on a joined position tuple. `slot[b]`
/// maps a binding to its position within the tuple.
fn pred_on_tuple(pred: &Pred, rels: &[Rel<'_>], slot: &[usize], tuple: &[u32]) -> bool {
    let cell = |b: usize, c: usize| -> &Value { &rels[b].rows()[tuple[slot[b]] as usize][c] };
    match pred {
        Pred::IsNull { b, c } => cell(*b, *c).is_null(),
        Pred::IsNotNull { b, c } => !cell(*b, *c).is_null(),
        Pred::CmpLit { b, c, op, value } => op.eval(cell(*b, *c), value),
        Pred::CmpCol { lb, lc, op, rb, rc } => op.eval(cell(*lb, *lc), cell(*rb, *rc)),
        Pred::JoinEq { lb, lc, rb, rc } => join_eq(cell(*lb, *lc), cell(*rb, *rc)),
    }
}

// ---------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------

/// Collect the positions of rows matching a DML plan, ascending.
fn matching_positions(table: &Table, plan: &DmlPlan) -> Vec<usize> {
    let keep = |pos: usize| -> bool {
        let row = &table.rows()[pos];
        plan.filters.iter().all(|p| pred_on_row(p, row))
    };
    match &plan.access {
        Access::Scan => (0..table.len()).filter(|&p| keep(p)).collect(),
        Access::PkEq(key) => {
            table.row_position_by_pk(*key).into_iter().filter(|&p| keep(p)).collect()
        }
        Access::IndexEq { col, key } => table
            .index_probe(*col, key)
            .expect("planner only chooses existing indexes")
            .iter()
            .map(|&p| p as usize)
            .filter(|&p| keep(p))
            .collect(),
    }
}

fn exec_update(db: &mut Database, upd: &Update, mode: PlanMode) -> Result<QueryResult> {
    let schema = db.table(&upd.table)?.schema().clone();
    // Resolve and validate assignments once.
    let mut resolved = Vec::with_capacity(upd.assignments.len());
    for (column, lit) in &upd.assignments {
        let idx = schema.column_index(column).ok_or_else(|| StoreError::UnknownColumn {
            table: upd.table.clone(),
            column: column.clone(),
        })?;
        if Some(idx) == schema.primary_key {
            return Err(StoreError::Sql("cannot UPDATE a primary key column".into()));
        }
        if schema.foreign_key_on(column).is_some() {
            return Err(StoreError::Sql("UPDATE of foreign-key columns is not supported".into()));
        }
        resolved.push((idx, lit.to_value()));
    }
    let plan = planner::plan_dml(db, &upd.table, &upd.predicates, mode)?;
    let matches = matching_positions(db.table(&upd.table)?, &plan);
    if matches.is_empty() {
        // Nothing to write: a statement that changed nothing must not bump
        // the database's write version.
        return Ok(QueryResult::empty());
    }
    // Apply through the tracked bulk-update path: one precise change-log
    // record for the statement, and validate-then-apply atomicity.
    let updates: Vec<(usize, usize, Value)> = matches
        .iter()
        .flat_map(|&pos| resolved.iter().map(move |(idx, value)| (pos, *idx, value.clone())))
        .collect();
    let n = db.update_rows(&upd.table, &updates)?;
    Ok(QueryResult { rows_affected: n, ..QueryResult::default() })
}

fn exec_delete(db: &mut Database, del: &Delete, mode: PlanMode) -> Result<QueryResult> {
    let plan = planner::plan_dml(db, &del.table, &del.predicates, mode)?;
    let matches = matching_positions(db.table(&del.table)?, &plan);
    if matches.is_empty() {
        return Ok(QueryResult::empty());
    }
    // The tracked delete path enforces referential integrity (RESTRICT)
    // and records one precise change-log entry for the statement.
    let n = db.delete_rows(&del.table, &matches)?;
    Ok(QueryResult { rows_affected: n, ..QueryResult::default() })
}

fn exec_create(db: &mut Database, ct: &CreateTable) -> Result<QueryResult> {
    let mut builder = TableSchema::builder(&ct.name);
    for (name, ty) in &ct.columns {
        builder = builder.column(name, *ty);
        if ct.primary_key.as_deref() == Some(name) {
            builder = builder.primary_key_last();
        }
    }
    let mut schema = builder.build();
    for (col, ref_table, ref_col) in &ct.foreign_keys {
        schema.foreign_keys.push(ForeignKey {
            column: col.clone(),
            ref_table: ref_table.clone(),
            ref_column: ref_col.clone(),
        });
    }
    db.create_table(schema)?;
    Ok(QueryResult::empty())
}

/// Execute `INSERT INTO t [(cols)] VALUES (...), (...)` through the
/// [`crate::BulkLoader`] fast path. The whole statement is **atomic** — a
/// bad tuple anywhere inserts nothing, matching standard SQL statement
/// semantics (before PR 3, tuples preceding the bad one were stranded).
fn exec_insert(db: &mut Database, ins: &Insert) -> Result<QueryResult> {
    let mut loader = db.bulk();
    let handle = loader.table(&ins.table)?;
    let schema = loader.schema(handle);
    let width = schema.columns.len();
    let mapping: Vec<usize> = if ins.columns.is_empty() {
        (0..width).collect()
    } else {
        ins.columns
            .iter()
            .map(|name| {
                schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
                    table: ins.table.clone(),
                    column: name.clone(),
                })
            })
            .collect::<Result<_>>()?
    };

    for lit_row in &ins.rows {
        if lit_row.len() != mapping.len() {
            return Err(StoreError::ArityMismatch {
                table: ins.table.clone(),
                expected: mapping.len(),
                got: lit_row.len(),
            });
        }
        let mut row = vec![Value::Null; width];
        for (lit, &col) in lit_row.iter().zip(&mapping) {
            row[col] = lit.to_value();
        }
        // A violation rolls the whole statement back inside the loader;
        // surface the underlying error the way the row-by-row path did.
        loader.stage(handle, row).map_err(|err| match err {
            StoreError::BulkRow { source, .. } => *source,
            other => other,
        })?;
    }
    let affected = loader.commit()?;
    Ok(QueryResult { rows_affected: affected, ..QueryResult::default() })
}

// ---------------------------------------------------------------------
// SELECT
// ---------------------------------------------------------------------

fn exec_select(
    db: &Database,
    sel: &Select,
    mode: PlanMode,
    funcs: Option<&dyn TableFunctionProvider>,
) -> Result<QueryResult> {
    // Materialize table functions once, before planning: both plan modes
    // (and EXPLAIN) see identical rows, and the planner's row estimates
    // for function bindings are exact.
    let virt = relation::materialize_functions(sel, funcs)?;
    let rels = relation::bind_rels(db, sel, &virt)?;
    let plan = planner::plan_select(sel, &rels, mode)?;

    // slot[binding] = index of that binding's position within a tuple.
    let mut slot = vec![0usize; plan.bindings.len()];
    for (k, step) in plan.steps.iter().enumerate() {
        slot[step.binding] = k;
    }

    // Joined rows as position tuples, one u32 per placed binding.
    let mut tuples: Vec<Vec<u32>> = Vec::new();
    for (k, step) in plan.steps.iter().enumerate() {
        let rel = rels[step.binding];
        let keep = |pos: u32| -> bool {
            step.filters.iter().all(|p| pred_on_row(p, &rel.rows()[pos as usize]))
        };
        match &step.join {
            None => {
                let candidates: Vec<u32> = match &step.access {
                    Access::Scan => (0..rel.len() as u32).collect(),
                    Access::PkEq(key) => {
                        rel.row_position_by_pk(*key).map(|p| p as u32).into_iter().collect()
                    }
                    Access::IndexEq { col, key } => rel
                        .index_probe(*col, key)
                        .expect("planner only chooses existing indexes")
                        .to_vec(),
                };
                tuples = candidates.into_iter().filter(|&p| keep(p)).map(|p| vec![p]).collect();
            }
            Some(join) => {
                let outer_rel = rels[join.outer];
                let outer_slot = slot[join.outer];
                let mut next = Vec::new();
                match join.via {
                    JoinVia::Pk | JoinVia::Index => {
                        for tuple in &tuples {
                            let outer_row = &outer_rel.rows()[tuple[outer_slot] as usize];
                            let probe = &outer_row[join.outer_col];
                            // Borrow the matching positions straight from
                            // the index — no per-row key materialization.
                            let single;
                            let matches: &[u32] = if join.via == JoinVia::Pk {
                                match join_canon(probe) {
                                    Some(JoinKey::Int(key)) => match rel.row_position_by_pk(key) {
                                        Some(p) => {
                                            single = [p as u32];
                                            &single
                                        }
                                        None => &[],
                                    },
                                    _ => &[],
                                }
                            } else {
                                rel.index_probe(join.inner_col, probe)
                                    .expect("planner only chooses existing indexes")
                            };
                            for &p in matches {
                                if keep(p) {
                                    let mut t = tuple.clone();
                                    t.push(p);
                                    next.push(t);
                                }
                            }
                        }
                    }
                    JoinVia::Hash => {
                        // Build over the new binding's filtered rows,
                        // keyed by join-value hash; buckets hold position
                        // lists and are verified by join_eq on probe.
                        let mut built: HashMap<u64, Vec<u32>, FastBuild> = HashMap::default();
                        for (p, row) in rel.rows().iter().enumerate() {
                            let Some(h) = join_hash(&row[join.inner_col]) else { continue };
                            if keep(p as u32) {
                                built.entry(h).or_default().push(p as u32);
                            }
                        }
                        for tuple in &tuples {
                            let outer_row = &outer_rel.rows()[tuple[outer_slot] as usize];
                            let probe = &outer_row[join.outer_col];
                            let Some(h) = join_hash(probe) else { continue };
                            let Some(bucket) = built.get(&h) else { continue };
                            for &p in bucket {
                                if join_eq(probe, &rel.rows()[p as usize][join.inner_col]) {
                                    let mut t = tuple.clone();
                                    t.push(p);
                                    next.push(t);
                                }
                            }
                        }
                    }
                }
                tuples = next;
            }
        }
        debug_assert_eq!(k + 1, tuples.first().map_or(k + 1, Vec::len));
    }

    // Residual predicates (cross-binding, or everything in ForceScan).
    if !plan.residual.is_empty() {
        tuples.retain(|t| plan.residual.iter().all(|p| pred_on_tuple(p, &rels, &slot, t)));
    }

    // Canonical order: ascending row positions in *declared* binding
    // order — exactly the order a declared-order nested execution emits.
    // This is what makes every plan produce bit-identical output.
    let nb = plan.bindings.len();
    tuples.sort_unstable_by(|a, b| {
        for bi in 0..nb {
            match a[slot[bi]].cmp(&b[slot[bi]]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });

    if plan.count_star {
        let mut n = tuples.len();
        if let Some(limit) = plan.limit {
            n = n.min(limit);
        }
        return Ok(QueryResult {
            columns: plan.columns,
            rows: vec![vec![Value::Int(n as i64)]],
            rows_affected: 0,
        });
    }

    // Materialize flattened rows (declared binding order) — the only
    // place values are cloned.
    let width: usize = rels.iter().map(|r| r.columns().len()).sum();
    let mut rows: Vec<Vec<Value>> = tuples
        .iter()
        .map(|t| {
            let mut row = Vec::with_capacity(width);
            for bi in 0..nb {
                row.extend_from_slice(&rels[bi].rows()[t[slot[bi]] as usize]);
            }
            row
        })
        .collect();

    // ORDER BY (stable: ties keep canonical row order), then LIMIT.
    if let Some((idx, desc)) = plan.order_by {
        rows.sort_by(|a, b| {
            let ord = a[idx].cmp_sql(&b[idx]);
            if desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }
    if let Some(n) = plan.limit {
        rows.truncate(n);
    }

    // Projection.
    let projected = rows
        .into_iter()
        .map(|row| {
            let mut out = Vec::new();
            for p in &plan.projection {
                match p {
                    ProjItem::All => out.extend(row.iter().cloned()),
                    ProjItem::Col(i) => out.push(row[*i].clone()),
                }
            }
            out
        })
        .collect();

    Ok(QueryResult { columns: plan.columns, rows: projected, rows_affected: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::{parse_statement, run_script};

    fn seeded() -> Database {
        let mut db = Database::new();
        run_script(
            &mut db,
            "CREATE TABLE genres (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, budget REAL);
             CREATE TABLE movie_genre (movie_id INTEGER REFERENCES movies(id),
                                       genre_id INTEGER REFERENCES genres(id));
             INSERT INTO genres VALUES (1, 'Horror'), (2, 'Comedy');
             INSERT INTO movies VALUES (1, 'Alien', 11000000.0), (2, 'Brazil', NULL),
                                       (3, 'Amelie', 10000000.0);
             INSERT INTO movie_genre VALUES (1, 1), (3, 2), (2, 2);",
        )
        .unwrap();
        db
    }

    /// Run `sql` under both plan modes and assert bit-identical results
    /// before returning the planned one.
    fn run_both(db: &mut Database, sql: &str) -> QueryResult {
        let stmt = parse_statement(sql).unwrap();
        let forced = execute_with(db, &stmt, PlanMode::ForceScan).unwrap();
        let planned = execute_with(db, &stmt, PlanMode::Planned).unwrap();
        assert_eq!(planned, forced, "plan changed results for {sql}");
        planned
    }

    #[test]
    fn where_and_order() {
        let mut db = seeded();
        let r = run_both(
            &mut db,
            "SELECT title FROM movies WHERE budget >= 10000000 ORDER BY budget DESC",
        );
        let titles: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(titles, vec!["Alien", "Amelie"]);
    }

    #[test]
    fn null_filtering() {
        let mut db = seeded();
        let r = run_both(&mut db, "SELECT title FROM movies WHERE budget IS NULL");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("Brazil"));
    }

    #[test]
    fn two_hop_join_through_link_table() {
        let mut db = seeded();
        let r = run_both(
            &mut db,
            "SELECT m.title FROM genres g
             JOIN movie_genre mg ON mg.genre_id = g.id
             JOIN movies m ON m.id = mg.movie_id
             WHERE g.name = 'Comedy' ORDER BY m.title",
        );
        let titles: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(titles, vec!["Amelie", "Brazil"]);
    }

    #[test]
    fn wildcard_projection_includes_all_bindings() {
        let mut db = seeded();
        let r = run_both(
            &mut db,
            "SELECT * FROM movie_genre mg JOIN genres g ON mg.genre_id = g.id LIMIT 1",
        );
        assert_eq!(r.columns.len(), 4); // movie_id, genre_id, id, name
        assert!(r.columns[3].contains("name"));
    }

    #[test]
    fn limit_truncates() {
        let mut db = seeded();
        let r = run_both(&mut db, "SELECT id FROM movies ORDER BY id LIMIT 2");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn ambiguous_column_is_error() {
        let mut db = seeded();
        let err = run_script(&mut db, "SELECT id FROM movies m JOIN genres g ON m.id = g.id")
            .unwrap_err();
        assert!(matches!(err, StoreError::Sql(msg) if msg.contains("ambiguous")));
    }

    #[test]
    fn unknown_column_is_error() {
        let mut db = seeded();
        assert!(run_script(&mut db, "SELECT nope FROM movies").is_err());
    }

    #[test]
    fn insert_reports_rows_affected() {
        let mut db = seeded();
        let r =
            run_script(&mut db, "INSERT INTO genres VALUES (3, 'Drama'), (4, 'SciFi')").unwrap();
        assert_eq!(r.rows_affected, 2);
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let mut db = seeded();
        // Tuple 3 repeats primary key 3: the whole statement must be a no-op.
        let err =
            run_script(&mut db, "INSERT INTO genres VALUES (3, 'Drama'), (4, 'SciFi'), (3, 'Dup')")
                .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey { .. }), "got {err:?}");
        let count = run_script(&mut db, "SELECT COUNT(*) FROM genres").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(2), "partial insert must not survive");
    }

    #[test]
    fn insert_tuples_may_reference_earlier_tuples() {
        let mut db = seeded();
        // movie 50 is staged by the same statement the link row references.
        let r = run_script(
            &mut db,
            "INSERT INTO movies VALUES (50, 'Dune', 1.0); \
             INSERT INTO movie_genre VALUES (50, 1), (50, 2)",
        )
        .unwrap();
        assert_eq!(r.rows_affected, 2);
    }

    #[test]
    fn count_cannot_mix_with_columns() {
        let mut db = seeded();
        assert!(run_script(&mut db, "SELECT COUNT(*), title FROM movies").is_err());
    }

    #[test]
    fn update_rewrites_matching_rows() {
        let mut db = seeded();
        let r = run_script(&mut db, "UPDATE movies SET budget = 5.0 WHERE budget IS NULL").unwrap();
        assert_eq!(r.rows_affected, 1);
        let check =
            run_script(&mut db, "SELECT budget FROM movies WHERE title = 'Brazil'").unwrap();
        assert_eq!(check.rows[0][0], Value::Float(5.0));
    }

    #[test]
    fn update_without_where_touches_all_rows() {
        let mut db = seeded();
        let r = run_script(&mut db, "UPDATE movies SET budget = 1").unwrap();
        assert_eq!(r.rows_affected, 3);
    }

    #[test]
    fn update_rejects_pk_and_fk_columns() {
        let mut db = seeded();
        assert!(run_script(&mut db, "UPDATE movies SET id = 99").is_err());
        assert!(run_script(&mut db, "UPDATE movie_genre SET genre_id = 1").is_err());
        assert!(run_script(&mut db, "UPDATE movies SET title = 7").is_err()); // type
    }

    #[test]
    fn update_through_pk_access_path() {
        let mut db = seeded();
        let r = run_script(&mut db, "UPDATE movies SET budget = 2.5 WHERE id = 3").unwrap();
        assert_eq!(r.rows_affected, 1);
        let check = run_both(&mut db, "SELECT budget FROM movies WHERE title = 'Amelie'");
        assert_eq!(check.rows[0][0], Value::Float(2.5));
    }

    #[test]
    fn delete_removes_matching_rows_and_reindexes() {
        let mut db = seeded();
        // Movie 1 is referenced by movie_genre — clear the link first.
        run_script(&mut db, "DELETE FROM movie_genre WHERE movie_id = 1").unwrap();
        let r = run_script(&mut db, "DELETE FROM movies WHERE title = 'Alien'").unwrap();
        assert_eq!(r.rows_affected, 1);
        let count = run_script(&mut db, "SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(2));
        // PK index rebuilt: inserting a fresh id-1 row works again.
        run_script(&mut db, "INSERT INTO movies VALUES (1, 'Alien Redux', 1.0)").unwrap();
    }

    #[test]
    fn delete_restricts_on_foreign_keys() {
        let mut db = seeded();
        let err = run_script(&mut db, "DELETE FROM movies WHERE id = 1").unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation { .. }));
        // The row survived.
        let count = run_script(&mut db, "SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(3));
        // The RESTRICT check probed movie_genre's FK index, never scanned.
        assert_eq!(db.fk_scan_fallbacks(), 0, "RESTRICT must not scan the referencing table");
    }

    #[test]
    fn column_vs_column_where() {
        let mut db = seeded();
        let r = run_both(
            &mut db,
            "SELECT mg.movie_id FROM movie_genre mg WHERE mg.movie_id = mg.genre_id",
        );
        assert_eq!(r.rows.len(), 2); // (1,1) and (2,2)
    }

    #[test]
    fn join_keys_are_type_aware() {
        // The hash join keys on borrowed values with canonical typing:
        // integral floats join ints, text never joins numbers. Pinned
        // here because the old implementation stringified every key
        // (allocating per row, and conflating '1' with 1).
        let mut db = Database::new();
        run_script(
            &mut db,
            "CREATE TABLE a (id INTEGER PRIMARY KEY, v REAL);
             CREATE TABLE b (id INTEGER PRIMARY KEY, v REAL);
             INSERT INTO a VALUES (1, 2), (2, 2.5), (3, NULL);
             INSERT INTO b VALUES (10, 2.0), (11, 2.5), (12, NULL);",
        )
        .unwrap();
        // v is unindexed REAL → hash join. Int 2 must meet Float 2.0.
        let r = run_both(&mut db, "SELECT a.id, b.id FROM a JOIN b ON a.v = b.v ORDER BY a.id");
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Int(10)], // 2 joins 2.0
                vec![Value::Int(2), Value::Int(11)], // 2.5 joins 2.5
            ],
            "NULLs must not join; integral floats must meet ints"
        );

        let mut db2 = Database::new();
        run_script(
            &mut db2,
            "CREATE TABLE nums (id INTEGER PRIMARY KEY, k INTEGER);
             CREATE TABLE words (id INTEGER PRIMARY KEY, k TEXT);
             INSERT INTO nums VALUES (1, 1);
             INSERT INTO words VALUES (9, '1');",
        )
        .unwrap();
        let r = run_both(&mut db2, "SELECT nums.id FROM nums JOIN words ON nums.k = words.k");
        assert!(r.rows.is_empty(), "text '1' must not join integer 1");
    }

    #[test]
    fn planned_join_order_does_not_change_output_order() {
        let mut db = seeded();
        // No ORDER BY: row order must still be the declared-order nested
        // execution order, whatever join order the planner picked.
        let r = run_both(
            &mut db,
            "SELECT m.title, g.name FROM movies m
             JOIN movie_genre mg ON mg.movie_id = m.id
             JOIN genres g ON g.id = mg.genre_id
             WHERE g.name = 'Comedy'",
        );
        let titles: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(titles, vec!["Brazil", "Amelie"], "movies-declared-order: id 2 then id 3");
    }

    #[test]
    fn explain_select_golden() {
        let mut db = seeded();
        let r = run_script(
            &mut db,
            "EXPLAIN SELECT m.title FROM genres g
             JOIN movie_genre mg ON mg.genre_id = g.id
             JOIN movies m ON m.id = mg.movie_id
             WHERE g.id = 2 ORDER BY m.title",
        )
        .unwrap();
        let lines: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(
            lines,
            vec![
                "SELECT",
                "  access genres g: pk lookup (id = 2) [1 of 2 rows]",
                "  join movie_genre mg: index probe (mg.genre_id = g.id) [~2 rows]",
                "  join movies m: pk probe (m.id = mg.movie_id) [~2 rows]",
                "  order by m.title",
            ]
        );
    }

    #[test]
    fn explain_scan_and_dml_golden() {
        let mut db = seeded();
        let r =
            run_script(&mut db, "EXPLAIN SELECT title FROM movies WHERE budget IS NULL").unwrap();
        let lines: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(
            lines,
            vec!["SELECT", "  access movies: scan [3 rows]", "    filter movies.budget IS NULL",]
        );

        let r = run_script(&mut db, "EXPLAIN DELETE FROM movie_genre WHERE movie_id = 1").unwrap();
        let lines: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(
            lines,
            vec![
                "DELETE FROM movie_genre",
                "  access movie_genre: index lookup (movie_id = 1) [1 of 3 rows]",
                "  [~1 rows match]",
            ]
        );
    }

    #[test]
    fn explain_does_not_execute() {
        let mut db = seeded();
        let v0 = db.write_version();
        run_script(&mut db, "EXPLAIN DELETE FROM movies").unwrap();
        assert_eq!(db.write_version(), v0);
        let count = run_script(&mut db, "SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(3));
    }

    /// A deterministic stand-in for the serving layer's NEAREST provider:
    /// `RANKED(k)` yields rows `(id, score)` = `(k, 1/k)`, `(k-1, ...)`,
    /// ... in rank order.
    struct Ranked;
    impl crate::sql::TableFunctionProvider for Ranked {
        fn eval(&self, name: &str, args: &[Literal]) -> Result<crate::sql::VirtualRelation> {
            if !name.eq_ignore_ascii_case("ranked") {
                return Err(StoreError::Sql(format!("unknown table function `{name}`")));
            }
            let [Literal::Int(k)] = args else {
                return Err(StoreError::Sql("RANKED(k) takes one integer".into()));
            };
            Ok(crate::sql::VirtualRelation {
                label: format!("RANKED({k})"),
                columns: vec![
                    crate::schema::ColumnDef::new("id", crate::value::DataType::Int),
                    crate::schema::ColumnDef::new("score", crate::value::DataType::Float),
                ],
                rows: (0..*k)
                    .map(|i| vec![Value::Int(k - i), Value::Float(1.0 / (k - i) as f64)])
                    .collect(),
            })
        }
    }

    /// Run a function-referencing statement under both modes with the
    /// test provider, asserting bit-identical results.
    fn run_both_provided(db: &mut Database, sql: &str) -> QueryResult {
        let stmt = parse_statement(sql).unwrap();
        let forced = execute_provided(db, &stmt, PlanMode::ForceScan, Some(&Ranked)).unwrap();
        let planned = execute_provided(db, &stmt, PlanMode::Planned, Some(&Ranked)).unwrap();
        assert_eq!(planned, forced, "plan changed results for {sql}");
        planned
    }

    #[test]
    fn table_function_rows_surface_in_rank_order() {
        let mut db = seeded();
        let r = run_both_provided(&mut db, "SELECT id, score FROM RANKED(3) r");
        let ids: Vec<_> = r.rows.iter().map(|row| row[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(3), Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn table_function_joins_like_a_relation() {
        let mut db = seeded();
        let r = run_both_provided(
            &mut db,
            "SELECT m.title, r.score FROM RANKED(2) r JOIN movies m ON m.id = r.id",
        );
        // RANKED(2) = ids [2, 1]; canonical order follows the function's
        // row positions (rank order), not movie pk order.
        let titles: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(titles, vec!["Brazil", "Alien"]);
        assert_eq!(r.rows[0][1], Value::Float(0.5));
        // WHERE on function columns, LIMIT, and COUNT(*) all compose.
        let r = run_both_provided(&mut db, "SELECT COUNT(*) FROM RANKED(5) r WHERE r.id >= 3");
        assert_eq!(r.rows[0][0], Value::Int(3));
    }

    #[test]
    fn table_function_without_provider_is_typed_error() {
        let mut db = seeded();
        let stmt = parse_statement("SELECT id FROM RANKED(3) r").unwrap();
        let err = execute_with(&mut db, &stmt, PlanMode::Planned).unwrap_err();
        assert!(matches!(err, StoreError::Sql(msg) if msg.contains("provider")));
    }

    #[test]
    fn query_provided_is_read_only() {
        let db = seeded();
        let stmt = parse_statement("SELECT title FROM movies WHERE id = 1").unwrap();
        let r = query_provided(&db, &stmt, PlanMode::Planned, None).unwrap();
        assert_eq!(r.rows[0][0], Value::from("Alien"));
        let stmt = parse_statement("DELETE FROM movies").unwrap();
        let err = query_provided(&db, &stmt, PlanMode::Planned, None).unwrap_err();
        assert!(matches!(err, StoreError::Sql(msg) if msg.contains("read-only")));
    }

    #[test]
    fn explain_with_table_function_works_in_both_modes() {
        // Regression guard: EXPLAIN of a statement with a table function
        // must not panic (or error) under ForceScan. Table functions are
        // always "planned" — they materialize before planning in every
        // mode — while the relational rest of the plan obeys the mode.
        let mut db = seeded();
        let stmt = parse_statement(
            "EXPLAIN SELECT m.title, r.score FROM RANKED(2) r JOIN movies m ON m.id = r.id",
        )
        .unwrap();
        let planned = execute_provided(&mut db, &stmt, PlanMode::Planned, Some(&Ranked)).unwrap();
        let lines: Vec<_> = planned.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(
            lines,
            vec![
                "SELECT",
                "  access RANKED(2) r: table function [2 rows]",
                "  join movies m: pk probe (m.id = r.id) [~2 rows]",
            ]
        );
        let forced = execute_provided(&mut db, &stmt, PlanMode::ForceScan, Some(&Ranked)).unwrap();
        let lines: Vec<_> = forced.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(
            lines,
            vec![
                "SELECT",
                "  access RANKED(2) r: table function [2 rows]",
                "  join movies m: hash join (m.id = r.id) [~0 rows]",
            ]
        );
    }

    #[test]
    fn explain_pure_relational_obeys_force_scan_mode() {
        let mut db = seeded();
        let stmt = parse_statement("EXPLAIN SELECT title FROM movies WHERE id = 1").unwrap();
        let planned = execute_with(&mut db, &stmt, PlanMode::Planned).unwrap();
        assert!(planned.rows[1][0].to_string().contains("pk lookup"));
        let forced = execute_with(&mut db, &stmt, PlanMode::ForceScan).unwrap();
        assert!(forced.rows[1][0].to_string().contains("scan"));
    }
}
