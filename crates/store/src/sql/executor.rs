//! Statement execution: DDL, inserts, and hash-join SELECTs.

use std::collections::HashMap;

use crate::error::StoreError;
use crate::schema::{ForeignKey, TableSchema};
use crate::sql::ast::*;
use crate::value::Value;
use crate::{Database, Result};

/// The result of executing a statement.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryResult {
    /// Output column names (empty for DDL/DML).
    pub columns: Vec<String>,
    /// Result rows (empty for DDL; DML reports `rows_affected`).
    pub rows: Vec<Vec<Value>>,
    /// Number of rows created by DML.
    pub rows_affected: usize,
}

impl QueryResult {
    /// An empty result (DDL success).
    pub fn empty() -> Self {
        Self::default()
    }
}

/// Execute a parsed statement.
pub fn execute(db: &mut Database, stmt: &Statement) -> Result<QueryResult> {
    match stmt {
        Statement::CreateTable(ct) => exec_create(db, ct),
        Statement::Insert(ins) => exec_insert(db, ins),
        Statement::Select(sel) => exec_select(db, sel),
        Statement::Update(upd) => exec_update(db, upd),
        Statement::Delete(del) => exec_delete(db, del),
    }
}

/// Evaluate a single-table predicate conjunction against one row.
fn row_matches(schema: &TableSchema, predicates: &[Expr], row: &[Value]) -> Result<bool> {
    let resolve = |c: &ColumnRef| -> Result<usize> {
        if let Some(t) = &c.table {
            if t != &schema.name {
                return Err(StoreError::UnknownColumn {
                    table: t.clone(),
                    column: c.column.clone(),
                });
            }
        }
        schema.column_index(&c.column).ok_or_else(|| StoreError::UnknownColumn {
            table: schema.name.clone(),
            column: c.column.clone(),
        })
    };
    for pred in predicates {
        let keep = match pred {
            Expr::IsNull(c) => row[resolve(c)?].is_null(),
            Expr::IsNotNull(c) => !row[resolve(c)?].is_null(),
            Expr::Cmp { left, op, right } => {
                let l = &row[resolve(left)?];
                match right {
                    Operand::Lit(lit) => op.eval(l, &lit.to_value()),
                    Operand::Col(rc) => op.eval(l, &row[resolve(rc)?]),
                }
            }
        };
        if !keep {
            return Ok(false);
        }
    }
    Ok(true)
}

fn exec_update(db: &mut Database, upd: &Update) -> Result<QueryResult> {
    let schema = db.table(&upd.table)?.schema().clone();
    // Resolve and validate assignments once.
    let mut resolved = Vec::with_capacity(upd.assignments.len());
    for (column, lit) in &upd.assignments {
        let idx = schema.column_index(column).ok_or_else(|| StoreError::UnknownColumn {
            table: upd.table.clone(),
            column: column.clone(),
        })?;
        if Some(idx) == schema.primary_key {
            return Err(StoreError::Sql("cannot UPDATE a primary key column".into()));
        }
        if schema.foreign_key_on(column).is_some() {
            return Err(StoreError::Sql("UPDATE of foreign-key columns is not supported".into()));
        }
        resolved.push((idx, lit.to_value()));
    }
    // Collect matching row positions first (immutable pass), then write.
    let matches: Vec<usize> = {
        let table = db.table(&upd.table)?;
        let mut out = Vec::new();
        for (pos, row) in table.rows().iter().enumerate() {
            if row_matches(&schema, &upd.predicates, row)? {
                out.push(pos);
            }
        }
        out
    };
    if matches.is_empty() {
        // Nothing to write: a statement that changed nothing must not bump
        // the database's write version.
        return Ok(QueryResult::empty());
    }
    // Apply through the tracked bulk-update path: one precise change-log
    // record for the statement, and validate-then-apply atomicity.
    let updates: Vec<(usize, usize, Value)> = matches
        .iter()
        .flat_map(|&pos| resolved.iter().map(move |(idx, value)| (pos, *idx, value.clone())))
        .collect();
    let n = db.update_rows(&upd.table, &updates)?;
    Ok(QueryResult { rows_affected: n, ..QueryResult::default() })
}

fn exec_delete(db: &mut Database, del: &Delete) -> Result<QueryResult> {
    let schema = db.table(&del.table)?.schema().clone();
    let matches: Vec<usize> = {
        let table = db.table(&del.table)?;
        let mut out = Vec::new();
        for (pos, row) in table.rows().iter().enumerate() {
            if row_matches(&schema, &del.predicates, row)? {
                out.push(pos);
            }
        }
        out
    };
    if matches.is_empty() {
        return Ok(QueryResult::empty());
    }
    // The tracked delete path enforces referential integrity (RESTRICT)
    // and records one precise change-log entry for the statement.
    let n = db.delete_rows(&del.table, &matches)?;
    Ok(QueryResult { rows_affected: n, ..QueryResult::default() })
}

fn exec_create(db: &mut Database, ct: &CreateTable) -> Result<QueryResult> {
    let mut builder = TableSchema::builder(&ct.name);
    for (name, ty) in &ct.columns {
        builder = builder.column(name, *ty);
        if ct.primary_key.as_deref() == Some(name) {
            builder = builder.primary_key_last();
        }
    }
    let mut schema = builder.build();
    for (col, ref_table, ref_col) in &ct.foreign_keys {
        schema.foreign_keys.push(ForeignKey {
            column: col.clone(),
            ref_table: ref_table.clone(),
            ref_column: ref_col.clone(),
        });
    }
    db.create_table(schema)?;
    Ok(QueryResult::empty())
}

/// Execute `INSERT INTO t [(cols)] VALUES (...), (...)` through the
/// [`crate::BulkLoader`] fast path. The whole statement is **atomic** — a
/// bad tuple anywhere inserts nothing, matching standard SQL statement
/// semantics (before PR 3, tuples preceding the bad one were stranded).
fn exec_insert(db: &mut Database, ins: &Insert) -> Result<QueryResult> {
    let mut loader = db.bulk();
    let handle = loader.table(&ins.table)?;
    let schema = loader.schema(handle);
    let width = schema.columns.len();
    let mapping: Vec<usize> = if ins.columns.is_empty() {
        (0..width).collect()
    } else {
        ins.columns
            .iter()
            .map(|name| {
                schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
                    table: ins.table.clone(),
                    column: name.clone(),
                })
            })
            .collect::<Result<_>>()?
    };

    for lit_row in &ins.rows {
        if lit_row.len() != mapping.len() {
            return Err(StoreError::ArityMismatch {
                table: ins.table.clone(),
                expected: mapping.len(),
                got: lit_row.len(),
            });
        }
        let mut row = vec![Value::Null; width];
        for (lit, &col) in lit_row.iter().zip(&mapping) {
            row[col] = lit.to_value();
        }
        // A violation rolls the whole statement back inside the loader;
        // surface the underlying error the way the row-by-row path did.
        loader.stage(handle, row).map_err(|err| match err {
            StoreError::BulkRow { source, .. } => *source,
            other => other,
        })?;
    }
    let affected = loader.commit()?;
    Ok(QueryResult { rows_affected: affected, ..QueryResult::default() })
}

/// Scope of bound tables during SELECT execution: binding name → (table
/// name, column names), plus the flattened row layout offsets.
struct Scope {
    /// binding → (offset into the joined row, column names).
    bindings: Vec<(String, usize, Vec<String>)>,
    width: usize,
}

impl Scope {
    fn resolve(&self, col: &ColumnRef) -> Result<usize> {
        let mut found = None;
        for (binding, offset, columns) in &self.bindings {
            if let Some(tbl) = &col.table {
                if tbl != binding {
                    continue;
                }
            }
            if let Some(pos) = columns.iter().position(|c| c == &col.column) {
                if found.is_some() {
                    return Err(StoreError::Sql(format!("ambiguous column `{}`", col.display())));
                }
                found = Some(offset + pos);
            }
        }
        found.ok_or_else(|| StoreError::Sql(format!("unknown column `{}`", col.display())))
    }

    fn all_columns(&self) -> Vec<String> {
        self.bindings
            .iter()
            .flat_map(|(binding, _, cols)| cols.iter().map(move |c| format!("{binding}.{c}")))
            .collect()
    }
}

fn exec_select(db: &mut Database, sel: &Select) -> Result<QueryResult> {
    // Bind the FROM table.
    let base = db.table(&sel.from.table)?;
    let base_cols: Vec<String> = base.schema().columns.iter().map(|c| c.name.clone()).collect();
    let mut scope = Scope {
        bindings: vec![(sel.from.binding().to_owned(), 0, base_cols)],
        width: base.schema().columns.len(),
    };
    // Working set: joined rows, flattened.
    let mut rows: Vec<Vec<Value>> = base.rows().to_vec();

    // Hash joins, left to right.
    for join in &sel.joins {
        let right_table = db.table(&join.table.table)?;
        let right_cols: Vec<String> =
            right_table.schema().columns.iter().map(|c| c.name.clone()).collect();
        let right_width = right_cols.len();
        let right_offset = scope.width;
        scope.bindings.push((join.table.binding().to_owned(), right_offset, right_cols));
        scope.width += right_width;

        // Decide which side of the ON condition refers to the new table.
        let (probe_col, build_col) = {
            let l = scope.resolve(&join.left);
            let r = scope.resolve(&join.right);
            match (l, r) {
                (Ok(li), Ok(ri)) => {
                    if li >= right_offset && ri < right_offset {
                        (ri, li - right_offset)
                    } else if ri >= right_offset && li < right_offset {
                        (li, ri - right_offset)
                    } else {
                        return Err(StoreError::Sql(
                            "JOIN condition must relate the joined table to a prior table"
                                .to_owned(),
                        ));
                    }
                }
                (Err(e), _) | (_, Err(e)) => return Err(e),
            }
        };

        // Build hash table on the new (right) table.
        let mut index: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, row) in right_table.rows().iter().enumerate() {
            let key = &row[build_col];
            if !key.is_null() {
                index.entry(key.to_string()).or_default().push(i);
            }
        }

        let mut joined = Vec::new();
        for left_row in rows {
            let key = &left_row[probe_col];
            if key.is_null() {
                continue;
            }
            if let Some(matches) = index.get(&key.to_string()) {
                for &ri in matches {
                    let mut combined = left_row.clone();
                    combined.extend_from_slice(&right_table.rows()[ri]);
                    joined.push(combined);
                }
            }
        }
        rows = joined;
    }

    // WHERE filtering.
    type Predicate = Box<dyn Fn(&[Value]) -> Result<bool>>;
    for pred in &sel.predicates {
        let keep: Predicate = match pred {
            Expr::IsNull(col) => {
                let idx = scope.resolve(col)?;
                Box::new(move |row| Ok(row[idx].is_null()))
            }
            Expr::IsNotNull(col) => {
                let idx = scope.resolve(col)?;
                Box::new(move |row| Ok(!row[idx].is_null()))
            }
            Expr::Cmp { left, op, right } => {
                let li = scope.resolve(left)?;
                match right {
                    Operand::Lit(lit) => {
                        let v = lit.to_value();
                        let op = *op;
                        Box::new(move |row| Ok(op.eval(&row[li], &v)))
                    }
                    Operand::Col(rc) => {
                        let ri = scope.resolve(rc)?;
                        let op = *op;
                        Box::new(move |row| Ok(op.eval(&row[li], &row[ri])))
                    }
                }
            }
        };
        let mut filtered = Vec::with_capacity(rows.len());
        for row in rows {
            if keep(&row)? {
                filtered.push(row);
            }
        }
        rows = filtered;
    }

    // ORDER BY.
    if let Some((col, desc)) = &sel.order_by {
        let idx = scope.resolve(col)?;
        rows.sort_by(|a, b| {
            let ord = a[idx].cmp_sql(&b[idx]);
            if *desc {
                ord.reverse()
            } else {
                ord
            }
        });
    }

    // LIMIT.
    if let Some(n) = sel.limit {
        rows.truncate(n);
    }

    // Projection.
    let mut out_cols = Vec::new();
    enum Proj {
        Col(usize),
        All,
        Count,
    }
    let mut projs = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                out_cols.extend(scope.all_columns());
                projs.push(Proj::All);
            }
            SelectItem::Column(c) => {
                out_cols.push(c.display());
                projs.push(Proj::Col(scope.resolve(c)?));
            }
            SelectItem::CountStar => {
                out_cols.push("count".to_owned());
                projs.push(Proj::Count);
            }
        }
    }

    if projs.iter().any(|p| matches!(p, Proj::Count)) {
        if projs.len() != 1 {
            return Err(StoreError::Sql(
                "COUNT(*) cannot be combined with other select items".to_owned(),
            ));
        }
        return Ok(QueryResult {
            columns: out_cols,
            rows: vec![vec![Value::Int(rows.len() as i64)]],
            rows_affected: 0,
        });
    }

    let projected = rows
        .into_iter()
        .map(|row| {
            let mut out = Vec::new();
            for p in &projs {
                match p {
                    Proj::All => out.extend(row.iter().cloned()),
                    Proj::Col(i) => out.push(row[*i].clone()),
                    Proj::Count => unreachable!("handled above"),
                }
            }
            out
        })
        .collect();

    Ok(QueryResult { columns: out_cols, rows: projected, rows_affected: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::run_script;

    fn seeded() -> Database {
        let mut db = Database::new();
        run_script(
            &mut db,
            "CREATE TABLE genres (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, budget REAL);
             CREATE TABLE movie_genre (movie_id INTEGER REFERENCES movies(id),
                                       genre_id INTEGER REFERENCES genres(id));
             INSERT INTO genres VALUES (1, 'Horror'), (2, 'Comedy');
             INSERT INTO movies VALUES (1, 'Alien', 11000000.0), (2, 'Brazil', NULL),
                                       (3, 'Amelie', 10000000.0);
             INSERT INTO movie_genre VALUES (1, 1), (3, 2), (2, 2);",
        )
        .unwrap();
        db
    }

    #[test]
    fn where_and_order() {
        let mut db = seeded();
        let r = run_script(
            &mut db,
            "SELECT title FROM movies WHERE budget >= 10000000 ORDER BY budget DESC",
        )
        .unwrap();
        let titles: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(titles, vec!["Alien", "Amelie"]);
    }

    #[test]
    fn null_filtering() {
        let mut db = seeded();
        let r = run_script(&mut db, "SELECT title FROM movies WHERE budget IS NULL").unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][0], Value::from("Brazil"));
    }

    #[test]
    fn two_hop_join_through_link_table() {
        let mut db = seeded();
        let r = run_script(
            &mut db,
            "SELECT m.title FROM genres g
             JOIN movie_genre mg ON mg.genre_id = g.id
             JOIN movies m ON m.id = mg.movie_id
             WHERE g.name = 'Comedy' ORDER BY m.title",
        )
        .unwrap();
        let titles: Vec<_> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(titles, vec!["Amelie", "Brazil"]);
    }

    #[test]
    fn wildcard_projection_includes_all_bindings() {
        let mut db = seeded();
        let r = run_script(
            &mut db,
            "SELECT * FROM movie_genre mg JOIN genres g ON mg.genre_id = g.id LIMIT 1",
        )
        .unwrap();
        assert_eq!(r.columns.len(), 4); // movie_id, genre_id, id, name
        assert!(r.columns[3].contains("name"));
    }

    #[test]
    fn limit_truncates() {
        let mut db = seeded();
        let r = run_script(&mut db, "SELECT id FROM movies ORDER BY id LIMIT 2").unwrap();
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn ambiguous_column_is_error() {
        let mut db = seeded();
        let err = run_script(&mut db, "SELECT id FROM movies m JOIN genres g ON m.id = g.id")
            .unwrap_err();
        assert!(matches!(err, StoreError::Sql(msg) if msg.contains("ambiguous")));
    }

    #[test]
    fn unknown_column_is_error() {
        let mut db = seeded();
        assert!(run_script(&mut db, "SELECT nope FROM movies").is_err());
    }

    #[test]
    fn insert_reports_rows_affected() {
        let mut db = seeded();
        let r =
            run_script(&mut db, "INSERT INTO genres VALUES (3, 'Drama'), (4, 'SciFi')").unwrap();
        assert_eq!(r.rows_affected, 2);
    }

    #[test]
    fn multi_row_insert_is_atomic() {
        let mut db = seeded();
        // Tuple 3 repeats primary key 3: the whole statement must be a no-op.
        let err =
            run_script(&mut db, "INSERT INTO genres VALUES (3, 'Drama'), (4, 'SciFi'), (3, 'Dup')")
                .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey { .. }), "got {err:?}");
        let count = run_script(&mut db, "SELECT COUNT(*) FROM genres").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(2), "partial insert must not survive");
    }

    #[test]
    fn insert_tuples_may_reference_earlier_tuples() {
        let mut db = seeded();
        // movie 50 is staged by the same statement the link row references.
        let r = run_script(
            &mut db,
            "INSERT INTO movies VALUES (50, 'Dune', 1.0); \
             INSERT INTO movie_genre VALUES (50, 1), (50, 2)",
        )
        .unwrap();
        assert_eq!(r.rows_affected, 2);
    }

    #[test]
    fn count_cannot_mix_with_columns() {
        let mut db = seeded();
        assert!(run_script(&mut db, "SELECT COUNT(*), title FROM movies").is_err());
    }

    #[test]
    fn update_rewrites_matching_rows() {
        let mut db = seeded();
        let r = run_script(&mut db, "UPDATE movies SET budget = 5.0 WHERE budget IS NULL").unwrap();
        assert_eq!(r.rows_affected, 1);
        let check =
            run_script(&mut db, "SELECT budget FROM movies WHERE title = 'Brazil'").unwrap();
        assert_eq!(check.rows[0][0], Value::Float(5.0));
    }

    #[test]
    fn update_without_where_touches_all_rows() {
        let mut db = seeded();
        let r = run_script(&mut db, "UPDATE movies SET budget = 1").unwrap();
        assert_eq!(r.rows_affected, 3);
    }

    #[test]
    fn update_rejects_pk_and_fk_columns() {
        let mut db = seeded();
        assert!(run_script(&mut db, "UPDATE movies SET id = 99").is_err());
        assert!(run_script(&mut db, "UPDATE movie_genre SET genre_id = 1").is_err());
        assert!(run_script(&mut db, "UPDATE movies SET title = 7").is_err()); // type
    }

    #[test]
    fn delete_removes_matching_rows_and_reindexes() {
        let mut db = seeded();
        // Movie 1 is referenced by movie_genre — clear the link first.
        run_script(&mut db, "DELETE FROM movie_genre WHERE movie_id = 1").unwrap();
        let r = run_script(&mut db, "DELETE FROM movies WHERE title = 'Alien'").unwrap();
        assert_eq!(r.rows_affected, 1);
        let count = run_script(&mut db, "SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(2));
        // PK index rebuilt: inserting a fresh id-1 row works again.
        run_script(&mut db, "INSERT INTO movies VALUES (1, 'Alien Redux', 1.0)").unwrap();
    }

    #[test]
    fn delete_restricts_on_foreign_keys() {
        let mut db = seeded();
        let err = run_script(&mut db, "DELETE FROM movies WHERE id = 1").unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation { .. }));
        // The row survived.
        let count = run_script(&mut db, "SELECT COUNT(*) FROM movies").unwrap();
        assert_eq!(count.rows[0][0], Value::Int(3));
    }

    #[test]
    fn column_vs_column_where() {
        let mut db = seeded();
        let r = run_script(
            &mut db,
            "SELECT mg.movie_id FROM movie_genre mg WHERE mg.movie_id = mg.genre_id",
        )
        .unwrap();
        assert_eq!(r.rows.len(), 2); // (1,1) and (2,2)
    }
}
