//! SQL tokenizer.

use crate::error::StoreError;
use crate::Result;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are matched case-insensitively by the
    /// parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// Punctuation and operators: `( ) , . ; * = != < <= > >=`.
    Symbol(&'static str),
}

impl Token {
    /// True when this token is the (case-insensitive) keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = sql.chars().peekable();

    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                s.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(other) => s.push(other),
                        None => {
                            return Err(StoreError::Sql("unterminated string literal".to_owned()))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && matches!(tokens.last(), None | Some(Token::Symbol(_)))
                    && !matches!(tokens.last(), Some(Token::Symbol(")")))) =>
            {
                let mut num = String::new();
                if c == '-' {
                    num.push(c);
                    chars.next();
                }
                let mut is_float = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        num.push(d);
                        chars.next();
                    } else if d == '.' && !is_float {
                        is_float = true;
                        num.push(d);
                        chars.next();
                    } else if (d == 'e' || d == 'E') && !num.is_empty() {
                        is_float = true;
                        num.push(d);
                        chars.next();
                        if let Some(&sign @ ('+' | '-')) = chars.peek() {
                            num.push(sign);
                            chars.next();
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    let v = num
                        .parse::<f64>()
                        .map_err(|e| StoreError::Sql(format!("bad float `{num}`: {e}")))?;
                    tokens.push(Token::Float(v));
                } else {
                    let v = num
                        .parse::<i64>()
                        .map_err(|e| StoreError::Sql(format!("bad integer `{num}`: {e}")))?;
                    tokens.push(Token::Int(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            }
            '(' | ')' | ',' | '.' | ';' | '*' | '=' => {
                chars.next();
                tokens.push(Token::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    ';' => ";",
                    '*' => "*",
                    _ => "=",
                }));
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Symbol("!="));
                } else {
                    return Err(StoreError::Sql("expected `!=`".to_owned()));
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Symbol("<="));
                } else if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token::Symbol("!="));
                } else {
                    tokens.push(Token::Symbol("<"));
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Symbol(">="));
                } else {
                    tokens.push(Token::Symbol(">"));
                }
            }
            other => {
                return Err(StoreError::Sql(format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, b FROM t WHERE x >= 1.5").unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Ident("a".into()));
        assert_eq!(toks[2], Token::Symbol(","));
        assert_eq!(*toks.last().unwrap(), Token::Float(1.5));
    }

    #[test]
    fn string_escapes() {
        let toks = tokenize("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn negative_numbers_and_operators() {
        let toks = tokenize("x = -3").unwrap();
        assert_eq!(toks[2], Token::Int(-3));
        let toks = tokenize("a <> b").unwrap();
        assert_eq!(toks[1], Token::Symbol("!="));
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("1e6 2.5E-3").unwrap();
        assert_eq!(toks[0], Token::Float(1e6));
        assert_eq!(toks[1], Token::Float(2.5e-3));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn qualified_names() {
        let toks = tokenize("m.title").unwrap();
        assert_eq!(
            toks,
            vec![Token::Ident("m".into()), Token::Symbol("."), Token::Ident("title".into())]
        );
    }
}
