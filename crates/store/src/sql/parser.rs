//! Recursive-descent parser for the SQL subset.

use crate::error::StoreError;
use crate::sql::ast::*;
use crate::sql::tokenizer::{tokenize, Token};
use crate::value::DataType;
use crate::Result;

/// Parse a single SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(";"); // trailing semicolon is optional
    if !p.at_end() {
        return Err(p.error("trailing input after statement"));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn error(&self, msg: &str) -> StoreError {
        StoreError::Sql(format!("{msg} (at token {})", self.pos))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume a keyword (case-insensitive) or fail.
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t.is_kw(kw) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(&format!("expected keyword {kw}"))),
        }
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: &str) -> Result<()> {
        match self.peek() {
            Some(Token::Symbol(s)) if *s == sym => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.error(&format!("expected `{sym}`"))),
        }
    }

    fn eat_symbol(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.error("expected identifier")),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(t) if t.is_kw("explain") => {
                self.pos += 1;
                // Nested EXPLAIN parses but the executor rejects it; the
                // planner only explains SELECT/UPDATE/DELETE.
                Ok(Statement::Explain(Box::new(self.statement()?)))
            }
            Some(t) if t.is_kw("create") => self.create_table().map(Statement::CreateTable),
            Some(t) if t.is_kw("insert") => self.insert().map(Statement::Insert),
            Some(t) if t.is_kw("select") => self.select().map(Statement::Select),
            Some(t) if t.is_kw("update") => self.update().map(Statement::Update),
            Some(t) if t.is_kw("delete") => self.delete().map(Statement::Delete),
            _ => Err(self.error("expected EXPLAIN, CREATE, INSERT, SELECT, UPDATE or DELETE")),
        }
    }

    fn where_clause(&mut self) -> Result<Vec<Expr>> {
        let mut predicates = Vec::new();
        if self.eat_kw("where") {
            loop {
                predicates.push(self.predicate()?);
                if !self.eat_kw("and") {
                    break;
                }
            }
        }
        Ok(predicates)
    }

    fn update(&mut self) -> Result<Update> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect_symbol("=")?;
            assignments.push((column, self.literal()?));
            if !self.eat_symbol(",") {
                break;
            }
        }
        let predicates = self.where_clause()?;
        Ok(Update { table, assignments, predicates })
    }

    fn delete(&mut self) -> Result<Delete> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let predicates = self.where_clause()?;
        Ok(Delete { table, predicates })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" | "BIGINT" => Ok(DataType::Int),
            "REAL" | "FLOAT" | "DOUBLE" | "NUMERIC" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => {
                // Accept an optional length like VARCHAR(255).
                if self.eat_symbol("(") {
                    self.next();
                    self.expect_symbol(")")?;
                }
                Ok(DataType::Text)
            }
            other => Err(self.error(&format!("unknown type `{other}`"))),
        }
    }

    fn create_table(&mut self) -> Result<CreateTable> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_symbol("(")?;
        let mut columns = Vec::new();
        let mut primary_key = None;
        let mut foreign_keys = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col.clone(), ty));
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                if primary_key.replace(col.clone()).is_some() {
                    return Err(self.error("multiple PRIMARY KEY declarations"));
                }
            }
            if self.eat_kw("references") {
                let ref_table = self.ident()?;
                self.expect_symbol("(")?;
                let ref_col = self.ident()?;
                self.expect_symbol(")")?;
                foreign_keys.push((col, ref_table, ref_col));
            }
            if self.eat_symbol(",") {
                continue;
            }
            self.expect_symbol(")")?;
            break;
        }
        Ok(CreateTable { name, columns, primary_key, foreign_keys })
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.next() {
            Some(Token::Int(i)) => Ok(Literal::Int(i)),
            Some(Token::Float(x)) => Ok(Literal::Float(x)),
            Some(Token::Str(s)) => Ok(Literal::Str(s)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Literal::Null),
            _ => Err(self.error("expected literal")),
        }
    }

    fn insert(&mut self) -> Result<Insert> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_symbol("(") {
            loop {
                columns.push(self.ident()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol("(")?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
            self.expect_symbol(")")?;
            rows.push(row);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(Insert { table, columns, rows })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat_symbol(".") {
            let column = self.ident()?;
            Ok(ColumnRef { table: Some(first), column })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        // A parenthesized literal list makes this a table-function call:
        // `NEAREST('alien', 10) n`. Zero arguments (`f()`) are allowed.
        let args = if self.eat_symbol("(") {
            let mut list = Vec::new();
            if !self.eat_symbol(")") {
                loop {
                    list.push(self.literal()?);
                    if !self.eat_symbol(",") {
                        break;
                    }
                }
                self.expect_symbol(")")?;
            }
            Some(list)
        } else {
            None
        };
        // Optional alias: bare identifier that is not a clause keyword.
        let alias = match self.peek() {
            Some(Token::Ident(s))
                if !["join", "where", "on", "order", "limit", "inner"]
                    .iter()
                    .any(|kw| s.eq_ignore_ascii_case(kw)) =>
            {
                let a = s.clone();
                self.pos += 1;
                Some(a)
            }
            _ => None,
        };
        Ok(TableRef { table, args, alias })
    }

    fn bin_op(&mut self) -> Result<BinOp> {
        match self.next() {
            Some(Token::Symbol("=")) => Ok(BinOp::Eq),
            Some(Token::Symbol("!=")) => Ok(BinOp::Ne),
            Some(Token::Symbol("<")) => Ok(BinOp::Lt),
            Some(Token::Symbol("<=")) => Ok(BinOp::Le),
            Some(Token::Symbol(">")) => Ok(BinOp::Gt),
            Some(Token::Symbol(">=")) => Ok(BinOp::Ge),
            _ => Err(self.error("expected comparison operator")),
        }
    }

    fn predicate(&mut self) -> Result<Expr> {
        let left = self.column_ref()?;
        if self.eat_kw("is") {
            if self.eat_kw("not") {
                self.expect_kw("null")?;
                return Ok(Expr::IsNotNull(left));
            }
            self.expect_kw("null")?;
            return Ok(Expr::IsNull(left));
        }
        let op = self.bin_op()?;
        // RHS: literal or column reference.
        let right = match self.peek() {
            Some(Token::Ident(s)) if !s.eq_ignore_ascii_case("null") => {
                Operand::Col(self.column_ref()?)
            }
            _ => Operand::Lit(self.literal()?),
        };
        Ok(Expr::Cmp { left, op, right })
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        loop {
            if self.eat_symbol("*") {
                items.push(SelectItem::Wildcard);
            } else if matches!(self.peek(), Some(t) if t.is_kw("count")) {
                self.pos += 1;
                self.expect_symbol("(")?;
                self.expect_symbol("*")?;
                self.expect_symbol(")")?;
                items.push(SelectItem::CountStar);
            } else {
                items.push(SelectItem::Column(self.column_ref()?));
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let from = self.table_ref()?;

        let mut joins = Vec::new();
        loop {
            let had_inner = self.eat_kw("inner");
            if self.eat_kw("join") {
                let table = self.table_ref()?;
                self.expect_kw("on")?;
                let left = self.column_ref()?;
                self.expect_symbol("=")?;
                let right = self.column_ref()?;
                joins.push(Join { table, left, right });
            } else if had_inner {
                return Err(self.error("expected JOIN after INNER"));
            } else {
                break;
            }
        }

        let predicates = self.where_clause()?;

        let mut order_by = None;
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            let col = self.column_ref()?;
            let desc = self.eat_kw("desc");
            if !desc {
                self.eat_kw("asc");
            }
            order_by = Some((col, desc));
        }

        let mut limit = None;
        if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
                _ => return Err(self.error("expected non-negative LIMIT count")),
            }
        }

        Ok(Select { items, from, joins, predicates, order_by, limit })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_create_table() {
        let stmt = parse_statement(
            "CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
             director_id INTEGER REFERENCES persons(id))",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else { panic!("wrong variant") };
        assert_eq!(ct.name, "movies");
        assert_eq!(ct.columns.len(), 3);
        assert_eq!(ct.primary_key.as_deref(), Some("id"));
        assert_eq!(ct.foreign_keys, vec![("director_id".into(), "persons".into(), "id".into())]);
    }

    #[test]
    fn parse_insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        let Statement::Insert(ins) = stmt else { panic!("wrong variant") };
        assert_eq!(ins.columns, vec!["a", "b"]);
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[1][1], Literal::Null);
    }

    #[test]
    fn parse_select_with_everything() {
        let stmt = parse_statement(
            "SELECT m.title, COUNT(*) FROM movies m JOIN persons p ON m.director_id = p.id
             WHERE p.name = 'X' AND m.budget >= 1000 ORDER BY m.title DESC LIMIT 5",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else { panic!("wrong variant") };
        assert_eq!(sel.items.len(), 2);
        assert_eq!(sel.joins.len(), 1);
        assert_eq!(sel.predicates.len(), 2);
        assert_eq!(sel.limit, Some(5));
        assert!(sel.order_by.unwrap().1);
    }

    #[test]
    fn parse_is_null_predicates() {
        let stmt = parse_statement("SELECT a FROM t WHERE a IS NULL AND b IS NOT NULL").unwrap();
        let Statement::Select(sel) = stmt else { panic!("wrong variant") };
        assert!(matches!(sel.predicates[0], Expr::IsNull(_)));
        assert!(matches!(sel.predicates[1], Expr::IsNotNull(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_statement("DROP TABLE t").is_err());
        assert!(parse_statement("SELECT FROM t").is_err());
        assert!(parse_statement("SELECT a FROM t LIMIT -1").is_err());
        assert!(parse_statement("SELECT a FROM t extra garbage words").is_err());
    }

    #[test]
    fn varchar_length_is_accepted() {
        let stmt = parse_statement("CREATE TABLE t (name VARCHAR(255))").unwrap();
        let Statement::CreateTable(ct) = stmt else { panic!("wrong variant") };
        assert_eq!(ct.columns[0].1, DataType::Text);
    }

    #[test]
    fn parse_update_and_delete() {
        let stmt = parse_statement("UPDATE t SET a = 1, b = 'x' WHERE c >= 2").unwrap();
        let Statement::Update(u) = stmt else { panic!("wrong variant") };
        assert_eq!(u.assignments.len(), 2);
        assert_eq!(u.predicates.len(), 1);

        let stmt = parse_statement("DELETE FROM t WHERE a IS NULL").unwrap();
        let Statement::Delete(d) = stmt else { panic!("wrong variant") };
        assert_eq!(d.table, "t");
        assert_eq!(d.predicates.len(), 1);

        assert!(parse_statement("UPDATE t WHERE a = 1").is_err()); // missing SET
        assert!(parse_statement("DELETE t").is_err()); // missing FROM
    }

    #[test]
    fn parse_table_function_in_from_and_join() {
        let stmt = parse_statement(
            "SELECT m.title, n.score FROM NEAREST('alien', 10) n
             JOIN movies m ON m.id = n.id",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else { panic!("wrong variant") };
        assert_eq!(sel.from.table, "NEAREST");
        assert_eq!(sel.from.args, Some(vec![Literal::Str("alien".into()), Literal::Int(10)]));
        assert_eq!(sel.from.alias.as_deref(), Some("n"));
        assert!(!sel.joins[0].table.is_function());

        // Functions join the other way around too.
        let stmt = parse_statement(
            "SELECT * FROM movies m JOIN NEAREST('movies', 'title', 'alien', 5) n
             ON n.id = m.id",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else { panic!("wrong variant") };
        assert_eq!(sel.joins[0].table.args.as_ref().unwrap().len(), 4);

        // Malformed argument lists are parse errors.
        assert!(parse_statement("SELECT * FROM NEAREST('a', ) n").is_err());
        assert!(parse_statement("SELECT * FROM NEAREST('a', 10 n").is_err());
    }

    #[test]
    fn column_to_column_comparison() {
        let stmt = parse_statement("SELECT a FROM t WHERE t.a = t.b").unwrap();
        let Statement::Select(sel) = stmt else { panic!("wrong variant") };
        assert!(matches!(&sel.predicates[0], Expr::Cmp { right: Operand::Col(_), .. }));
    }
}
